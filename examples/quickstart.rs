//! Quickstart: rescue an unschedulable real-time task set with custom
//! instructions.
//!
//! Builds two benchmark tasks whose combined utilization exceeds 1 (no EDF
//! schedule exists), generates per-task custom-instruction configuration
//! curves, and runs the DATE 2007 optimal EDF selector to find the smallest
//! customization that meets every deadline.
//!
//! Run with: `cargo run --release --example quickstart`

use rtise::rt::{simulate_edf, SimOutcome};
use rtise::select::select_edf;
use rtise::workbench::{max_area, task_specs, CurveOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two compute-heavy kernels at a combined initial utilization of 1.10:
    // the task set misses deadlines in pure software.
    let names = ["crc32", "sha"];
    let specs = task_specs(&names, 1.10, CurveOptions::thorough())?;

    let u0: f64 = specs.iter().map(|s| s.base_utilization()).sum();
    println!("software-only utilization : {u0:.3}  (unschedulable)");
    for s in &specs {
        println!(
            "  task {:<10} C = {:>8} cycles, P = {:>8}, {} configurations, max area {}",
            s.curve.name,
            s.curve.base_cycles,
            s.period,
            s.curve.len(),
            s.curve.max_area()
        );
    }

    // Sweep the area budget until the set becomes schedulable.
    let budget_max = max_area(&specs);
    println!(
        "\n{:>12} {:>12} {:>14}",
        "area budget", "utilization", "schedulable"
    );
    let mut rescued = None;
    for step in 0..=10u64 {
        let budget = budget_max * step / 10;
        let sel = select_edf(&specs, budget)?;
        println!(
            "{budget:>12} {:>12.4} {:>14}",
            sel.utilization,
            if sel.schedulable { "yes" } else { "no" }
        );
        if sel.schedulable && rescued.is_none() {
            rescued = Some((budget, sel));
        }
    }

    let (budget, sel) = rescued.expect("customization should rescue this set");
    println!("\nfirst schedulable budget: {budget} cells");
    for (s, &cfg) in specs.iter().zip(&sel.assignment.config) {
        let p = &s.curve.points()[cfg];
        println!(
            "  {:<10} -> configuration {} (area {:>6}, {:>8} cycles)",
            s.curve.name, cfg, p.area, p.cycles
        );
    }

    // Double-check with the cycle-accurate EDF schedule simulator.
    let tasks = sel.assignment.to_tasks(&specs);
    assert_eq!(simulate_edf(&tasks), SimOutcome::AllDeadlinesMet);
    println!("\nEDF schedule simulation over one hyperperiod: all deadlines met");
    Ok(())
}

//! Exact vs ε-approximate Pareto fronts (Chapter 4).
//!
//! Computes the workload–area Pareto curve of the g721 decoder exactly and
//! with the polynomial-time ε-approximation, then the utilization–area
//! curve of a whole task set, reporting curve sizes and the ε-coverage
//! guarantee (Fig. 4.4 / Table 4.2's qualitative content).
//!
//! Run with: `cargo run --release --example pareto_explorer`

use rtise::fixtures::EPSILONS_TABLE_4_2;
use rtise::select::pareto::{
    eps_pareto, eps_pareto_groups, exact_pareto, exact_pareto_groups, is_eps_cover, Item,
    ParetoPoint,
};
use rtise::workbench::{task_curve, task_specs, CurveOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Intra-task stage: g721 decoder. ---
    let curve = task_curve("g721_decode", CurveOptions::thorough())?;
    // Each undominated configuration step acts as an independent item.
    let items: Vec<Item> = curve
        .points()
        .windows(2)
        .map(|w| Item {
            delta: w[0].cycles - w[1].cycles,
            area: w[1].area - w[0].area,
        })
        .collect();
    let exact = exact_pareto(curve.base_cycles, &items);
    println!(
        "g721_decode workload-area curve: {} exact points (base {} cycles)",
        exact.len(),
        curve.base_cycles
    );
    for eps in EPSILONS_TABLE_4_2 {
        let approx = eps_pareto(curve.base_cycles, &items, eps);
        assert!(is_eps_cover(&exact, &approx, eps));
        println!(
            "  eps = {eps:<5}: {} points ({}% of exact), coverage verified",
            approx.len(),
            approx.len() * 100 / exact.len().max(1)
        );
    }

    // --- Inter-task stage: a five-task set. ---
    let specs = task_specs(
        &["crc32", "ndes", "fir", "adpcm_decode", "compress"],
        1.05,
        CurveOptions::fast(),
    )?;
    // Fixed-point utilization scale (the task periods' LCM is astronomical).
    const SCALE: u64 = 1 << 32;
    let h = SCALE;
    let groups: Vec<Vec<ParetoPoint>> = specs
        .iter()
        .map(|s| {
            let w = (SCALE / s.period).max(1);
            s.curve
                .points()
                .iter()
                .map(|p| ParetoPoint {
                    cost: p.area,
                    value: p.cycles.saturating_mul(w),
                })
                .collect()
        })
        .collect();
    let exact = exact_pareto_groups(&groups);
    println!(
        "\ntask-set utilization-area curve: {} exact points over hyperperiod {h}",
        exact.len()
    );
    for eps in [0.44, 3.0] {
        let approx = eps_pareto_groups(&groups, eps);
        assert!(is_eps_cover(&exact, &approx, eps));
        let schedulable = approx.iter().filter(|p| p.value <= h).count();
        println!(
            "  eps = {eps:<5}: {} points, {} of them schedulable (U <= 1)",
            approx.len(),
            schedulable
        );
    }
    println!(
        "\nLarger eps values trade curve fidelity for orders-of-magnitude \
         fewer points and faster generation — the designer-facing benefit \
         argued in §4.3."
    );
    Ok(())
}

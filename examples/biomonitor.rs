//! Processor customization for wearable bio-monitoring — the Chapter 8
//! case study.
//!
//! Runs the two fixed-point bio-monitoring applications (continuous
//! vital-sign monitoring from a PPG waveform, accelerometer fall
//! detection), validates them against their references, customizes each
//! with the iterative MLGP flow, and reports the achieved speedups
//! (Fig. 8.4's content).
//!
//! Run with: `cargo run --release --example biomonitor`

use rtise::ir::hw::HwModel;
use rtise::kernels::by_name;
use rtise::mlgp::iterative::IterTask;
use rtise::mlgp::{customize_task_set, IterativeOptions};
use rtise::sim::{CiMap, SelectedCi, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hw = HwModel::default();
    println!(
        "{:<16} {:>12} {:>12} {:>9} {:>11}",
        "application", "sw cycles", "hw cycles", "speedup", "area(cells)"
    );
    for name in ["vital_signs", "fall_detection"] {
        let kernel = by_name(name).expect("kernel exists");
        let sw = kernel.validate()?;

        // Customize aggressively: a single task, impossible target, so the
        // iterative flow extracts everything profitable.
        let wcet = rtise::ir::wcet::analyze(&kernel.program)?.wcet;
        let tasks = [IterTask {
            program: &kernel.program,
            period: wcet,
        }];
        let res = customize_task_set(&tasks, 0.01, &hw, IterativeOptions::default())?;

        // Re-run the application with the selected custom instructions and
        // confirm bit-exact results.
        let mut cis = CiMap::new();
        for ci in &res.selected {
            let dfg = &kernel.program.block(ci.block).dfg;
            cis.add(
                ci.block,
                SelectedCi {
                    nodes: ci.nodes.clone(),
                    cycles: hw.ci_cycles(dfg, &ci.nodes),
                },
            );
        }
        let acc = Simulator::new(&kernel.program)?.run_with_cis(
            &kernel.init_vars,
            &kernel.init_mem,
            &cis,
        )?;
        assert_eq!(acc.vars, sw.vars, "customization must not change results");
        assert_eq!(acc.mem, sw.mem);

        println!(
            "{name:<16} {:>12} {:>12} {:>8.2}x {:>11}",
            sw.cycles,
            acc.cycles,
            sw.cycles as f64 / acc.cycles as f64,
            res.total_area
        );
    }
    println!(
        "\nBoth applications keep their exact fixed-point outputs (peak \
         counts, fall events) while the hot filter/detection loops collapse \
         into custom instructions."
    );
    Ok(())
}

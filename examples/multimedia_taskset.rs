//! Multimedia task set under EDF and RMS with voltage scaling.
//!
//! Reproduces the Chapter 3 flow on task set 3 of Table 3.1 (adpcm encoder,
//! blowfish, JPEG, crc32): optimal custom-instruction selection under both
//! scheduling policies across area budgets, then the energy impact of
//! scaling the TM5400-style frequency/voltage ladder down to the lowest
//! schedulable operating point.
//!
//! Run with: `cargo run --release --example multimedia_taskset`

use rtise::fixtures::TABLE_3_1;
use rtise::rt::dvfs::{Policy, VoltageScaler};
use rtise::select::rms::select_rms;
use rtise::select::select_edf;
use rtise::workbench::{max_area, task_specs, CurveOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let names = TABLE_3_1[2];
    println!("task set 3: {names:?}, initial utilization 1.00\n");
    let specs = task_specs(&names, 1.00, CurveOptions::thorough())?;
    let budget_max = max_area(&specs);
    let scaler = VoltageScaler::tm5400();
    let n = specs.len();

    println!(
        "{:>7} {:>10} {:>10} {:>11} {:>11}",
        "area%", "U(EDF)", "U(RMS)", "E(EDF)%", "E(RMS)%"
    );
    // Energy baseline: software-only at the lowest feasible level.
    let sw_u: f64 = specs.iter().map(|s| s.base_utilization()).sum();
    let sw_tasks = rtise::select::Assignment::software(n).to_tasks(&specs);
    let base_level = scaler
        .lowest_feasible(sw_u, Policy::Edf, n)
        .unwrap_or(scaler.max_level());
    let base_energy = scaler.energy(&sw_tasks, base_level);

    for pct in (0..=100).step_by(10) {
        let budget = budget_max * pct / 100;
        let edf = select_edf(&specs, budget)?;
        let edf_tasks = edf.assignment.to_tasks(&specs);
        let e_edf = scaler
            .lowest_feasible(edf.utilization, Policy::Edf, n)
            .map(|lvl| scaler.energy(&edf_tasks, lvl) / base_energy * 100.0);

        let rms = select_rms(&specs, budget);
        let (u_rms, e_rms) = match rms {
            Ok(sel) => {
                let tasks = sel.assignment.to_tasks(&specs);
                let e = scaler
                    .lowest_feasible(sel.utilization, Policy::Rms, n)
                    .map(|lvl| scaler.energy(&tasks, lvl) / base_energy * 100.0);
                (format!("{:.4}", sel.utilization), e)
            }
            Err(_) => ("unsched".into(), None),
        };

        println!(
            "{pct:>6}% {:>10.4} {:>10} {:>11} {:>11}",
            edf.utilization,
            u_rms,
            e_edf.map_or("-".into(), |e| format!("{e:.1}")),
            e_rms.map_or("-".into(), |e| format!("{e:.1}")),
        );
    }

    println!(
        "\nEDF scales more aggressively than RMS because its schedulability \
         test is exact (U <= 1), matching Fig. 3.4."
    );
    Ok(())
}

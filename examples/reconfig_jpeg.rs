//! Runtime reconfiguration of custom instructions for the JPEG pipeline —
//! the Chapter 6 case study.
//!
//! Detects the six hot loops of the JPEG luma pipeline (color conversion,
//! row/column DCT, quantization, zig-zag, RLE), derives CIS versions per
//! loop, and compares the three partitioning algorithms (iterative, greedy,
//! exhaustive) across fabric sizes and reconfiguration costs.
//!
//! Run with: `cargo run --release --example reconfig_jpeg`

use rtise::reconfig::{exhaustive_partition, greedy_partition, iterative_partition};
use rtise::workbench::{reconfig_problem, CurveOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = reconfig_problem("jpeg", 4, 0, 0, CurveOptions::thorough())?;
    println!("JPEG hot loops and CIS versions:");
    for l in &base.loops {
        let vs: Vec<String> = l
            .versions()
            .iter()
            .map(|v| format!("({}, {})", v.area, v.gain))
            .collect();
        println!("  {:<16} versions (area, gain): {}", l.name, vs.join(" "));
    }
    println!("  loop-entry trace length: {}\n", base.trace.len());

    let full_area: u64 = base.loops.iter().map(|l| l.best().area).sum();
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>12}",
        "fabric", "rho", "iterative", "greedy", "exhaustive"
    );
    for fabric_pct in [25u64, 50, 75] {
        for rho in [0u64, 200, 2_000, 20_000] {
            let mut p = base.clone();
            p.max_area = (full_area * fabric_pct / 100).max(1);
            p.reconfig_cost = rho;
            let it = iterative_partition(&p, 7).net_gain(&p);
            let gr = greedy_partition(&p).net_gain(&p);
            let ex = exhaustive_partition(&p).net_gain(&p);
            println!("{:>7}% {rho:>9} {it:>12} {gr:>12} {ex:>12}", fabric_pct);
            assert!(it <= ex && gr <= ex, "exhaustive is the optimum");
        }
    }

    println!(
        "\nSmaller fabrics benefit most from reconfiguration; as the \
         reconfiguration cost grows, all algorithms converge to the static \
         single-configuration solution (Fig. 6.10's shape)."
    );
    Ok(())
}

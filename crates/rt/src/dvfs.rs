//! Static voltage/frequency scaling and the energy model of §3.2.2.
//!
//! A lower utilization after customization lets the scheduler drop to a
//! lower frequency/voltage operating point while remaining schedulable.
//! The paper explores this on a Transmeta TM5400-class ladder (300 MHz at
//! 1.2 V up to 633 MHz at 1.6 V) with the static scaling algorithm of
//! Pillai & Shin \[79\]: EDF may scale aggressively (`U·f_max/f ≤ 1`), RMS
//! uses the conservative Liu–Layland sufficient bound.
//!
//! Dynamic energy is `E ∝ cycles · V²`; only relative comparisons between
//! operating points are meaningful, which is all the figures need.

use crate::{rms_ll_bound, PeriodicTask};

/// One frequency/voltage operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct OperatingPoint {
    /// Core frequency in MHz.
    pub freq_mhz: u32,
    /// Supply voltage in millivolts.
    pub volt_mv: u32,
}

impl OperatingPoint {
    /// Dynamic energy per cycle relative to a 1 V supply: `(V/1V)²`.
    pub fn energy_per_cycle(&self) -> f64 {
        let v = self.volt_mv as f64 / 1000.0;
        v * v
    }
}

/// The scheduling policy used for the schedulability condition during
/// scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Earliest Deadline First: exact condition `U ≤ 1`.
    Edf,
    /// Rate-Monotonic: conservative Liu–Layland bound (sufficient only),
    /// matching the static scaling algorithm the paper applies.
    Rms,
}

/// A ladder of operating points, sorted by ascending frequency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoltageScaler {
    levels: Vec<OperatingPoint>,
}

impl VoltageScaler {
    /// The TM5400-style ladder used in the paper: 300 MHz / 1.2 V up to
    /// 633 MHz / 1.6 V.
    pub fn tm5400() -> Self {
        VoltageScaler {
            levels: vec![
                OperatingPoint {
                    freq_mhz: 300,
                    volt_mv: 1200,
                },
                OperatingPoint {
                    freq_mhz: 366,
                    volt_mv: 1275,
                },
                OperatingPoint {
                    freq_mhz: 433,
                    volt_mv: 1350,
                },
                OperatingPoint {
                    freq_mhz: 500,
                    volt_mv: 1425,
                },
                OperatingPoint {
                    freq_mhz: 566,
                    volt_mv: 1500,
                },
                OperatingPoint {
                    freq_mhz: 633,
                    volt_mv: 1600,
                },
            ],
        }
    }

    /// Builds a scaler from explicit levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or not sorted by ascending frequency.
    pub fn with_levels(levels: Vec<OperatingPoint>) -> Self {
        assert!(!levels.is_empty(), "need at least one operating point");
        assert!(
            levels.windows(2).all(|w| w[0].freq_mhz < w[1].freq_mhz),
            "levels must be sorted by ascending frequency"
        );
        VoltageScaler { levels }
    }

    /// All operating points, ascending by frequency.
    pub fn levels(&self) -> &[OperatingPoint] {
        &self.levels
    }

    /// The highest (fastest) operating point.
    pub fn max_level(&self) -> OperatingPoint {
        *self.levels.last().expect("non-empty by construction")
    }

    /// The lowest operating point at which the task set remains schedulable
    /// under `policy`, where `u_at_fmax` is the utilization measured at the
    /// maximum frequency. Returns `None` if even the fastest point fails.
    pub fn lowest_feasible(
        &self,
        u_at_fmax: f64,
        policy: Policy,
        n_tasks: usize,
    ) -> Option<OperatingPoint> {
        let fmax = self.max_level().freq_mhz as f64;
        let bound = match policy {
            Policy::Edf => 1.0,
            Policy::Rms => rms_ll_bound(n_tasks),
        };
        self.levels
            .iter()
            .copied()
            .find(|lvl| u_at_fmax * fmax / lvl.freq_mhz as f64 <= bound + 1e-12)
    }

    /// Relative dynamic energy of running the task set for one hyperperiod
    /// at `level`: total busy cycles × V².
    ///
    /// The cycle count is frequency-independent (the same work is done), so
    /// lower levels win exactly by their voltage ratio squared.
    pub fn energy(&self, tasks: &[PeriodicTask], level: OperatingPoint) -> f64 {
        let h = crate::hyperperiod(tasks).unwrap_or(u64::MAX / 4);
        let cycles: u128 = tasks
            .iter()
            .map(|t| t.wcet as u128 * (h / t.period) as u128)
            .sum();
        cycles as f64 * level.energy_per_cycle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks(spec: &[(u64, u64)]) -> Vec<PeriodicTask> {
        spec.iter()
            .enumerate()
            .map(|(i, &(c, p))| PeriodicTask::new(format!("t{i}"), c, p))
            .collect()
    }

    #[test]
    fn ladder_is_sorted_and_bounded() {
        let s = VoltageScaler::tm5400();
        assert_eq!(s.levels().first().map(|l| l.freq_mhz), Some(300));
        assert_eq!(s.max_level().freq_mhz, 633);
        assert_eq!(s.max_level().volt_mv, 1600);
    }

    #[test]
    fn low_utilization_scales_to_lowest_point() {
        let s = VoltageScaler::tm5400();
        let lvl = s.lowest_feasible(0.3, Policy::Edf, 3).expect("feasible");
        assert_eq!(lvl.freq_mhz, 300);
    }

    #[test]
    fn high_utilization_stays_at_top() {
        let s = VoltageScaler::tm5400();
        let lvl = s.lowest_feasible(0.99, Policy::Edf, 3).expect("feasible");
        assert_eq!(lvl.freq_mhz, 633);
        assert_eq!(s.lowest_feasible(1.01, Policy::Edf, 3), None);
    }

    #[test]
    fn rms_is_more_conservative_than_edf() {
        let s = VoltageScaler::tm5400();
        let u = 0.55;
        let edf = s.lowest_feasible(u, Policy::Edf, 4).expect("edf feasible");
        let rms = s.lowest_feasible(u, Policy::Rms, 4).expect("rms feasible");
        assert!(rms.freq_mhz >= edf.freq_mhz);
    }

    #[test]
    fn energy_drops_with_voltage() {
        let s = VoltageScaler::tm5400();
        let ts = tasks(&[(2, 6), (3, 8)]);
        let hi = s.energy(&ts, s.max_level());
        let lo = s.energy(&ts, s.levels()[0]);
        assert!(lo < hi);
        // Ratio is exactly (1.2/1.6)^2.
        let want = (1.2f64 / 1.6).powi(2);
        assert!((lo / hi - want).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_levels_rejected() {
        let _ = VoltageScaler::with_levels(vec![
            OperatingPoint {
                freq_mhz: 500,
                volt_mv: 1400,
            },
            OperatingPoint {
                freq_mhz: 300,
                volt_mv: 1200,
            },
        ]);
    }
}

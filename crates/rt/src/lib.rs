//! # rtise-rt
//!
//! The periodic real-time task model of the paper (§3.1.1): independent,
//! preemptable tasks with implicit deadlines, scheduled under EDF or RMS.
//!
//! * [`PeriodicTask`] — worst-case execution time `C` and period `P`
//!   (deadline = period).
//! * [`utilization`] / [`edf_schedulable`] — the exact EDF condition
//!   `U = Σ Cᵢ/Pᵢ ≤ 1` (Liu & Layland).
//! * [`rms_schedulable`] — the exact RMS test of Theorem 1 (Bini–Buttazzo
//!   `Sᵢ(t)` recurrence), plus the conservative Liu–Layland sufficient bound
//!   [`rms_ll_bound`] used by the voltage-scaling step.
//! * [`simulate_edf`] / [`simulate_rms`] — cycle-accurate preemptive
//!   schedule simulators over the hyperperiod, used to cross-validate the
//!   analytic tests.
//! * [`dvfs`] — the Transmeta TM5400-style frequency/voltage ladder and the
//!   static voltage-scaling energy model of §3.2.2.
//!
//! # Example
//!
//! ```
//! use rtise_rt::{PeriodicTask, edf_schedulable, rms_schedulable, utilization};
//!
//! let tasks = vec![
//!     PeriodicTask::new("a", 1, 3),
//!     PeriodicTask::new("b", 1, 4),
//!     PeriodicTask::new("c", 1, 5),
//! ];
//! assert!(utilization(&tasks) < 0.79);
//! assert!(edf_schedulable(&tasks));
//! assert!(rms_schedulable(&tasks));
//! ```

pub mod dvfs;

use std::collections::BTreeSet;

/// A periodic, preemptable task with implicit deadline (= period).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PeriodicTask {
    /// Task name, used in reports.
    pub name: String,
    /// Worst-case execution time in cycles.
    pub wcet: u64,
    /// Period (and deadline) in cycles.
    pub period: u64,
}

impl PeriodicTask {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(name: impl Into<String>, wcet: u64, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        PeriodicTask {
            name: name.into(),
            wcet,
            period,
        }
    }

    /// The task's processor utilization `C/P`.
    pub fn utilization(&self) -> f64 {
        self.wcet as f64 / self.period as f64
    }
}

/// Total utilization `U = Σ Cᵢ/Pᵢ` of a task set.
pub fn utilization(tasks: &[PeriodicTask]) -> f64 {
    tasks.iter().map(PeriodicTask::utilization).sum()
}

/// Exact EDF schedulability for implicit-deadline periodic tasks: `U ≤ 1`.
pub fn edf_schedulable(tasks: &[PeriodicTask]) -> bool {
    // Compare exactly in integers: Σ Cᵢ·(H/Pᵢ) ≤ H over the hyperperiod.
    let h = hyperperiod(tasks);
    match h {
        Some(h) => {
            let demand: u128 = tasks
                .iter()
                .map(|t| t.wcet as u128 * (h / t.period) as u128)
                .sum();
            demand <= h as u128
        }
        // Hyperperiod overflowed; fall back to floating point.
        None => utilization(tasks) <= 1.0 + 1e-12,
    }
}

/// The Liu–Layland sufficient (but not necessary) RMS bound
/// `U ≤ n(2^{1/n} − 1)`.
pub fn rms_ll_bound(n_tasks: usize) -> f64 {
    if n_tasks == 0 {
        return 1.0;
    }
    let n = n_tasks as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Exact RMS schedulability test (Theorem 1 of the paper, after
/// Bini–Buttazzo).
///
/// Tasks are checked in increasing period order; the whole set is
/// schedulable iff `maxᵢ Lᵢ ≤ 1` where
/// `Lᵢ = min_{t ∈ Sᵢ₋₁(Pᵢ)} Σ_{j≤i} ⌈t/Pⱼ⌉ Cⱼ / t`.
pub fn rms_schedulable(tasks: &[PeriodicTask]) -> bool {
    let mut sorted: Vec<&PeriodicTask> = tasks.iter().collect();
    sorted.sort_by_key(|t| t.period);
    (0..sorted.len()).all(|i| rms_task_schedulable(&sorted, i))
}

/// Exact schedulability of the `i`-th task (0-based, `tasks` sorted by
/// increasing period): `Lᵢ ≤ 1`.
///
/// This incremental form is what the branch-and-bound selector uses: adding
/// a lower-priority task can never disturb higher-priority ones, so only the
/// newly added task needs the check (§3.1.4).
pub fn rms_task_schedulable(sorted: &[&PeriodicTask], i: usize) -> bool {
    let pi = sorted[i].period;
    let points = schedule_points(sorted, i, pi);
    points.into_iter().filter(|&t| t > 0).any(|t| {
        let demand: u128 = sorted[..=i]
            .iter()
            .map(|tj| (t as u128).div_ceil(tj.period as u128) * tj.wcet as u128)
            .sum();
        demand <= t as u128
    })
}

/// The `Sᵢ(t)` scheduling-point set of Theorem 1:
/// `S₀(t) = {t}`, `Sᵢ(t) = Sᵢ₋₁(⌊t/Pᵢ⌋ Pᵢ) ∪ Sᵢ₋₁(t)`.
fn schedule_points(sorted: &[&PeriodicTask], i: usize, t: u64) -> BTreeSet<u64> {
    fn rec(sorted: &[&PeriodicTask], level: usize, t: u64, out: &mut BTreeSet<u64>) {
        if level == 0 {
            out.insert(t);
            return;
        }
        let p = sorted[level - 1].period;
        rec(sorted, level - 1, t / p * p, out);
        rec(sorted, level - 1, t, out);
    }
    let mut out = BTreeSet::new();
    rec(sorted, i, t, &mut out);
    out
}

/// Least common multiple of all periods, or `None` on overflow.
pub fn hyperperiod(tasks: &[PeriodicTask]) -> Option<u64> {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    tasks.iter().try_fold(1u64, |acc, t| {
        let g = gcd(acc, t.period);
        (acc / g).checked_mul(t.period)
    })
}

/// Outcome of a schedule simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimOutcome {
    /// All jobs met their deadlines over the simulated horizon.
    AllDeadlinesMet,
    /// Some job of the named task index missed its deadline at the given
    /// time.
    DeadlineMiss {
        /// Index of the task whose job missed.
        task: usize,
        /// Absolute time of the missed deadline.
        time: u64,
    },
}

/// Simulates preemptive EDF with synchronous release over one hyperperiod.
///
/// Used to cross-validate [`edf_schedulable`]; for implicit-deadline
/// periodic tasks with simultaneous release, one hyperperiod suffices.
pub fn simulate_edf(tasks: &[PeriodicTask]) -> SimOutcome {
    simulate(tasks, |jobs| {
        jobs.iter()
            .enumerate()
            .filter(|(_, j)| j.remaining > 0)
            .min_by_key(|(_, j)| j.deadline)
            .map(|(i, _)| i)
    })
}

/// Simulates preemptive RMS (fixed priority = shorter period first) with
/// synchronous release over one hyperperiod.
pub fn simulate_rms(tasks: &[PeriodicTask]) -> SimOutcome {
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by_key(|&i| tasks[i].period);
    simulate(tasks, move |jobs| {
        order.iter().copied().find(|&i| jobs[i].remaining > 0)
    })
}

struct Job {
    remaining: u64,
    deadline: u64,
    next_release: u64,
}

/// Event-driven preemptive scheduler simulation over one hyperperiod.
fn simulate<F>(tasks: &[PeriodicTask], pick: F) -> SimOutcome
where
    F: Fn(&[Job]) -> Option<usize>,
{
    if tasks.is_empty() {
        return SimOutcome::AllDeadlinesMet;
    }
    let horizon = hyperperiod(tasks).unwrap_or(u64::MAX / 4);
    let mut jobs: Vec<Job> = tasks
        .iter()
        .map(|t| Job {
            remaining: t.wcet,
            deadline: t.period,
            next_release: t.period,
        })
        .collect();
    let mut now = 0u64;
    while now < horizon {
        // Check deadline misses at `now` (jobs whose deadline passed with
        // work remaining are caught when we advance time below).
        let running = pick(&jobs);
        // Next event: earliest release, or completion of the running job.
        let next_release = jobs.iter().map(|j| j.next_release).min().unwrap_or(horizon);
        let step_end = match running {
            Some(r) => (now + jobs[r].remaining).min(next_release),
            None => next_release,
        }
        .min(horizon);
        let delta = step_end - now;
        if let Some(r) = running {
            // Deadline check: must finish by its deadline.
            if now + jobs[r].remaining > jobs[r].deadline && step_end > jobs[r].deadline {
                return SimOutcome::DeadlineMiss {
                    task: r,
                    time: jobs[r].deadline,
                };
            }
            jobs[r].remaining -= delta;
            if jobs[r].remaining == 0 && step_end > jobs[r].deadline {
                return SimOutcome::DeadlineMiss {
                    task: r,
                    time: jobs[r].deadline,
                };
            }
        }
        now = step_end;
        // Releases at `now`. A release doubles as the deadline of the
        // previous job (implicit deadlines), so leftover work is a miss.
        // Releases exactly at the horizon open the next (identical)
        // hyperperiod and are not simulated, but their deadline check still
        // applies.
        for (i, (j, t)) in jobs.iter_mut().zip(tasks).enumerate() {
            if j.next_release == now {
                if j.remaining > 0 {
                    return SimOutcome::DeadlineMiss {
                        task: i,
                        time: j.deadline,
                    };
                }
                if now < horizon {
                    j.remaining = t.wcet;
                    j.deadline = now + t.period;
                    j.next_release = now + t.period;
                } else {
                    j.next_release = u64::MAX;
                }
            }
        }
    }
    SimOutcome::AllDeadlinesMet
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_obs::Rng;

    fn tasks(spec: &[(u64, u64)]) -> Vec<PeriodicTask> {
        spec.iter()
            .enumerate()
            .map(|(i, &(c, p))| PeriodicTask::new(format!("t{i}"), c, p))
            .collect()
    }

    #[test]
    fn utilization_sums() {
        let ts = tasks(&[(1, 4), (1, 2)]);
        assert!((utilization(&ts) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn edf_exact_boundary() {
        assert!(edf_schedulable(&tasks(&[(1, 2), (1, 2)])));
        assert!(!edf_schedulable(&tasks(&[(1, 2), (1, 2), (1, 4)])));
    }

    #[test]
    fn hyperperiod_lcm() {
        assert_eq!(hyperperiod(&tasks(&[(1, 6), (1, 8), (1, 12)])), Some(24));
        assert_eq!(hyperperiod(&[]), Some(1));
    }

    #[test]
    fn ll_bound_values() {
        assert!((rms_ll_bound(1) - 1.0).abs() < 1e-12);
        assert!((rms_ll_bound(2) - 0.8284).abs() < 1e-3);
        assert!(rms_ll_bound(10) > 0.69 && rms_ll_bound(10) < 0.72);
    }

    #[test]
    fn rms_schedulable_above_ll_bound() {
        // Classic example: U ≈ 0.952 exceeds the LL bound for n = 3 but is
        // exactly schedulable.
        let ts = tasks(&[(40, 100), (40, 150), (100, 350)]);
        assert!(utilization(&ts) > rms_ll_bound(3));
        assert!(rms_schedulable(&ts));
        assert_eq!(simulate_rms(&ts), SimOutcome::AllDeadlinesMet);
    }

    #[test]
    fn rms_detects_unschedulable_set_with_u_below_one() {
        // EDF-schedulable (U = 29/30 ≤ 1) but not RMS-schedulable.
        let ts = tasks(&[(3, 6), (4, 10), (1, 15)]);
        assert!(edf_schedulable(&ts));
        assert!(!rms_schedulable(&ts));
        assert!(matches!(simulate_rms(&ts), SimOutcome::DeadlineMiss { .. }));
        assert_eq!(simulate_edf(&ts), SimOutcome::AllDeadlinesMet);
    }

    #[test]
    fn full_utilization_harmonic_is_rms_schedulable() {
        let ts = tasks(&[(1, 2), (1, 4), (2, 8)]);
        assert!((utilization(&ts) - 1.0).abs() < 1e-12);
        assert!(rms_schedulable(&ts));
        assert_eq!(simulate_rms(&ts), SimOutcome::AllDeadlinesMet);
    }

    #[test]
    fn simulators_agree_with_analysis_on_random_sets() {
        let mut rng = Rng::new(2024);
        for case in 0..200 {
            let n = rng.gen_range(1..=4u32);
            let ts: Vec<PeriodicTask> = (0..n)
                .map(|i| {
                    let p = rng.gen_range(2u64..=12);
                    let c = rng.gen_range(1u64..=p);
                    PeriodicTask::new(format!("t{i}"), c, p)
                })
                .collect();
            let edf_ok = edf_schedulable(&ts);
            let edf_sim = simulate_edf(&ts) == SimOutcome::AllDeadlinesMet;
            assert_eq!(edf_ok, edf_sim, "case {case} EDF mismatch: {ts:?}");
            let rms_ok = rms_schedulable(&ts);
            let rms_sim = simulate_rms(&ts) == SimOutcome::AllDeadlinesMet;
            assert_eq!(rms_ok, rms_sim, "case {case} RMS mismatch: {ts:?}");
        }
    }

    #[test]
    fn rms_implies_edf() {
        let mut rng = Rng::new(7);
        for _ in 0..100 {
            let n = rng.gen_range(1..=5u32);
            let ts: Vec<PeriodicTask> = (0..n)
                .map(|i| {
                    let p = rng.gen_range(2u64..=30);
                    let c = rng.gen_range(1u64..=p);
                    PeriodicTask::new(format!("t{i}"), c, p)
                })
                .collect();
            if rms_schedulable(&ts) {
                assert!(edf_schedulable(&ts), "{ts:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = PeriodicTask::new("bad", 1, 0);
    }
}

//! Property tests over `rtise-fuzz` generated 0-1 models: every solution
//! returned by the branch-and-bound solver must satisfy each constraint
//! row and report the exact objective value, and every infeasibility
//! claim must survive exhaustive enumeration.

use rtise_fuzz::gen::{self, IlpOptions};
use rtise_ilp::{Cmp, Model, Sense, SolveError};
use rtise_obs::Rng;

fn row_value(terms: &[(usize, i64)], x: &[bool]) -> i64 {
    terms.iter().map(|&(v, c)| if x[v] { c } else { 0 }).sum()
}

fn satisfies(m: &Model, x: &[bool]) -> bool {
    (0..m.num_rows()).all(|i| {
        let (terms, cmp, rhs) = m.row(i);
        let lhs = row_value(terms, x);
        match cmp {
            Cmp::Le => lhs <= rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Eq => lhs == rhs,
        }
    })
}

#[test]
fn seeded_models_solve_to_verified_optima_or_proven_infeasibility() {
    let opts = IlpOptions::default();
    for seed in 0..100u64 {
        let mut rng = Rng::new(0x11D0_0D1E ^ seed);
        let m = gen::ilp_model(&mut rng, &opts);
        match m.solve() {
            Ok(sol) => {
                assert_eq!(sol.values.len(), m.num_vars(), "seed {seed}");
                assert!(satisfies(&m, &sol.values), "seed {seed}: row violated");
                let obj: i64 = m
                    .objective()
                    .iter()
                    .enumerate()
                    .map(|(v, &c)| if sol.values[v] { c } else { 0 })
                    .sum();
                assert_eq!(obj, sol.objective, "seed {seed}: objective mismatch");
                // No enumerated assignment may beat the claimed optimum.
                for bits in 0..(1u32 << m.num_vars()) {
                    let x: Vec<bool> = (0..m.num_vars()).map(|v| bits >> v & 1 == 1).collect();
                    if !satisfies(&m, &x) {
                        continue;
                    }
                    let val: i64 = m
                        .objective()
                        .iter()
                        .enumerate()
                        .map(|(v, &c)| if x[v] { c } else { 0 })
                        .sum();
                    match m.sense() {
                        Sense::Minimize => assert!(val >= sol.objective, "seed {seed}"),
                        Sense::Maximize => assert!(val <= sol.objective, "seed {seed}"),
                    }
                }
            }
            Err(SolveError::Infeasible) => {
                for bits in 0..(1u32 << m.num_vars()) {
                    let x: Vec<bool> = (0..m.num_vars()).map(|v| bits >> v & 1 == 1).collect();
                    assert!(
                        !satisfies(&m, &x),
                        "seed {seed}: claimed infeasible but {x:?} satisfies all rows"
                    );
                }
            }
            Err(e) => panic!("seed {seed}: unexpected solver error {e:?}"),
        }
    }
}

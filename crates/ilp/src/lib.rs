//! # rtise-ilp
//!
//! An exact solver for 0–1 integer linear programs, built as the "optimal"
//! baseline the paper obtains from a commercial ILP solver (§7.3.1).
//!
//! The solver is a depth-first branch-and-bound over binary variables with
//! two prunings:
//!
//! * **feasibility** — for every constraint it tracks the best-case
//!   contribution still achievable from unassigned variables and abandons a
//!   branch as soon as a row can no longer be satisfied;
//! * **bounding** — the objective of any completion is bounded below by the
//!   current value plus the sum of all still-selectable negative
//!   coefficients; branches that cannot beat the incumbent are cut.
//!
//! All coefficients are `i64`; callers with rational data (e.g. processor
//! utilization) scale to a common denominator first, keeping arithmetic
//! exact. Problem sizes in this workspace are a few hundred binaries, well
//! within reach of an exact search.
//!
//! # Example
//!
//! A 0–1 knapsack: maximize value under a weight budget.
//!
//! ```
//! use rtise_ilp::{Model, Sense};
//!
//! let mut m = Model::new(3);
//! m.set_objective(Sense::Maximize, &[60, 100, 120]);
//! m.add_le(&[(0, 10), (1, 20), (2, 30)], 50);
//! let sol = m.solve()?;
//! assert_eq!(sol.objective, 220);
//! assert_eq!(sol.values, vec![false, true, true]);
//! # Ok::<(), rtise_ilp::SolveError>(())
//! ```

use rtise_trace::codes;
use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `lhs <= rhs`
    Le,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
}

#[derive(Debug, Clone)]
struct Row {
    terms: Vec<(usize, i64)>,
    cmp: Cmp,
    rhs: i64,
}

/// Errors from [`Model::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// No assignment satisfies all constraints.
    Infeasible,
    /// A constraint or objective referenced a variable outside the model.
    VarOutOfRange {
        /// The offending variable index.
        var: usize,
    },
    /// The node budget was exhausted before proving optimality.
    NodeLimit {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::VarOutOfRange { var } => write!(f, "variable {var} out of range"),
            SolveError::NodeLimit { limit } => {
                write!(f, "exceeded branch-and-bound node limit of {limit}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

/// Default cap on certificate events per solve. Experiment-scale solves
/// explore well under a million nodes; anything past the cap is counted
/// in [`IlpCertificate::dropped`] instead of growing without bound.
pub const DEFAULT_CERT_CAP: usize = 1 << 22;

/// Maximum frontier depth of the decomposed parallel search: phase 1
/// walks the tree serially down to the frontier and every surviving node
/// becomes an independent subtree for the worker pool. The actual depth
/// is sized from the engaged thread count
/// ([`rtise_obs::par::sized_frontier_depth`]) so small pools skip the
/// 64-subtree decomposition; stats, certificates, and traces are
/// byte-identical at any thread count *for a fixed depth* (pin one with
/// [`rtise_obs::par::set_frontier_for`] to compare across counts).
pub const PAR_FRONTIER_DEPTH: usize = 6;

/// One branch-and-bound node of the search, in preorder.
///
/// The events reference the *normalized* problem: minimize sense, every
/// row rewritten as `<=` (a `Ge` row negated, an `Eq` row split into its
/// original and negated halves, in declaration order), variables permuted
/// by [`IlpCertificate::order`]. A replayer re-deriving the same
/// normalization from the model can verify every decision without
/// trusting this solver's arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlpCertEvent {
    /// The node was abandoned because normalized row `row` cannot be
    /// satisfied by any completion (the row is the infeasibility witness).
    PruneInfeasible {
        /// Index into the normalized `<=` row system.
        row: u32,
    },
    /// The node was abandoned because no completion can beat the
    /// incumbent objective.
    PruneBound,
    /// A full assignment was reached (depth = number of variables); the
    /// replayer updates its own incumbent if the leaf improves on it.
    Leaf,
    /// The node branched on the next variable, trying `first` before
    /// `!first` — together the two children cover the whole subspace.
    Branch {
        /// The assignment explored first.
        first: bool,
    },
}

/// A replayable optimality certificate of one [`Model::solve_with_cert`]
/// call: the variable order plus one event per explored node, preorder.
///
/// `rtise-check`'s `bnb` analyzer replays the log against the model and
/// independently confirms that every prune was justified, that branching
/// covered the full space, and hence that the returned solution (or the
/// infeasibility verdict) is optimal. A truncated log (`dropped > 0`)
/// proves nothing beyond its prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IlpCertificate {
    /// `order[d]` is the original index of the variable branched at depth
    /// `d` — a permutation of `0..num_vars`.
    pub order: Vec<usize>,
    /// One event per explored node, in preorder.
    pub events: Vec<IlpCertEvent>,
    /// Events dropped past the recording cap (0 = complete log).
    pub dropped: u64,
}

/// An optimal solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Objective value in the model's original sense.
    pub objective: i64,
    /// Assignment of each binary variable.
    pub values: Vec<bool>,
    /// Branch-and-bound nodes explored (for running-time tables).
    pub nodes: u64,
}

/// Branch-and-bound statistics for one [`Model::solve_with_stats`] call.
///
/// Invariants: `nodes_explored >= 1` for any model with at least one
/// search node, and `nodes_explored >= pruned_bound + pruned_infeasible`
/// (every pruning event consumes the node it fires at).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IlpStats {
    /// Search-tree nodes entered.
    pub nodes_explored: u64,
    /// Nodes abandoned because a constraint row became unsatisfiable.
    pub pruned_infeasible: u64,
    /// Nodes abandoned because no completion could beat the incumbent.
    pub pruned_bound: u64,
    /// Times a new best (incumbent) solution was recorded.
    pub incumbent_updates: u64,
}

/// A 0–1 integer linear program.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Model {
    n: usize,
    objective: Vec<i64>,
    sense: Sense,
    rows: Vec<Row>,
    node_limit: u64,
}

impl Model {
    /// Creates a model with `n` binary variables, objective 0, sense
    /// minimize.
    pub fn new(n: usize) -> Self {
        Model {
            n,
            objective: vec![0; n],
            sense: Sense::Minimize,
            rows: Vec::new(),
            node_limit: u64::MAX,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.n
    }

    /// Number of constraints.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Read-only view of constraint row `i` as `(terms, cmp, rhs)`, for
    /// independent result certification (`rtise-check` re-evaluates every
    /// row against a claimed solution).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_rows()`.
    pub fn row(&self, i: usize) -> (&[(usize, i64)], Cmp, i64) {
        let r = &self.rows[i];
        (&r.terms, r.cmp, r.rhs)
    }

    /// The objective coefficients.
    pub fn objective(&self) -> &[i64] {
        &self.objective
    }

    /// The optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Sets the objective `sense (coeffs · x)`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len() != num_vars()`.
    pub fn set_objective(&mut self, sense: Sense, coeffs: &[i64]) {
        assert_eq!(coeffs.len(), self.n, "objective length mismatch");
        self.sense = sense;
        self.objective = coeffs.to_vec();
    }

    /// Adds `terms · x <= rhs`.
    pub fn add_le(&mut self, terms: &[(usize, i64)], rhs: i64) {
        self.rows.push(Row {
            terms: terms.to_vec(),
            cmp: Cmp::Le,
            rhs,
        });
    }

    /// Adds `terms · x >= rhs`.
    pub fn add_ge(&mut self, terms: &[(usize, i64)], rhs: i64) {
        self.rows.push(Row {
            terms: terms.to_vec(),
            cmp: Cmp::Ge,
            rhs,
        });
    }

    /// Adds `terms · x == rhs`.
    pub fn add_eq(&mut self, terms: &[(usize, i64)], rhs: i64) {
        self.rows.push(Row {
            terms: terms.to_vec(),
            cmp: Cmp::Eq,
            rhs,
        });
    }

    /// Caps the number of branch-and-bound nodes before
    /// [`SolveError::NodeLimit`] is returned.
    pub fn set_node_limit(&mut self, limit: u64) {
        self.node_limit = limit;
    }

    /// Solves the model to proven optimality.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when no assignment satisfies all rows,
    /// [`SolveError::VarOutOfRange`] on malformed input, or
    /// [`SolveError::NodeLimit`] if a limit was set and exhausted.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.solve_with_stats().map(|(s, _)| s)
    }

    /// Like [`Model::solve`], additionally returning branch-and-bound
    /// [`IlpStats`] and publishing `ilp.*` counters to the [`rtise_obs`]
    /// registry (also on error, so aborted searches stay observable).
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    pub fn solve_with_stats(&self) -> Result<(Solution, IlpStats), SolveError> {
        self.solve_observed(None)
    }

    /// Like [`Model::solve`], additionally emitting a replayable
    /// [`IlpCertificate`] of the branch-and-bound tree (capped at
    /// [`DEFAULT_CERT_CAP`] events). The certificate is returned even on
    /// [`SolveError::Infeasible`] — a complete log whose every prune is
    /// justified *is* the infeasibility proof.
    pub fn solve_with_cert(&self) -> (Result<Solution, SolveError>, IlpCertificate) {
        self.solve_with_cert_capped(DEFAULT_CERT_CAP)
    }

    /// [`Model::solve_with_cert`] with an explicit event cap; events past
    /// the cap are dropped and counted in [`IlpCertificate::dropped`].
    pub fn solve_with_cert_capped(
        &self,
        cap: usize,
    ) -> (Result<Solution, SolveError>, IlpCertificate) {
        let mut rec = CertRec {
            order: Vec::new(),
            log: rtise_obs::BoundedLog::new(cap),
        };
        let result = self.solve_observed(Some(&mut rec)).map(|(s, _)| s);
        let (events, dropped) = rec.log.into_parts();
        (
            result,
            IlpCertificate {
                order: rec.order,
                events,
                dropped,
            },
        )
    }

    /// Like [`Model::solve_with_stats`], but forcing the decomposed
    /// parallel search with `threads` workers regardless of the
    /// process-wide [`rtise_obs::par::threads`] knob. The frontier depth
    /// is sized from `threads`; results, stats, counters, traces, and
    /// certificates are byte-identical for every worker count *at a
    /// fixed depth* (pin one with [`rtise_obs::par::set_frontier_for`]
    /// to compare runs at different thread counts). Models the
    /// decomposition does not apply to (a node limit is set, or too few
    /// variables to have a frontier) fall back to the classic serial
    /// search.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    pub fn solve_par_with_stats(&self, threads: usize) -> Result<(Solution, IlpStats), SolveError> {
        self.solve_observed_threads(threads.max(1), None)
    }

    /// Like [`Model::solve_with_cert`], but forcing the decomposed
    /// parallel search with `threads` workers; see
    /// [`Model::solve_par_with_stats`] for the determinism contract.
    pub fn solve_par_with_cert(
        &self,
        threads: usize,
    ) -> (Result<Solution, SolveError>, IlpCertificate) {
        self.solve_par_with_cert_capped(threads, DEFAULT_CERT_CAP)
    }

    /// [`Model::solve_par_with_cert`] with an explicit event cap.
    pub fn solve_par_with_cert_capped(
        &self,
        threads: usize,
        cap: usize,
    ) -> (Result<Solution, SolveError>, IlpCertificate) {
        let mut rec = CertRec {
            order: Vec::new(),
            log: rtise_obs::BoundedLog::new(cap),
        };
        let result = self
            .solve_observed_threads(threads.max(1), Some(&mut rec))
            .map(|(s, _)| s);
        let (events, dropped) = rec.log.into_parts();
        (
            result,
            IlpCertificate {
                order: rec.order,
                events,
                dropped,
            },
        )
    }

    /// [`Model::solve_par_with_cert`] at an explicit frontier depth,
    /// bypassing the thread-count sizing — the determinism-contract test
    /// hook (identity across thread counts holds per depth).
    #[doc(hidden)]
    pub fn solve_par_with_cert_at_depth(
        &self,
        threads: usize,
        depth: usize,
    ) -> (Result<Solution, SolveError>, IlpCertificate) {
        let mut rec = CertRec {
            order: Vec::new(),
            log: rtise_obs::BoundedLog::new(DEFAULT_CERT_CAP),
        };
        let result = self
            .solve_observed_at_depth(threads.max(1), depth, Some(&mut rec))
            .map(|(s, _)| s);
        let (events, dropped) = rec.log.into_parts();
        (
            result,
            IlpCertificate {
                order: rec.order,
                events,
                dropped,
            },
        )
    }

    /// Whether the decomposed parallel search applies: the tree must be
    /// deeper than the frontier, and no node limit may be set (the limit
    /// counts nodes in serial traversal order, a property the
    /// decomposition cannot honor).
    fn par_applicable(&self, depth: usize) -> bool {
        self.node_limit == u64::MAX && self.n > depth
    }

    fn solve_observed(
        &self,
        cert: Option<&mut CertRec>,
    ) -> Result<(Solution, IlpStats), SolveError> {
        self.solve_observed_threads(rtise_obs::par::threads(), cert)
    }

    fn solve_observed_threads(
        &self,
        threads: usize,
        cert: Option<&mut CertRec>,
    ) -> Result<(Solution, IlpStats), SolveError> {
        let depth = rtise_obs::par::sized_frontier_depth(PAR_FRONTIER_DEPTH, threads);
        self.solve_observed_at_depth(threads, depth, cert)
    }

    fn solve_observed_at_depth(
        &self,
        threads: usize,
        depth: usize,
        cert: Option<&mut CertRec>,
    ) -> Result<(Solution, IlpStats), SolveError> {
        let span = rtise_trace::span(codes::ILP_SOLVE);
        let (result, stats, depth_hist) = if threads > 0 && self.par_applicable(depth) {
            self.solve_par_inner(threads, depth, cert)
        } else {
            self.solve_inner(cert)
        };
        rtise_obs::record("ilp.solves", 1);
        rtise_obs::record("ilp.nodes_explored", stats.nodes_explored);
        rtise_obs::record("ilp.pruned_infeasible", stats.pruned_infeasible);
        rtise_obs::record("ilp.pruned_bound", stats.pruned_bound);
        rtise_obs::record("ilp.incumbent_updates", stats.incumbent_updates);
        rtise_obs::observe_hist("ilp.depth", &depth_hist);
        rtise_trace::summary(
            codes::ILP_SUMMARY,
            &[
                ("nodes", stats.nodes_explored),
                ("pruned_infeasible", stats.pruned_infeasible),
                ("pruned_bound", stats.pruned_bound),
                ("incumbents", stats.incumbent_updates),
            ],
        );
        drop(span);
        result.map(|s| (s, stats))
    }

    /// Like [`Model::solve_with_stats`] but using the original dense
    /// search that rescans every row at every node. Kept callable so
    /// differential tests and benchmarks can compare the sparse-column
    /// search against it; does not publish counters.
    ///
    /// # Errors
    ///
    /// Same as [`Model::solve`].
    #[doc(hidden)]
    pub fn solve_reference_with_stats(&self) -> Result<(Solution, IlpStats), SolveError> {
        let prep = self.prepare()?;
        let mut search = SearchReference {
            n: self.n,
            m: prep.rhs.len(),
            coeff: &prep.coeff,
            min_rem: &prep.min_rem,
            obj: &prep.obj_ordered,
            obj_min_rem: &prep.obj_min_rem,
            rhs: &prep.rhs,
            lhs: vec![0; prep.rhs.len()],
            assign: vec![false; self.n],
            best: None,
            stats: IlpStats::default(),
            node_limit: self.node_limit,
        };
        search.dfs(0, 0)?;
        let stats = search.stats;
        self.extract(&prep, search.best, stats)
            .map(|sol| (sol, stats))
    }

    fn solve_inner(
        &self,
        cert: Option<&mut CertRec>,
    ) -> (Result<Solution, SolveError>, IlpStats, rtise_obs::Hist) {
        let prep = match self.prepare() {
            Ok(p) => p,
            Err(e) => return (Err(e), IlpStats::default(), rtise_obs::Hist::new()),
        };
        let cert = cert.map(|rec| {
            rec.order = prep.order.clone();
            &mut rec.log
        });
        let m = prep.rhs.len();
        // Sparse columns: the rows each ordered variable actually touches.
        // Branching and the violated-row count only walk these.
        let mut cols: Vec<Vec<(usize, i64)>> = vec![Vec::new(); self.n];
        for (ri, row) in prep.coeff.iter().enumerate() {
            for (d, &c) in row.iter().enumerate() {
                if c != 0 {
                    cols[d].push((ri, c));
                }
            }
        }
        // Rows already unsatisfiable at the root.
        let violated = (0..m)
            .filter(|&ri| prep.min_rem[ri][0] > prep.rhs[ri])
            .count();
        let mut search = Search {
            n: self.n,
            cols: &cols,
            min_rem: &prep.min_rem,
            obj: &prep.obj_ordered,
            obj_min_rem: &prep.obj_min_rem,
            rhs: &prep.rhs,
            lhs: vec![0; m],
            violated,
            assign: vec![false; self.n],
            best: None,
            stats: IlpStats::default(),
            node_limit: self.node_limit,
            depth_hist: rtise_obs::Hist::new(),
            cert,
            frontier: None,
        };
        if let Err(e) = search.dfs(0, 0) {
            return (Err(e), search.stats, search.depth_hist);
        }
        let stats = search.stats;
        (
            self.extract(&prep, search.best, stats),
            stats,
            search.depth_hist,
        )
    }

    /// The decomposed parallel search. Phase 1 runs the classic search
    /// serially but truncated at [`PAR_FRONTIER_DEPTH`]: internal nodes
    /// record stats/certificate/trace events exactly as before, while
    /// nodes *reaching* the frontier are captured (uncounted, eventless)
    /// as independent subtree roots. Phase 2 farms the subtrees out via
    /// [`rtise_obs::par::run_ordered`]; each is searched with its own
    /// stats, histogram, certificate log, and virtual-clock trace scope,
    /// seeded with the best incumbent among the subtree's deterministic
    /// completed-prefix window. The merge is a fixed preorder stitch:
    ///
    /// * stats summed and histograms merged in subtree index order after
    ///   phase 1's own;
    /// * certificate events spliced at each subtree's recorded phase-1
    ///   position, so the stitched log is the preorder walk of a valid
    ///   (differently-pruned but still optimality-proving) search tree
    ///   that `rtise_check::bnb` replays without modification — a prune
    ///   justified against a subtree's *weaker* local incumbent is
    ///   automatically justified against the replayer's stronger one;
    /// * captured trace events replayed into the ambient scopes in
    ///   subtree index order.
    ///
    /// Incumbents fold with the same strict-improvement rule as the
    /// search itself, keeping the preorder-earliest attainer among ties,
    /// so the merged solution equals the replayer's final incumbent.
    fn solve_par_inner(
        &self,
        threads: usize,
        depth: usize,
        cert: Option<&mut CertRec>,
    ) -> (Result<Solution, SolveError>, IlpStats, rtise_obs::Hist) {
        let prep = match self.prepare() {
            Ok(p) => p,
            Err(e) => return (Err(e), IlpStats::default(), rtise_obs::Hist::new()),
        };
        let m = prep.rhs.len();
        let mut cols: Vec<Vec<(usize, i64)>> = vec![Vec::new(); self.n];
        for (ri, row) in prep.coeff.iter().enumerate() {
            for (d, &c) in row.iter().enumerate() {
                if c != 0 {
                    cols[d].push((ri, c));
                }
            }
        }
        let violated = (0..m)
            .filter(|&ri| prep.min_rem[ri][0] > prep.rhs[ri])
            .count();
        let want_cert = cert.is_some();
        let cap = cert.as_ref().map_or(0, |rec| rec.log.cap());

        // Phase 1: serial walk truncated at the frontier. The log is
        // physically bounded by the frontier size, so no cap is needed.
        let mut frontier: Vec<FrontierNode> = Vec::new();
        let mut ph_log = want_cert.then(|| rtise_obs::BoundedLog::new(usize::MAX));
        let (ph_stats, ph_hist) = {
            let mut search = Search {
                n: self.n,
                cols: &cols,
                min_rem: &prep.min_rem,
                obj: &prep.obj_ordered,
                obj_min_rem: &prep.obj_min_rem,
                rhs: &prep.rhs,
                lhs: vec![0; m],
                violated,
                assign: vec![false; self.n],
                best: None,
                stats: IlpStats::default(),
                node_limit: u64::MAX,
                depth_hist: rtise_obs::Hist::new(),
                cert: ph_log.as_mut(),
                frontier: Some((depth, &mut frontier)),
            };
            search
                .dfs(0, 0)
                .expect("decomposed search never sets a node limit");
            (search.stats, search.depth_hist)
        };
        let ph_events = ph_log.map_or(Vec::new(), |log| log.into_parts().0);

        // Phase 2: independent subtree searches on the deterministic
        // scheduler. Nothing in here touches the counter registry or the
        // ambient trace scopes — everything is merged by the caller.
        //
        // Subtree 0 runs serially first (warm start): it is the preorder-
        // earliest region of the tree, so its best leaf both seeds every
        // later subtree — without it, the first `WINDOW` subtrees would
        // search incumbent-less and can explosively overexpand — and is a
        // valid justification for any later prune under the replayer's
        // preorder incumbent.
        let trace_on = rtise_trace::enabled();
        let run_subtree = |node: &FrontierNode, seed: Option<(i64, Vec<bool>)>| {
            let scope = trace_on.then(|| rtise_trace::TraceScope::new(rtise_trace::Clock::Virtual));
            let mut log = want_cert.then(|| rtise_obs::BoundedLog::new(cap));
            let mut search = Search {
                n: self.n,
                cols: &cols,
                min_rem: &prep.min_rem,
                obj: &prep.obj_ordered,
                obj_min_rem: &prep.obj_min_rem,
                rhs: &prep.rhs,
                lhs: node.lhs.clone(),
                violated: node.violated,
                assign: node.assign.clone(),
                best: seed,
                stats: IlpStats::default(),
                node_limit: u64::MAX,
                depth_hist: rtise_obs::Hist::new(),
                cert: log.as_mut(),
                frontier: None,
            };
            {
                // Detach from any ambient scope first (with one
                // worker the closure runs on the caller's thread,
                // which has the caller's scopes entered) so subtree
                // events reach the ambient trace exactly once, via
                // the deterministic replay below.
                let _isolated = trace_on.then(rtise_trace::isolate);
                let _active = scope.as_ref().map(rtise_trace::TraceScope::enter);
                search
                    .dfs(depth, node.cur_obj)
                    .expect("decomposed search never sets a node limit");
            }
            let Search {
                best,
                stats,
                depth_hist,
                ..
            } = search;
            let (events, cert_dropped) =
                log.map_or((Vec::new(), 0), rtise_obs::BoundedLog::into_parts);
            SubResult {
                best,
                stats,
                hist: depth_hist,
                events,
                cert_dropped,
                trace: scope
                    .as_ref()
                    .map_or_else(Vec::new, rtise_trace::TraceScope::events),
                trace_dropped: scope.as_ref().map_or(0, rtise_trace::TraceScope::dropped),
            }
        };
        let first = frontier.first().map(|node| run_subtree(node, None));
        let rest: Vec<SubResult> = rtise_obs::par::run_ordered(
            frontier.get(1..).unwrap_or(&[]),
            threads,
            |_, node, prefix: rtise_obs::par::Completed<'_, SubResult>| {
                let mut seed: Option<(i64, Vec<bool>)> = None;
                for r in std::iter::once(first.as_ref().expect("frontier is non-empty"))
                    .chain(prefix.iter())
                {
                    if let Some((v, a)) = &r.best {
                        if seed.as_ref().is_none_or(|(s, _)| *v < *s) {
                            seed = Some((*v, a.clone()));
                        }
                    }
                }
                run_subtree(node, seed)
            },
        );
        let results: Vec<SubResult> = first.into_iter().chain(rest).collect();

        // Merge, all in subtree index order.
        let mut stats = ph_stats;
        let mut hist = ph_hist;
        let mut best: Option<(i64, Vec<bool>)> = None;
        for r in &results {
            stats.nodes_explored += r.stats.nodes_explored;
            stats.pruned_infeasible += r.stats.pruned_infeasible;
            stats.pruned_bound += r.stats.pruned_bound;
            stats.incumbent_updates += r.stats.incumbent_updates;
            hist.merge(&r.hist);
            if let Some((v, a)) = &r.best {
                if best.as_ref().is_none_or(|(b, _)| *v < *b) {
                    best = Some((*v, a.clone()));
                }
            }
        }
        if trace_on {
            for r in &results {
                rtise_trace::replay(&r.trace, r.trace_dropped);
            }
        }
        if let Some(rec) = cert {
            rec.order = prep.order.clone();
            let mut prev = 0;
            for (node, r) in frontier.iter().zip(&results) {
                for &e in &ph_events[prev..node.cert_pos] {
                    rec.log.push(e);
                }
                prev = node.cert_pos;
                for &e in &r.events {
                    rec.log.push(e);
                }
                rec.log.add_dropped(r.cert_dropped);
            }
            for &e in &ph_events[prev..] {
                rec.log.push(e);
            }
        }
        (self.extract(&prep, best, stats), stats, hist)
    }

    /// Normalizes the model (minimize, all rows `<=`), orders variables by
    /// descending |objective|, and precomputes the per-depth suffix minima
    /// both searches prune with.
    fn prepare(&self) -> Result<Prepared, SolveError> {
        for (v, _) in self.rows.iter().flat_map(|r| r.terms.iter()) {
            if *v >= self.n {
                return Err(SolveError::VarOutOfRange { var: *v });
            }
        }

        // Normalize to minimize, all rows as `<=`.
        let obj: Vec<i64> = match self.sense {
            Sense::Minimize => self.objective.clone(),
            Sense::Maximize => self.objective.iter().map(|c| -c).collect(),
        };
        let mut le_rows: Vec<(Vec<(usize, i64)>, i64)> = Vec::new();
        for r in &self.rows {
            match r.cmp {
                Cmp::Le => le_rows.push((r.terms.clone(), r.rhs)),
                Cmp::Ge => le_rows.push((r.terms.iter().map(|&(v, c)| (v, -c)).collect(), -r.rhs)),
                Cmp::Eq => {
                    le_rows.push((r.terms.clone(), r.rhs));
                    le_rows.push((r.terms.iter().map(|&(v, c)| (v, -c)).collect(), -r.rhs));
                }
            }
        }

        // Variable order: largest |objective| first to find good incumbents
        // early.
        let mut order: Vec<usize> = (0..self.n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(obj[v].abs()));
        let mut pos = vec![0usize; self.n];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }

        // Dense coefficient matrix per row (problems here are small), and
        // suffix-minimum achievable contribution per (row, depth).
        let m = le_rows.len();
        let mut coeff = vec![vec![0i64; self.n]; m];
        for (ri, (terms, _)) in le_rows.iter().enumerate() {
            for &(v, c) in terms {
                coeff[ri][pos[v]] += c;
            }
        }
        let mut min_rem = vec![vec![0i64; self.n + 1]; m];
        for (ri, row) in coeff.iter().enumerate() {
            for d in (0..self.n).rev() {
                min_rem[ri][d] = min_rem[ri][d + 1] + row[d].min(0);
            }
        }
        let obj_ordered: Vec<i64> = order.iter().map(|&v| obj[v]).collect();
        let mut obj_min_rem = vec![0i64; self.n + 1];
        for d in (0..self.n).rev() {
            obj_min_rem[d] = obj_min_rem[d + 1] + obj_ordered[d].min(0);
        }
        let rhs: Vec<i64> = le_rows.iter().map(|(_, r)| *r).collect();
        Ok(Prepared {
            order,
            coeff,
            min_rem,
            obj_ordered,
            obj_min_rem,
            rhs,
        })
    }

    /// Maps an ordered incumbent back to original variable order and sense.
    fn extract(
        &self,
        prep: &Prepared,
        best: Option<(i64, Vec<bool>)>,
        stats: IlpStats,
    ) -> Result<Solution, SolveError> {
        let Some((obj_val, ordered_assign)) = best else {
            return Err(SolveError::Infeasible);
        };
        let mut values = vec![false; self.n];
        for (d, &v) in prep.order.iter().enumerate() {
            values[v] = ordered_assign[d];
        }
        let objective = match self.sense {
            Sense::Minimize => obj_val,
            Sense::Maximize => -obj_val,
        };
        Ok(Solution {
            objective,
            values,
            nodes: stats.nodes_explored,
        })
    }
}

/// In-flight certificate state while a recording solve runs.
struct CertRec {
    order: Vec<usize>,
    log: rtise_obs::BoundedLog<IlpCertEvent>,
}

/// Output of [`Model::prepare`]: the normalized, variable-ordered problem.
struct Prepared {
    order: Vec<usize>,
    coeff: Vec<Vec<i64>>,
    min_rem: Vec<Vec<i64>>,
    obj_ordered: Vec<i64>,
    obj_min_rem: Vec<i64>,
    rhs: Vec<i64>,
}

/// The sparse-column search. A row's feasibility status
/// (`lhs + min_rem[depth] > rhs`) can only change when the branching
/// variable's column touches it — `lhs` moves with the chosen value and
/// `min_rem[depth+1]` differs from `min_rem[depth]` only for nonzero
/// coefficients — so `violated` is maintained incrementally over the
/// column and the per-node feasibility check is O(1). Prune decisions,
/// and therefore the search tree and stats, are identical to
/// [`SearchReference`] (debug builds assert the count at every node).
struct Search<'a> {
    n: usize,
    cols: &'a [Vec<(usize, i64)>],
    min_rem: &'a [Vec<i64>],
    obj: &'a [i64],
    obj_min_rem: &'a [i64],
    rhs: &'a [i64],
    lhs: Vec<i64>,
    violated: usize,
    assign: Vec<bool>,
    best: Option<(i64, Vec<bool>)>,
    stats: IlpStats,
    node_limit: u64,
    /// Depth of every expanded node, published as the `ilp.depth`
    /// histogram after the solve. Kept outside [`IlpStats`] so the
    /// differential test against [`SearchReference`] stays a plain
    /// tuple comparison.
    depth_hist: rtise_obs::Hist,
    /// Certificate event log, when the caller asked for one. Recording
    /// never changes prune decisions — the witness-row scan on an
    /// infeasible prune is the only extra work.
    cert: Option<&'a mut rtise_obs::BoundedLog<IlpCertEvent>>,
    /// Phase-1 mode of the decomposed parallel search: nodes reaching
    /// the given depth are captured (uncounted, eventless) instead of
    /// expanded; their subtrees run on the worker pool.
    frontier: Option<(usize, &'a mut Vec<FrontierNode>)>,
}

/// A phase-1 node captured at the parallel frontier: everything a worker
/// needs to resume the search from that subtree root, plus where in the
/// phase-1 certificate log its events must be spliced back in.
struct FrontierNode {
    cur_obj: i64,
    violated: usize,
    lhs: Vec<i64>,
    assign: Vec<bool>,
    cert_pos: usize,
}

/// Everything one subtree search produced, merged deterministically by
/// the caller in subtree index order.
struct SubResult {
    best: Option<(i64, Vec<bool>)>,
    stats: IlpStats,
    hist: rtise_obs::Hist,
    events: Vec<IlpCertEvent>,
    cert_dropped: u64,
    trace: Vec<rtise_trace::Event>,
    trace_dropped: u64,
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize, cur_obj: i64) -> Result<(), SolveError> {
        if let Some((fd, nodes)) = &mut self.frontier {
            if depth == *fd {
                nodes.push(FrontierNode {
                    cur_obj,
                    violated: self.violated,
                    lhs: self.lhs.clone(),
                    assign: self.assign.clone(),
                    cert_pos: self.cert.as_ref().map_or(0, |c| c.len()),
                });
                return Ok(());
            }
        }
        self.stats.nodes_explored += 1;
        self.depth_hist.observe(depth as u64);
        if self.stats.nodes_explored > self.node_limit {
            return Err(SolveError::NodeLimit {
                limit: self.node_limit,
            });
        }
        #[cfg(debug_assertions)]
        {
            let recount = (0..self.min_rem.len())
                .filter(|&ri| self.lhs[ri] + self.min_rem[ri][depth] > self.rhs[ri])
                .count();
            debug_assert_eq!(
                self.violated, recount,
                "incremental violated-row count diverged at depth {depth}"
            );
        }
        // Feasibility pruning.
        if self.violated > 0 {
            self.stats.pruned_infeasible += 1;
            if let Some(cert) = &mut self.cert {
                let row = (0..self.min_rem.len())
                    .find(|&ri| self.lhs[ri] + self.min_rem[ri][depth] > self.rhs[ri])
                    .expect("positive violated count implies a violated row");
                cert.push(IlpCertEvent::PruneInfeasible { row: row as u32 });
            }
            if rtise_trace::enabled() {
                rtise_trace::instant_with(codes::ILP_PRUNE_INFEASIBLE, &[("depth", depth as u64)]);
            }
            return Ok(());
        }
        // Objective bound.
        if let Some((best, _)) = &self.best {
            if cur_obj + self.obj_min_rem[depth] >= *best {
                self.stats.pruned_bound += 1;
                if let Some(cert) = &mut self.cert {
                    cert.push(IlpCertEvent::PruneBound);
                }
                if rtise_trace::enabled() {
                    rtise_trace::instant_with(codes::ILP_PRUNE_BOUND, &[("depth", depth as u64)]);
                }
                return Ok(());
            }
        }
        if depth == self.n {
            if let Some(cert) = &mut self.cert {
                cert.push(IlpCertEvent::Leaf);
            }
            if self.best.as_ref().is_none_or(|(b, _)| cur_obj < *b) {
                self.best = Some((cur_obj, self.assign.clone()));
                self.stats.incumbent_updates += 1;
                if rtise_trace::enabled() {
                    rtise_trace::instant_with(codes::ILP_INCUMBENT, &[("depth", depth as u64)]);
                }
            }
            return Ok(());
        }
        // Branch on the objective-improving value first.
        let branch_order: [bool; 2] = if self.obj[depth] < 0 {
            [true, false]
        } else {
            [false, true]
        };
        if let Some(cert) = &mut self.cert {
            cert.push(IlpCertEvent::Branch {
                first: branch_order[0],
            });
        }
        for val in branch_order {
            self.assign[depth] = val;
            self.cross(depth, val, true);
            let next_obj = cur_obj + if val { self.obj[depth] } else { 0 };
            self.dfs(depth + 1, next_obj)?;
            self.cross(depth, val, false);
        }
        self.assign[depth] = false;
        Ok(())
    }

    /// Moves the violated-row count (and, for `val = true`, `lhs`) across
    /// the `depth → depth+1` boundary (`down`) or back (`!down`), touching
    /// only the branching variable's column.
    fn cross(&mut self, depth: usize, val: bool, down: bool) {
        let (from, to) = if down {
            (depth, depth + 1)
        } else {
            (depth + 1, depth)
        };
        for &(ri, c) in &self.cols[depth] {
            let was = self.lhs[ri] + self.min_rem[ri][from] > self.rhs[ri];
            if val {
                if down {
                    self.lhs[ri] += c;
                } else {
                    self.lhs[ri] -= c;
                }
            }
            let now = self.lhs[ri] + self.min_rem[ri][to] > self.rhs[ri];
            match (was, now) {
                (false, true) => self.violated += 1,
                (true, false) => self.violated -= 1,
                _ => {}
            }
        }
    }
}

/// The original dense search: rescans every row for feasibility and walks
/// every row on each branch update.
struct SearchReference<'a> {
    n: usize,
    m: usize,
    coeff: &'a [Vec<i64>],
    min_rem: &'a [Vec<i64>],
    obj: &'a [i64],
    obj_min_rem: &'a [i64],
    rhs: &'a [i64],
    lhs: Vec<i64>,
    assign: Vec<bool>,
    best: Option<(i64, Vec<bool>)>,
    stats: IlpStats,
    node_limit: u64,
}

impl SearchReference<'_> {
    fn dfs(&mut self, depth: usize, cur_obj: i64) -> Result<(), SolveError> {
        self.stats.nodes_explored += 1;
        if self.stats.nodes_explored > self.node_limit {
            return Err(SolveError::NodeLimit {
                limit: self.node_limit,
            });
        }
        // Feasibility pruning.
        for ri in 0..self.m {
            if self.lhs[ri] + self.min_rem[ri][depth] > self.rhs[ri] {
                self.stats.pruned_infeasible += 1;
                return Ok(());
            }
        }
        // Objective bound.
        if let Some((best, _)) = &self.best {
            if cur_obj + self.obj_min_rem[depth] >= *best {
                self.stats.pruned_bound += 1;
                return Ok(());
            }
        }
        if depth == self.n {
            if self.best.as_ref().is_none_or(|(b, _)| cur_obj < *b) {
                self.best = Some((cur_obj, self.assign.clone()));
                self.stats.incumbent_updates += 1;
            }
            return Ok(());
        }
        // Branch on the objective-improving value first.
        let branch_order: [bool; 2] = if self.obj[depth] < 0 {
            [true, false]
        } else {
            [false, true]
        };
        for val in branch_order {
            self.assign[depth] = val;
            if val {
                for ri in 0..self.m {
                    self.lhs[ri] += self.coeff[ri][depth];
                }
            }
            let next_obj = cur_obj + if val { self.obj[depth] } else { 0 };
            self.dfs(depth + 1, next_obj)?;
            if val {
                for ri in 0..self.m {
                    self.lhs[ri] -= self.coeff[ri][depth];
                }
            }
        }
        self.assign[depth] = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_obs::Rng;

    /// Exhaustive reference solver for small models.
    fn brute(m: &Model) -> Option<(i64, Vec<bool>)> {
        let n = m.n;
        let mut best: Option<(i64, Vec<bool>)> = None;
        for mask in 0u64..(1 << n) {
            let x: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            let ok = m.rows.iter().all(|r| {
                let lhs: i64 = r.terms.iter().map(|&(v, c)| if x[v] { c } else { 0 }).sum();
                match r.cmp {
                    Cmp::Le => lhs <= r.rhs,
                    Cmp::Ge => lhs >= r.rhs,
                    Cmp::Eq => lhs == r.rhs,
                }
            });
            if !ok {
                continue;
            }
            let obj: i64 = (0..n).map(|i| if x[i] { m.objective[i] } else { 0 }).sum();
            let better = match (&best, m.sense) {
                (None, _) => true,
                (Some((b, _)), Sense::Minimize) => obj < *b,
                (Some((b, _)), Sense::Maximize) => obj > *b,
            };
            if better {
                best = Some((obj, x));
            }
        }
        best
    }

    #[test]
    fn knapsack_maximize() {
        let mut m = Model::new(4);
        m.set_objective(Sense::Maximize, &[10, 40, 30, 50]);
        m.add_le(&[(0, 5), (1, 4), (2, 6), (3, 3)], 10);
        let s = m.solve().expect("feasible");
        assert_eq!(s.objective, 90);
        assert_eq!(s.values, vec![false, true, false, true]);
    }

    #[test]
    fn equality_constraints() {
        // Exactly one of x0..x2, minimize cost.
        let mut m = Model::new(3);
        m.set_objective(Sense::Minimize, &[5, 3, 9]);
        m.add_eq(&[(0, 1), (1, 1), (2, 1)], 1);
        let s = m.solve().expect("feasible");
        assert_eq!(s.objective, 3);
        assert_eq!(s.values, vec![false, true, false]);
    }

    #[test]
    fn ge_constraints() {
        let mut m = Model::new(3);
        m.set_objective(Sense::Minimize, &[4, 7, 2]);
        m.add_ge(&[(0, 1), (1, 1), (2, 1)], 2);
        let s = m.solve().expect("feasible");
        assert_eq!(s.objective, 6); // x0 + x2
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(2);
        m.add_ge(&[(0, 1), (1, 1)], 3);
        assert_eq!(m.solve(), Err(SolveError::Infeasible));
    }

    #[test]
    fn empty_model_is_trivially_optimal() {
        let m = Model::new(0);
        let s = m.solve().expect("trivial");
        assert_eq!(s.objective, 0);
        assert!(s.values.is_empty());
    }

    #[test]
    fn negative_objective_prefers_ones() {
        let mut m = Model::new(2);
        m.set_objective(Sense::Minimize, &[-5, -3]);
        let s = m.solve().expect("feasible");
        assert_eq!(s.objective, -8);
        assert_eq!(s.values, vec![true, true]);
    }

    #[test]
    fn var_out_of_range_reported() {
        let mut m = Model::new(2);
        m.add_le(&[(5, 1)], 1);
        assert_eq!(m.solve(), Err(SolveError::VarOutOfRange { var: 5 }));
    }

    #[test]
    fn node_limit_enforced() {
        let mut m = Model::new(20);
        let obj: Vec<i64> = (0..20).map(|i| -(i as i64)).collect();
        m.set_objective(Sense::Minimize, &obj);
        // Awkward parity constraint forces exploration.
        let terms: Vec<(usize, i64)> = (0..20).map(|i| (i, 1)).collect();
        m.add_eq(&terms, 10);
        m.set_node_limit(5);
        assert_eq!(m.solve(), Err(SolveError::NodeLimit { limit: 5 }));
    }

    #[test]
    fn duplicate_terms_accumulate() {
        // x0 + x0 <= 1 forbids x0 = 1.
        let mut m = Model::new(1);
        m.set_objective(Sense::Maximize, &[1]);
        m.add_le(&[(0, 1), (0, 1)], 1);
        let s = m.solve().expect("feasible");
        assert_eq!(s.objective, 0);
    }

    /// Builds the seeded random instance shared by the randomized tests.
    fn random_model(rng: &mut Rng) -> Model {
        let n = rng.gen_range(1..=10usize);
        let mut m = Model::new(n);
        let sense = if rng.gen_bool(0.5) {
            Sense::Minimize
        } else {
            Sense::Maximize
        };
        let obj: Vec<i64> = (0..n).map(|_| rng.gen_range(-20..=20i64)).collect();
        m.set_objective(sense, &obj);
        for _ in 0..rng.gen_range(0..4u32) {
            let mut terms: Vec<(usize, i64)> = Vec::new();
            for v in 0..n {
                if rng.gen_bool(0.7) {
                    terms.push((v, rng.gen_range(-10..=10i64)));
                }
            }
            let rhs = rng.gen_range(-10..=15i64);
            match rng.gen_range(0..3u32) {
                0 => m.add_le(&terms, rhs),
                1 => m.add_ge(&terms, rhs),
                _ => m.add_eq(&terms, rhs),
            }
        }
        m
    }

    #[test]
    fn random_instances_match_brute_force() {
        let mut rng = Rng::new(0x5eed);
        for case in 0..60 {
            let m = random_model(&mut rng);
            let want = brute(&m);
            match (m.solve(), want) {
                (Ok(s), Some((obj, _))) => {
                    assert_eq!(s.objective, obj, "case {case}: objective mismatch")
                }
                (Err(SolveError::Infeasible), None) => {}
                (got, want) => panic!("case {case}: got {got:?}, brute {want:?}"),
            }
        }
    }

    /// Any returned solution satisfies all constraints.
    #[test]
    fn solutions_are_feasible() {
        for seed in 0u64..500 {
            let mut rng = Rng::new(seed);
            let n = rng.gen_range(1..=8usize);
            let mut m = Model::new(n);
            let obj: Vec<i64> = (0..n).map(|_| rng.gen_range(-9..=9i64)).collect();
            m.set_objective(Sense::Minimize, &obj);
            let terms: Vec<(usize, i64)> = (0..n).map(|v| (v, rng.gen_range(-5..=5i64))).collect();
            m.add_le(&terms, rng.gen_range(0..=10i64));
            if let Ok(s) = m.solve() {
                for r in &m.rows {
                    let lhs: i64 = r
                        .terms
                        .iter()
                        .map(|&(v, c)| if s.values[v] { c } else { 0 })
                        .sum();
                    assert!(lhs <= r.rhs, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn stats_invariants_hold_on_random_instances() {
        let mut rng = Rng::new(0xabcd);
        for case in 0..60 {
            let m = random_model(&mut rng);
            let plain = m.solve();
            match m.solve_with_stats() {
                Ok((s, stats)) => {
                    // The optimum is identical with and without stats.
                    assert_eq!(plain.expect("plain agrees"), s, "case {case}");
                    assert!(stats.nodes_explored >= 1, "case {case}");
                    assert!(
                        stats.nodes_explored >= stats.pruned_bound + stats.pruned_infeasible,
                        "case {case}: {stats:?}"
                    );
                    assert!(stats.incumbent_updates >= 1, "case {case}");
                    assert_eq!(s.nodes, stats.nodes_explored, "case {case}");
                }
                Err(e) => assert_eq!(plain, Err(e), "case {case}"),
            }
        }
    }

    #[test]
    fn sparse_search_matches_the_dense_reference_exactly() {
        let mut rng = Rng::new(0x11f);
        for case in 0..120 {
            let m = random_model(&mut rng);
            // Identical solutions AND identical node/prune counts: the
            // incremental violated-row count must not change the tree.
            assert_eq!(
                m.solve_with_stats(),
                m.solve_reference_with_stats(),
                "case {case}"
            );
        }
        // The node-limit abort fires at the same node too.
        let mut m = Model::new(20);
        let obj: Vec<i64> = (0..20).map(|i| -(i as i64)).collect();
        m.set_objective(Sense::Minimize, &obj);
        let terms: Vec<(usize, i64)> = (0..20).map(|i| (i, 1)).collect();
        m.add_eq(&terms, 10);
        m.set_node_limit(37);
        assert_eq!(m.solve_with_stats(), m.solve_reference_with_stats());
    }

    #[test]
    fn stats_published_to_registry() {
        // A CounterScope (rather than a global snapshot diff) keeps the
        // deltas exact even while other tests solve ILPs concurrently.
        let scope = rtise_obs::CounterScope::new();
        let diff = {
            let _guard = scope.enter();
            let mut m = Model::new(3);
            m.set_objective(Sense::Maximize, &[2, 3, 4]);
            m.add_le(&[(0, 1), (1, 1), (2, 1)], 2);
            m.solve().expect("feasible");
            scope.counters()
        };
        assert_eq!(diff.get("ilp.solves"), Some(&1), "{diff:?}");
        assert!(
            diff.get("ilp.nodes_explored").is_some_and(|&v| v >= 1),
            "{diff:?}"
        );
    }

    /// Random models deep enough (`n > PAR_FRONTIER_DEPTH`) that the
    /// decomposed parallel search actually engages.
    fn random_deep_model(rng: &mut Rng) -> Model {
        let n = rng.gen_range(7..=12usize);
        let mut m = Model::new(n);
        let sense = if rng.gen_bool(0.5) {
            Sense::Minimize
        } else {
            Sense::Maximize
        };
        let obj: Vec<i64> = (0..n).map(|_| rng.gen_range(-20..=20i64)).collect();
        m.set_objective(sense, &obj);
        for _ in 0..rng.gen_range(0..4u32) {
            let mut terms: Vec<(usize, i64)> = Vec::new();
            for v in 0..n {
                if rng.gen_bool(0.7) {
                    terms.push((v, rng.gen_range(-10..=10i64)));
                }
            }
            let rhs = rng.gen_range(-10..=15i64);
            match rng.gen_range(0..3u32) {
                0 => m.add_le(&terms, rhs),
                1 => m.add_ge(&terms, rhs),
                _ => m.add_eq(&terms, rhs),
            }
        }
        m
    }

    /// The parallel search proves the same optimum as the serial one —
    /// and because the decomposition preserves the serial preorder, the
    /// first leaf attaining the optimum is the same leaf, so even the
    /// argmin matches. Only node/prune counts may differ (the windowed
    /// incumbent prunes less).
    #[test]
    fn parallel_search_matches_serial_optimum() {
        let mut rng = Rng::new(0x9a11e1);
        for case in 0..60 {
            let m = random_deep_model(&mut rng);
            match (m.solve_with_stats(), m.solve_par_with_stats(4)) {
                (Ok((s, _)), Ok((p, _))) => {
                    assert_eq!(s.objective, p.objective, "case {case}");
                    assert_eq!(s.values, p.values, "case {case}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "case {case}"),
                (s, p) => panic!("case {case}: serial {s:?}, par {p:?}"),
            }
        }
    }

    /// The whole observable output — solution and certificate — is
    /// identical at every thread count for a fixed frontier depth,
    /// checked at each depth the adaptive sizing picks for 1, 2, and 4
    /// workers. (Different depths cut the tree differently; the optimum
    /// still matches, per `parallel_search_matches_serial_optimum`.)
    #[test]
    fn parallel_output_is_identical_at_any_thread_count() {
        let mut rng = Rng::new(0x7a11);
        for case in 0..30 {
            let m = random_deep_model(&mut rng);
            for sized_for in [1usize, 2, 4] {
                let depth = rtise_obs::par::frontier_depth(PAR_FRONTIER_DEPTH, sized_for);
                let base = m.solve_par_with_cert_at_depth(1, depth);
                for threads in [2, 4, 7] {
                    assert_eq!(
                        base,
                        m.solve_par_with_cert_at_depth(threads, depth),
                        "case {case} depth {depth} threads {threads}"
                    );
                }
            }
        }
    }

    /// Models the decomposition does not apply to fall back to the
    /// classic serial search, byte-for-byte — including the node-limit
    /// abort point.
    #[test]
    fn parallel_falls_back_when_not_applicable() {
        let mut m = Model::new(20);
        let obj: Vec<i64> = (0..20).map(|i| -(i as i64)).collect();
        m.set_objective(Sense::Minimize, &obj);
        let terms: Vec<(usize, i64)> = (0..20).map(|i| (i, 1)).collect();
        m.add_eq(&terms, 10);
        m.set_node_limit(37);
        assert_eq!(m.solve_par_with_stats(4), m.solve_with_stats());

        let mut small = Model::new(3);
        small.set_objective(Sense::Maximize, &[2, 3, 4]);
        small.add_le(&[(0, 1), (1, 1), (2, 1)], 2);
        assert_eq!(small.solve_par_with_stats(4), small.solve_with_stats());
    }

    /// Virtual-clock traces of a parallel solve are thread-count
    /// independent at a fixed frontier depth: subtree events are
    /// captured in per-worker scopes and replayed into the ambient scope
    /// in subtree index order.
    #[test]
    fn parallel_traces_are_thread_count_independent() {
        let mut rng = Rng::new(0x7ace);
        let m = random_deep_model(&mut rng);
        let depth = rtise_obs::par::frontier_depth(PAR_FRONTIER_DEPTH, 4);
        let run = |threads: usize| {
            let scope = rtise_trace::TraceScope::new(rtise_trace::Clock::Virtual);
            {
                let _active = scope.enter();
                let _ = m.solve_par_with_cert_at_depth(threads, depth);
            }
            (scope.events(), scope.dropped())
        };
        let serial = run(1);
        assert!(
            serial.0.iter().any(|e| e.name == codes::ILP_SOLVE),
            "trace should contain the solve span"
        );
        assert_eq!(serial, run(4));
    }
}

//! The versioned BENCH JSON document: construction, schema validation,
//! and baseline comparison.
//!
//! The committed `BENCH_N.json` files form the repo's performance
//! trajectory; CI regenerates a smoke-mode document with the same sweep
//! and fails when any (kernel, size) point regresses past a factor. Both
//! sides of that comparison go through [`validate`] first, so a corrupted
//! or hand-doctored baseline is an error, never a silent pass.

use rtise_obs::json::Value;

use crate::kernels::SizePoint;
use crate::measure::MeasureOptions;

/// The format this crate writes. [`validate`] also accepts older
/// still-readable formats (v1, which lacks the per-point `p50_ns_op` /
/// `p99_ns_op` percentiles), so committed v1 baselines keep comparing
/// against fresh v2 runs — [`compare`] only consults `opt_ns_op`, present
/// in both.
pub const FORMAT_VERSION: u64 = 2;

/// Oldest format [`validate`] still accepts.
pub const MIN_FORMAT_VERSION: u64 = 1;

/// Rounds to 0.1 ns so committed baselines do not churn in meaningless
/// decimals.
fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

fn point_json(p: &SizePoint) -> Value {
    Value::obj(vec![
        ("size", Value::from(p.size as u64)),
        ("batch", Value::from(p.batch as u64)),
        ("ref_ns_op", Value::Num(round1(p.ref_ns_op))),
        ("opt_ns_op", Value::Num(round1(p.opt_ns_op))),
        ("p50_ns_op", Value::Num(round1(p.p50_ns_op))),
        ("p99_ns_op", Value::Num(round1(p.p99_ns_op))),
        ("speedup", Value::Num((p.speedup * 100.0).round() / 100.0)),
        ("counters", Value::from(&p.counters)),
    ])
}

/// Builds the report document from per-kernel sweeps.
pub fn build(
    mode: &str,
    seed: u64,
    m: &MeasureOptions,
    results: &[(String, Vec<SizePoint>)],
) -> Value {
    Value::obj(vec![
        ("format", Value::from(FORMAT_VERSION)),
        ("suite", Value::from("rtise-perf")),
        ("mode", Value::from(mode)),
        ("seed", Value::from(seed)),
        ("warmup", Value::from(u64::from(m.warmup))),
        ("iters", Value::from(u64::from(m.iters))),
        (
            "kernels",
            Value::Arr(
                results
                    .iter()
                    .map(|(name, points)| {
                        Value::obj(vec![
                            ("name", Value::from(name.as_str())),
                            ("sizes", Value::Arr(points.iter().map(point_json).collect())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn field_f64(obj: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{ctx}: missing or non-numeric {key:?}"))
}

/// Structural check of a BENCH document. Catches truncation, schema
/// drift, and nonsense values (non-positive timings, duplicate or
/// unsorted sweep points).
pub fn validate(doc: &Value) -> Result<(), String> {
    let format = field_f64(doc, "format", "report")? as u64;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&format) {
        return Err(format!(
            "report: unsupported format (want {MIN_FORMAT_VERSION}..={FORMAT_VERSION})"
        ));
    }
    if doc.get("suite").and_then(Value::as_str) != Some("rtise-perf") {
        return Err("report: suite is not \"rtise-perf\"".into());
    }
    match doc.get("mode").and_then(Value::as_str) {
        Some("full") | Some("smoke") => {}
        _ => return Err("report: mode must be \"full\" or \"smoke\"".into()),
    }
    for key in ["seed", "warmup", "iters"] {
        field_f64(doc, key, "report")?;
    }
    let kernels = doc
        .get("kernels")
        .and_then(Value::as_arr)
        .ok_or("report: missing kernels array")?;
    if kernels.is_empty() {
        return Err("report: no kernels".into());
    }
    for kernel in kernels {
        let name = kernel
            .get("name")
            .and_then(Value::as_str)
            .ok_or("kernel: missing name")?;
        let points = kernel
            .get("sizes")
            .and_then(Value::as_arr)
            .ok_or_else(|| format!("kernel {name}: missing sizes array"))?;
        if points.is_empty() {
            return Err(format!("kernel {name}: empty sweep"));
        }
        let mut last_size = 0.0;
        for point in points {
            let ctx = format!("kernel {name}");
            let size = field_f64(point, "size", &ctx)?;
            if size <= last_size {
                return Err(format!("kernel {name}: sizes not strictly increasing"));
            }
            last_size = size;
            // v1 predates the per-point percentiles; require them from v2 on.
            let mut keys = vec!["batch", "ref_ns_op", "opt_ns_op", "speedup"];
            if format >= 2 {
                keys.extend(["p50_ns_op", "p99_ns_op"]);
            }
            for key in keys {
                if field_f64(point, key, &ctx)? <= 0.0 {
                    return Err(format!("kernel {name} size {size}: non-positive {key:?}"));
                }
            }
            match point.get("counters") {
                Some(Value::Obj(_)) => {}
                _ => return Err(format!("kernel {name} size {size}: missing counters")),
            }
        }
    }
    Ok(())
}

/// Absolute slack added to every regression threshold. Sub-microsecond
/// cells jitter by whole multiples under scheduler/frequency noise; a
/// purely multiplicative gate on them would flake. Two microseconds is
/// irrelevant for every cell large enough to regress meaningfully.
pub const NOISE_FLOOR_NS: f64 = 2000.0;

/// One point of the current run that is slower than the baseline allows.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Kernel name.
    pub kernel: String,
    /// Sweep size the regression occurred at.
    pub size: u64,
    /// Baseline optimized ns/op.
    pub baseline_ns: f64,
    /// Current optimized ns/op.
    pub current_ns: f64,
    /// `current_ns / baseline_ns`.
    pub ratio: f64,
}

fn opt_ns_by_size(kernel: &Value) -> Result<Vec<(u64, f64)>, String> {
    let name = kernel.get("name").and_then(Value::as_str).unwrap_or("?");
    kernel
        .get("sizes")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("kernel {name}: missing sizes"))?
        .iter()
        .map(|p| {
            let ctx = format!("kernel {name}");
            Ok((
                field_f64(p, "size", &ctx)? as u64,
                field_f64(p, "opt_ns_op", &ctx)?,
            ))
        })
        .collect()
}

/// Compares a current run against a committed baseline: every (kernel,
/// size) point of the baseline must exist in the current run (schema
/// drift fails loudly) and its optimized ns/op may be at most `factor`
/// times the baseline value plus [`NOISE_FLOOR_NS`]. Both documents are
/// [`validate`]d first.
pub fn compare(current: &Value, baseline: &Value, factor: f64) -> Result<Vec<Regression>, String> {
    validate(current).map_err(|e| format!("current run: {e}"))?;
    validate(baseline).map_err(|e| format!("baseline: {e}"))?;
    let mut regressions = Vec::new();
    for base_kernel in baseline.get("kernels").and_then(Value::as_arr).unwrap() {
        let name = base_kernel
            .get("name")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        let cur_kernel = current
            .get("kernels")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .find(|k| k.get("name").and_then(Value::as_str) == Some(&name))
            .ok_or_else(|| format!("kernel {name} is in the baseline but not the current run"))?;
        let cur_points = opt_ns_by_size(cur_kernel)?;
        for (size, baseline_ns) in opt_ns_by_size(base_kernel)? {
            let (_, current_ns) = cur_points
                .iter()
                .find(|(s, _)| *s == size)
                .ok_or_else(|| format!("kernel {name} size {size} missing from current run"))?;
            let ratio = current_ns / baseline_ns.max(f64::MIN_POSITIVE);
            if *current_ns > factor * baseline_ns + NOISE_FLOOR_NS {
                regressions.push(Regression {
                    kernel: name.clone(),
                    size,
                    baseline_ns,
                    current_ns: *current_ns,
                    ratio,
                });
            }
        }
    }
    Ok(regressions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_report(opt_ns: f64) -> Value {
        let mut counters = BTreeMap::new();
        counters.insert("k.calls".to_string(), 8u64);
        let point = SizePoint {
            size: 4,
            batch: 8,
            ref_ns_op: opt_ns * 3.0,
            opt_ns_op: opt_ns,
            p50_ns_op: opt_ns,
            p99_ns_op: opt_ns * 1.5,
            speedup: 3.0,
            counters,
        };
        build(
            "full",
            5,
            &MeasureOptions::full(),
            &[("edf_dp".to_string(), vec![point])],
        )
    }

    /// Recursively drops the v2 per-point percentile fields, yielding the
    /// point shape v1 documents carry.
    fn strip_percentiles(v: &Value) -> Value {
        match v {
            Value::Obj(pairs) => Value::Obj(
                pairs
                    .iter()
                    .filter(|(k, _)| k != "p50_ns_op" && k != "p99_ns_op")
                    .map(|(k, v)| (k.clone(), strip_percentiles(v)))
                    .collect(),
            ),
            Value::Arr(items) => Value::Arr(items.iter().map(strip_percentiles).collect()),
            other => other.clone(),
        }
    }

    fn set_format(doc: Value, format: u64) -> Value {
        let Value::Obj(pairs) = doc else {
            panic!("report is not an object")
        };
        Value::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| {
                    if k == "format" {
                        (k, Value::from(format))
                    } else {
                        (k, v)
                    }
                })
                .collect(),
        )
    }

    /// Committed v1 baselines (no per-point percentiles) must keep
    /// validating and comparing against fresh v2 runs; a v2 document
    /// missing its percentiles is damage, not a downgrade.
    #[test]
    fn v1_baselines_still_validate_and_compare() {
        let stripped = strip_percentiles(&sample_report(100_000.0));
        assert!(
            validate(&stripped).is_err(),
            "v2 without percentiles passed validation"
        );
        let baseline = set_format(stripped, 1);
        validate(&baseline).expect("v1 document must validate");
        assert!(
            compare(&sample_report(200_000.0), &baseline, 2.5)
                .expect("cross-format comparison")
                .is_empty(),
            "2x inside a 2.5x budget is not a regression"
        );
        let regressions =
            compare(&sample_report(300_000.0), &baseline, 2.5).expect("cross-format comparison");
        assert_eq!(regressions.len(), 1);
        assert!(
            validate(&set_format(sample_report(100.0), 3)).is_err(),
            "future formats must be rejected"
        );
    }

    #[test]
    fn built_reports_pass_validation_and_round_trip() {
        let report = sample_report(100.0);
        validate(&report).expect("fresh report must validate");
        let parsed = rtise_obs::json::parse(&report.render_pretty()).expect("renders valid JSON");
        validate(&parsed).expect("parsed report must validate");
        assert_eq!(parsed.render(), report.render());
    }

    #[test]
    fn validation_rejects_structural_damage() {
        let ok = sample_report(100.0);
        // Drop each top-level field in turn: every removal must fail.
        if let Value::Obj(pairs) = &ok {
            for i in 0..pairs.len() {
                let mut damaged = pairs.clone();
                damaged.remove(i);
                assert!(
                    validate(&Value::Obj(damaged)).is_err(),
                    "dropping {:?} passed validation",
                    pairs[i].0
                );
            }
        } else {
            panic!("report is not an object");
        }

        let empty = build("full", 5, &MeasureOptions::full(), &[]);
        assert!(validate(&empty).is_err(), "no kernels must be rejected");
    }

    #[test]
    fn comparison_flags_regressions_and_schema_drift() {
        let baseline = sample_report(100_000.0);
        assert!(
            compare(&sample_report(200_000.0), &baseline, 2.5)
                .expect("comparable")
                .is_empty(),
            "2x inside a 2.5x budget is not a regression"
        );
        // The noise floor shields microsecond-scale jitter but not real
        // regressions.
        assert!(
            compare(&sample_report(2_100.0), &sample_report(100.0), 2.5)
                .expect("comparable")
                .is_empty(),
            "sub-noise-floor deltas are not regressions"
        );

        let regressions = compare(&sample_report(300_000.0), &baseline, 2.5).expect("comparable");
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].kernel, "edf_dp");
        assert_eq!(regressions[0].size, 4);
        assert!(regressions[0].ratio > 2.5);

        // A baseline kernel missing from the current run is an error, not
        // a pass.
        let renamed = build(
            "full",
            5,
            &MeasureOptions::full(),
            &[(
                "other".to_string(),
                vec![SizePoint {
                    size: 4,
                    batch: 8,
                    ref_ns_op: 3.0,
                    opt_ns_op: 1.0,
                    p50_ns_op: 1.0,
                    p99_ns_op: 1.0,
                    speedup: 3.0,
                    counters: BTreeMap::from([("k".to_string(), 1u64)]),
                }],
            )],
        );
        assert!(compare(&renamed, &baseline, 2.5).is_err());
    }
}

//! Solver-kernel benchmark driver.
//!
//! ```text
//! bench [--smoke] [--seed N] [--out PATH] [--baseline PATH] [--factor X]
//!       [--trace-out PATH] [--list]
//! ```
//!
//! Sweeps every kernel pair over its input sizes, prints a summary table,
//! and writes the versioned BENCH JSON to `--out` (stdout otherwise).
//! With `--baseline`, compares the fresh run against a committed
//! `BENCH_N.json` and exits non-zero when any (kernel, size) point is more
//! than `--factor` (default 2.5) times slower. `--smoke` keeps the same
//! sweep but takes fewer samples, so CI can gate cheaply against a
//! full-mode baseline. `--trace-out` records a real-clock Chrome Trace of
//! the whole sweep — one track per kernel, solver search-tree events
//! included — schema-checked before it is written.

use std::process::ExitCode;

use rtise_perf::kernels::{run_kernel, sizes, KERNELS};
use rtise_perf::measure::MeasureOptions;
use rtise_perf::report;

fn usage() -> ! {
    eprintln!(
        "usage: bench [--smoke] [--seed N] [--out PATH] [--baseline PATH] [--factor X] \
         [--trace-out PATH] [--list]\n\
         kernels: {}",
        KERNELS.join(", ")
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut seed = 5u64;
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut factor = 2.5f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--seed" => {
                let v = args.next().unwrap_or_else(|| usage());
                seed = v.parse().unwrap_or_else(|_| usage());
            }
            "--out" => out_path = Some(args.next().unwrap_or_else(|| usage())),
            "--baseline" => baseline_path = Some(args.next().unwrap_or_else(|| usage())),
            "--trace-out" => trace_path = Some(args.next().unwrap_or_else(|| usage())),
            "--factor" => {
                let v = args.next().unwrap_or_else(|| usage());
                factor = v.parse().unwrap_or_else(|_| usage());
                if !(factor.is_finite() && factor >= 1.0) {
                    usage();
                }
            }
            "--list" => {
                for k in KERNELS {
                    println!("{k} {:?}", sizes(k));
                }
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }

    let (mode, m) = if smoke {
        ("smoke", MeasureOptions::smoke())
    } else {
        ("full", MeasureOptions::full())
    };
    println!(
        "bench mode={mode} seed={seed} warmup={} iters={}",
        m.warmup, m.iters
    );

    let mut results = Vec::new();
    let mut trace_scopes: Vec<(String, rtise_trace::TraceScope)> = Vec::new();
    for &kernel in KERNELS {
        let scope = trace_path
            .as_ref()
            .map(|_| rtise_trace::TraceScope::new(rtise_trace::Clock::Real));
        let points = {
            let _guard = scope.as_ref().map(rtise_trace::TraceScope::enter);
            let _span = scope
                .as_ref()
                .map(|_| rtise_trace::span(kernel.to_string()));
            run_kernel(kernel, seed, &m)
        };
        for p in &points {
            println!(
                "  {kernel:<9} size {:>3}  ref {:>12.1} ns/op  opt {:>12.1} ns/op  \
                 p99 {:>12.1} ns/op  speedup {:>6.2}x",
                p.size, p.ref_ns_op, p.opt_ns_op, p.p99_ns_op, p.speedup
            );
        }
        results.push((kernel.to_string(), points));
        if let Some(s) = scope {
            trace_scopes.push((kernel.to_string(), s));
        }
    }

    let doc = report::build(mode, seed, &m, &results);
    if let Err(e) = report::validate(&doc) {
        eprintln!("generated report failed its own schema check: {e}");
        return ExitCode::FAILURE;
    }
    let rendered = doc.render_pretty() + "\n";
    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("cannot write report to {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("BENCH report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = trace_path {
        let trace_doc = rtise_trace::chrome::chrome_trace(&trace_scopes);
        let diags = rtise_check::trace::check_chrome_trace(&trace_doc);
        if !diags.is_clean() {
            eprintln!("trace artifact failed the chrome-trace schema check:\n{diags}");
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&path, trace_doc.render_pretty()) {
            eprintln!("cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("chrome trace written to {path}");
    }

    if let Some(path) = baseline_path {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline = match rtise_obs::json::parse(&src) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("baseline {path} is not valid JSON: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        match report::compare(&doc, &baseline, factor) {
            Ok(regressions) if regressions.is_empty() => {
                println!("no regression beyond {factor}x vs {path}");
            }
            Ok(regressions) => {
                for r in &regressions {
                    eprintln!(
                        "REGRESSION {} size {}: {:.1} ns/op vs baseline {:.1} ns/op ({:.2}x > {factor}x)",
                        r.kernel, r.size, r.current_ns, r.baseline_ns, r.ratio
                    );
                }
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("baseline comparison failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}

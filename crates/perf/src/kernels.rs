//! The benchmarked kernel pairs.
//!
//! Each kernel times its optimized entry point against the retained
//! `*_reference` implementation on an identical batch of seeded instances
//! from [`rtise_fuzz::gen`]. A "size" is the knob that dominates each
//! kernel's work: task count for the schedulability DPs, variable count
//! for the ILP, DFG node count for enumeration, candidate-pool size for
//! the ISE knapsack.

use std::collections::BTreeMap;
use std::hint::black_box;

use rtise_fuzz::gen;
use rtise_ilp::{Cmp, Model};
use rtise_ir::{Dfg, HwModel};
use rtise_ise::{CiCandidate, ConfigCurve, EnumerateOptions, HarvestOptions};
use rtise_obs::Rng;
use rtise_select::TaskSpec;

use crate::measure::{median_ns, sample_ns, MeasureOptions};

/// Stable benchmark identifiers, in report order. The `*_par` kernels
/// time the decomposed parallel search (at [`PAR_BENCH_THREADS`]
/// workers) against the *optimized serial* path on the same instances —
/// their reference is the serial fast path, not the `*_reference`
/// implementation — at sizes where one solve outweighs the worker-pool
/// setup.
pub const KERNELS: &[&str] = &[
    "edf_dp",
    "rms_bnb",
    "rms_bnb_par",
    "ilp_bnb",
    "ilp_bnb_par",
    "enumerate",
    "miso",
    "ise_bnb",
    "ise_bnb_par",
    "ise_iter_small",
    "ise_iter_large",
];

/// Worker count for the `*_par` kernels: enough to show real subtree
/// parallelism without outsizing small CI runners.
pub const PAR_BENCH_THREADS: usize = 4;

/// Instances measured together per (kernel, size): one timed sample solves
/// the whole batch, amortizing `Instant` overhead on microsecond kernels.
pub const BATCH: usize = 8;

/// Input-size sweep per kernel. The sweep is IDENTICAL in smoke and full
/// mode — only sample counts differ — so a smoke run is comparable
/// against a committed full-mode baseline. Unknown kernels sweep nothing.
pub fn sizes(kernel: &str) -> &'static [usize] {
    match kernel {
        "edf_dp" => &[2, 4, 8, 16],
        "rms_bnb" => &[4, 6, 8],
        "rms_bnb_par" => &[16, 20],
        "ilp_bnb" => &[8, 14, 20],
        "ilp_bnb_par" => &[36, 38],
        "enumerate" => &[12, 24, 48],
        "miso" => &[12, 24, 48, 96],
        "ise_bnb" => &[8, 14, 20, 26],
        "ise_bnb_par" => &[56, 64],
        "ise_iter_small" => &[12, 24, 48],
        "ise_iter_large" => &[500, 1000, 2000],
        _ => &[],
    }
}

/// One measured point of a kernel's size sweep.
#[derive(Debug, Clone)]
pub struct SizePoint {
    /// The swept input-size knob (see module docs for its meaning).
    pub size: usize,
    /// Instances solved per timed sample.
    pub batch: usize,
    /// Median reference-path nanoseconds per instance.
    pub ref_ns_op: f64,
    /// Median optimized-path nanoseconds per instance.
    pub opt_ns_op: f64,
    /// Exact p50 of the optimized-path samples (ns per instance), from a
    /// [`rtise_obs::Hist`] over the raw sample vector.
    pub p50_ns_op: f64,
    /// Exact p99 of the optimized-path samples (ns per instance).
    pub p99_ns_op: f64,
    /// `ref_ns_op / opt_ns_op`.
    pub speedup: f64,
    /// Solver counter deltas from one optimized batch execution, captured
    /// in an isolated [`rtise_obs::CounterScope`].
    pub counters: BTreeMap<String, u64>,
}

/// Derives the input-generation seed for a (kernel, size) cell: FNV-1a
/// over the kernel name, mixed with the campaign seed and the size so
/// every cell draws an independent SplitMix64 stream.
fn cell_seed(seed: u64, kernel: &str, size: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in kernel.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (size as u64).rotate_left(17)
}

/// Concatenates seeded draws of [`gen::task_set`] until exactly `n` tasks
/// are available. Keeps the fuzz distributions while pinning the size knob
/// the sweep varies.
fn task_set_exact(rng: &mut Rng, n: usize, max_points: usize) -> Vec<TaskSpec> {
    let opts = gen::TaskSetOptions {
        max_tasks: n,
        max_points,
        ..Default::default()
    };
    let mut out = Vec::new();
    while out.len() < n {
        out.extend(gen::task_set(rng, &opts));
    }
    out.truncate(n);
    out
}

/// Half of the total maximum area — the constrained-but-feasible regime
/// where the selection DPs do the most work.
fn mid_budget(specs: &[TaskSpec]) -> u64 {
    specs.iter().map(|s| s.curve.max_area()).sum::<u64>() / 2
}

/// Gate-count granularity for the EDF DP benchmark: the generator draws
/// toy area units (increments of 1..=12), where the dense grid is tiny
/// and the sparse DP has nothing to skip. Real curves carry areas in
/// cells/gates; scaling by a prime stretches the grid (the gcd step stays
/// 1 against the +1 budget below) without changing the staircase shape —
/// both paths still compute the identical selection.
const AREA_SCALE: u64 = 97;

/// Rescales generated curves to gate-count areas (see [`AREA_SCALE`]).
fn gate_scale(specs: Vec<TaskSpec>) -> Vec<TaskSpec> {
    specs
        .into_iter()
        .map(|s| {
            let pairs: Vec<(u64, u64)> = s
                .curve
                .points()
                .iter()
                .filter(|p| p.area > 0)
                .map(|p| (p.area * AREA_SCALE, p.cycles))
                .collect();
            TaskSpec::new(
                ConfigCurve::from_points(s.curve.name.clone(), s.curve.base_cycles, &pairs),
                s.period,
            )
        })
        .collect()
}

/// Keeps roughly every third term of each generated row ((var + row)
/// stride, deterministic): the sparse-column regime the optimized ILP
/// search targets. The generator's rows are dense — most variables in
/// most rows — which no sparse representation can beat. Senses and
/// right-hand sides are preserved; feasibility may change, which is fine,
/// any model is a valid benchmark input.
fn sparsify(dense: &Model) -> Model {
    let mut out = Model::new(dense.num_vars());
    out.set_objective(dense.sense(), dense.objective());
    for i in 0..dense.num_rows() {
        let (terms, cmp, rhs) = dense.row(i);
        let kept: Vec<(usize, i64)> = terms
            .iter()
            .copied()
            .filter(|&(v, _)| (v + i) % 3 == 0)
            .collect();
        match cmp {
            Cmp::Le => out.add_le(&kept, rhs),
            Cmp::Ge => out.add_ge(&kept, rhs),
            Cmp::Eq => out.add_eq(&kept, rhs),
        }
    }
    out
}

/// Redraws until the model has exactly `vars` binary variables (the
/// generator picks `1..=max_vars` uniformly, so this terminates fast),
/// then thins it to the sparse-column regime (see [`sparsify`]).
fn ilp_model_exact(rng: &mut Rng, vars: usize) -> Model {
    let opts = gen::IlpOptions {
        max_vars: vars,
        max_rows: vars,
        ..gen::IlpOptions::default()
    };
    loop {
        let m = gen::ilp_model(rng, &opts);
        if m.num_vars() == vars {
            return sparsify(&m);
        }
    }
}

/// Redraws until the DFG has at least `nodes` nodes (inputs included), so
/// the sweep's upper sizes actually exercise large blocks.
fn dfg_at_least(rng: &mut Rng, nodes: usize) -> Dfg {
    let opts = gen::DfgOptions {
        max_inputs: 4,
        max_ops: nodes,
        load_prob: 0.08,
    };
    loop {
        let g = gen::dfg(rng, &opts);
        if g.len() >= nodes {
            return g;
        }
    }
}

/// Port constraints for the enumeration benchmarks: the paper's 4-in/2-out
/// register-file budget with caps high enough that the candidate count is
/// driven by the DFG, not the caps.
fn bench_enumerate_options() -> EnumerateOptions {
    EnumerateOptions {
        max_in: 4,
        max_out: 2,
        max_candidates: 4096,
        max_nodes: 12,
    }
}

/// Iterative-generator envelope for the `ise_iter_*` pair: the same port
/// budget as the exact enumeration benchmarks with a bounded anytime
/// move budget, so the 2000-node sweep stays in milliseconds per
/// instance.
fn bench_iterative_options(enumerate: EnumerateOptions) -> rtise_ise::IterativeOptions {
    rtise_ise::IterativeOptions {
        enumerate,
        seeds: 16,
        max_passes: 3,
        move_budget: 6_000,
        seed: 0xB7,
    }
}

/// Harvests seeded programs until `n` candidates accumulate, then truncates
/// to exactly `n`. Returns the pool plus a half-total-area budget.
fn candidate_pool(rng: &mut Rng, n: usize) -> (Vec<CiCandidate>, u64) {
    let opts = HarvestOptions {
        enumerate: EnumerateOptions {
            max_in: 4,
            max_out: 2,
            max_candidates: 512,
            max_nodes: 8,
        },
        top_per_block: n,
        min_exec_count: 0,
    };
    let dfg_opts = gen::DfgOptions {
        max_inputs: 4,
        max_ops: 14,
        load_prob: 0.05,
    };
    let mut pool = Vec::new();
    while pool.len() < n {
        let (program, exec) = gen::program(rng, &dfg_opts, 3);
        pool.extend(rtise_ise::harvest(
            &program,
            &exec,
            &HwModel::default(),
            opts,
        ));
    }
    pool.truncate(n);
    let budget = pool.iter().map(|c| c.area).sum::<u64>() / 2;
    (pool, budget)
}

/// Times the reference and optimized closures (median over batch samples)
/// and captures the optimized path's counters from one extra execution
/// inside an isolated scope. The optimized samples also feed a
/// [`rtise_obs::Hist`], whose exact p50/p99 land in the point: sample
/// counts are far below the histogram's exact-storage cap, so the
/// percentiles are order statistics, not bucket midpoints.
fn measure_cell(
    size: usize,
    reference: &mut dyn FnMut(),
    optimized: &mut dyn FnMut(),
    m: &MeasureOptions,
) -> SizePoint {
    let ref_ns_op = median_ns(&sample_ns(reference, m)) / BATCH as f64;
    let opt_samples = sample_ns(optimized, m);
    let opt_ns_op = median_ns(&opt_samples) / BATCH as f64;
    let mut opt_hist = rtise_obs::Hist::new();
    for &s in &opt_samples {
        // Per-instance ns, clamped to 1 so percentiles stay positive even
        // on a degenerate sub-batch-granularity sample.
        opt_hist.observe((s / BATCH as u64).max(1));
    }
    let counters = {
        let _iso = rtise_obs::registry::isolate();
        let scope = rtise_obs::CounterScope::new();
        let guard = scope.enter();
        optimized();
        drop(guard);
        scope.counters()
    };
    SizePoint {
        size,
        batch: BATCH,
        ref_ns_op,
        opt_ns_op,
        p50_ns_op: opt_hist.p50() as f64,
        p99_ns_op: opt_hist.p99() as f64,
        speedup: ref_ns_op / opt_ns_op.max(f64::MIN_POSITIVE),
        counters,
    }
}

/// Runs one (kernel, size) cell. Panics on an unknown kernel name; use
/// [`KERNELS`] to enumerate valid ones.
pub fn run_size(kernel: &str, size: usize, seed: u64, m: &MeasureOptions) -> SizePoint {
    let mut rng = Rng::new(cell_seed(seed, kernel, size));
    match kernel {
        "edf_dp" => {
            let inputs: Vec<(Vec<TaskSpec>, u64)> = (0..BATCH)
                .map(|_| {
                    let specs = gate_scale(task_set_exact(&mut rng, size, 8));
                    // +1 keeps the budget coprime to AREA_SCALE, pinning
                    // the dense grid step at 1.
                    let budget = mid_budget(&specs) + 1;
                    (specs, budget)
                })
                .collect();
            measure_cell(
                size,
                &mut || {
                    for (s, b) in &inputs {
                        let _ = black_box(rtise_select::edf::select_edf_dense_with_stats(
                            black_box(s),
                            black_box(*b),
                        ));
                    }
                },
                &mut || {
                    for (s, b) in &inputs {
                        let _ = black_box(rtise_select::edf::select_edf_with_stats(
                            black_box(s),
                            black_box(*b),
                        ));
                    }
                },
                m,
            )
        }
        "rms_bnb" => {
            let inputs: Vec<(Vec<TaskSpec>, u64)> = (0..BATCH)
                .map(|_| {
                    let specs = task_set_exact(&mut rng, size, 4);
                    let budget = mid_budget(&specs);
                    (specs, budget)
                })
                .collect();
            measure_cell(
                size,
                &mut || {
                    for (s, b) in &inputs {
                        let _ = black_box(rtise_select::rms::select_rms_reference_with_stats(
                            black_box(s),
                            black_box(*b),
                        ));
                    }
                },
                &mut || {
                    for (s, b) in &inputs {
                        let _ = black_box(rtise_select::rms::select_rms_with_stats(
                            black_box(s),
                            black_box(*b),
                        ));
                    }
                },
                m,
            )
        }
        "rms_bnb_par" => {
            let inputs: Vec<(Vec<TaskSpec>, u64)> = (0..BATCH)
                .map(|_| {
                    let specs = task_set_exact(&mut rng, size, 4);
                    let budget = mid_budget(&specs);
                    (specs, budget)
                })
                .collect();
            measure_cell(
                size,
                &mut || {
                    for (s, b) in &inputs {
                        let _ = black_box(rtise_select::rms::select_rms_with_stats(
                            black_box(s),
                            black_box(*b),
                        ));
                    }
                },
                &mut || {
                    for (s, b) in &inputs {
                        let _ = black_box(rtise_select::rms::select_rms_par_with_stats(
                            black_box(s),
                            black_box(*b),
                            PAR_BENCH_THREADS,
                        ));
                    }
                },
                m,
            )
        }
        "ilp_bnb" => {
            let models: Vec<Model> = (0..BATCH)
                .map(|_| ilp_model_exact(&mut rng, size))
                .collect();
            measure_cell(
                size,
                &mut || {
                    for model in &models {
                        let _ = black_box(black_box(model).solve_reference_with_stats());
                    }
                },
                &mut || {
                    for model in &models {
                        let _ = black_box(black_box(model).solve_with_stats());
                    }
                },
                m,
            )
        }
        "ilp_bnb_par" => {
            let models: Vec<Model> = (0..BATCH)
                .map(|_| ilp_model_exact(&mut rng, size))
                .collect();
            measure_cell(
                size,
                &mut || {
                    for model in &models {
                        let _ = black_box(black_box(model).solve_with_stats());
                    }
                },
                &mut || {
                    for model in &models {
                        let _ = black_box(black_box(model).solve_par_with_stats(PAR_BENCH_THREADS));
                    }
                },
                m,
            )
        }
        "enumerate" => {
            let dfgs: Vec<Dfg> = (0..BATCH).map(|_| dfg_at_least(&mut rng, size)).collect();
            let opts = bench_enumerate_options();
            measure_cell(
                size,
                &mut || {
                    for dfg in &dfgs {
                        let _ = black_box(rtise_ise::enumerate::enumerate_connected_reference(
                            black_box(dfg),
                            opts,
                        ));
                    }
                },
                &mut || {
                    for dfg in &dfgs {
                        let _ = black_box(rtise_ise::enumerate::enumerate_connected_with_stats(
                            black_box(dfg),
                            opts,
                        ));
                    }
                },
                m,
            )
        }
        "miso" => {
            let dfgs: Vec<Dfg> = (0..BATCH).map(|_| dfg_at_least(&mut rng, size)).collect();
            measure_cell(
                size,
                &mut || {
                    for dfg in &dfgs {
                        let _ =
                            black_box(rtise_ise::enumerate::maximal_miso_reference(black_box(dfg)));
                    }
                },
                &mut || {
                    for dfg in &dfgs {
                        let _ = black_box(rtise_ise::maximal_miso(black_box(dfg)));
                    }
                },
                m,
            )
        }
        "ise_bnb" => {
            let pools: Vec<(Vec<CiCandidate>, u64)> =
                (0..BATCH).map(|_| candidate_pool(&mut rng, size)).collect();
            measure_cell(
                size,
                &mut || {
                    for (cands, budget) in &pools {
                        let _ = black_box(rtise_ise::select::branch_and_bound_reference(
                            black_box(cands),
                            black_box(*budget),
                        ));
                    }
                },
                &mut || {
                    for (cands, budget) in &pools {
                        let _ = black_box(rtise_ise::branch_and_bound(
                            black_box(cands),
                            black_box(*budget),
                        ));
                    }
                },
                m,
            )
        }
        "ise_bnb_par" => {
            let pools: Vec<(Vec<CiCandidate>, u64)> =
                (0..BATCH).map(|_| candidate_pool(&mut rng, size)).collect();
            measure_cell(
                size,
                &mut || {
                    for (cands, budget) in &pools {
                        let _ = black_box(rtise_ise::branch_and_bound(
                            black_box(cands),
                            black_box(*budget),
                        ));
                    }
                },
                &mut || {
                    for (cands, budget) in &pools {
                        let _ = black_box(rtise_ise::select::branch_and_bound_par(
                            black_box(cands),
                            black_box(*budget),
                            PAR_BENCH_THREADS,
                        ));
                    }
                },
                m,
            )
        }
        // The anytime iterative generator against the exact bitset
        // enumerator, inside the 128-node wall where both apply. The
        // iterative path trades completeness for bounded work, so its
        // win grows with the DFG.
        "ise_iter_small" => {
            let dfgs: Vec<Dfg> = (0..BATCH).map(|_| dfg_at_least(&mut rng, size)).collect();
            let eopts = bench_enumerate_options();
            let iopts = bench_iterative_options(eopts);
            measure_cell(
                size,
                &mut || {
                    for dfg in &dfgs {
                        let _ = black_box(rtise_ise::enumerate::enumerate_connected_with_stats(
                            black_box(dfg),
                            eopts,
                        ));
                    }
                },
                &mut || {
                    for dfg in &dfgs {
                        let _ = black_box(rtise_ise::iterative_candidates(black_box(dfg), iopts));
                    }
                },
                m,
            )
        }
        // Past the wall (500-2000 nodes) only the generic growth path
        // still applies as a reference; its candidate cap is lowered so
        // the visited-shape bound keeps it finite, while the iterative
        // path runs its normal anytime budget.
        "ise_iter_large" => {
            let dfgs: Vec<Dfg> = (0..BATCH).map(|_| gen::large_dfg(&mut rng, size)).collect();
            let eopts = EnumerateOptions {
                max_in: 4,
                max_out: 2,
                max_candidates: 256,
                max_nodes: 8,
            };
            let iopts = bench_iterative_options(eopts);
            measure_cell(
                size,
                &mut || {
                    for dfg in &dfgs {
                        let _ = black_box(rtise_ise::enumerate::enumerate_connected_reference(
                            black_box(dfg),
                            eopts,
                        ));
                    }
                },
                &mut || {
                    for dfg in &dfgs {
                        let _ = black_box(rtise_ise::iterative_candidates(black_box(dfg), iopts));
                    }
                },
                m,
            )
        }
        other => panic!("unknown benchmark kernel {other:?}"),
    }
}

/// Runs a kernel's whole size sweep.
pub fn run_kernel(kernel: &str, seed: u64, m: &MeasureOptions) -> Vec<SizePoint> {
    sizes(kernel)
        .iter()
        .map(|&s| run_size(kernel, s, seed, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cheapest possible sampling: correctness of the plumbing, not
    /// the timings.
    fn tiny() -> MeasureOptions {
        MeasureOptions {
            warmup: 0,
            iters: 1,
        }
    }

    #[test]
    fn every_kernel_produces_a_complete_sweep() {
        for &kernel in KERNELS {
            let smallest = sizes(kernel)[0];
            let point = run_size(kernel, smallest, 1, &tiny());
            assert_eq!(point.size, smallest, "{kernel}");
            assert_eq!(point.batch, BATCH, "{kernel}");
            assert!(point.ref_ns_op > 0.0, "{kernel}");
            assert!(point.opt_ns_op > 0.0, "{kernel}");
            assert!(point.p50_ns_op > 0.0, "{kernel}");
            assert!(
                point.p99_ns_op >= point.p50_ns_op,
                "{kernel}: p99 below p50"
            );
            assert!(point.speedup > 0.0, "{kernel}");
        }
    }

    #[test]
    fn optimized_paths_publish_solver_counters() {
        // Kernels whose optimized entry points record observability
        // counters; the pure-selection paths (rms/ise B&B) may not.
        for &kernel in &["edf_dp", "ilp_bnb", "enumerate", "miso", "ise_iter_small"] {
            let point = run_size(kernel, sizes(kernel)[0], 1, &tiny());
            assert!(
                !point.counters.is_empty(),
                "{kernel} captured no counter deltas"
            );
        }
    }

    #[test]
    fn input_builders_pin_the_size_knob() {
        let mut rng = Rng::new(99);
        assert_eq!(task_set_exact(&mut rng, 7, 3).len(), 7);
        assert_eq!(ilp_model_exact(&mut rng, 9).num_vars(), 9);
        assert!(dfg_at_least(&mut rng, 24).len() >= 24);
        let (pool, budget) = candidate_pool(&mut rng, 11);
        assert_eq!(pool.len(), 11);
        assert!(budget <= pool.iter().map(|c| c.area).sum::<u64>());
    }

    #[test]
    fn cell_seeds_are_distinct_across_kernels_and_sizes() {
        let mut seen = std::collections::BTreeSet::new();
        for &kernel in KERNELS {
            for &size in sizes(kernel) {
                assert!(
                    seen.insert(cell_seed(5, kernel, size)),
                    "seed collision at {kernel}/{size}"
                );
            }
        }
    }
}

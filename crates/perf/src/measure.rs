//! Timing core: warmup + fixed-iteration sampling over `std::time::Instant`
//! with median extraction. No calibration phase — callers amortize clock
//! overhead by timing a whole input batch per sample.

use std::time::Instant;

/// Sample counts for one benchmark run. Input sizes are *not* part of
/// these options: smoke and full mode sweep identical sizes and differ
/// only in how many samples they take.
#[derive(Debug, Clone, Copy)]
pub struct MeasureOptions {
    /// Untimed batch executions before sampling (cache and branch-predictor
    /// warmup).
    pub warmup: u32,
    /// Timed batch executions; the reported figure is their median.
    pub iters: u32,
}

impl MeasureOptions {
    /// Full-resolution run — the committed BENCH trajectory points.
    pub fn full() -> Self {
        MeasureOptions {
            warmup: 2,
            iters: 9,
        }
    }

    /// CI smoke run: same input sizes, fewer samples.
    pub fn smoke() -> Self {
        MeasureOptions {
            warmup: 1,
            iters: 3,
        }
    }
}

/// Runs `f` untimed `warmup` times, then `iters` timed times, returning
/// the per-execution nanosecond samples (at least one, even for
/// `iters == 0`).
pub fn sample_ns(f: &mut dyn FnMut(), opts: &MeasureOptions) -> Vec<u64> {
    for _ in 0..opts.warmup {
        f();
    }
    (0..opts.iters.max(1))
        .map(|_| {
            let start = Instant::now();
            f();
            u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
        })
        .collect()
}

/// Median of the samples; the mean of the two middle values for even
/// counts. Panics on an empty slice ([`sample_ns`] never returns one).
pub fn median_ns(samples: &[u64]) -> f64 {
    assert!(!samples.is_empty(), "median of no samples");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid] as f64
    } else {
        (sorted[mid - 1] as f64 + sorted[mid] as f64) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_handles_odd_and_even_sample_counts() {
        assert_eq!(median_ns(&[5]), 5.0);
        assert_eq!(median_ns(&[3, 9, 1]), 3.0);
        assert_eq!(median_ns(&[4, 2, 8, 6]), 5.0);
    }

    #[test]
    fn sampling_runs_warmup_plus_iters_and_never_returns_empty() {
        let mut calls = 0u32;
        let opts = MeasureOptions {
            warmup: 2,
            iters: 3,
        };
        let samples = sample_ns(&mut || calls += 1, &opts);
        assert_eq!(calls, 5);
        assert_eq!(samples.len(), 3);

        let zero = MeasureOptions {
            warmup: 0,
            iters: 0,
        };
        assert_eq!(sample_ns(&mut || {}, &zero).len(), 1);
    }
}

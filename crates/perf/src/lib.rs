//! rtise-perf: offline microbenchmark harness for the solver kernels.
//!
//! Every optimized solver keeps its original implementation as a
//! `*_reference` export; this crate times both sides on identical seeded
//! inputs (drawn from [`rtise_fuzz::gen`], the same distributions the fuzz
//! campaigns explore) and emits a versioned BENCH JSON document — the
//! repo's performance trajectory. The design goals, in order:
//!
//! 1. **Offline.** No criterion, no external crates: `std::time::Instant`,
//!    warmup plus a fixed number of timed batch executions, median
//!    extraction. Medians over batches make single-digit-microsecond
//!    kernels measurable without a calibration phase.
//! 2. **Deterministic inputs.** Benchmark inputs derive from a SplitMix64
//!    seed mixed with the kernel name and input size, so every run of the
//!    same binary times the same work. Only the *timings* vary by machine.
//! 3. **Comparable across modes.** `--smoke` reduces sample counts only;
//!    the input-size sweep is identical to full mode, so a CI smoke run is
//!    directly comparable against the committed full-mode baseline.
//! 4. **Attributable.** Each measured point captures the optimized path's
//!    solver counter deltas via [`rtise_obs::CounterScope`], tying the
//!    timing to the amount of search work actually performed.
//!
//! The `bench` binary drives the sweep, renders the report, and — given
//! `--baseline BENCH_N.json` — fails when any kernel regresses past a
//! configurable factor at a matching (kernel, size) point.

pub mod kernels;
pub mod measure;
pub mod report;

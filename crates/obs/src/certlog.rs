//! Bounded event logs for solver optimality certificates.
//!
//! Branch-and-bound searches emit one event per node so an independent
//! checker can replay the tree; on pathological instances that log could
//! dwarf the problem itself. [`BoundedLog`] applies the same
//! drop-with-marker discipline as the `rtise-trace` ring buffers: events
//! past the cap are dropped but *counted*, so a consumer can always tell
//! a complete log (proof material) from a truncated one (no proof).

/// A capped append-only event log with an explicit drop counter.
///
/// Unlike a ring buffer, the *prefix* is kept and the tail is dropped:
/// certificate replay is a preorder walk, so a truncated suffix merely
/// ends the proof early, whereas a missing prefix would invalidate all of
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundedLog<T> {
    events: Vec<T>,
    cap: usize,
    dropped: u64,
}

impl<T> BoundedLog<T> {
    /// An empty log holding at most `cap` events.
    pub fn new(cap: usize) -> Self {
        BoundedLog {
            events: Vec::new(),
            cap,
            dropped: 0,
        }
    }

    /// Appends `event`, or counts it as dropped once the cap is reached.
    pub fn push(&mut self, event: T) {
        if self.events.len() < self.cap {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// The retained event prefix.
    pub fn events(&self) -> &[T] {
        &self.events
    }

    /// The configured cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped past the cap. Nonzero means the log is truncated
    /// and must not be treated as a complete proof.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Whether every pushed event was retained.
    pub fn is_complete(&self) -> bool {
        self.dropped == 0
    }

    /// Adds `n` to the drop counter without touching the events — used
    /// when merging pre-capped logs (a subtree log that already dropped
    /// events contributes its count to the stitched whole).
    pub fn add_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Consumes the log into `(events, dropped)`.
    pub fn into_parts(self) -> (Vec<T>, u64) {
        (self.events, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_prefix_and_counts_drops() {
        let mut log = BoundedLog::new(3);
        for i in 0..5 {
            log.push(i);
        }
        assert_eq!(log.events(), &[0, 1, 2]);
        assert_eq!(log.dropped(), 2);
        assert!(!log.is_complete());
        let (events, dropped) = log.into_parts();
        assert_eq!((events.len(), dropped), (3, 2));
    }

    #[test]
    fn complete_when_under_cap() {
        let mut log = BoundedLog::new(8);
        log.push("a");
        assert!(log.is_complete());
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
    }
}

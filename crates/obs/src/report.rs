//! Hierarchical span reports: [`Collector`], [`Report`], [`Timer`].
//!
//! A [`Collector`] builds a tree of named spans imperatively —
//! [`enter`](Collector::enter) opens a child span, [`leave`](Collector::leave)
//! closes it (recording its wall time), [`add`](Collector::add) and
//! [`gauge`](Collector::gauge) attach numbers to the current span — and
//! [`finish`](Collector::finish) yields the completed [`Report`] tree,
//! serializable with [`Report::to_json`].
//!
//! A collector created with [`Collector::disabled`] ignores every call and
//! finishes to an empty report, so instrumented code paths can take a
//! `&mut Collector` unconditionally and cost nothing when nobody listens.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use crate::json::Value;

/// A simple stopwatch around [`Instant`].
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts a new timer.
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed time since [`start`](Timer::start).
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in milliseconds as a float (for display and JSON).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e3
    }
}

impl Default for Timer {
    fn default() -> Self {
        Timer::start()
    }
}

/// One completed span: a name, its wall time, attached counters and
/// gauges, and nested child spans in completion order.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Span name (e.g. a pipeline stage or solver phase).
    pub name: String,
    /// Wall-clock time spent inside the span, in nanoseconds.
    pub wall_ns: u128,
    /// Monotone integer counters attached to this span.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time float measurements attached to this span.
    pub gauges: BTreeMap<String, f64>,
    /// Child spans, in the order they finished.
    pub children: Vec<Report>,
}

impl Report {
    /// An empty span with the given name (zero wall time, no counters).
    pub fn new(name: &str) -> Self {
        Report {
            name: name.to_string(),
            wall_ns: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            children: Vec::new(),
        }
    }

    /// Wall time in milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_ns as f64 / 1e6
    }

    /// Finds the first descendant span (depth-first, self included) with
    /// the given name.
    pub fn find(&self, name: &str) -> Option<&Report> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Serializes the span tree as a JSON object.
    ///
    /// Empty counter/gauge maps and child lists are omitted to keep
    /// reports small.
    pub fn to_json(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("name".into(), self.name.as_str().into()),
            ("wall_ms".into(), self.wall_ms().into()),
        ];
        if !self.counters.is_empty() {
            pairs.push(("counters".into(), (&self.counters).into()));
        }
        if !self.gauges.is_empty() {
            let g = self
                .gauges
                .iter()
                .map(|(k, &v)| (k.clone(), v.into()))
                .collect();
            pairs.push(("gauges".into(), Value::Obj(g)));
        }
        if !self.children.is_empty() {
            pairs.push((
                "children".into(),
                Value::Arr(self.children.iter().map(Report::to_json).collect()),
            ));
        }
        Value::Obj(pairs)
    }

    /// Renders the tree as indented human-readable lines, one span per
    /// line: `name  12.3 ms  {counter=…}` — used by `reproduce --trace`.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        for _ in 0..depth {
            out.push_str("  ");
        }
        let _ = write!(out, "{}  {:.3} ms", self.name, self.wall_ms());
        for (k, v) in &self.counters {
            let _ = write!(out, "  {k}={v}");
        }
        for (k, v) in &self.gauges {
            let _ = write!(out, "  {k}={v}");
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// Builds a [`Report`] tree imperatively; see the module docs.
#[derive(Debug)]
pub struct Collector {
    /// `None` = disabled: every method is a no-op.
    inner: Option<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// Open spans, root first. Invariant: never empty.
    stack: Vec<(Report, Instant)>,
}

impl Collector {
    /// A live collector whose root span is named `root`.
    pub fn enabled(root: &str) -> Self {
        Collector {
            inner: Some(Inner {
                stack: vec![(Report::new(root), Instant::now())],
            }),
        }
    }

    /// A null collector: every method is a no-op and
    /// [`finish`](Collector::finish) returns an empty root span. Lets
    /// instrumented code take a `&mut Collector` unconditionally.
    pub fn disabled() -> Self {
        Collector { inner: None }
    }

    /// Whether this collector records anything. Use to skip expensive
    /// metric computation when nobody is listening.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Opens a child span of the current span.
    pub fn enter(&mut self, name: &str) {
        if let Some(inner) = &mut self.inner {
            inner.stack.push((Report::new(name), Instant::now()));
        }
    }

    /// Closes the current span, recording its wall time and attaching it
    /// to its parent. Closing the root span is a no-op (use
    /// [`finish`](Collector::finish) instead).
    pub fn leave(&mut self) {
        if let Some(inner) = &mut self.inner {
            if inner.stack.len() > 1 {
                let (mut span, started) = inner.stack.pop().expect("stack non-empty");
                span.wall_ns = started.elapsed().as_nanos();
                inner
                    .stack
                    .last_mut()
                    .expect("root present")
                    .0
                    .children
                    .push(span);
            }
        }
    }

    /// Adds `delta` to counter `key` on the current span.
    pub fn add(&mut self, key: &str, delta: u64) {
        if let Some(inner) = &mut self.inner {
            let span = &mut inner.stack.last_mut().expect("root present").0;
            *span.counters.entry(key.to_string()).or_insert(0) += delta;
        }
    }

    /// Sets gauge `key` on the current span (overwriting a prior value).
    pub fn gauge(&mut self, key: &str, value: f64) {
        if let Some(inner) = &mut self.inner {
            let span = &mut inner.stack.last_mut().expect("root present").0;
            span.gauges.insert(key.to_string(), value);
        }
    }

    /// Closes all open spans and returns the completed root [`Report`].
    /// A disabled collector returns an empty span named `disabled`.
    pub fn finish(mut self) -> Report {
        match self.inner.take() {
            None => Report::new("disabled"),
            Some(mut inner) => {
                while inner.stack.len() > 1 {
                    let (mut span, started) = inner.stack.pop().expect("non-empty");
                    span.wall_ns = started.elapsed().as_nanos();
                    inner
                        .stack
                        .last_mut()
                        .expect("root present")
                        .0
                        .children
                        .push(span);
                }
                let (mut root, started) = inner.stack.pop().expect("root present");
                root.wall_ns = started.elapsed().as_nanos();
                root
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_tree() {
        let mut c = Collector::enabled("root");
        c.add("top", 1);
        c.enter("a");
        c.add("x", 2);
        c.add("x", 3);
        c.enter("a1");
        c.gauge("ratio", 0.5);
        c.leave();
        c.leave();
        c.enter("b");
        c.leave();
        let r = c.finish();

        assert_eq!(r.name, "root");
        assert_eq!(r.counters["top"], 1);
        assert_eq!(r.children.len(), 2);
        let a = &r.children[0];
        assert_eq!(a.name, "a");
        assert_eq!(a.counters["x"], 5);
        assert_eq!(a.children[0].name, "a1");
        assert_eq!(a.children[0].gauges["ratio"], 0.5);
        assert_eq!(r.children[1].name, "b");
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut c = Collector::enabled("root");
        c.enter("left-open");
        c.enter("deeper");
        let r = c.finish();
        assert_eq!(r.children.len(), 1);
        assert_eq!(r.children[0].name, "left-open");
        assert_eq!(r.children[0].children[0].name, "deeper");
    }

    #[test]
    fn disabled_collector_is_inert() {
        let mut c = Collector::disabled();
        assert!(!c.is_enabled());
        c.enter("x");
        c.add("k", 9);
        c.gauge("g", 1.0);
        c.leave();
        let r = c.finish();
        assert!(r.counters.is_empty());
        assert!(r.children.is_empty());
    }

    #[test]
    fn leave_on_root_is_noop() {
        let mut c = Collector::enabled("root");
        c.leave();
        c.leave();
        c.add("still", 1);
        let r = c.finish();
        assert_eq!(r.counters["still"], 1);
    }

    #[test]
    fn json_includes_counters() {
        let mut c = Collector::enabled("pipeline");
        c.enter("harvest");
        c.add("candidates", 42);
        c.leave();
        let json = c.finish().to_json().render();
        assert!(json.contains("\"candidates\":42"), "{json}");
        assert!(json.contains("\"name\":\"pipeline\""), "{json}");
        // And it parses back.
        crate::json::parse(&json).expect("parse");
    }

    #[test]
    fn find_locates_descendants() {
        let mut c = Collector::enabled("root");
        c.enter("a");
        c.enter("b");
        c.add("k", 1);
        let r = c.finish();
        assert_eq!(r.find("b").expect("find").counters["k"], 1);
        assert!(r.find("zzz").is_none());
    }

    #[test]
    fn timer_measures_nonnegative() {
        let t = Timer::start();
        assert!(t.elapsed_ms() >= 0.0);
    }

    #[test]
    fn render_tree_lists_each_span() {
        let mut c = Collector::enabled("root");
        c.enter("child");
        c.add("n", 3);
        c.leave();
        let text = c.finish().render_tree();
        assert!(text.contains("root"), "{text}");
        assert!(text.contains("  child"), "{text}");
        assert!(text.contains("n=3"), "{text}");
    }
}

//! Fixed-bucket log2 histograms with exact small-sample percentiles.
//!
//! A [`Hist`] is the third first-class metric of the registry, next to
//! counters and timers: solvers observe per-event magnitudes (search
//! depth at a prune, DP cells per solve, cache entry age) and harnesses
//! read p50/p90/p99 out of the merged result. Two design constraints
//! drive the shape:
//!
//! * **Deterministic mergeability.** Histograms recorded on different
//!   worker threads, or replayed out of an on-disk cache entry, must
//!   merge into the same value regardless of order. Fixed log2 buckets
//!   merge bucket-wise; the capped exact-value store is kept sorted on
//!   serialization so a round-trip is canonical.
//! * **Exact percentiles where it matters.** Up to
//!   [`EXACT_CAP`] observations the raw values are retained and
//!   percentiles are exact (nearest-rank). Beyond that the store is
//!   dropped and percentiles interpolate linearly inside the owning
//!   log2 bucket — bounded relative error, bounded memory.
//!
//! Bucket layout: bucket `0` holds the value `0`; bucket `i` for
//! `i in 1..=64` holds values in `[2^(i-1), 2^i - 1]` (bucket 64's upper
//! bound saturates at `u64::MAX`).

use crate::json::Value;

/// Number of buckets: one for zero plus one per bit position.
pub const BUCKETS: usize = 65;

/// Maximum number of raw observations retained for exact percentiles.
pub const EXACT_CAP: usize = 512;

/// A mergeable log2 histogram over `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    /// Raw values while `count <= EXACT_CAP`; emptied (and `exact_dropped`
    /// set) once the cap is crossed so memory stays bounded.
    exact: Vec<u64>,
    exact_dropped: bool,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            exact: Vec::new(),
            exact_dropped: false,
        }
    }
}

/// The bucket index owning `v`: 0 for 0, else `64 - leading_zeros` (the
/// position of the highest set bit, 1-based).
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive value range `[lo, hi]` of bucket `i`.
fn bucket_range(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= 64 {
        (1u64 << 63, u64::MAX)
    } else {
        (1u64 << (i - 1), (1u64 << i) - 1)
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist::default()
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] = self.buckets[bucket_of(v)].saturating_add(1);
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if !self.exact_dropped {
            if self.exact.len() < EXACT_CAP {
                self.exact.push(v);
            } else {
                self.exact = Vec::new();
                self.exact_dropped = true;
            }
        }
    }

    /// Merges `other` into `self` bucket-wise. Exact stores concatenate
    /// while the combined count fits [`EXACT_CAP`]; otherwise both are
    /// dropped and percentiles fall back to bucket interpolation.
    pub fn merge(&mut self, other: &Hist) {
        if other.count == 0 {
            return;
        }
        for (slot, add) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *slot = slot.saturating_add(*add);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if self.exact_dropped
            || other.exact_dropped
            || self.exact.len() + other.exact.len() > EXACT_CAP
        {
            self.exact = Vec::new();
            self.exact_dropped = true;
        } else {
            self.exact.extend_from_slice(&other.exact);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Whether percentiles are exact (raw values retained) rather than
    /// bucket-interpolated.
    pub fn is_exact(&self) -> bool {
        !self.exact_dropped
    }

    /// The `p`-th percentile (`0 < p <= 100`) by nearest-rank over the
    /// exact store, or by linear interpolation inside the owning log2
    /// bucket once the store has been dropped. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Nearest-rank: the smallest value such that at least
        // ceil(p/100 * count) observations are <= it.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        if !self.exact_dropped {
            let mut sorted = self.exact.clone();
            sorted.sort_unstable();
            return sorted[(rank - 1) as usize];
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_range(i);
                let lo = lo.max(self.min);
                let hi = hi.min(self.max).max(lo);
                // Position of the target rank inside this bucket, in
                // (0, 1]; interpolate the inclusive [lo, hi] range.
                let within = (rank - seen) as f64 / c as f64;
                let span = (hi - lo) as f64;
                return lo + (span * within).round() as u64;
            }
            seen += c;
        }
        self.max
    }

    /// Exact-or-interpolated p50.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Exact-or-interpolated p90.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// Exact-or-interpolated p99.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Full serialization: buckets (sparse `[index, count]` pairs), the
    /// scalar moments, and — while exact — the sorted raw values. The
    /// sort makes the rendering canonical: two histograms equal under
    /// [`Hist::merge`]-order permutation serialize identically.
    pub fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Value::Arr(vec![Value::Num(i as f64), Value::Num(c as f64)]))
            .collect();
        let mut fields = vec![
            ("count", Value::Num(self.count as f64)),
            ("sum", Value::Num(self.sum as f64)),
            ("min", Value::Num(self.min() as f64)),
            ("max", Value::Num(self.max as f64)),
            ("buckets", Value::Arr(buckets)),
        ];
        if !self.exact_dropped {
            let mut sorted = self.exact.clone();
            sorted.sort_unstable();
            fields.push((
                "exact",
                Value::Arr(sorted.into_iter().map(|v| Value::Num(v as f64)).collect()),
            ));
        }
        Value::obj(fields)
    }

    /// Parses a [`Hist::to_json`] document. Returns `None` on any
    /// structural mismatch (missing field, bad bucket index, counts that
    /// do not add up).
    pub fn from_json(v: &Value) -> Option<Hist> {
        let count = v.get("count")?.as_f64()? as u64;
        let sum = v.get("sum")?.as_f64()? as u64;
        let min = v.get("min")?.as_f64()? as u64;
        let max = v.get("max")?.as_f64()? as u64;
        let mut h = Hist::new();
        let mut bucket_total = 0u64;
        for pair in v.get("buckets")?.as_arr()? {
            let pair = pair.as_arr()?;
            if pair.len() != 2 {
                return None;
            }
            let i = pair[0].as_f64()? as usize;
            let c = pair[1].as_f64()? as u64;
            if i >= BUCKETS || c == 0 {
                return None;
            }
            h.buckets[i] = c;
            bucket_total = bucket_total.saturating_add(c);
        }
        if bucket_total != count {
            return None;
        }
        h.count = count;
        h.sum = sum;
        h.min = if count == 0 { u64::MAX } else { min };
        h.max = max;
        match v.get("exact") {
            Some(arr) => {
                let vals = arr.as_arr()?;
                if vals.len() as u64 != count || vals.len() > EXACT_CAP {
                    return None;
                }
                h.exact = vals
                    .iter()
                    .map(|x| x.as_f64().map(|f| f as u64))
                    .collect::<Option<Vec<u64>>>()?;
                h.exact_dropped = false;
            }
            None => {
                h.exact = Vec::new();
                h.exact_dropped = true;
            }
        }
        Some(h)
    }

    /// Compact summary for run reports: count, min, max, mean and the
    /// three headline percentiles. Deterministic because every input is.
    pub fn summary_json(&self) -> Value {
        Value::obj(vec![
            ("count", Value::Num(self.count as f64)),
            ("min", Value::Num(self.min() as f64)),
            ("max", Value::Num(self.max as f64)),
            ("mean", Value::Num(self.mean())),
            ("p50", Value::Num(self.p50() as f64)),
            ("p90", Value::Num(self.p90() as f64)),
            ("p99", Value::Num(self.p99() as f64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_range(i);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
        }
    }

    #[test]
    fn exact_percentiles_for_small_samples() {
        let mut h = Hist::new();
        for v in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            h.observe(v);
        }
        assert!(h.is_exact());
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 550);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 100);
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p90(), 90);
        assert_eq!(h.p99(), 100);
    }

    #[test]
    fn empty_hist_is_all_zeros() {
        let h = Hist::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn overflow_drops_exact_store_but_keeps_moments() {
        let mut h = Hist::new();
        for v in 0..(EXACT_CAP as u64 + 10) {
            h.observe(v);
        }
        assert!(!h.is_exact());
        assert_eq!(h.count(), EXACT_CAP as u64 + 10);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), EXACT_CAP as u64 + 9);
        // Interpolated percentiles stay within the right log2 bucket.
        let p50 = h.p50();
        let (lo, hi) = bucket_range(bucket_of(261));
        assert!(
            p50 >= lo && p50 <= hi,
            "p50 {p50} outside bucket [{lo}, {hi}]"
        );
    }

    #[test]
    fn merge_is_order_insensitive_and_canonical() {
        let vals = [3u64, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5];
        let mut a = Hist::new();
        let mut b = Hist::new();
        for (i, &v) in vals.iter().enumerate() {
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.count(), vals.len() as u64);
        assert_eq!(ab.to_json().render(), ba.to_json().render());
        assert_eq!(ab.p50(), ba.p50());
    }

    #[test]
    fn merge_overflow_falls_back_to_buckets() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        for v in 0..400u64 {
            a.observe(v);
            b.observe(v + 400);
        }
        let mut m = a.clone();
        m.merge(&b);
        assert!(!m.is_exact());
        assert_eq!(m.count(), 800);
        assert_eq!(m.min(), 0);
        assert_eq!(m.max(), 799);
    }

    /// The exact→bucket transition sits precisely at [`EXACT_CAP`]: a
    /// merge landing exactly on the cap keeps exact percentiles, one
    /// observation past it degrades to bucket interpolation — and the
    /// degraded percentiles must agree with a serially-observed
    /// histogram of the same values (same buckets → same answers), not
    /// silently misreport.
    #[test]
    fn merge_at_exact_cap_boundary_keeps_then_degrades_percentiles() {
        let half = EXACT_CAP / 2;
        let mut a = Hist::new();
        let mut b = Hist::new();
        for i in 0..half as u64 {
            a.observe(1000 + i);
            b.observe(1000 + half as u64 + i);
        }

        // 256 + 256 = 512 == EXACT_CAP: still exact, percentiles match a
        // histogram that saw all 512 values itself.
        let mut at_cap = a.clone();
        at_cap.merge(&b);
        assert_eq!(at_cap.count(), EXACT_CAP as u64);
        assert!(at_cap.is_exact(), "merge landing on the cap stays exact");
        let mut serial = Hist::new();
        for v in 1000..1000 + EXACT_CAP as u64 {
            serial.observe(v);
        }
        assert_eq!(at_cap.p50(), serial.p50());
        assert_eq!(at_cap.p99(), serial.p99());
        assert_eq!(at_cap.to_json().render(), serial.to_json().render());

        // One more observation pushes the merge past the cap: the exact
        // tier is dropped, and bucket-interpolated percentiles must equal
        // the serially-observed (also bucket-tier) histogram's.
        let mut c = b.clone();
        c.observe(1000 + 2 * half as u64);
        let mut past_cap = a.clone();
        past_cap.merge(&c);
        assert_eq!(past_cap.count(), EXACT_CAP as u64 + 1);
        assert!(!past_cap.is_exact(), "one past the cap degrades");
        let mut serial = Hist::new();
        for v in 1000..=1000 + EXACT_CAP as u64 {
            serial.observe(v);
        }
        assert!(!serial.is_exact());
        assert_eq!(past_cap.p50(), serial.p50());
        assert_eq!(past_cap.p90(), serial.p90());
        assert_eq!(past_cap.p99(), serial.p99());
        // Sanity on the interpolated values themselves: ordered, and
        // inside the observed range rather than wildly off.
        assert!(past_cap.p50() <= past_cap.p90() && past_cap.p90() <= past_cap.p99());
        assert!(past_cap.p50() >= past_cap.min() && past_cap.p99() <= past_cap.max());
    }

    #[test]
    fn json_round_trip_exact_and_bucketed() {
        let mut h = Hist::new();
        for v in [0u64, 1, 7, 8, 1000, 65_536] {
            h.observe(v);
        }
        let back = Hist::from_json(&h.to_json()).expect("round trip");
        assert_eq!(back.count(), h.count());
        assert_eq!(back.sum(), h.sum());
        assert_eq!(back.p50(), h.p50());
        assert_eq!(back.to_json().render(), h.to_json().render());

        let mut big = Hist::new();
        for v in 0..700u64 {
            big.observe(v * 3);
        }
        let back = Hist::from_json(&big.to_json()).expect("round trip");
        assert!(!back.is_exact());
        assert_eq!(back.count(), big.count());
        assert_eq!(back.p99(), big.p99());
    }

    #[test]
    fn from_json_rejects_inconsistent_documents() {
        let mut h = Hist::new();
        h.observe(5);
        let mut doc = h.to_json();
        // Corrupt the count so buckets no longer add up.
        if let Value::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "count" {
                    *v = Value::Num(9.0);
                }
            }
        }
        assert!(Hist::from_json(&doc).is_none());
        assert!(Hist::from_json(&Value::Null).is_none());
    }

    #[test]
    fn summary_json_has_headline_percentiles() {
        let mut h = Hist::new();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.summary_json();
        assert_eq!(s.get("count").and_then(Value::as_f64), Some(100.0));
        assert_eq!(s.get("p50").and_then(Value::as_f64), Some(50.0));
        assert_eq!(s.get("p99").and_then(Value::as_f64), Some(99.0));
    }
}

//! A minimal JSON document model with a writer and a parser.
//!
//! Just enough machinery to serialize [`Report`](crate::report::Report)s
//! into machine-readable run artifacts and to parse them back in tests —
//! the build environment is offline, so `serde` is not an option. Object
//! keys keep insertion order (reports read better that way) and numbers
//! are stored as `f64`, which is exact for every counter below 2⁵³.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved when rendering.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is a [`Value::Num`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is a [`Value::Arr`].
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders human-readable JSON indented by two spaces per level.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                indent(out, depth);
                out.push(']');
            }
            Value::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Num(v as f64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Num(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

impl From<&BTreeMap<String, u64>> for Value {
    fn from(map: &BTreeMap<String, u64>) -> Value {
        Value::Obj(map.iter().map(|(k, &v)| (k.clone(), v.into())).collect())
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if n == n.trunc() && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
///
/// Accepts exactly one top-level value with optional surrounding
/// whitespace. `\uXXXX` escapes outside the BMP surrogate range are
/// decoded; surrogate pairs are rejected (reports never emit them).
///
/// # Errors
///
/// [`ParseError`] with the byte offset of the first offending character.
pub fn parse(src: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err("unexpected token"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Value::Null),
            Some(b't') => self.eat("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected a string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Value::obj(vec![
            ("id", "fig3_2".into()),
            ("wall_ms", 1.5.into()),
            ("n", 42u64.into()),
            ("tags", Value::Arr(vec!["a".into(), "b\"q\\".into()])),
            ("none", Value::Null),
            ("ok", Value::Bool(true)),
        ]);
        for text in [v.render(), v.render_pretty()] {
            assert_eq!(parse(&text).expect("parse"), v, "{text}");
        }
    }

    #[test]
    fn integers_render_without_exponent() {
        assert_eq!(Value::from(1_234_567_890u64).render(), "1234567890");
        assert_eq!(Value::Num(0.5).render(), "0.5");
        assert_eq!(Value::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn escapes_control_characters() {
        let v = Value::Str("a\nb\tc\u{1}".into());
        assert_eq!(v.render(), "\"a\\nb\\tc\\u0001\"");
        assert_eq!(parse(&v.render()).expect("parse"), v);
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(" { \"a\" : [ 1 , -2.5e1 , { } ] , \"b\" : \"\\u0041x\" } ").expect("parse");
        assert_eq!(v.get("b").and_then(Value::as_str), Some("Ax"));
        let arr = v.get("a").and_then(Value::as_arr).expect("arr");
        assert_eq!(arr[1].as_f64(), Some(-25.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"\\x\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn get_and_accessors() {
        let v = Value::obj(vec![("k", 7u64.into())]);
        assert_eq!(v.get("k").and_then(Value::as_f64), Some(7.0));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("k"), None);
    }
}

//! Tiny dependency-free content hashing.
//!
//! 64-bit FNV-1a is the workspace's content-addressing primitive: the
//! artifact store keys entries with it, cache envelopes checksum their
//! payloads with it, and the serve protocol checksums responses with it.
//! It guards against corruption (truncation, bit rot, torn writes), not
//! against adversaries — every consumer that loads a hashed artifact
//! still re-certifies it semantically through `rtise-check`.

/// 64-bit FNV-1a over `bytes`.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference values from the FNV specification.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn single_bit_flips_change_the_hash() {
        let base = fnv1a(b"the quick brown fox");
        let mut bytes = b"the quick brown fox".to_vec();
        for i in 0..bytes.len() * 8 {
            bytes[i / 8] ^= 1 << (i % 8);
            assert_ne!(fnv1a(&bytes), base, "flip {i} collided");
            bytes[i / 8] ^= 1 << (i % 8);
        }
    }
}

//! A deterministic, seedable SplitMix64 PRNG.
//!
//! The in-repo replacement for the `rand` crate: the randomized phases of
//! the multilevel partitioners (visit-order shuffles, tie breaking) and the
//! randomized tests only need a fast uniform `u64` stream with range,
//! bool, and shuffle helpers. SplitMix64 passes BigCrush, needs two lines
//! of state transition, and — unlike an external dependency — keeps the
//! default build fully offline.

/// A SplitMix64 pseudo-random number generator.
///
/// Deterministic for a fixed seed across platforms and releases; *not*
/// cryptographically secure.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from `seed`. Any seed, including 0, is fine.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next uniform `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform value in a half-open or inclusive integer range, e.g.
    /// `rng.gen_range(0..10u64)` or `rng.gen_range(1..=6usize)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        T::sample(range, self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Splits off an independent child generator seeded from this one's
    /// stream. Forked streams let one master seed drive many structured
    /// sub-draws (one per fuzz case, one per generated artifact) without
    /// the consumption order of one sub-draw perturbing the others.
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Fisher–Yates shuffle of `slice` in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Uniform value in `[0, bound)` via Lemire-style rejection-free
    /// widening multiply (bias below 2⁻⁶⁴ per draw — irrelevant here).
    fn index(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Integer ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from `range`.
    fn sample(range: Self, rng: &mut Rng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample(range: Self, rng: &mut Rng) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + rng.index(span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(range: Self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*range.start(), *range.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every u64 is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.index(span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix_values() {
        // Reference values of SplitMix64 with seed 1234567.
        let mut r = Rng::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(9);
        for _ in 0..1000 {
            let v = r.gen_range(3..17u64);
            assert!((3..17).contains(&v));
            let w = r.gen_range(-5..=5i64);
            assert!((-5..=5).contains(&w));
            let u = r.gen_range(0..1usize);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = Rng::new(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[r.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn bool_probability_roughly_holds() {
        let mut r = Rng::new(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut a = Rng::new(11);
        let mut fork = a.fork();
        let after_fork = a.next_u64();
        // Draining the fork must not perturb the parent stream.
        let mut b = Rng::new(11);
        let _ = b.fork();
        for _ in 0..10 {
            let _ = fork.next_u64();
        }
        assert_eq!(after_fork, b.next_u64());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = Rng::new(1);
        let _ = r.gen_range(5..5u64);
    }
}

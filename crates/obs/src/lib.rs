//! # rtise-obs
//!
//! The observability substrate of the rtise workspace: **std-only**
//! counters, wall-clock timers, hierarchical span reports, a process-wide
//! statistics registry, a minimal JSON writer/parser, and a deterministic
//! seedable PRNG.
//!
//! Every result table of the source paper is a claim about *solver
//! behaviour* — branch-and-bound node counts, DP grid sizes, pruning
//! effectiveness, enumeration accept/reject ratios, running times. This
//! crate supplies the measurement layer those claims are checked against,
//! without pulling in any external dependency (the build environment is
//! offline): no `serde`, no `tracing`, no `rand`.
//!
//! The pieces:
//!
//! * [`registry`] — a global, thread-safe counter registry plus
//!   thread-scoped collectors. Solvers publish their per-call statistics
//!   via [`record`] under dotted keys (`ilp.nodes_explored`,
//!   `select.edf.dp_cells`, …); the `reproduce` harness brackets each
//!   experiment in a [`CounterScope`] — exact even when experiments run
//!   concurrently on a worker pool — and emits the scope's counters into
//!   the machine-readable run report. The global registry stays the
//!   merged, process-wide view.
//! * [`report`] — [`Report`], a serializable tree of named
//!   spans with wall times, counters, and gauges, built imperatively with
//!   [`Collector`] (which has a disabled "null" mode so
//!   instrumented code paths cost nothing when nobody is listening).
//! * [`hist`] — fixed-bucket log2 histograms with exact small-sample
//!   p50/p90/p99, the third first-class metric next to counters and
//!   timers. Observations flow through [`observe`]/[`observe_hist`] into
//!   the global registry and every entered [`CounterScope`], and caches
//!   replay them with [`attribute_hists`] just like counters.
//! * [`certlog`] — [`BoundedLog`], the capped drop-with-marker event log
//!   the branch-and-bound solvers record their replayable optimality
//!   certificates into.
//! * [`par`] — the deterministic work scheduler behind the parallel
//!   solver cores: an ordered claim counter plus a fixed-window
//!   completed-prefix view, so subtree searches share incumbents without
//!   making the output depend on the thread count. The process-wide
//!   `par_threads` knob lives here too.
//! * [`json`] — a tiny JSON document model with a writer and a
//!   recursive-descent parser, enough to serialize reports and to verify
//!   them in tests.
//! * [`rng`] — a SplitMix64 PRNG with range/bool/shuffle helpers, the
//!   in-repo replacement for the `rand` crate used by the randomized
//!   algorithms (multilevel partitioning) and the randomized tests.
//!
//! # Example
//!
//! ```
//! use rtise_obs::report::Collector;
//!
//! let mut c = Collector::enabled("pipeline");
//! c.enter("harvest");
//! c.add("candidates", 42);
//! c.leave();
//! let report = c.finish();
//! let json = report.to_json().render();
//! assert!(json.contains("\"candidates\":42"));
//! ```

pub mod certlog;
pub mod hash;
pub mod hist;
pub mod json;
pub mod par;
pub mod registry;
pub mod report;
pub mod rng;

pub use certlog::BoundedLog;
pub use hash::fnv1a;
pub use hist::Hist;
pub use registry::{
    attribute_hists, global_add, hist_snapshot, observe, observe_hist, record, snapshot,
    snapshot_diff, CounterScope,
};
pub use report::{Collector, Report, Timer};
pub use rng::Rng;

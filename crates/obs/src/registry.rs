//! A process-wide, thread-safe counter registry.
//!
//! Solvers publish per-call statistics under dotted keys
//! (`ilp.nodes_explored`, `select.edf.dp_cells`, …) via [`global_add`];
//! harnesses bracket a region of work with [`snapshot`] and report the
//! [`snapshot_diff`]. This decouples *where* statistics are produced
//! (deep inside a solver) from *where* they are consumed (the `reproduce`
//! binary, a test) without threading a collector through every call chain.
//!
//! Counters are monotone `u64` sums; the registry never resets, so deltas
//! between snapshots are always well-defined even when experiments share
//! the process.

use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

fn registry() -> &'static Mutex<BTreeMap<String, u64>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Adds `delta` to the global counter `key`, creating it at zero first if
/// needed. Saturates instead of wrapping on overflow.
pub fn global_add(key: &str, delta: u64) {
    if delta == 0 {
        return;
    }
    let mut map = registry().lock().expect("obs registry poisoned");
    let slot = map.entry(key.to_string()).or_insert(0);
    *slot = slot.saturating_add(delta);
}

/// Returns a copy of every counter currently in the registry.
pub fn snapshot() -> BTreeMap<String, u64> {
    registry().lock().expect("obs registry poisoned").clone()
}

/// The per-key difference `after - before`, dropping keys whose value did
/// not change. Keys absent from `before` count from zero.
pub fn snapshot_diff(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
) -> BTreeMap<String, u64> {
    after
        .iter()
        .filter_map(|(k, &v)| {
            let d = v.saturating_sub(before.get(k).copied().unwrap_or(0));
            (d > 0).then(|| (k.clone(), d))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share one key-space-per-test-name to stay independent even
    // though cargo runs them concurrently in one process.

    #[test]
    fn add_and_snapshot() {
        global_add("test.registry.a", 2);
        global_add("test.registry.a", 3);
        assert!(snapshot()["test.registry.a"] >= 5);
    }

    #[test]
    fn zero_delta_creates_nothing() {
        global_add("test.registry.zero", 0);
        assert!(!snapshot().contains_key("test.registry.zero"));
    }

    #[test]
    fn diff_reports_only_changes() {
        let before = snapshot();
        global_add("test.registry.diff", 7);
        let after = snapshot();
        let d = snapshot_diff(&before, &after);
        assert_eq!(d.get("test.registry.diff"), Some(&7));
        assert!(!d.contains_key("test.registry.a") || d["test.registry.a"] > 0);
    }

    #[test]
    fn diff_counts_new_keys_from_zero() {
        let empty = BTreeMap::new();
        let mut after = BTreeMap::new();
        after.insert("k".to_string(), 4u64);
        assert_eq!(snapshot_diff(&empty, &after)["k"], 4);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        global_add("test.registry.mt", 1);
                    }
                })
            })
            .collect();
        let before_join = snapshot().get("test.registry.mt").copied().unwrap_or(0);
        let _ = before_join; // adds may still be in flight here
        for h in handles {
            h.join().expect("thread");
        }
        assert!(snapshot()["test.registry.mt"] >= 8000);
    }
}

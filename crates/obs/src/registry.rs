//! A process-wide counter registry plus thread-scoped collectors.
//!
//! Solvers publish per-call statistics under dotted keys
//! (`ilp.nodes_explored`, `select.edf.dp_cells`, …) via [`record`];
//! harnesses that need exact attribution bracket a region of work with a
//! [`CounterScope`] and read [`CounterScope::counters`] when the region
//! ends. This decouples *where* statistics are produced (deep inside a
//! solver) from *where* they are consumed (the `reproduce` binary, a test)
//! without threading a collector through every call chain.
//!
//! Two layers:
//!
//! * The **global registry** is the merged view: every [`record`] call
//!   lands there, it is never reset, and [`snapshot`]/[`snapshot_diff`]
//!   give deltas over a region. Deltas from the global registry are only
//!   exact while nothing else runs — two overlapping regions on different
//!   threads see each other's counts.
//! * A **[`CounterScope`]** is exact under concurrency: while entered on a
//!   thread, every [`record`] on that thread also lands in the scope, and
//!   nothing recorded on other threads does. Scopes are cheap `Arc`
//!   handles; clone one into a spawned worker and
//!   [`enter`](CounterScope::enter) it there to extend the scope across
//!   threads.
//!
//! Counters are monotone `u64` sums that saturate instead of wrapping.

use crate::hist::Hist;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::marker::PhantomData;
use std::sync::{Arc, Mutex, OnceLock};

fn registry() -> &'static Mutex<BTreeMap<String, u64>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, u64>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn hist_registry() -> &'static Mutex<BTreeMap<String, Hist>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<String, Hist>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

thread_local! {
    /// Scopes entered on this thread, outermost first.
    static ACTIVE: RefCell<Vec<Arc<ScopeInner>>> = const { RefCell::new(Vec::new()) };
}

fn add_to(map: &mut BTreeMap<String, u64>, key: &str, delta: u64) {
    match map.get_mut(key) {
        Some(slot) => *slot = slot.saturating_add(delta),
        None => {
            map.insert(key.to_string(), delta);
        }
    }
}

/// Adds `delta` to the global counter `key` and to every [`CounterScope`]
/// entered on the current thread. Creates counters at zero first if
/// needed; saturates instead of wrapping on overflow.
pub fn record(key: &str, delta: u64) {
    if delta == 0 {
        return;
    }
    add_to(
        &mut registry().lock().expect("obs registry poisoned"),
        key,
        delta,
    );
    ACTIVE.with(|stack| {
        for scope in stack.borrow().iter() {
            add_to(
                &mut scope.counters.lock().expect("scope poisoned"),
                key,
                delta,
            );
        }
    });
}

/// Alias of [`record`], kept for the original registry API.
pub fn global_add(key: &str, delta: u64) {
    record(key, delta);
}

/// Adds `counters` to every [`CounterScope`] entered on the current
/// thread — but **not** to the global registry. This is how caches
/// attribute previously-recorded work to a new consumer: the global
/// registry counts each unit of work once (when it actually ran), while
/// every scope that asks for the cached artifact is charged the same,
/// deterministic cost.
pub fn attribute(counters: &BTreeMap<String, u64>) {
    ACTIVE.with(|stack| {
        for scope in stack.borrow().iter() {
            let mut map = scope.counters.lock().expect("scope poisoned");
            for (key, &delta) in counters {
                if delta > 0 {
                    add_to(&mut map, key, delta);
                }
            }
        }
    });
}

/// Records one observation into the global histogram `key` and into every
/// [`CounterScope`] entered on the current thread. The histogram analogue
/// of [`record`].
pub fn observe(key: &str, value: u64) {
    hist_registry()
        .lock()
        .expect("obs hist registry poisoned")
        .entry(key.to_string())
        .or_default()
        .observe(value);
    ACTIVE.with(|stack| {
        for scope in stack.borrow().iter() {
            scope
                .hists
                .lock()
                .expect("scope poisoned")
                .entry(key.to_string())
                .or_default()
                .observe(value);
        }
    });
}

/// Merges a whole histogram into the global histogram `key` and into
/// every [`CounterScope`] entered on the current thread. Solvers that
/// accumulate a local histogram per solve (cheap array bumps, no locks)
/// publish it once through this.
pub fn observe_hist(key: &str, h: &Hist) {
    if h.count() == 0 {
        return;
    }
    hist_registry()
        .lock()
        .expect("obs hist registry poisoned")
        .entry(key.to_string())
        .or_default()
        .merge(h);
    ACTIVE.with(|stack| {
        for scope in stack.borrow().iter() {
            scope
                .hists
                .lock()
                .expect("scope poisoned")
                .entry(key.to_string())
                .or_default()
                .merge(h);
        }
    });
}

/// The histogram analogue of [`attribute`]: merges `hists` into every
/// [`CounterScope`] entered on the current thread, but **not** into the
/// global registry. Caches replay the histograms captured when an
/// artifact was first computed, so cold and warm runs report identical
/// per-consumer distributions.
pub fn attribute_hists(hists: &BTreeMap<String, Hist>) {
    ACTIVE.with(|stack| {
        for scope in stack.borrow().iter() {
            let mut map = scope.hists.lock().expect("scope poisoned");
            for (key, h) in hists {
                if h.count() > 0 {
                    map.entry(key.clone()).or_default().merge(h);
                }
            }
        }
    });
}

/// Returns a copy of every counter currently in the global registry.
pub fn snapshot() -> BTreeMap<String, u64> {
    registry().lock().expect("obs registry poisoned").clone()
}

/// Returns a copy of every histogram currently in the global registry.
pub fn hist_snapshot() -> BTreeMap<String, Hist> {
    hist_registry()
        .lock()
        .expect("obs hist registry poisoned")
        .clone()
}

/// The per-key difference `after - before`, dropping keys whose value did
/// not change. Keys absent from `before` count from zero.
pub fn snapshot_diff(
    before: &BTreeMap<String, u64>,
    after: &BTreeMap<String, u64>,
) -> BTreeMap<String, u64> {
    after
        .iter()
        .filter_map(|(k, &v)| {
            let d = v.saturating_sub(before.get(k).copied().unwrap_or(0));
            (d > 0).then(|| (k.clone(), d))
        })
        .collect()
}

#[derive(Debug, Default)]
struct ScopeInner {
    counters: Mutex<BTreeMap<String, u64>>,
    hists: Mutex<BTreeMap<String, Hist>>,
}

/// A concurrency-exact counter collector; see the [module docs](self).
///
/// ```
/// use rtise_obs::registry::{record, CounterScope};
///
/// let scope = CounterScope::new();
/// {
///     let _guard = scope.enter();
///     record("doc.example", 3);
/// }
/// assert_eq!(scope.counters()["doc.example"], 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CounterScope {
    inner: Arc<ScopeInner>,
}

impl CounterScope {
    /// A new, empty scope (not yet entered on any thread).
    pub fn new() -> Self {
        CounterScope::default()
    }

    /// Activates the scope on the current thread until the returned guard
    /// drops. Scopes nest: an inner scope does not hide an outer one, both
    /// receive every [`record`] made while active. Enter the same scope
    /// from several threads (via clones) to merge their recordings.
    pub fn enter(&self) -> ScopeGuard {
        ACTIVE.with(|stack| stack.borrow_mut().push(Arc::clone(&self.inner)));
        ScopeGuard {
            inner: Arc::clone(&self.inner),
            _not_send: PhantomData,
        }
    }

    /// Adds directly to this scope (and only this scope), regardless of
    /// which thread calls or what is entered there.
    pub fn add(&self, key: &str, delta: u64) {
        if delta > 0 {
            add_to(
                &mut self.inner.counters.lock().expect("scope poisoned"),
                key,
                delta,
            );
        }
    }

    /// A copy of everything recorded into the scope so far.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.counters.lock().expect("scope poisoned").clone()
    }

    /// A copy of every histogram observed into the scope so far.
    pub fn hists(&self) -> BTreeMap<String, Hist> {
        self.inner.hists.lock().expect("scope poisoned").clone()
    }
}

/// Keeps a [`CounterScope`] active on the thread that created it; see
/// [`CounterScope::enter`]. Not `Send`: the guard must drop on the thread
/// that entered the scope.
#[derive(Debug)]
pub struct ScopeGuard {
    inner: Arc<ScopeInner>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            let top = stack.pop();
            debug_assert!(
                top.is_some_and(|t| Arc::ptr_eq(&t, &self.inner)),
                "scope guards must drop in reverse entry order"
            );
        });
    }
}

/// Detaches the current thread from every entered [`CounterScope`] until
/// the returned guard drops. Used by memoizing caches: work performed
/// inside the isolation still reaches the global registry, but is not
/// charged to whichever consumer happened to trigger the computation —
/// the cache captures it in a scope of its own and [`attribute`]s it to
/// every consumer instead, keeping attribution deterministic.
pub fn isolate() -> IsolationGuard {
    IsolationGuard {
        saved: ACTIVE.with(|stack| std::mem::take(&mut *stack.borrow_mut())),
        _not_send: PhantomData,
    }
}

/// Restores the scopes suspended by [`isolate`] on drop.
#[derive(Debug)]
pub struct IsolationGuard {
    saved: Vec<Arc<ScopeInner>>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for IsolationGuard {
    fn drop(&mut self) {
        ACTIVE.with(|stack| {
            let mut stack = stack.borrow_mut();
            debug_assert!(
                stack.is_empty(),
                "scopes entered under isolation must exit before it ends"
            );
            let inner = std::mem::take(&mut self.saved);
            *stack = inner;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // All tests share one key-space-per-test-name to stay independent even
    // though cargo runs them concurrently in one process.

    #[test]
    fn add_and_snapshot() {
        record("test.registry.a", 2);
        record("test.registry.a", 3);
        assert!(snapshot()["test.registry.a"] >= 5);
    }

    #[test]
    fn zero_delta_creates_nothing() {
        record("test.registry.zero", 0);
        assert!(!snapshot().contains_key("test.registry.zero"));
    }

    #[test]
    fn diff_reports_only_changes() {
        let before = snapshot();
        record("test.registry.diff", 7);
        let after = snapshot();
        let d = snapshot_diff(&before, &after);
        assert_eq!(d.get("test.registry.diff"), Some(&7));
        assert!(!d.contains_key("test.registry.a") || d["test.registry.a"] > 0);
    }

    #[test]
    fn diff_counts_new_keys_from_zero() {
        let empty = BTreeMap::new();
        let mut after = BTreeMap::new();
        after.insert("k".to_string(), 4u64);
        assert_eq!(snapshot_diff(&empty, &after)["k"], 4);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        record("test.registry.mt", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("thread");
        }
        assert!(snapshot()["test.registry.mt"] >= 8000);
    }

    #[test]
    fn scope_collects_only_its_own_thread() {
        let scope = CounterScope::new();
        let noise = std::thread::spawn(|| record("test.scope.own", 1_000));
        {
            let _g = scope.enter();
            record("test.scope.own", 3);
        }
        record("test.scope.own", 9); // after exit: not collected
        noise.join().expect("noise thread");
        assert_eq!(scope.counters()["test.scope.own"], 3);
    }

    #[test]
    fn nested_scopes_both_collect() {
        let outer = CounterScope::new();
        let inner = CounterScope::new();
        let _og = outer.enter();
        {
            let _ig = inner.enter();
            record("test.scope.nested", 4);
        }
        record("test.scope.nested", 2);
        assert_eq!(inner.counters()["test.scope.nested"], 4);
        assert_eq!(outer.counters()["test.scope.nested"], 6);
    }

    #[test]
    fn scope_extends_across_threads_via_clone() {
        let scope = CounterScope::new();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let scope = scope.clone();
                std::thread::spawn(move || {
                    let _g = scope.enter();
                    for _ in 0..500 {
                        record("test.scope.fanout", 1);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker");
        }
        assert_eq!(scope.counters()["test.scope.fanout"], 2000);
    }

    /// The stress shape of the parallel `reproduce` harness: N concurrent
    /// scopes, each fed by its own thread, all hammering the same key.
    /// Per-scope totals must be exact and the global registry must hold
    /// the merged sum.
    #[test]
    fn scope_stress_exact_per_scope_and_merged_totals() {
        const SCOPES: usize = 4;
        const THREADS: usize = 4;
        const INCREMENTS: u64 = 1_000;
        let key = "test.scope.stress";
        let before = snapshot().get(key).copied().unwrap_or(0);
        let scopes: Vec<CounterScope> = (0..SCOPES).map(|_| CounterScope::new()).collect();
        let workers: Vec<_> = scopes
            .iter()
            .flat_map(|scope| {
                (0..THREADS).map(|_| {
                    let scope = scope.clone();
                    std::thread::spawn(move || {
                        let _g = scope.enter();
                        for _ in 0..INCREMENTS {
                            record(key, 1);
                        }
                    })
                })
            })
            .collect();
        for w in workers {
            w.join().expect("stress worker");
        }
        for scope in &scopes {
            assert_eq!(scope.counters()[key], THREADS as u64 * INCREMENTS);
        }
        let merged = snapshot()[key] - before;
        assert_eq!(merged, (SCOPES * THREADS) as u64 * INCREMENTS);
    }

    #[test]
    fn attribute_charges_scopes_but_not_global() {
        let scope = CounterScope::new();
        let mut cached = BTreeMap::new();
        cached.insert("test.scope.attr".to_string(), 11u64);
        cached.insert("test.scope.attr.zero".to_string(), 0u64);
        let before = snapshot().get("test.scope.attr").copied().unwrap_or(0);
        {
            let _g = scope.enter();
            attribute(&cached);
        }
        let after = snapshot().get("test.scope.attr").copied().unwrap_or(0);
        assert_eq!(before, after, "attribute must not touch the registry");
        assert_eq!(scope.counters()["test.scope.attr"], 11);
        assert!(!scope.counters().contains_key("test.scope.attr.zero"));
    }

    #[test]
    fn observe_feeds_global_and_scope_histograms() {
        let scope = CounterScope::new();
        {
            let _g = scope.enter();
            observe("test.hist.basic", 4);
            observe("test.hist.basic", 16);
        }
        observe("test.hist.basic", 99); // after exit: global only
        let scoped = scope.hists();
        assert_eq!(scoped["test.hist.basic"].count(), 2);
        assert_eq!(scoped["test.hist.basic"].max(), 16);
        assert!(hist_snapshot()["test.hist.basic"].count() >= 3);
    }

    #[test]
    fn observe_hist_merges_and_skips_empty() {
        let scope = CounterScope::new();
        let mut h = Hist::new();
        h.observe(7);
        h.observe(9);
        {
            let _g = scope.enter();
            observe_hist("test.hist.merge", &h);
            observe_hist("test.hist.merge.empty", &Hist::new());
        }
        assert_eq!(scope.hists()["test.hist.merge"].count(), 2);
        assert!(!scope.hists().contains_key("test.hist.merge.empty"));
    }

    #[test]
    fn attribute_hists_charges_scopes_but_not_global() {
        let scope = CounterScope::new();
        let mut cached = BTreeMap::new();
        let mut h = Hist::new();
        h.observe(5);
        cached.insert("test.hist.attr".to_string(), h);
        cached.insert("test.hist.attr.empty".to_string(), Hist::new());
        let before = hist_snapshot()
            .get("test.hist.attr")
            .map(Hist::count)
            .unwrap_or(0);
        {
            let _g = scope.enter();
            attribute_hists(&cached);
        }
        let after = hist_snapshot()
            .get("test.hist.attr")
            .map(Hist::count)
            .unwrap_or(0);
        assert_eq!(before, after, "attribute_hists must not touch the registry");
        assert_eq!(scope.hists()["test.hist.attr"].count(), 1);
        assert!(!scope.hists().contains_key("test.hist.attr.empty"));
    }

    #[test]
    fn isolation_detaches_then_restores() {
        let scope = CounterScope::new();
        let _g = scope.enter();
        record("test.scope.iso", 1);
        {
            let _iso = isolate();
            record("test.scope.iso", 100); // global only
        }
        record("test.scope.iso", 2);
        assert_eq!(scope.counters()["test.scope.iso"], 3);
        assert!(snapshot()["test.scope.iso"] >= 103);
    }
}

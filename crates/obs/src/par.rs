//! Deterministic work distribution for parallel solver cores.
//!
//! The branch-and-bound searches decompose an instance into a preorder
//! frontier of independent subtrees and farm those out to a small worker
//! pool. Two requirements shape the scheduler:
//!
//! * **Byte-identical output at any thread count.** Which subtrees exist,
//!   what each one computes, and how results merge must not depend on
//!   timing. Workers therefore claim subtree *indices in order* from a
//!   shared counter (the work deque), and the incumbent a subtree starts
//!   from is the fold of a **fixed window** of earlier results — never
//!   "whatever happens to be best right now".
//! * **Incumbent sharing.** Subtree `i` waits until every subtree
//!   `j < i - window` has published its result, then seeds its search
//!   from that completed prefix. Published slots are lock-free
//!   [`std::sync::OnceLock`] cells, so the wait is bounded and reads are
//!   cheap; the window (not a live atomic best) is what keeps the search
//!   tree — and with it every counter, histogram, trace event, and
//!   certificate — independent of the thread count.
//!
//! Deadlock freedom: claims are handed out in increasing order, so when a
//! worker waits on the prefix of index `i`, every incomplete smaller
//! index is owned by a worker that only waits on indices smaller still;
//! the chain bottoms out at indices below the window, which wait on
//! nothing.
//!
//! The process-wide [`set_threads`]/[`threads`] knob (0 = serial paths
//! untouched) is how binaries opt whole runs into the decomposed
//! searches; library callers that need explicit control use the solvers'
//! `*_par_*` entry points instead and leave the global alone.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Process-wide parallel solver thread count; 0 disables the decomposed
/// code paths entirely.
static PAR_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide solver thread count. `0` (the default) keeps
/// every solver on its historical serial code path; any `n >= 1` routes
/// eligible solves through the decomposed parallel search with `n`
/// workers. Output is byte-identical for every `n >= 1`.
pub fn set_threads(n: usize) {
    PAR_THREADS.store(n, Ordering::Relaxed);
}

/// The process-wide solver thread count; see [`set_threads`].
#[must_use]
pub fn threads() -> usize {
    PAR_THREADS.load(Ordering::Relaxed)
}

/// The completed-result prefix visible to one work item: results of
/// items `0..len`, all guaranteed published.
pub struct Completed<'a, R> {
    slots: &'a [OnceLock<R>],
    len: usize,
}

impl<'a, R> Completed<'a, R> {
    /// Number of visible results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no results are visible yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The visible results, in item order.
    pub fn iter(&self) -> impl Iterator<Item = &'a R> + '_ {
        self.slots[..self.len]
            .iter()
            .map(|s| s.get().expect("prefix published before visibility"))
    }
}

/// How far behind the newest claimed item the visible result prefix may
/// lag: item `i` sees results `0..i.saturating_sub(WINDOW)`. Small
/// enough that good incumbents propagate quickly, large enough that up
/// to `WINDOW` workers run without waiting on each other.
pub const WINDOW: usize = 8;

/// Runs `f` over every item, on `threads` workers, each invocation
/// seeing the deterministic completed prefix `0..i - WINDOW` of earlier
/// results. Returns all results in item order. The result — including
/// which prefix each invocation observed — is byte-identical for every
/// `threads >= 1`; with `threads <= 1` no thread is spawned.
///
/// If `f` panics, every worker finishes or parks safely and the first
/// panic is resumed on the caller.
pub fn run_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T, Completed<'_, R>) -> R + Sync,
{
    let n = items.len();
    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        for (i, item) in items.iter().enumerate() {
            let visible = i.saturating_sub(WINDOW);
            let r = f(
                i,
                item,
                Completed {
                    slots: &slots,
                    len: visible,
                },
            );
            assert!(slots[i].set(r).is_ok(), "slot {i} published twice");
        }
    } else {
        let next = AtomicUsize::new(0);
        // Length of the contiguous published prefix, advanced under the
        // lock so waiters observe it monotonically.
        let published = Mutex::new(0usize);
        let cond = Condvar::new();
        let poisoned = AtomicBool::new(false);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n || poisoned.load(Ordering::Relaxed) {
                break;
            }
            let visible = i.saturating_sub(WINDOW);
            if visible > 0 {
                let mut done = published.lock().expect("publish lock");
                while *done < visible && !poisoned.load(Ordering::Relaxed) {
                    done = cond.wait(done).expect("publish lock");
                }
                if poisoned.load(Ordering::Relaxed) {
                    break;
                }
            }
            match catch_unwind(AssertUnwindSafe(|| {
                f(
                    i,
                    &items[i],
                    Completed {
                        slots: &slots,
                        len: visible,
                    },
                )
            })) {
                Ok(r) => {
                    assert!(slots[i].set(r).is_ok(), "slot {i} published twice");
                    let mut done = published.lock().expect("publish lock");
                    while *done < n && slots[*done].get().is_some() {
                        *done += 1;
                    }
                    cond.notify_all();
                }
                Err(payload) => {
                    poisoned.store(true, Ordering::Relaxed);
                    *panic_slot.lock().expect("panic slot") = Some(payload);
                    cond.notify_all();
                    break;
                }
            }
        };
        std::thread::scope(|s| {
            for _ in 1..threads {
                s.spawn(worker);
            }
            worker();
        });
        let payload = panic_slot.lock().expect("panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot published"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_round_trips_and_defaults_off() {
        // Other tests never touch the global knob, so observing the
        // default here is safe; restore it immediately regardless.
        assert_eq!(threads(), 0);
        set_threads(4);
        assert_eq!(threads(), 4);
        set_threads(0);
    }

    /// The visible prefix each item observes is a pure function of its
    /// index — identical at any worker count.
    #[test]
    fn visible_prefix_is_thread_count_independent() {
        let items: Vec<u64> = (0..50).collect();
        let run = |threads| {
            run_ordered(&items, threads, |i, &item, prefix| {
                let seen: u64 = prefix.iter().sum();
                assert_eq!(prefix.len(), i.saturating_sub(WINDOW));
                item + seen
            })
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..200).collect();
        let got = run_ordered(&items, 8, |i, &item, _| {
            // Uneven work so completion order scrambles.
            std::hint::black_box((0..(item % 7) * 100).sum::<usize>());
            i * 3
        });
        assert_eq!(got, (0..200).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_runs() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_ordered(&empty, 4, |_, _, _: Completed<'_, u8>| 0u8).is_empty());
        assert_eq!(run_ordered(&[7u8], 4, |_, &x, _| x + 1), vec![8]);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let items: Vec<usize> = (0..40).collect();
        let hit = std::panic::catch_unwind(|| {
            run_ordered(&items, 4, |i, _, _: Completed<'_, usize>| {
                assert!(i != 13, "boom");
                i
            })
        });
        assert!(hit.is_err());
    }
}

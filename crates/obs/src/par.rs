//! Deterministic work distribution for parallel solver cores.
//!
//! The branch-and-bound searches decompose an instance into a preorder
//! frontier of independent subtrees and farm those out to a small worker
//! pool. Two requirements shape the scheduler:
//!
//! * **Byte-identical output at any thread count.** Which subtrees exist,
//!   what each one computes, and how results merge must not depend on
//!   timing. Workers therefore claim subtree *indices in order* from a
//!   shared counter (the work deque), and the incumbent a subtree starts
//!   from is the fold of a **fixed window** of earlier results — never
//!   "whatever happens to be best right now".
//! * **Incumbent sharing.** Subtree `i` waits until every subtree
//!   `j < i - window` has published its result, then seeds its search
//!   from that completed prefix. Published slots are lock-free
//!   [`std::sync::OnceLock`] cells, so the wait is bounded and reads are
//!   cheap; the window (not a live atomic best) is what keeps the search
//!   tree — and with it every counter, histogram, trace event, and
//!   certificate — independent of the thread count.
//!
//! Deadlock freedom: claims are handed out in increasing order, so when a
//! worker waits on the prefix of index `i`, every incomplete smaller
//! index is owned by a worker that only waits on indices smaller still;
//! the chain bottoms out at indices below the window, which wait on
//! nothing.
//!
//! The process-wide [`set_threads`]/[`threads`] knob (0 = serial paths
//! untouched) is how binaries opt whole runs into the decomposed
//! searches; library callers that need explicit control use the solvers'
//! `*_par_*` entry points instead and leave the global alone.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Process-wide parallel solver thread count; 0 disables the decomposed
/// code paths entirely.
static PAR_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide solver thread count. `0` (the default) keeps
/// every solver on its historical serial code path; any `n >= 1` routes
/// eligible solves through the decomposed parallel search with `n`
/// workers. Output is byte-identical for every `n >= 1`.
pub fn set_threads(n: usize) {
    PAR_THREADS.store(n, Ordering::Relaxed);
}

/// The process-wide solver thread count; see [`set_threads`].
#[must_use]
pub fn threads() -> usize {
    PAR_THREADS.load(Ordering::Relaxed)
}

/// Process-wide pin for the thread count the solvers *size their
/// decomposition frontier for*; 0 sizes it from the actual worker count.
static FRONTIER_FOR: AtomicUsize = AtomicUsize::new(0);

/// Pins the thread count the decomposed searches size their frontier
/// depth for, independently of how many workers actually run. `0` (the
/// default) sizes the frontier from the solve's own worker count.
///
/// The search tree — and with it every counter, trace event, and
/// certificate — is a function of the frontier *depth*, not the worker
/// count, so two runs at different `--par-threads` values are
/// byte-identical exactly when they pin the same sizing. CI uses this to
/// prove identity at the depths chosen for 1, 2, and 4 workers.
pub fn set_frontier_for(n: usize) {
    FRONTIER_FOR.store(n, Ordering::Relaxed);
}

/// The pinned frontier-sizing thread count; see [`set_frontier_for`].
#[must_use]
pub fn frontier_for() -> usize {
    FRONTIER_FOR.load(Ordering::Relaxed)
}

/// Maps a worker count to a decomposition frontier depth: the shallowest
/// depth whose subtree capacity (`2^depth`, for a binary branching
/// search) covers `threads * WINDOW` subtrees — enough that every worker
/// stays busy while the completed-prefix window lags — clamped to
/// `[3, max_depth]`. Fewer workers get a shallower frontier, so
/// `--par-threads 2` no longer pays the 64-subtree decomposition built
/// for wide pools.
#[must_use]
pub fn frontier_depth(max_depth: usize, threads: usize) -> usize {
    let want = threads.max(1).saturating_mul(WINDOW);
    let mut d = 0usize;
    while d < 63 && (1usize << d) < want {
        d += 1;
    }
    d.clamp(3.min(max_depth), max_depth)
}

/// The frontier depth a solve engaging `threads` workers should use:
/// [`frontier_depth`] of the pinned sizing count when one is set
/// ([`set_frontier_for`]), of `threads` otherwise.
#[must_use]
pub fn sized_frontier_depth(max_depth: usize, threads: usize) -> usize {
    let pinned = frontier_for();
    frontier_depth(max_depth, if pinned > 0 { pinned } else { threads })
}

/// The completed-result prefix visible to one work item: results of
/// items `0..len`, all guaranteed published.
pub struct Completed<'a, R> {
    slots: &'a [OnceLock<R>],
    len: usize,
}

impl<'a, R> Completed<'a, R> {
    /// Number of visible results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no results are visible yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The visible results, in item order.
    pub fn iter(&self) -> impl Iterator<Item = &'a R> + '_ {
        self.slots[..self.len]
            .iter()
            .map(|s| s.get().expect("prefix published before visibility"))
    }
}

/// How far behind the newest claimed item the visible result prefix may
/// lag: item `i` sees results `0..i.saturating_sub(WINDOW)`. Small
/// enough that good incumbents propagate quickly, large enough that up
/// to `WINDOW` workers run without waiting on each other.
pub const WINDOW: usize = 8;

/// Runs `f` over every item, on `threads` workers, each invocation
/// seeing the deterministic completed prefix `0..i - WINDOW` of earlier
/// results. Returns all results in item order. The result — including
/// which prefix each invocation observed — is byte-identical for every
/// `threads >= 1`; with `threads <= 1` no thread is spawned.
///
/// If `f` panics, every worker finishes or parks safely and the first
/// panic is resumed on the caller.
pub fn run_ordered<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T, Completed<'_, R>) -> R + Sync,
{
    let n = items.len();
    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        for (i, item) in items.iter().enumerate() {
            let visible = i.saturating_sub(WINDOW);
            let r = f(
                i,
                item,
                Completed {
                    slots: &slots,
                    len: visible,
                },
            );
            assert!(slots[i].set(r).is_ok(), "slot {i} published twice");
        }
    } else {
        let next = AtomicUsize::new(0);
        // Length of the contiguous published prefix, advanced under the
        // lock so waiters observe it monotonically.
        let published = Mutex::new(0usize);
        let cond = Condvar::new();
        let poisoned = AtomicBool::new(false);
        let panic_slot: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        let worker = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n || poisoned.load(Ordering::Relaxed) {
                break;
            }
            let visible = i.saturating_sub(WINDOW);
            if visible > 0 {
                let mut done = published.lock().expect("publish lock");
                while *done < visible && !poisoned.load(Ordering::Relaxed) {
                    done = cond.wait(done).expect("publish lock");
                }
                if poisoned.load(Ordering::Relaxed) {
                    break;
                }
            }
            match catch_unwind(AssertUnwindSafe(|| {
                f(
                    i,
                    &items[i],
                    Completed {
                        slots: &slots,
                        len: visible,
                    },
                )
            })) {
                Ok(r) => {
                    assert!(slots[i].set(r).is_ok(), "slot {i} published twice");
                    let mut done = published.lock().expect("publish lock");
                    while *done < n && slots[*done].get().is_some() {
                        *done += 1;
                    }
                    cond.notify_all();
                }
                Err(payload) => {
                    poisoned.store(true, Ordering::Relaxed);
                    *panic_slot.lock().expect("panic slot") = Some(payload);
                    cond.notify_all();
                    break;
                }
            }
        };
        std::thread::scope(|s| {
            for _ in 1..threads {
                s.spawn(worker);
            }
            worker();
        });
        let payload = panic_slot.lock().expect("panic slot").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("every slot published"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_round_trips_and_defaults_off() {
        // Other tests never touch the global knob, so observing the
        // default here is safe; restore it immediately regardless.
        assert_eq!(threads(), 0);
        set_threads(4);
        assert_eq!(threads(), 4);
        set_threads(0);
    }

    /// The adaptive frontier is monotone in the worker count, bounded by
    /// the solver's maximum, and genuinely shallower for small pools —
    /// the whole point of sizing it.
    #[test]
    fn frontier_depth_scales_with_the_worker_count() {
        assert_eq!(frontier_depth(6, 1), 3, "1 worker: 8 subtrees");
        assert_eq!(frontier_depth(6, 2), 4, "2 workers: 16 subtrees");
        assert_eq!(frontier_depth(6, 4), 5, "4 workers: 32 subtrees");
        assert_eq!(frontier_depth(6, 8), 6, "8 workers hit the cap");
        assert_eq!(frontier_depth(6, 1000), 6, "never past the cap");
        // The multi-way RMS search caps at 4; small pools still win.
        assert_eq!(frontier_depth(4, 1), 3);
        assert_eq!(frontier_depth(4, 4), 4);
        let mut last = 0;
        for t in 1..64 {
            let d = frontier_depth(6, t);
            assert!(d >= last, "depth must be monotone in threads");
            last = d;
        }
        assert_eq!(frontier_depth(2, 1), 2, "clamp floor respects max_depth");
    }

    /// The visible prefix each item observes is a pure function of its
    /// index — identical at any worker count.
    #[test]
    fn visible_prefix_is_thread_count_independent() {
        let items: Vec<u64> = (0..50).collect();
        let run = |threads| {
            run_ordered(&items, threads, |i, &item, prefix| {
                let seen: u64 = prefix.iter().sum();
                assert_eq!(prefix.len(), i.saturating_sub(WINDOW));
                item + seen
            })
        };
        let serial = run(1);
        for threads in [2, 4, 7] {
            assert_eq!(run(threads), serial, "threads = {threads}");
        }
    }

    #[test]
    fn results_come_back_in_item_order() {
        let items: Vec<usize> = (0..200).collect();
        let got = run_ordered(&items, 8, |i, &item, _| {
            // Uneven work so completion order scrambles.
            std::hint::black_box((0..(item % 7) * 100).sum::<usize>());
            i * 3
        });
        assert_eq!(got, (0..200).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_item_runs() {
        let empty: Vec<u8> = Vec::new();
        assert!(run_ordered(&empty, 4, |_, _, _: Completed<'_, u8>| 0u8).is_empty());
        assert_eq!(run_ordered(&[7u8], 4, |_, &x, _| x + 1), vec![8]);
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let items: Vec<usize> = (0..40).collect();
        let hit = std::panic::catch_unwind(|| {
            run_ordered(&items, 4, |i, _, _: Completed<'_, usize>| {
                assert!(i != 13, "boom");
                i
            })
        });
        assert!(hit.is_err());
    }
}

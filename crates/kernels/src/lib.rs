//! # rtise-kernels
//!
//! The benchmark workload of the paper, re-implemented as executable IR
//! programs: the MiBench / MediaBench / WCET-suite kernels used in the
//! Chapter 3–5 task sets, the JPEG stage loops of the Chapter 6 case study,
//! and the wearable bio-monitoring applications of Chapter 8.
//!
//! Each [`Kernel`] carries its program, initial state, and a reference Rust
//! implementation; [`Kernel::validate`] runs the simulator and cross-checks
//! the result bit-for-bit, so every customization experiment operates on
//! code that provably computes the real algorithm.
//!
//! # Example
//!
//! ```
//! use rtise_kernels::suite;
//!
//! let kernels = suite();
//! assert!(kernels.iter().any(|k| k.name == "crc32"));
//! for k in kernels.iter().take(3) {
//!     k.validate().expect("kernel output matches its reference");
//! }
//! ```

pub mod biomon;
pub mod builder;
pub mod crypto;
pub mod dsp;
pub mod media;

use rtise_ir::cfg::Program;
use rtise_sim::{RunResult, SimError, Simulator};
use std::fmt;

/// A benchmark kernel: an executable program plus its reference result.
pub struct Kernel {
    /// Benchmark name as used in the paper's tables.
    pub name: &'static str,
    /// The executable program.
    pub program: Program,
    /// Initial variable file.
    pub init_vars: Vec<i64>,
    /// Initial memory image.
    pub init_mem: Vec<i64>,
    /// Checks a run result against the reference implementation.
    #[allow(clippy::type_complexity)]
    check: Box<dyn Fn(&RunResult) -> Result<(), String> + Send + Sync>,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("name", &self.name)
            .field("blocks", &self.program.blocks.len())
            .finish()
    }
}

/// A kernel failed validation against its reference implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateKernelError {
    /// Simulation failed.
    Sim(SimError),
    /// Output mismatch; the message names the first divergence.
    Mismatch {
        /// Kernel name.
        kernel: &'static str,
        /// Description of the divergence.
        detail: String,
    },
}

impl fmt::Display for ValidateKernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateKernelError::Sim(e) => write!(f, "simulation failed: {e}"),
            ValidateKernelError::Mismatch { kernel, detail } => {
                write!(f, "{kernel} diverged from reference: {detail}")
            }
        }
    }
}

impl std::error::Error for ValidateKernelError {}

impl Kernel {
    /// Builds a kernel from parts; `check` compares a run result with the
    /// reference implementation.
    pub fn new(
        name: &'static str,
        program: Program,
        init_vars: Vec<i64>,
        init_mem: Vec<i64>,
        check: impl Fn(&RunResult) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        Kernel {
            name,
            program,
            init_vars,
            init_mem,
            check: Box::new(check),
        }
    }

    /// Runs the kernel on its canonical input.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run(&self) -> Result<RunResult, SimError> {
        Simulator::new(&self.program)?.run(&self.init_vars, &self.init_mem)
    }

    /// Runs the kernel with block-trace recording enabled.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors.
    pub fn run_traced(&self) -> Result<RunResult, SimError> {
        Simulator::new(&self.program)?
            .with_trace(true)
            .run(&self.init_vars, &self.init_mem)
    }

    /// Runs the kernel and cross-checks the result against the reference
    /// implementation.
    ///
    /// # Errors
    ///
    /// [`ValidateKernelError::Sim`] on simulation failure,
    /// [`ValidateKernelError::Mismatch`] when outputs diverge.
    pub fn validate(&self) -> Result<RunResult, ValidateKernelError> {
        let out = self.run().map_err(ValidateKernelError::Sim)?;
        (self.check)(&out).map_err(|detail| ValidateKernelError::Mismatch {
            kernel: self.name,
            detail,
        })?;
        Ok(out)
    }
}

/// Deterministic pseudo-random data for kernel inputs (xorshift64*). Keeps
/// the crate free of runtime dependencies while making every experiment
/// reproducible.
#[derive(Debug, Clone)]
pub struct DataGen {
    state: u64,
}

impl DataGen {
    /// Creates a generator from a non-zero seed.
    pub fn new(seed: u64) -> Self {
        DataGen { state: seed.max(1) }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> i64 {
        (self.next_u64() % bound.max(1)) as i64
    }

    /// A vector of `n` values in `[0, bound)`.
    pub fn vec_below(&mut self, n: usize, bound: u64) -> Vec<i64> {
        (0..n).map(|_| self.below(bound)).collect()
    }
}

/// The full benchmark suite used across the experiments (Table 5.1 roster
/// plus the Chapter 3/4 MiBench picks, JPEG stages, and bio-monitoring).
pub fn suite() -> Vec<Kernel> {
    vec![
        crypto::crc32(),
        crypto::sha(),
        crypto::md5(),
        crypto::blowfish(),
        crypto::rijndael(),
        crypto::des3(),
        crypto::ndes(),
        media::adpcm_encode(),
        media::adpcm_decode(),
        media::jfdctint(),
        media::g721_decode(),
        media::g721_encode(),
        media::jpeg_pipeline(),
        dsp::lms(),
        dsp::fir(),
        dsp::susan(),
        dsp::compress(),
        dsp::matmul(),
        dsp::bitcount(),
        dsp::viterbi(),
        biomon::vital_signs(),
        biomon::fall_detection(),
    ]
}

/// Looks a kernel up by name.
pub fn by_name(name: &str) -> Option<Kernel> {
    suite().into_iter().find(|k| k.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn whole_suite_validates_against_references() {
        for k in suite() {
            k.validate()
                .unwrap_or_else(|e| panic!("kernel {} failed: {e}", k.name));
        }
    }

    #[test]
    fn suite_names_are_unique() {
        let ks = suite();
        let mut names: Vec<_> = ks.iter().map(|k| k.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ks.len());
    }

    #[test]
    fn by_name_finds_known_kernels() {
        assert!(by_name("crc32").is_some());
        assert!(by_name("jfdctint").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn wcet_analysis_covers_the_whole_suite() {
        for k in suite() {
            let r =
                rtise_ir::wcet::analyze(&k.program).unwrap_or_else(|e| panic!("{}: {e}", k.name));
            let sim = k.run().expect("run");
            assert!(
                r.wcet >= sim.cycles,
                "{}: WCET {} < simulated {}",
                k.name,
                r.wcet,
                sim.cycles
            );
        }
    }

    #[test]
    fn datagen_is_deterministic() {
        let mut a = DataGen::new(7);
        let mut b = DataGen::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let v = DataGen::new(9).vec_below(5, 100);
        assert!(v.iter().all(|&x| (0..100).contains(&x)));
    }
}

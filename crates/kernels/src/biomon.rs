//! Wearable bio-monitoring applications (Chapter 8): continuous vital-sign
//! monitoring from a PPG waveform and accelerometer-based fall detection,
//! both in fixed-point arithmetic (§8.2.1).

use crate::builder::{mem_load_at, mem_store_at, SeqBuilder};
use crate::{DataGen, Kernel};
use rtise_ir::dfg::Operand;
use rtise_ir::op::OpKind;

const PPG_LEN: usize = 256;

/// Synthesizes a noisy periodic PPG-like waveform (fixed point, period 25
/// samples ≈ 75 bpm at 31.25 Hz).
fn ppg_signal() -> Vec<i64> {
    let mut gen = DataGen::new(0xb10_0001);
    (0..PPG_LEN)
        .map(|i| {
            // Triangle pulse train plus small noise.
            let phase = (i % 25) as i64;
            let pulse = if phase < 5 {
                phase * 200
            } else {
                (25 - phase) * 40
            };
            pulse + gen.below(16)
        })
        .collect()
}

/// Continuous vital-sign monitoring: 4-tap moving-average smoothing of the
/// PPG followed by branch-free peak detection and inter-beat-interval
/// accumulation (the heart-rate / pulse-transit-time pipeline of Fig. 8.3).
pub fn vital_signs() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const COND: usize = 2;
    const PEAKS: usize = 3;
    const LAST: usize = 4; // index of previous peak
    const IBI_SUM: usize = 5; // sum of inter-beat intervals
    const RAW: i64 = 0;
    const SMOOTH: i64 = PPG_LEN as i64;
    const THRESH: i64 = 420;

    let raw = ppg_signal();
    let mut mem = raw.clone();
    mem.extend(std::iter::repeat_n(0, PPG_LEN));

    let mut b = SeqBuilder::new("vital_signs", 6, mem.len());
    b.straight("init_smooth", |d| {
        let z = d.imm(0);
        let n = d.imm(PPG_LEN as i64 - 4);
        d.output(I, z);
        d.output(N, n);
        d.output(PEAKS, z);
        d.output(LAST, z);
        d.output(IBI_SUM, z);
    });
    b.begin_for("smooth", I, N, COND, PPG_LEN as u64);
    b.straight("avg4", |d| {
        let i = d.input(I);
        let mut acc = d.imm(0);
        for k in 0..4 {
            let idx = d.bin_imm(OpKind::Add, i, k);
            let x = mem_load_at(d, RAW, idx);
            acc = d.bin(OpKind::Add, acc, x);
        }
        let avg = d.bin_imm(OpKind::Sar, acc, 2);
        mem_store_at(d, SMOOTH, i, avg);
    });
    b.end_for();
    b.straight("init_detect", |d| {
        let one = d.imm(1);
        let n = d.imm(PPG_LEN as i64 - 5);
        d.output(I, one);
        d.output(N, n);
    });
    b.begin_for("detect", I, N, COND, PPG_LEN as u64);
    b.straight("peak", |d| {
        let i = d.input(I);
        let im1 = d.bin_imm(OpKind::Sub, i, 1);
        let ip1 = d.bin_imm(OpKind::Add, i, 1);
        let prev = mem_load_at(d, SMOOTH, im1);
        let cur = mem_load_at(d, SMOOTH, i);
        let next = mem_load_at(d, SMOOTH, ip1);
        let rising = d.bin(OpKind::Lt, prev, cur);
        let falling = d.bin(OpKind::Le, next, cur);
        let tall = d.bin_imm(OpKind::Lt, cur, THRESH);
        let one = d.imm(1);
        let tall_inv = d.bin(OpKind::Sub, one, tall); // cur >= THRESH
        let shape = d.bin(OpKind::And, rising, falling);
        let is_peak = d.bin(OpKind::And, shape, tall_inv);
        // Branch-free state update via selects.
        let peaks = d.input(PEAKS);
        let last = d.input(LAST);
        let ibi = d.input(IBI_SUM);
        let peaks1 = d.bin(OpKind::Add, peaks, is_peak);
        let interval = d.bin(OpKind::Sub, i, last);
        let ibi1 = d.bin(OpKind::Add, ibi, interval);
        let new_ibi = d.node(
            OpKind::Select,
            &[
                Operand::Node(is_peak),
                Operand::Node(ibi1),
                Operand::Node(ibi),
            ],
        );
        let new_last = d.node(
            OpKind::Select,
            &[
                Operand::Node(is_peak),
                Operand::Node(i),
                Operand::Node(last),
            ],
        );
        d.output(PEAKS, peaks1);
        d.output(LAST, new_last);
        d.output(IBI_SUM, new_ibi);
    });
    b.end_for();
    let program = b.finish();

    let expected = {
        let mut smooth = vec![0i64; PPG_LEN];
        for i in 0..PPG_LEN - 4 {
            smooth[i] = (raw[i] + raw[i + 1] + raw[i + 2] + raw[i + 3]) >> 2;
        }
        let (mut peaks, mut last, mut ibi) = (0i64, 0i64, 0i64);
        for i in 1..PPG_LEN - 5 {
            let is_peak =
                smooth[i - 1] < smooth[i] && smooth[i + 1] <= smooth[i] && smooth[i] >= THRESH;
            if is_peak {
                peaks += 1;
                ibi += i as i64 - last;
                last = i as i64;
            }
        }
        (peaks, ibi)
    };
    Kernel::new("vital_signs", program, vec![], mem, move |out| {
        if (out.vars[PEAKS], out.vars[IBI_SUM]) == expected {
            Ok(())
        } else {
            Err(format!(
                "peaks/ibi ({}, {}) != ({}, {})",
                out.vars[PEAKS], out.vars[IBI_SUM], expected.0, expected.1
            ))
        }
    })
}

const ACC_LEN: usize = 128;

/// Fall detection: squared acceleration magnitude against free-fall and
/// impact thresholds over a 3-axis window, counting fall signatures
/// (free-fall followed within 16 samples by an impact).
pub fn fall_detection() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const COND: usize = 2;
    const FALLS: usize = 3;
    const FF_AT: usize = 4; // time of last free-fall, -100 if none
    const AX: i64 = 0;
    const AY: i64 = ACC_LEN as i64;
    const AZ: i64 = 2 * ACC_LEN as i64;
    // Thresholds on |a|² in milli-g²: free-fall < 0.25 g², impact > 4 g².
    const FREE_FALL: i64 = 250_000;
    const IMPACT: i64 = 4_000_000;

    // Simulate a wear pattern: mostly ~1 g with one fall event.
    let mut gen = DataGen::new(0xfa11_0001);
    let mut ax = Vec::with_capacity(ACC_LEN);
    let mut ay = Vec::with_capacity(ACC_LEN);
    let mut az = Vec::with_capacity(ACC_LEN);
    for i in 0..ACC_LEN {
        let (x, y, z) = match i {
            60..=65 => (gen.below(100), gen.below(100), gen.below(100)), // free fall
            70 => (2500, 1200, 900),                                     // impact
            _ => (gen.below(200), gen.below(200), 950 + gen.below(100)), // wear
        };
        ax.push(x);
        ay.push(y);
        az.push(z);
    }
    let mut mem = ax.clone();
    mem.extend_from_slice(&ay);
    mem.extend_from_slice(&az);

    let mut b = SeqBuilder::new("fall_detection", 5, mem.len());
    b.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(ACC_LEN as i64);
        let none = d.imm(-100);
        d.output(I, z);
        d.output(N, n);
        d.output(FALLS, z);
        d.output(FF_AT, none);
    });
    b.begin_for("window", I, N, COND, ACC_LEN as u64);
    b.straight("classify", |d| {
        let i = d.input(I);
        let x = mem_load_at(d, AX, i);
        let y = mem_load_at(d, AY, i);
        let z = mem_load_at(d, AZ, i);
        let xx = d.bin(OpKind::Mul, x, x);
        let yy = d.bin(OpKind::Mul, y, y);
        let zz = d.bin(OpKind::Mul, z, z);
        let s = d.bin(OpKind::Add, xx, yy);
        let mag2 = d.bin(OpKind::Add, s, zz);
        let in_free_fall = d.bin_imm(OpKind::Lt, mag2, FREE_FALL);
        let impact_thr = d.imm(IMPACT);
        let is_impact = d.bin(OpKind::Lt, impact_thr, mag2);
        let ff_at = d.input(FF_AT);
        let falls = d.input(FALLS);
        // Impact within 16 samples of a free-fall counts as a fall.
        let since = d.bin(OpKind::Sub, i, ff_at);
        let recent = d.bin_imm(OpKind::Le, since, 16);
        let hit0 = d.bin(OpKind::And, is_impact, recent);
        let falls1 = d.bin(OpKind::Add, falls, hit0);
        // Remember the latest free-fall time; clear after a counted fall.
        let new_ff = d.node(
            OpKind::Select,
            &[
                Operand::Node(in_free_fall),
                Operand::Node(i),
                Operand::Node(ff_at),
            ],
        );
        let cleared = d.imm(-100);
        let ff_final = d.node(
            OpKind::Select,
            &[
                Operand::Node(hit0),
                Operand::Node(cleared),
                Operand::Node(new_ff),
            ],
        );
        d.output(FALLS, falls1);
        d.output(FF_AT, ff_final);
    });
    b.end_for();
    let program = b.finish();

    let expected = {
        let mut falls = 0i64;
        let mut ff_at = -100i64;
        for i in 0..ACC_LEN {
            let mag2 = ax[i] * ax[i] + ay[i] * ay[i] + az[i] * az[i];
            let in_ff = mag2 < FREE_FALL;
            let impact = mag2 > IMPACT;
            let hit = impact && (i as i64 - ff_at) <= 16;
            if hit {
                falls += 1;
            }
            ff_at = if in_ff { i as i64 } else { ff_at };
            if hit {
                ff_at = -100;
            }
        }
        falls
    };
    Kernel::new("fall_detection", program, vec![], mem, move |out| {
        if out.vars[FALLS] == expected {
            Ok(())
        } else {
            Err(format!("falls {} != {expected}", out.vars[FALLS]))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vital_signs_detects_pulses() {
        let k = vital_signs();
        let out = k.validate().expect("vital_signs");
        // ~75 bpm pulse train over 256 samples at 25-sample period: around
        // ten peaks.
        assert!(out.vars[3] >= 8, "too few peaks: {}", out.vars[3]);
    }

    #[test]
    fn fall_detection_sees_the_staged_fall() {
        let k = fall_detection();
        let out = k.validate().expect("fall_detection");
        assert_eq!(out.vars[3], 1, "exactly one staged fall event");
    }
}

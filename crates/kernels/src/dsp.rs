//! Signal-processing kernels: `lms` (adaptive filter), `fir`, `susan`
//! (corner-response thresholding), `compress` (histogram + checksum),
//! `matmul` (fixed-point 8×8), `bitcount` (SWAR popcount) and `viterbi`
//! (add-compare-select trellis decoding).

use crate::builder::{mem_load_at, mem_store_at, SeqBuilder};
use crate::{DataGen, Kernel};
use rtise_ir::op::OpKind;

const TAPS: usize = 8;

/// LMS adaptive filter (Q15): 8 unrolled taps per sample, error feedback
/// into the weights — the WCET-suite `lms` workload.
pub fn lms() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const COND: usize = 2;
    const SAMPLES: usize = 64;
    const X: i64 = 0; // input, SAMPLES + TAPS entries
    const D: i64 = (SAMPLES + TAPS) as i64; // desired signal
    const W: i64 = D + SAMPLES as i64; // weights
    const E: i64 = W + TAPS as i64; // error output
    const MU_SHIFT: i64 = 12;

    let mut gen = DataGen::new(0x1a15_0001);
    let x: Vec<i64> = (0..SAMPLES + TAPS)
        .map(|_| gen.below(2048) - 1024)
        .collect();
    let desired: Vec<i64> = (0..SAMPLES).map(|_| gen.below(2048) - 1024).collect();
    let mut mem = x.clone();
    mem.extend_from_slice(&desired);
    mem.extend(std::iter::repeat_n(0, TAPS + SAMPLES));

    let mut b = SeqBuilder::new("lms", 3, mem.len());
    b.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(SAMPLES as i64);
        d.output(I, z);
        d.output(N, n);
    });
    b.begin_for("samples", I, N, COND, SAMPLES as u64);
    b.straight("adapt", |d| {
        let i = d.input(I);
        // y = Σ w_k * x[i+k] >> 15
        let xs: Vec<_> = (0..TAPS)
            .map(|k| {
                let idx = d.bin_imm(OpKind::Add, i, k as i64);
                mem_load_at(d, X, idx)
            })
            .collect();
        let ws: Vec<_> = (0..TAPS)
            .map(|k| {
                let kk = d.imm(k as i64);
                mem_load_at(d, W, kk)
            })
            .collect();
        let mut acc = d.imm(0);
        for k in 0..TAPS {
            let p = d.bin(OpKind::Mul, ws[k], xs[k]);
            acc = d.bin(OpKind::Add, acc, p);
        }
        let y = d.bin_imm(OpKind::Sar, acc, 15);
        let des = mem_load_at(d, D, i);
        let e = d.bin(OpKind::Sub, des, y);
        mem_store_at(d, E, i, e);
        // w_k += (e * x[i+k]) >> MU_SHIFT
        for k in 0..TAPS {
            let p = d.bin(OpKind::Mul, e, xs[k]);
            let upd = d.bin_imm(OpKind::Sar, p, MU_SHIFT);
            let wn = d.bin(OpKind::Add, ws[k], upd);
            let kk = d.imm(k as i64);
            mem_store_at(d, W, kk, wn);
        }
    });
    b.end_for();
    let program = b.finish();

    let expected: Vec<i64> = {
        let mut w = [0i64; TAPS];
        let mut errs = Vec::with_capacity(SAMPLES);
        for i in 0..SAMPLES {
            let y = (0..TAPS).map(|k| w[k] * x[i + k]).sum::<i64>() >> 15;
            let e = desired[i] - y;
            errs.push(e);
            for k in 0..TAPS {
                w[k] += (e * x[i + k]) >> MU_SHIFT;
            }
        }
        errs
    };
    Kernel::new("lms", program, vec![], mem, move |out| {
        let got = &out.mem[E as usize..E as usize + SAMPLES];
        if got == expected.as_slice() {
            Ok(())
        } else {
            Err("lms error signal diverged".into())
        }
    })
}

/// Direct-form FIR filter (Q8 coefficients, 8 unrolled taps).
pub fn fir() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const COND: usize = 2;
    const SAMPLES: usize = 96;
    const X: i64 = 0;
    const C: i64 = (SAMPLES + TAPS) as i64;
    const Y: i64 = C + TAPS as i64;

    let mut gen = DataGen::new(0xf14_0001);
    let x: Vec<i64> = (0..SAMPLES + TAPS).map(|_| gen.below(512) - 256).collect();
    let coeffs: Vec<i64> = (0..TAPS).map(|_| gen.below(128) - 64).collect();
    let mut mem = x.clone();
    mem.extend_from_slice(&coeffs);
    mem.extend(std::iter::repeat_n(0, SAMPLES));

    let coeffs_ir = coeffs.clone();
    let mut b = SeqBuilder::new("fir", 3, mem.len());
    b.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(SAMPLES as i64);
        d.output(I, z);
        d.output(N, n);
    });
    b.begin_for("samples", I, N, COND, SAMPLES as u64);
    b.straight("mac", move |d| {
        let i = d.input(I);
        let mut acc = d.imm(0);
        for (k, &c) in coeffs_ir.iter().enumerate() {
            let idx = d.bin_imm(OpKind::Add, i, k as i64);
            let xv = mem_load_at(d, X, idx);
            let p = d.bin_imm(OpKind::Mul, xv, c);
            acc = d.bin(OpKind::Add, acc, p);
        }
        let y = d.bin_imm(OpKind::Sar, acc, 8);
        mem_store_at(d, Y, i, y);
    });
    b.end_for();
    let program = b.finish();

    let expected: Vec<i64> = (0..SAMPLES)
        .map(|i| (0..TAPS).map(|k| x[i + k] * coeffs[k]).sum::<i64>() >> 8)
        .collect();
    Kernel::new("fir", program, vec![], mem, move |out| {
        let got = &out.mem[Y as usize..Y as usize + SAMPLES];
        if got == expected.as_slice() {
            Ok(())
        } else {
            Err("fir output diverged".into())
        }
    })
}

const SUSAN_DIM: usize = 16;

/// SUSAN-style corner response: for every interior pixel of a 16×16 image,
/// count 8-neighbours within an intensity threshold of the centre
/// (unrolled absolute-difference/compare tree).
pub fn susan() -> Kernel {
    const R: usize = 0;
    const NR: usize = 1;
    const C: usize = 2;
    const NC: usize = 3;
    const C1: usize = 4;
    const C2: usize = 5;
    const IMG: i64 = 0;
    const OUT: i64 = (SUSAN_DIM * SUSAN_DIM) as i64;
    const THRESH: i64 = 27;

    let mut gen = DataGen::new(0x5a5a_0001);
    let img = gen.vec_below(SUSAN_DIM * SUSAN_DIM, 256);
    let mut mem = img.clone();
    mem.extend(std::iter::repeat_n(0, SUSAN_DIM * SUSAN_DIM));

    let mut b = SeqBuilder::new("susan", 6, mem.len());
    b.straight("init", |d| {
        let one = d.imm(1);
        let lim = d.imm(SUSAN_DIM as i64 - 1);
        d.output(R, one);
        d.output(NR, lim);
        d.output(NC, lim);
    });
    b.begin_for("rows", R, NR, C1, (SUSAN_DIM - 2) as u64);
    b.straight("reset_col", |d| {
        let one = d.imm(1);
        d.output(C, one);
    });
    b.begin_for("cols", C, NC, C2, (SUSAN_DIM - 2) as u64);
    b.straight("usan", |d| {
        let r = d.input(R);
        let c = d.input(C);
        let rw = d.bin_imm(OpKind::Mul, r, SUSAN_DIM as i64);
        let center_idx = d.bin(OpKind::Add, rw, c);
        let center = mem_load_at(d, IMG, center_idx);
        let mut count = d.imm(0);
        for (dr, dc) in [
            (-1i64, -1i64),
            (-1, 0),
            (-1, 1),
            (0, -1),
            (0, 1),
            (1, -1),
            (1, 0),
            (1, 1),
        ] {
            let off = d.imm(dr * SUSAN_DIM as i64 + dc);
            let idx = d.bin(OpKind::Add, center_idx, off);
            let px = mem_load_at(d, IMG, idx);
            let diff = d.bin(OpKind::Sub, px, center);
            let adiff = d.un(OpKind::Abs, diff);
            let within = d.bin_imm(OpKind::Lt, adiff, THRESH);
            count = d.bin(OpKind::Add, count, within);
        }
        mem_store_at(d, OUT, center_idx, count);
    });
    b.end_for();
    b.end_for();
    let program = b.finish();

    let expected: Vec<i64> = {
        let mut out = vec![0i64; SUSAN_DIM * SUSAN_DIM];
        for r in 1..SUSAN_DIM - 1 {
            for c in 1..SUSAN_DIM - 1 {
                let center = img[r * SUSAN_DIM + c];
                let mut count = 0;
                for dr in -1i64..=1 {
                    for dc in -1i64..=1 {
                        if dr == 0 && dc == 0 {
                            continue;
                        }
                        let idx = (r as i64 + dr) * SUSAN_DIM as i64 + c as i64 + dc;
                        if (img[idx as usize] - center).abs() < THRESH {
                            count += 1;
                        }
                    }
                }
                out[r * SUSAN_DIM + c] = count;
            }
        }
        out
    };
    Kernel::new("susan", program, vec![], mem, move |out| {
        let got = &out.mem[OUT as usize..OUT as usize + SUSAN_DIM * SUSAN_DIM];
        if got == expected.as_slice() {
            Ok(())
        } else {
            Err("usan counts diverged".into())
        }
    })
}

/// `compress`-style pass: byte histogram plus a rolling mix checksum over a
/// 128-byte buffer.
pub fn compress() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const ACC: usize = 2;
    const COND: usize = 3;
    const LEN: usize = 128;
    const DATA: i64 = 0;
    const HIST: i64 = LEN as i64; // 32 buckets (byte >> 3)

    let mut gen = DataGen::new(0xc0a0_0001);
    let data = gen.vec_below(LEN, 256);
    let mut mem = data.clone();
    mem.extend(std::iter::repeat_n(0, 32));

    let mut b = SeqBuilder::new("compress", 4, mem.len());
    b.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(LEN as i64);
        d.output(I, z);
        d.output(N, n);
        d.output(ACC, z);
    });
    b.begin_for("bytes", I, N, COND, LEN as u64);
    b.straight("mix", |d| {
        let i = d.input(I);
        let acc = d.input(ACC);
        let byte = mem_load_at(d, DATA, i);
        let bucket = d.bin_imm(OpKind::Shr, byte, 3);
        let h = mem_load_at(d, HIST, bucket);
        let h1 = d.bin_imm(OpKind::Add, h, 1);
        mem_store_at(d, HIST, bucket, h1);
        let rot = d.bin_imm(OpKind::Shl, acc, 5);
        let mix0 = d.bin(OpKind::Xor, rot, acc);
        let mix1 = d.bin(OpKind::Add, mix0, byte);
        let mix = d.bin_imm(OpKind::And, mix1, 0x7fff_ffff);
        d.output(ACC, mix);
    });
    b.end_for();
    let program = b.finish();

    let expected = {
        let mut hist = vec![0i64; 32];
        let mut acc = 0i64;
        for &byte in &data {
            hist[(byte >> 3) as usize] += 1;
            acc = ((acc << 5) ^ acc).wrapping_add(byte) & 0x7fff_ffff;
        }
        (hist, acc)
    };
    Kernel::new("compress", program, vec![], mem, move |out| {
        if out.vars[ACC] != expected.1 {
            return Err(format!("checksum {} != {}", out.vars[ACC], expected.1));
        }
        let got = &out.mem[HIST as usize..HIST as usize + 32];
        if got != expected.0.as_slice() {
            return Err("histogram diverged".into());
        }
        Ok(())
    })
}

const MAT_DIM: usize = 8;

/// Fixed-point 8×8 matrix multiply (Q8): nested row/column loops with the
/// inner dot product fully unrolled into an 8-term MAC chain.
pub fn matmul() -> Kernel {
    const I: usize = 0;
    const NI: usize = 1;
    const J: usize = 2;
    const NJ: usize = 3;
    const C1: usize = 4;
    const C2: usize = 5;
    const A: i64 = 0;
    const B: i64 = (MAT_DIM * MAT_DIM) as i64;
    const C: i64 = 2 * B;

    let mut gen = DataGen::new(0x3a73_0001);
    let a: Vec<i64> = (0..MAT_DIM * MAT_DIM)
        .map(|_| gen.below(512) - 256)
        .collect();
    let b: Vec<i64> = (0..MAT_DIM * MAT_DIM)
        .map(|_| gen.below(512) - 256)
        .collect();
    let mut mem = a.clone();
    mem.extend_from_slice(&b);
    mem.extend(std::iter::repeat_n(0, MAT_DIM * MAT_DIM));

    let mut bld = SeqBuilder::new("matmul", 6, mem.len());
    bld.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(MAT_DIM as i64);
        d.output(I, z);
        d.output(NI, n);
        d.output(NJ, n);
    });
    bld.begin_for("rows", I, NI, C1, MAT_DIM as u64);
    bld.straight("reset_j", |d| {
        let z = d.imm(0);
        d.output(J, z);
    });
    bld.begin_for("cols", J, NJ, C2, MAT_DIM as u64);
    bld.straight("dot", |d| {
        let i = d.input(I);
        let j = d.input(J);
        let row = d.bin_imm(OpKind::Mul, i, MAT_DIM as i64);
        let mut acc = d.imm(0);
        for k in 0..MAT_DIM {
            let ai = d.bin_imm(OpKind::Add, row, k as i64);
            let av = mem_load_at(d, A, ai);
            let bk = d.imm((k * MAT_DIM) as i64);
            let bi = d.bin(OpKind::Add, bk, j);
            let bv = mem_load_at(d, B, bi);
            let p = d.bin(OpKind::Mul, av, bv);
            acc = d.bin(OpKind::Add, acc, p);
        }
        let scaled = d.bin_imm(OpKind::Sar, acc, 8);
        let ci = d.bin(OpKind::Add, row, j);
        mem_store_at(d, C, ci, scaled);
    });
    bld.end_for();
    bld.end_for();
    let program = bld.finish();

    let expected: Vec<i64> = {
        let mut c = vec![0i64; MAT_DIM * MAT_DIM];
        for i in 0..MAT_DIM {
            for j in 0..MAT_DIM {
                let dot: i64 = (0..MAT_DIM)
                    .map(|k| a[i * MAT_DIM + k] * b[k * MAT_DIM + j])
                    .sum();
                c[i * MAT_DIM + j] = dot >> 8;
            }
        }
        c
    };
    Kernel::new("matmul", program, vec![], mem, move |out| {
        let got = &out.mem[C as usize..C as usize + MAT_DIM * MAT_DIM];
        if got == expected.as_slice() {
            Ok(())
        } else {
            Err("matrix product diverged".into())
        }
    })
}

/// Bit counting over 64 words via the SWAR population-count network — the
/// MiBench `bitcnt` flavour whose shift/mask tree is prime
/// custom-instruction material.
pub fn bitcount() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const TOTAL: usize = 2;
    const COND: usize = 3;
    const WORDS: usize = 64;

    let mut gen = DataGen::new(0xb17c_0007);
    let data: Vec<i64> = (0..WORDS).map(|_| gen.next_u64() as i64).collect();

    let mut b = SeqBuilder::new("bitcount", 4, WORDS);
    b.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(WORDS as i64);
        d.output(I, z);
        d.output(N, n);
        d.output(TOTAL, z);
    });
    b.begin_for("words", I, N, COND, WORDS as u64);
    b.straight("popcount", |d| {
        let i = d.input(I);
        let total = d.input(TOTAL);
        let v = mem_load_at(d, 0, i);
        // SWAR tree on 64-bit words.
        let s1 = d.bin_imm(OpKind::Shr, v, 1);
        let m1 = d.bin_imm(OpKind::And, s1, 0x5555_5555_5555_5555);
        let v1 = d.bin(OpKind::Sub, v, m1);
        let a2 = d.bin_imm(OpKind::And, v1, 0x3333_3333_3333_3333);
        let s2 = d.bin_imm(OpKind::Shr, v1, 2);
        let b2 = d.bin_imm(OpKind::And, s2, 0x3333_3333_3333_3333);
        let v2 = d.bin(OpKind::Add, a2, b2);
        let s4 = d.bin_imm(OpKind::Shr, v2, 4);
        let v4a = d.bin(OpKind::Add, v2, s4);
        let v4 = d.bin_imm(OpKind::And, v4a, 0x0f0f_0f0f_0f0f_0f0f);
        let prod = d.bin_imm(OpKind::Mul, v4, 0x0101_0101_0101_0101u64 as i64);
        let cnt = d.bin_imm(OpKind::Shr, prod, 56);
        let cnt8 = d.bin_imm(OpKind::And, cnt, 0xff);
        let t2 = d.bin(OpKind::Add, total, cnt8);
        d.output(TOTAL, t2);
    });
    b.end_for();
    let program = b.finish();

    let expected: i64 = data.iter().map(|&w| (w as u64).count_ones() as i64).sum();
    Kernel::new("bitcount", program, vec![], data, move |out| {
        if out.vars[TOTAL] == expected {
            Ok(())
        } else {
            Err(format!("popcount {} != {expected}", out.vars[TOTAL]))
        }
    })
}

/// Viterbi forward pass for the rate-1/2, constraint-length-3 convolutional
/// code (4 trellis states): per observed 2-bit symbol, eight
/// add-compare-select operations update the path metrics — the canonical
/// ACS structure custom instructions collapse best.
pub fn viterbi() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const COND: usize = 2;
    const M0: usize = 3; // path metrics per state
    const SYMBOLS: usize = 96;

    // Generators G1 = 7 (111), G2 = 5 (101) on (input, state) history.
    let expected = |state: i64, input: i64| -> i64 {
        let h = (input << 2) | state; // 3-bit history, newest first
        let g1 = ((h & 4) >> 2) ^ ((h & 2) >> 1) ^ (h & 1);
        let g2 = ((h & 4) >> 2) ^ (h & 1);
        (g1 << 1) | g2
    };

    // Encode a pseudo-random bit stream, then flip a few symbol bits
    // (channel noise) to make the metric landscape non-trivial.
    let mut gen = DataGen::new(0x71e4_b1b1);
    let bits: Vec<i64> = (0..SYMBOLS).map(|_| gen.below(2)).collect();
    let mut state = 0i64;
    let mut symbols: Vec<i64> = bits
        .iter()
        .map(|&b| {
            let out = expected(state, b);
            state = ((state << 1) | b) & 3;
            out
        })
        .collect();
    for k in (7..SYMBOLS).step_by(13) {
        symbols[k] ^= 1 + gen.below(2); // corrupt one or both bits
    }

    let mut bld = SeqBuilder::new("viterbi", 7, SYMBOLS);
    bld.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(SYMBOLS as i64);
        let inf = d.imm(1 << 20);
        d.output(I, z);
        d.output(N, n);
        d.output(M0, z); // start in state 0
        for s in 1..4 {
            d.output(M0 + s, inf);
        }
    });
    bld.begin_for("symbols", I, N, COND, SYMBOLS as u64);
    bld.straight("acs", move |d| {
        use rtise_ir::dfg::NodeId;
        let i = d.input(I);
        let obs = mem_load_at(d, 0, i);
        let metrics: Vec<NodeId> = (0..4).map(|s| d.input(M0 + s)).collect();
        // Hamming distance between `obs` and a constant 2-bit pattern.
        let branch = |d: &mut rtise_ir::dfg::Dfg, pat: i64| {
            let x = d.bin_imm(OpKind::Xor, obs, pat);
            let b0 = d.bin_imm(OpKind::And, x, 1);
            let sh = d.bin_imm(OpKind::Shr, x, 1);
            let b1 = d.bin_imm(OpKind::And, sh, 1);
            d.bin(OpKind::Add, b0, b1)
        };
        for next in 0..4i64 {
            // Predecessors of `next = ((p << 1) | input) & 3`.
            let input = next & 1;
            let preds = [(next >> 1) & 3, ((next >> 1) | 2) & 3];
            let mut cands: Vec<NodeId> = Vec::new();
            for &p in &preds {
                let cost = branch(d, expected(p, input));
                cands.push(d.bin(OpKind::Add, metrics[p as usize], cost));
            }
            let best = d.bin(OpKind::Min, cands[0], cands[1]);
            d.output(M0 + next as usize, best);
        }
    });
    bld.end_for();
    let program = bld.finish();

    let expected_metrics = {
        let mut m = [0i64, 1 << 20, 1 << 20, 1 << 20];
        for &obs in &symbols {
            let mut next = [i64::MAX; 4];
            for ns in 0..4i64 {
                let input = ns & 1;
                for p in [(ns >> 1) & 3, ((ns >> 1) | 2) & 3] {
                    let cost = (obs ^ expected(p, input)).count_ones() as i64;
                    next[ns as usize] = next[ns as usize].min(m[p as usize] + cost);
                }
            }
            m = next;
        }
        m
    };
    Kernel::new("viterbi", program, vec![], symbols, move |out| {
        let got = [
            out.vars[M0],
            out.vars[M0 + 1],
            out.vars[M0 + 2],
            out.vars[M0 + 3],
        ];
        if got == expected_metrics {
            Ok(())
        } else {
            Err(format!("metrics {got:?} != {expected_metrics:?}"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn viterbi_matches_reference_and_sees_the_noise() {
        let k = viterbi();
        let out = k.validate().expect("viterbi");
        // The best final metric equals the number of corrupted bits on the
        // true path — nonzero because we injected channel errors.
        let best = (3..7).map(|v| out.vars[v]).min().expect("metrics");
        assert!(best > 0, "noise must cost something");
        assert!(best < 64, "the true path stays best");
    }

    #[test]
    fn matmul_matches_reference() {
        matmul().validate().expect("matmul");
    }

    #[test]
    fn bitcount_matches_reference() {
        bitcount().validate().expect("bitcount");
    }

    #[test]
    fn all_dsp_kernels_validate() {
        for k in [lms(), fir(), susan(), compress()] {
            k.validate()
                .unwrap_or_else(|e| panic!("{} failed: {e}", k.name));
        }
    }

    #[test]
    fn susan_flat_image_counts_all_neighbours() {
        // With a constant image, every interior pixel has 8 neighbours
        // within the threshold — rebuild with flat input via the reference
        // logic to double-check the formula.
        let img = vec![128i64; SUSAN_DIM * SUSAN_DIM];
        let center = img[SUSAN_DIM + 1];
        let count = (0..8).filter(|_| (128 - center).abs() < 27).count();
        assert_eq!(count, 8);
    }
}

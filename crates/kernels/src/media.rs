//! Media kernels: IMA-style ADPCM codec, the `jfdctint` integer DCT, the
//! G.721-style predictive codec, and the multi-loop JPEG pipeline used as
//! the Chapter 6 runtime-reconfiguration case study.

use crate::builder::{clamp, mem_load_at, mem_store_at, SeqBuilder};
use crate::{DataGen, Kernel};
use rtise_ir::dfg::{Dfg, NodeId, Operand};
use rtise_ir::op::OpKind;

fn sel(d: &mut Dfg, c: NodeId, t: NodeId, f: NodeId) -> NodeId {
    d.node(
        OpKind::Select,
        &[Operand::Node(c), Operand::Node(t), Operand::Node(f)],
    )
}

/// IMA ADPCM step-size table (the standard 89-entry table).
pub const STEP_TABLE: [i64; 89] = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37, 41, 45, 50, 55, 60, 66,
    73, 80, 88, 97, 107, 118, 130, 143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
    494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066, 2272,
    2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493,
    10442, 11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
];

/// IMA ADPCM index-adjustment table.
pub const INDEX_TABLE: [i64; 16] = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8];

const N_SAMPLES: usize = 48;

/// Reference IMA ADPCM decoder step shared by the encode/decode references.
fn adpcm_dec_step(code: i64, pred: &mut i64, index: &mut i64) -> i64 {
    let step = STEP_TABLE[*index as usize];
    let diff = ((2 * (code & 7) + 1) * step) >> 3;
    let signed = if code & 8 != 0 { -diff } else { diff };
    *pred = (*pred + signed).clamp(-32768, 32767);
    *index = (*index + INDEX_TABLE[code as usize]).clamp(0, 88);
    *pred
}

/// Builds the shared IR for one ADPCM decode step given a 4-bit `code`
/// node; updates PRED and INDEX variable slots.
fn adpcm_dec_step_ir(d: &mut Dfg, code: NodeId, pred_slot: usize, index_slot: usize) {
    const STEPS: i64 = 0; // step table base in memory
    const IDXS: i64 = 89; // index table base
    let pred = d.input(pred_slot);
    let index = d.input(index_slot);
    let step = mem_load_at(d, STEPS, index);
    let mag = d.bin_imm(OpKind::And, code, 7);
    let two = d.bin_imm(OpKind::Mul, mag, 2);
    let odd = d.bin_imm(OpKind::Add, two, 1);
    let prod = d.bin(OpKind::Mul, odd, step);
    let diff = d.bin_imm(OpKind::Sar, prod, 3);
    let sign = d.bin_imm(OpKind::And, code, 8);
    let neg = d.un(OpKind::Not, diff);
    let negp1 = d.bin_imm(OpKind::Add, neg, 1);
    let signed = sel(d, sign, negp1, diff);
    let sum = d.bin(OpKind::Add, pred, signed);
    let clamped = clamp(d, sum, -32768, 32767);
    let adj = mem_load_at(d, IDXS, code);
    let ni = d.bin(OpKind::Add, index, adj);
    let nic = clamp(d, ni, 0, 88);
    d.output(pred_slot, clamped);
    d.output(index_slot, nic);
}

fn adpcm_memory() -> Vec<i64> {
    let mut mem = Vec::new();
    mem.extend_from_slice(&STEP_TABLE);
    mem.extend_from_slice(&INDEX_TABLE);
    mem
}
const ADPCM_DATA: i64 = 89 + 16;
const ADPCM_OUT: i64 = ADPCM_DATA + N_SAMPLES as i64;

/// IMA ADPCM decoder over 48 4-bit codes.
pub fn adpcm_decode() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const PRED: usize = 2;
    const INDEX: usize = 3;
    const COND: usize = 4;

    let mut gen = DataGen::new(0xadc0_de00);
    let codes = gen.vec_below(N_SAMPLES, 16);
    let mut mem = adpcm_memory();
    mem.extend_from_slice(&codes);
    mem.extend(std::iter::repeat_n(0, N_SAMPLES));

    let mut b = SeqBuilder::new("adpcm_decode", 5, mem.len());
    b.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(N_SAMPLES as i64);
        d.output(I, z);
        d.output(N, n);
        d.output(PRED, z);
        d.output(INDEX, z);
    });
    b.begin_for("samples", I, N, COND, N_SAMPLES as u64);
    b.straight("decode", |d| {
        let i = d.input(I);
        let code = mem_load_at(d, ADPCM_DATA, i);
        adpcm_dec_step_ir(d, code, PRED, INDEX);
        let out = d.input(PRED);
        mem_store_at(d, ADPCM_OUT, i, out);
    });
    b.end_for();
    let program = b.finish();

    let expected: Vec<i64> = {
        let (mut pred, mut index) = (0i64, 0i64);
        codes
            .iter()
            .map(|&c| adpcm_dec_step(c, &mut pred, &mut index))
            .collect()
    };
    Kernel::new("adpcm_decode", program, vec![], mem, move |out| {
        let got = &out.mem[ADPCM_OUT as usize..ADPCM_OUT as usize + N_SAMPLES];
        if got == expected.as_slice() {
            Ok(())
        } else {
            Err(format!("pcm {got:?} != {expected:?}"))
        }
    })
}

/// IMA ADPCM encoder over 48 PCM samples (quantize the prediction error,
/// then run the decoder update in feedback).
pub fn adpcm_encode() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const PRED: usize = 2;
    const INDEX: usize = 3;
    const COND: usize = 4;
    const STEPS: i64 = 0;

    let mut gen = DataGen::new(0xadc0_0e01);
    let samples: Vec<i64> = (0..N_SAMPLES).map(|_| gen.below(65536) - 32768).collect();
    let mut mem = adpcm_memory();
    mem.extend_from_slice(&samples);
    mem.extend(std::iter::repeat_n(0, N_SAMPLES));

    let mut b = SeqBuilder::new("adpcm_encode", 5, mem.len());
    b.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(N_SAMPLES as i64);
        d.output(I, z);
        d.output(N, n);
        d.output(PRED, z);
        d.output(INDEX, z);
    });
    b.begin_for("samples", I, N, COND, N_SAMPLES as u64);
    b.straight("encode", |d| {
        let i = d.input(I);
        let sample = mem_load_at(d, ADPCM_DATA, i);
        let pred = d.input(PRED);
        let index = d.input(INDEX);
        let step = mem_load_at(d, STEPS, index);
        let diff = d.bin(OpKind::Sub, sample, pred);
        let zero = d.imm(0);
        let negative = d.bin(OpKind::Lt, diff, zero);
        let adiff = d.un(OpKind::Abs, diff);
        // magnitude = min(7, (4*|diff|) / step)
        let scaled = d.bin_imm(OpKind::Shl, adiff, 2);
        let q = d.bin(OpKind::Div, scaled, step);
        let mag = d.bin_imm(OpKind::Min, q, 7);
        let sign = d.bin_imm(OpKind::Mul, negative, 8);
        let code = d.bin(OpKind::Or, sign, mag);
        mem_store_at(d, ADPCM_OUT, i, code);
        adpcm_dec_step_ir(d, code, PRED, INDEX);
    });
    b.end_for();
    let program = b.finish();

    let expected: Vec<i64> = {
        let (mut pred, mut index) = (0i64, 0i64);
        samples
            .iter()
            .map(|&s| {
                let step = STEP_TABLE[index as usize];
                let diff = s - pred;
                let mag = ((diff.abs() << 2) / step).min(7);
                let code = if diff < 0 { 8 | mag } else { mag };
                adpcm_dec_step(code, &mut pred, &mut index);
                code
            })
            .collect()
    };
    Kernel::new("adpcm_encode", program, vec![], mem, move |out| {
        let got = &out.mem[ADPCM_OUT as usize..ADPCM_OUT as usize + N_SAMPLES];
        if got == expected.as_slice() {
            Ok(())
        } else {
            Err(format!("codes {got:?} != {expected:?}"))
        }
    })
}

// jpeg-6b jpeg_fdct_islow constants (13-bit fixed point).
const FIX_0_298631336: i64 = 2446;
const FIX_0_390180607: i64 = 3196;
const FIX_0_541196100: i64 = 4433;
const FIX_0_765366865: i64 = 6270;
const FIX_0_899976223: i64 = 7373;
const FIX_1_175875602: i64 = 9633;
const FIX_1_501321110: i64 = 12299;
const FIX_1_847759065: i64 = 15137;
const FIX_1_961570560: i64 = 16069;
const FIX_2_053119869: i64 = 16819;
const FIX_2_562915447: i64 = 20995;
const FIX_3_072711026: i64 = 25172;

/// Emits the jpeg-6b `islow` 8-point forward DCT over `mem[base + k*stride]`
/// for `k in 0..8` where `base` is a node; results are stored back in place.
/// `descale` is the right-shift applied to the fixed-point products
/// (13 − PASS1_BITS for the row pass, 13 + PASS1_BITS for the column pass).
fn fdct8_ir(d: &mut Dfg, base: NodeId, stride: i64, descale: i64, even_shift: (i64, i64)) {
    let idx: Vec<NodeId> = (0..8)
        .map(|k| {
            let off = d.imm(k * stride);
            d.bin(OpKind::Add, base, off)
        })
        .collect();
    let x: Vec<NodeId> = idx.iter().map(|&a| d.un(OpKind::Load, a)).collect();
    let tmp0 = d.bin(OpKind::Add, x[0], x[7]);
    let tmp7 = d.bin(OpKind::Sub, x[0], x[7]);
    let tmp1 = d.bin(OpKind::Add, x[1], x[6]);
    let tmp6 = d.bin(OpKind::Sub, x[1], x[6]);
    let tmp2 = d.bin(OpKind::Add, x[2], x[5]);
    let tmp5 = d.bin(OpKind::Sub, x[2], x[5]);
    let tmp3 = d.bin(OpKind::Add, x[3], x[4]);
    let tmp4 = d.bin(OpKind::Sub, x[3], x[4]);

    let tmp10 = d.bin(OpKind::Add, tmp0, tmp3);
    let tmp13 = d.bin(OpKind::Sub, tmp0, tmp3);
    let tmp11 = d.bin(OpKind::Add, tmp1, tmp2);
    let tmp12 = d.bin(OpKind::Sub, tmp1, tmp2);

    let (ls, rs) = even_shift;
    let e0 = d.bin(OpKind::Add, tmp10, tmp11);
    let y0 = if ls > 0 {
        d.bin_imm(OpKind::Shl, e0, ls)
    } else {
        d.bin_imm(OpKind::Sar, e0, rs)
    };
    let e4 = d.bin(OpKind::Sub, tmp10, tmp11);
    let y4 = if ls > 0 {
        d.bin_imm(OpKind::Shl, e4, ls)
    } else {
        d.bin_imm(OpKind::Sar, e4, rs)
    };
    let z1s = d.bin(OpKind::Add, tmp12, tmp13);
    let z1 = d.bin_imm(OpKind::Mul, z1s, FIX_0_541196100);
    let t13m = d.bin_imm(OpKind::Mul, tmp13, FIX_0_765366865);
    let y2s = d.bin(OpKind::Add, z1, t13m);
    let y2 = d.bin_imm(OpKind::Sar, y2s, descale);
    let t12m = d.bin_imm(OpKind::Mul, tmp12, FIX_1_847759065);
    let y6s = d.bin(OpKind::Sub, z1, t12m);
    let y6 = d.bin_imm(OpKind::Sar, y6s, descale);

    let oz1 = d.bin(OpKind::Add, tmp4, tmp7);
    let oz2 = d.bin(OpKind::Add, tmp5, tmp6);
    let oz3 = d.bin(OpKind::Add, tmp4, tmp6);
    let oz4 = d.bin(OpKind::Add, tmp5, tmp7);
    let z34 = d.bin(OpKind::Add, oz3, oz4);
    let z5 = d.bin_imm(OpKind::Mul, z34, FIX_1_175875602);
    let t4 = d.bin_imm(OpKind::Mul, tmp4, FIX_0_298631336);
    let t5 = d.bin_imm(OpKind::Mul, tmp5, FIX_2_053119869);
    let t6 = d.bin_imm(OpKind::Mul, tmp6, FIX_3_072711026);
    let t7 = d.bin_imm(OpKind::Mul, tmp7, FIX_1_501321110);
    let z1m = d.bin_imm(OpKind::Mul, oz1, -FIX_0_899976223);
    let z2m = d.bin_imm(OpKind::Mul, oz2, -FIX_2_562915447);
    let z3m0 = d.bin_imm(OpKind::Mul, oz3, -FIX_1_961570560);
    let z4m0 = d.bin_imm(OpKind::Mul, oz4, -FIX_0_390180607);
    let z3m = d.bin(OpKind::Add, z3m0, z5);
    let z4m = d.bin(OpKind::Add, z4m0, z5);
    let y7a = d.bin(OpKind::Add, t4, z1m);
    let y7b = d.bin(OpKind::Add, y7a, z3m);
    let y7 = d.bin_imm(OpKind::Sar, y7b, descale);
    let y5a = d.bin(OpKind::Add, t5, z2m);
    let y5b = d.bin(OpKind::Add, y5a, z4m);
    let y5 = d.bin_imm(OpKind::Sar, y5b, descale);
    let y3a = d.bin(OpKind::Add, t6, z2m);
    let y3b = d.bin(OpKind::Add, y3a, z3m);
    let y3 = d.bin_imm(OpKind::Sar, y3b, descale);
    let y1a = d.bin(OpKind::Add, t7, z1m);
    let y1b = d.bin(OpKind::Add, y1a, z4m);
    let y1 = d.bin_imm(OpKind::Sar, y1b, descale);

    for (k, y) in [y0, y1, y2, y3, y4, y5, y6, y7].into_iter().enumerate() {
        d.node(OpKind::Store, &[Operand::Node(idx[k]), Operand::Node(y)]);
    }
}

/// Reference `islow` 8-point DCT matching [`fdct8_ir`].
fn fdct8_ref(x: &mut [i64], stride: usize, descale: i64, even_shift: (i64, i64)) {
    let g = |x: &[i64], k: usize| x[k * stride];
    let tmp0 = g(x, 0) + g(x, 7);
    let tmp7 = g(x, 0) - g(x, 7);
    let tmp1 = g(x, 1) + g(x, 6);
    let tmp6 = g(x, 1) - g(x, 6);
    let tmp2 = g(x, 2) + g(x, 5);
    let tmp5 = g(x, 2) - g(x, 5);
    let tmp3 = g(x, 3) + g(x, 4);
    let tmp4 = g(x, 3) - g(x, 4);
    let tmp10 = tmp0 + tmp3;
    let tmp13 = tmp0 - tmp3;
    let tmp11 = tmp1 + tmp2;
    let tmp12 = tmp1 - tmp2;
    let (ls, rs) = even_shift;
    let shift = |v: i64| if ls > 0 { v << ls } else { v >> rs };
    let y0 = shift(tmp10 + tmp11);
    let y4 = shift(tmp10 - tmp11);
    let z1 = (tmp12 + tmp13) * FIX_0_541196100;
    let y2 = (z1 + tmp13 * FIX_0_765366865) >> descale;
    let y6 = (z1 - tmp12 * FIX_1_847759065) >> descale;
    let oz1 = tmp4 + tmp7;
    let oz2 = tmp5 + tmp6;
    let oz3 = tmp4 + tmp6;
    let oz4 = tmp5 + tmp7;
    let z5 = (oz3 + oz4) * FIX_1_175875602;
    let t4 = tmp4 * FIX_0_298631336;
    let t5 = tmp5 * FIX_2_053119869;
    let t6 = tmp6 * FIX_3_072711026;
    let t7 = tmp7 * FIX_1_501321110;
    let z1m = oz1 * -FIX_0_899976223;
    let z2m = oz2 * -FIX_2_562915447;
    let z3m = oz3 * -FIX_1_961570560 + z5;
    let z4m = oz4 * -FIX_0_390180607 + z5;
    let y7 = (t4 + z1m + z3m) >> descale;
    let y5 = (t5 + z2m + z4m) >> descale;
    let y3 = (t6 + z2m + z3m) >> descale;
    let y1 = (t7 + z1m + z4m) >> descale;
    for (k, y) in [y0, y1, y2, y3, y4, y5, y6, y7].into_iter().enumerate() {
        x[k * stride] = y;
    }
}

/// Reference 2-D integer DCT over an 8×8 block.
fn fdct2d_ref(block: &mut [i64]) {
    for r in 0..8 {
        fdct8_ref(&mut block[r * 8..r * 8 + 8], 1, 11, (2, 0));
    }
    for c in 0..8 {
        fdct8_ref(&mut block[c..], 8, 15, (0, 2));
    }
}

/// The `jfdctint` WCET benchmark: jpeg-6b integer 2-D forward DCT of one
/// 8×8 block (row pass + column pass).
pub fn jfdctint() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const COND: usize = 2;

    let mut gen = DataGen::new(0xdc70_0001);
    let block: Vec<i64> = (0..64).map(|_| gen.below(256) - 128).collect();

    let mut b = SeqBuilder::new("jfdctint", 3, 64);
    b.straight("init_rows", |d| {
        let z = d.imm(0);
        let n = d.imm(8);
        d.output(I, z);
        d.output(N, n);
    });
    b.begin_for("rows", I, N, COND, 8);
    b.straight("row_dct", |d| {
        let i = d.input(I);
        let base = d.bin_imm(OpKind::Mul, i, 8);
        fdct8_ir(d, base, 1, 11, (2, 0));
    });
    b.end_for();
    b.straight("init_cols", |d| {
        let z = d.imm(0);
        d.output(I, z);
    });
    b.begin_for("cols", I, N, COND, 8);
    b.straight("col_dct", |d| {
        let base = d.input(I);
        fdct8_ir(d, base, 8, 15, (0, 2));
    });
    b.end_for();
    let program = b.finish();

    let expected = {
        let mut blk = block.clone();
        fdct2d_ref(&mut blk);
        blk
    };
    Kernel::new("jfdctint", program, vec![], block, move |out| {
        if out.mem == expected {
            Ok(())
        } else {
            Err("dct coefficients diverged".into())
        }
    })
}

/// One G.721-style predictor update step (simplified two-pole lattice with
/// leak), shared between encode/decode.
fn g721_step_ref(dq: i64, state: &mut (i64, i64, i64, i64)) -> i64 {
    let (a1, a2, sr1, sr2) = *state;
    let se = (a1 * sr1 + a2 * sr2) >> 14;
    let sr = (se + dq).clamp(-32768, 32767);
    // Sign-sign LMS adaptation with leakage.
    let sign = |v: i64| (v > 0) as i64 - (v < 0) as i64;
    let a1n = (a1 + 192 * sign(dq) * sign(sr1) - (a1 >> 8)).clamp(-12288, 12288);
    let a2n = (a2 + 128 * sign(dq) * sign(sr2) - (a2 >> 7)).clamp(-12288, 12288);
    *state = (a1n, a2n, sr, sr1);
    sr
}

fn sign_ir(d: &mut Dfg, v: NodeId) -> NodeId {
    let zero = d.imm(0);
    let pos = d.bin(OpKind::Lt, zero, v);
    let neg = d.bin(OpKind::Lt, v, zero);
    d.bin(OpKind::Sub, pos, neg)
}

fn g721_step_ir(
    d: &mut Dfg,
    dq: NodeId,
    a1s: usize,
    a2s: usize,
    sr1s: usize,
    sr2s: usize,
) -> NodeId {
    let a1 = d.input(a1s);
    let a2 = d.input(a2s);
    let sr1 = d.input(sr1s);
    let sr2 = d.input(sr2s);
    let p1 = d.bin(OpKind::Mul, a1, sr1);
    let p2 = d.bin(OpKind::Mul, a2, sr2);
    let sum = d.bin(OpKind::Add, p1, p2);
    let se = d.bin_imm(OpKind::Sar, sum, 14);
    let sr0 = d.bin(OpKind::Add, se, dq);
    let sr = clamp(d, sr0, -32768, 32767);
    let sdq = sign_ir(d, dq);
    let s1 = sign_ir(d, sr1);
    let s2 = sign_ir(d, sr2);
    let g1 = d.bin(OpKind::Mul, sdq, s1);
    let g1w = d.bin_imm(OpKind::Mul, g1, 192);
    let leak1 = d.bin_imm(OpKind::Sar, a1, 8);
    let a1u = d.bin(OpKind::Add, a1, g1w);
    let a1l = d.bin(OpKind::Sub, a1u, leak1);
    let a1n = clamp(d, a1l, -12288, 12288);
    let g2 = d.bin(OpKind::Mul, sdq, s2);
    let g2w = d.bin_imm(OpKind::Mul, g2, 128);
    let leak2 = d.bin_imm(OpKind::Sar, a2, 7);
    let a2u = d.bin(OpKind::Add, a2, g2w);
    let a2l = d.bin(OpKind::Sub, a2u, leak2);
    let a2n = clamp(d, a2l, -12288, 12288);
    d.output(a1s, a1n);
    d.output(a2s, a2n);
    d.output(sr2s, sr1);
    d.output(sr1s, sr);
    sr
}

const G721_N: usize = 64;
const G721_QUANT: [i64; 7] = [-124, -64, -24, 0, 24, 64, 124];

/// G.721-style ADPCM decoder: dequantize a 3-bit code through a 7-level
/// table (scaled by the adaptive step) and run the two-pole predictor.
pub fn g721_decode() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const A1: usize = 2;
    const A2: usize = 3;
    const SR1: usize = 4;
    const SR2: usize = 5;
    const COND: usize = 6;
    const QTAB: i64 = 0; // 8 entries
    const DATA: i64 = 8;
    const OUT: i64 = 8 + G721_N as i64;

    let mut gen = DataGen::new(0x0721_dec0);
    let codes = gen.vec_below(G721_N, 8);
    let mut mem: Vec<i64> = G721_QUANT.to_vec();
    mem.push(0); // pad the table to 8 entries
    mem.extend_from_slice(&codes);
    mem.extend(std::iter::repeat_n(0, G721_N));

    let mut b = SeqBuilder::new("g721_decode", 7, mem.len());
    b.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(G721_N as i64);
        for s in [I, A1, A2, SR1, SR2] {
            d.output(s, z);
        }
        d.output(N, n);
    });
    b.begin_for("samples", I, N, COND, G721_N as u64);
    b.straight("dec", |d| {
        let i = d.input(I);
        let code = mem_load_at(d, DATA, i);
        let idx = d.bin_imm(OpKind::Min, code, 6);
        let dq = mem_load_at(d, QTAB, idx);
        let sr = g721_step_ir(d, dq, A1, A2, SR1, SR2);
        mem_store_at(d, OUT, i, sr);
    });
    b.end_for();
    let program = b.finish();

    let expected: Vec<i64> = {
        let mut st = (0, 0, 0, 0);
        codes
            .iter()
            .map(|&c| {
                let dq = G721_QUANT[(c.min(6)) as usize];
                g721_step_ref(dq, &mut st)
            })
            .collect()
    };
    Kernel::new("g721_decode", program, vec![], mem, move |out| {
        let got = &out.mem[OUT as usize..OUT as usize + G721_N];
        if got == expected.as_slice() {
            Ok(())
        } else {
            Err("g721 decode diverged".into())
        }
    })
}

/// G.721-style ADPCM encoder: quantize the prediction error against the
/// 7-level table by comparison chain, then update the predictor in
/// feedback.
pub fn g721_encode() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const A1: usize = 2;
    const A2: usize = 3;
    const SR1: usize = 4;
    const SR2: usize = 5;
    const COND: usize = 6;
    const QTAB: i64 = 0;
    const DATA: i64 = 8;
    const OUT: i64 = 8 + G721_N as i64;

    let mut gen = DataGen::new(0x0721_e4c0);
    let samples: Vec<i64> = (0..G721_N).map(|_| gen.below(512) - 256).collect();
    let mut mem: Vec<i64> = G721_QUANT.to_vec();
    mem.push(0);
    mem.extend_from_slice(&samples);
    mem.extend(std::iter::repeat_n(0, G721_N));

    let mut b = SeqBuilder::new("g721_encode", 7, mem.len());
    b.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(G721_N as i64);
        for s in [I, A1, A2, SR1, SR2] {
            d.output(s, z);
        }
        d.output(N, n);
    });
    b.begin_for("samples", I, N, COND, G721_N as u64);
    b.straight("enc", |d| {
        let i = d.input(I);
        let x = mem_load_at(d, DATA, i);
        let a1 = d.input(A1);
        let a2 = d.input(A2);
        let sr1 = d.input(SR1);
        let sr2 = d.input(SR2);
        let p1 = d.bin(OpKind::Mul, a1, sr1);
        let p2 = d.bin(OpKind::Mul, a2, sr2);
        let sum = d.bin(OpKind::Add, p1, p2);
        let se = d.bin_imm(OpKind::Sar, sum, 14);
        let e = d.bin(OpKind::Sub, x, se);
        // Nearest quantization level by comparison accumulation: code =
        // #levels whose midpoint is below e.
        let mut code = d.imm(0);
        for w in G721_QUANT.windows(2) {
            let mid = (w[0] + w[1]) / 2;
            let m = d.imm(mid);
            let above = d.bin(OpKind::Lt, m, e);
            code = d.bin(OpKind::Add, code, above);
        }
        mem_store_at(d, OUT, i, code);
        let dq = mem_load_at(d, QTAB, code);
        let _ = g721_step_ir(d, dq, A1, A2, SR1, SR2);
    });
    b.end_for();
    let program = b.finish();

    let expected: Vec<i64> = {
        let mut st = (0i64, 0i64, 0i64, 0i64);
        samples
            .iter()
            .map(|&x| {
                let se = (st.0 * st.2 + st.1 * st.3) >> 14;
                let e = x - se;
                let code = G721_QUANT
                    .windows(2)
                    .filter(|w| (w[0] + w[1]) / 2 < e)
                    .count() as i64;
                g721_step_ref(G721_QUANT[code as usize], &mut st);
                code
            })
            .collect()
    };
    Kernel::new("g721_encode", program, vec![], mem, move |out| {
        let got = &out.mem[OUT as usize..OUT as usize + G721_N];
        if got == expected.as_slice() {
            Ok(())
        } else {
            Err("g721 encode diverged".into())
        }
    })
}

/// The JPEG zig-zag scan order.
pub const ZIGZAG: [i64; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

// JPEG pipeline memory map.
const JP_R: i64 = 0;
const JP_G: i64 = 64;
const JP_B: i64 = 128;
const JP_Y: i64 = 192; // luma block, later DCT'd in place
const JP_QT: i64 = 256; // 64 quantizer divisors
const JP_ZZ: i64 = 320; // zig-zag index table
const JP_Q: i64 = 384; // quantized coefficients
const JP_Z: i64 = 448; // zig-zag ordered output
const JP_STATS: i64 = 512; // [0] = RLE zero-run count, [1] = nonzeros

/// The Chapter 6 case study: a six-loop JPEG luma pipeline (color
/// conversion, row DCT, column DCT, quantization, zig-zag, RLE statistics),
/// each stage a distinct hot loop for runtime reconfiguration.
pub fn jpeg_pipeline() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const COND: usize = 2;

    let mut gen = DataGen::new(0x1bec_0001);
    let r = gen.vec_below(64, 256);
    let g = gen.vec_below(64, 256);
    let bch = gen.vec_below(64, 256);
    let qt: Vec<i64> = (0..64).map(|_| 8 + gen.below(24)).collect();
    let mut mem = vec![0i64; 514];
    mem[JP_R as usize..JP_R as usize + 64].copy_from_slice(&r);
    mem[JP_G as usize..JP_G as usize + 64].copy_from_slice(&g);
    mem[JP_B as usize..JP_B as usize + 64].copy_from_slice(&bch);
    mem[JP_QT as usize..JP_QT as usize + 64].copy_from_slice(&qt);
    mem[JP_ZZ as usize..JP_ZZ as usize + 64].copy_from_slice(&ZIGZAG);

    let mut b = SeqBuilder::new("jpeg", 3, mem.len());
    let reset = |b: &mut SeqBuilder, label: &str, n: i64| {
        b.straight(label, move |d| {
            let z = d.imm(0);
            let nn = d.imm(n);
            d.output(I, z);
            d.output(N, nn);
        });
    };
    // Stage 1: RGB -> Y (BT.601 integer approximation), level shift.
    reset(&mut b, "reset_color", 64);
    b.begin_for("color", I, N, COND, 64);
    b.straight("rgb2y", |d| {
        let i = d.input(I);
        let rr = mem_load_at(d, JP_R, i);
        let gg = mem_load_at(d, JP_G, i);
        let bb = mem_load_at(d, JP_B, i);
        let wr = d.bin_imm(OpKind::Mul, rr, 77);
        let wg = d.bin_imm(OpKind::Mul, gg, 150);
        let wb = d.bin_imm(OpKind::Mul, bb, 29);
        let s1 = d.bin(OpKind::Add, wr, wg);
        let s2 = d.bin(OpKind::Add, s1, wb);
        let y = d.bin_imm(OpKind::Sar, s2, 8);
        let shifted = d.bin_imm(OpKind::Sub, y, 128);
        mem_store_at(d, JP_Y, i, shifted);
    });
    b.end_for();
    // Stage 2: row DCT.
    reset(&mut b, "reset_rows", 8);
    b.begin_for("rows", I, N, COND, 8);
    b.straight("row_dct", |d| {
        let i = d.input(I);
        let off = d.bin_imm(OpKind::Mul, i, 8);
        let base = d.bin_imm(OpKind::Add, off, JP_Y);
        fdct8_ir(d, base, 1, 11, (2, 0));
    });
    b.end_for();
    // Stage 3: column DCT.
    reset(&mut b, "reset_cols", 8);
    b.begin_for("cols", I, N, COND, 8);
    b.straight("col_dct", |d| {
        let i = d.input(I);
        let base = d.bin_imm(OpKind::Add, i, JP_Y);
        fdct8_ir(d, base, 8, 15, (0, 2));
    });
    b.end_for();
    // Stage 4: quantization (signed division by table entry).
    reset(&mut b, "reset_quant", 64);
    b.begin_for("quant", I, N, COND, 64);
    b.straight("divide", |d| {
        let i = d.input(I);
        let coef = mem_load_at(d, JP_Y, i);
        let q = mem_load_at(d, JP_QT, i);
        let quo = d.bin(OpKind::Div, coef, q);
        mem_store_at(d, JP_Q, i, quo);
    });
    b.end_for();
    // Stage 5: zig-zag reorder.
    reset(&mut b, "reset_zigzag", 64);
    b.begin_for("zigzag", I, N, COND, 64);
    b.straight("scatter", |d| {
        let i = d.input(I);
        let src = mem_load_at(d, JP_ZZ, i);
        let v = mem_load_at(d, JP_Q, src);
        mem_store_at(d, JP_Z, i, v);
    });
    b.end_for();
    // Stage 6: RLE statistics (zero runs and nonzero count).
    reset(&mut b, "reset_rle", 64);
    b.begin_for("rle", I, N, COND, 64);
    b.straight("count", |d| {
        let i = d.input(I);
        let v = mem_load_at(d, JP_Z, i);
        let zero_base = d.imm(JP_STATS);
        let nz_base = d.imm(JP_STATS + 1);
        let zeros = d.un(OpKind::Load, zero_base);
        let nonzeros = d.un(OpKind::Load, nz_base);
        let z = d.imm(0);
        let is_zero = d.bin(OpKind::Eq, v, z);
        let zeros2 = d.bin(OpKind::Add, zeros, is_zero);
        let one = d.imm(1);
        let isnz = d.bin(OpKind::Sub, one, is_zero);
        let nz2 = d.bin(OpKind::Add, nonzeros, isnz);
        d.node(
            OpKind::Store,
            &[Operand::Node(zero_base), Operand::Node(zeros2)],
        );
        d.node(OpKind::Store, &[Operand::Node(nz_base), Operand::Node(nz2)]);
    });
    b.end_for();
    let program = b.finish();

    let expected = {
        let mut y = vec![0i64; 64];
        for i in 0..64 {
            y[i] = ((r[i] * 77 + g[i] * 150 + bch[i] * 29) >> 8) - 128;
        }
        fdct2d_ref(&mut y);
        let q: Vec<i64> = y
            .iter()
            .zip(&qt)
            .map(|(&c, &d)| if d == 0 { 0 } else { c / d })
            .collect();
        let z: Vec<i64> = ZIGZAG.iter().map(|&s| q[s as usize]).collect();
        let zeros = z.iter().filter(|&&v| v == 0).count() as i64;
        (z, zeros)
    };
    Kernel::new("jpeg", program, vec![], mem, move |out| {
        let got = &out.mem[JP_Z as usize..JP_Z as usize + 64];
        if got != expected.0.as_slice() {
            return Err("zig-zag output diverged".into());
        }
        if out.mem[JP_STATS as usize] != expected.1 {
            return Err(format!(
                "zero count {} != {}",
                out.mem[JP_STATS as usize], expected.1
            ));
        }
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adpcm_roundtrip_tracks_signal() {
        adpcm_encode().validate().expect("encode");
        adpcm_decode().validate().expect("decode");
    }

    #[test]
    fn jfdctint_matches_reference_dct() {
        jfdctint().validate().expect("jfdctint");
    }

    #[test]
    fn g721_pair_validates() {
        g721_decode().validate().expect("decode");
        g721_encode().validate().expect("encode");
    }

    #[test]
    fn jpeg_pipeline_has_six_hot_loops() {
        let k = jpeg_pipeline();
        k.validate().expect("jpeg");
        let cfg = rtise_ir::cfg::Cfg::analyze(&k.program);
        assert_eq!(cfg.loops().len(), 6);
    }

    #[test]
    fn dct_dc_coefficient_of_flat_block_is_mean_scaled() {
        // A flat block has all AC coefficients zero.
        let mut blk = vec![100i64; 64];
        fdct2d_ref(&mut blk);
        assert!(blk[1..].iter().all(|&c| c == 0), "{blk:?}");
        assert!(blk[0] > 0);
    }
}

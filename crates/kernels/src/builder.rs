//! Structured construction of executable IR programs.
//!
//! [`SeqBuilder`] assembles a [`Program`] from straight-line blocks and
//! (possibly nested) counted `for` loops, wiring terminators and loop bounds
//! so the result is immediately valid for the simulator and the WCET
//! analyzer. This is the "compiler front-end" role of the paper's flow: the
//! kernels in this crate are written against it instead of being compiled
//! from C by Trimaran.

use rtise_ir::cfg::{BasicBlock, BlockId, Program, Terminator, ValidateProgramError};
use rtise_ir::dfg::{Dfg, DfgError, NodeId, Operand};
use rtise_ir::op::OpKind;
use std::collections::HashMap;
use std::fmt;

/// Where a dangling control edge leaves a finished block.
#[derive(Debug, Clone, Copy)]
enum Dangling {
    Jump(BlockId),
    Then(BlockId),
    Else(BlockId),
}

/// A structured construction error surfaced by [`SeqBuilder::try_finish`]
/// and [`SeqBuilder::try_straight`].
///
/// The `rtise-check` analyzer maps these onto stable diagnostic codes
/// (`IR010` for builder misuse, `IR001`/`IR002` for data-flow errors,
/// `IR005` for structural validation failures), so front-ends can report
/// malformed IR instead of aborting on a bare panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// [`SeqBuilder::try_finish`] was called with loops still open.
    UnclosedLoop {
        /// Number of loops left open.
        open: usize,
    },
    /// Two blocks carry the same label; reports (and later candidate
    /// provenance) could not tell them apart.
    DuplicateBlockLabel {
        /// The reused label.
        label: String,
        /// The block that first used the label.
        first: BlockId,
        /// The block that reused it.
        second: BlockId,
    },
    /// A block's data flow was rejected (unknown value reference, arity
    /// mismatch, pseudo-op misuse).
    Dfg(DfgError),
    /// The assembled program failed [`Program::validate`].
    Invalid(ValidateProgramError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnclosedLoop { open } => write!(f, "unclosed loop ({open} still open)"),
            BuildError::DuplicateBlockLabel {
                label,
                first,
                second,
            } => write!(
                f,
                "duplicate block label {label:?} (blocks {} and {})",
                first.0, second.0
            ),
            BuildError::Dfg(e) => write!(f, "invalid data flow: {e}"),
            BuildError::Invalid(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for BuildError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BuildError::Dfg(e) => Some(e),
            BuildError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DfgError> for BuildError {
    fn from(e: DfgError) -> Self {
        BuildError::Dfg(e)
    }
}

impl From<ValidateProgramError> for BuildError {
    fn from(e: ValidateProgramError) -> Self {
        BuildError::Invalid(e)
    }
}

struct LoopCtx {
    header: BlockId,
    counter_slot: usize,
}

/// Sequential program builder with structured counted loops.
///
/// Blocks appended with [`SeqBuilder::straight`] execute in order;
/// [`SeqBuilder::begin_for`] / [`SeqBuilder::end_for`] bracket a loop whose
/// body is whatever is appended in between (including nested loops).
///
/// # Example
///
/// `sum = Σ_{i<8} i²`:
///
/// ```
/// use rtise_kernels::builder::SeqBuilder;
/// use rtise_ir::OpKind;
/// use rtise_sim::Simulator;
///
/// const I: usize = 0;
/// const N: usize = 1;
/// const SUM: usize = 2;
/// const COND: usize = 3;
///
/// let mut b = SeqBuilder::new("squares", 4, 0);
/// b.straight("init", |d| {
///     let n = d.imm(8);
///     let z = d.imm(0);
///     d.output(N, n);
///     d.output(I, z);
///     d.output(SUM, z);
/// });
/// b.begin_for("i", I, N, COND, 8);
/// b.straight("body", |d| {
///     let i = d.input(I);
///     let s = d.input(SUM);
///     let sq = d.bin(OpKind::Mul, i, i);
///     let s2 = d.bin(OpKind::Add, s, sq);
///     d.output(SUM, s2);
/// });
/// b.end_for();
/// let program = b.finish();
///
/// let out = Simulator::new(&program)?.run(&[], &[])?;
/// assert_eq!(out.vars[SUM], (0..8).map(|i| i * i).sum::<i64>());
/// # Ok::<(), rtise_sim::SimError>(())
/// ```
pub struct SeqBuilder {
    program: Program,
    dangling: Vec<Dangling>,
    loops: Vec<LoopCtx>,
    labels: HashMap<String, BlockId>,
    errors: Vec<BuildError>,
}

impl SeqBuilder {
    /// Starts a program with `n_vars` variable slots and `mem_size` memory
    /// words.
    pub fn new(name: impl Into<String>, n_vars: usize, mem_size: usize) -> Self {
        SeqBuilder {
            program: Program::new(name, n_vars, mem_size),
            dangling: Vec::new(),
            loops: Vec::new(),
            labels: HashMap::new(),
            errors: Vec::new(),
        }
    }

    fn append(&mut self, block: BasicBlock) -> BlockId {
        let label = block.name.clone();
        let id = self.program.add_block(block);
        match self.labels.entry(label) {
            std::collections::hash_map::Entry::Occupied(e) => {
                self.errors.push(BuildError::DuplicateBlockLabel {
                    label: e.key().clone(),
                    first: *e.get(),
                    second: id,
                });
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(id);
            }
        }
        for d in std::mem::take(&mut self.dangling) {
            match d {
                Dangling::Jump(b) => {
                    self.program.block_mut(b).terminator = match self.program.block(b).terminator {
                        Terminator::Jump(_) => Terminator::Jump(id),
                        t => t,
                    };
                }
                Dangling::Then(b) => {
                    if let Terminator::Branch {
                        cond, else_block, ..
                    } = self.program.block(b).terminator
                    {
                        self.program.block_mut(b).terminator = Terminator::Branch {
                            cond,
                            then_block: id,
                            else_block,
                        };
                    }
                }
                Dangling::Else(b) => {
                    if let Terminator::Branch {
                        cond, then_block, ..
                    } = self.program.block(b).terminator
                    {
                        self.program.block_mut(b).terminator = Terminator::Branch {
                            cond,
                            then_block,
                            else_block: id,
                        };
                    }
                }
            }
        }
        id
    }

    /// Appends a straight-line block whose data flow is produced by `build`.
    pub fn straight(&mut self, name: impl Into<String>, build: impl FnOnce(&mut Dfg)) -> BlockId {
        let mut dfg = Dfg::new();
        build(&mut dfg);
        let id = self.append(BasicBlock {
            name: name.into(),
            dfg,
            terminator: Terminator::Jump(BlockId(usize::MAX)),
        });
        self.dangling.push(Dangling::Jump(id));
        id
    }

    /// Fallible variant of [`SeqBuilder::straight`]: the block-building
    /// closure reports data-flow errors (e.g. from [`Dfg::try_node`]) as
    /// values, and any construction error recorded so far (such as a
    /// duplicate block label) is surfaced immediately.
    ///
    /// # Errors
    ///
    /// The closure's [`DfgError`] (wrapped in [`BuildError::Dfg`]) — the
    /// block is not appended in that case — or the first pending
    /// [`BuildError`] after appending.
    pub fn try_straight(
        &mut self,
        name: impl Into<String>,
        build: impl FnOnce(&mut Dfg) -> Result<(), DfgError>,
    ) -> Result<BlockId, BuildError> {
        let mut dfg = Dfg::new();
        build(&mut dfg)?;
        let id = self.append(BasicBlock {
            name: name.into(),
            dfg,
            terminator: Terminator::Jump(BlockId(usize::MAX)),
        });
        if let Some(e) = self.errors.first() {
            return Err(e.clone());
        }
        self.dangling.push(Dangling::Jump(id));
        Ok(id)
    }

    /// Opens a counted loop `for counter in counter..limit`.
    ///
    /// The header tests `vars[counter_slot] < vars[limit_slot]` into
    /// `cond_slot`; the matching [`SeqBuilder::end_for`] appends the latch
    /// that increments the counter. `bound` is the worst-case iteration
    /// count declared for WCET analysis. The builder owns the counter: body
    /// blocks must not write `counter_slot`.
    pub fn begin_for(
        &mut self,
        name: impl Into<String>,
        counter_slot: usize,
        limit_slot: usize,
        cond_slot: usize,
        bound: u64,
    ) -> BlockId {
        let mut dfg = Dfg::new();
        let i = dfg.input(counter_slot);
        let n = dfg.input(limit_slot);
        let c = dfg.bin(OpKind::Lt, i, n);
        dfg.output(cond_slot, c);
        let header = self.append(BasicBlock {
            name: name.into(),
            dfg,
            terminator: Terminator::Branch {
                cond: cond_slot,
                then_block: BlockId(usize::MAX),
                else_block: BlockId(usize::MAX),
            },
        });
        // Patch `then` on next append; `else` is patched by the block
        // appended after the matching end_for.
        self.dangling.push(Dangling::Then(header));
        self.program.set_loop_bound(header, bound);
        self.loops.push(LoopCtx {
            header,
            counter_slot,
        });
        header
    }

    /// Closes the innermost open loop: appends the latch (`counter += 1`,
    /// jump to header) and redirects the header's exit edge to whatever is
    /// appended next.
    ///
    /// # Panics
    ///
    /// Panics if no loop is open.
    pub fn end_for(&mut self) -> BlockId {
        let ctx = self.loops.pop().expect("end_for without begin_for");
        let mut dfg = Dfg::new();
        let i = dfg.input(ctx.counter_slot);
        let i1 = dfg.bin_imm(OpKind::Add, i, 1);
        dfg.output(ctx.counter_slot, i1);
        let latch = self.append(BasicBlock {
            name: format!("latch@{}", ctx.header.0),
            dfg,
            terminator: Terminator::Jump(ctx.header),
        });
        self.dangling.push(Dangling::Else(ctx.header));
        latch
    }

    /// Finishes the program with a return block.
    ///
    /// # Panics
    ///
    /// Panics if loops are still open, a block label was reused, or the
    /// resulting program fails validation. Use
    /// [`SeqBuilder::try_finish`] to get the error as a value.
    pub fn finish(self) -> Program {
        assert!(self.loops.is_empty(), "unclosed loop");
        match self.try_finish() {
            Ok(p) => p,
            Err(e) => panic!("builder produced an invalid program: {e}"),
        }
    }

    /// Fallible variant of [`SeqBuilder::finish`]: appends the return block
    /// and validates, reporting construction mistakes as a [`BuildError`]
    /// instead of panicking.
    ///
    /// # Errors
    ///
    /// The first error recorded during construction (duplicate block
    /// label), [`BuildError::UnclosedLoop`] when `begin_for`/`end_for` are
    /// unbalanced, or [`BuildError::Invalid`] when the assembled program
    /// fails [`Program::validate`].
    pub fn try_finish(mut self) -> Result<Program, BuildError> {
        if let Some(e) = self.errors.first() {
            return Err(e.clone());
        }
        if !self.loops.is_empty() {
            return Err(BuildError::UnclosedLoop {
                open: self.loops.len(),
            });
        }
        self.append(BasicBlock {
            name: "exit".into(),
            dfg: Dfg::new(),
            terminator: Terminator::Return,
        });
        if let Some(e) = self.errors.first() {
            // The synthetic exit block can itself collide with a user label.
            return Err(e.clone());
        }
        self.program.validate()?;
        Ok(self.program)
    }
}

/// Loads `mem[addr]` where `addr` is an existing node.
pub fn mem_load(dfg: &mut Dfg, addr: NodeId) -> NodeId {
    dfg.un(OpKind::Load, addr)
}

/// Loads `mem[base + idx]` for a constant base.
pub fn mem_load_at(dfg: &mut Dfg, base: i64, idx: NodeId) -> NodeId {
    let addr = dfg.bin_imm(OpKind::Add, idx, base);
    dfg.un(OpKind::Load, addr)
}

/// Stores `value` to `mem[addr]`.
pub fn mem_store(dfg: &mut Dfg, addr: NodeId, value: NodeId) -> NodeId {
    dfg.node(OpKind::Store, &[Operand::Node(addr), Operand::Node(value)])
}

/// Stores `value` to `mem[base + idx]` for a constant base.
pub fn mem_store_at(dfg: &mut Dfg, base: i64, idx: NodeId, value: NodeId) -> NodeId {
    let addr = dfg.bin_imm(OpKind::Add, idx, base);
    mem_store(dfg, addr, value)
}

/// Rotate-left of the low 32 bits of `x` by constant `r` (0 < r < 32),
/// masking the result back to 32 bits. SHA-style kernels use this heavily.
pub fn rotl32(dfg: &mut Dfg, x: NodeId, r: i64) -> NodeId {
    let masked = dfg.bin_imm(OpKind::And, x, 0xffff_ffff);
    let hi = dfg.bin_imm(OpKind::Shl, masked, r);
    let lo = dfg.bin_imm(OpKind::Shr, masked, 32 - r);
    let or = dfg.bin(OpKind::Or, hi, lo);
    dfg.bin_imm(OpKind::And, or, 0xffff_ffff)
}

/// Clamps `x` into `[lo, hi]` with min/max operators.
pub fn clamp(dfg: &mut Dfg, x: NodeId, lo: i64, hi: i64) -> NodeId {
    let capped = dfg.bin_imm(OpKind::Min, x, hi);
    dfg.bin_imm(OpKind::Max, capped, lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_sim::Simulator;

    #[test]
    fn nested_loops_compose() {
        // acc = Σ_{i<3} Σ_{j<4} (i*10 + j)
        const I: usize = 0;
        const NI: usize = 1;
        const J: usize = 2;
        const NJ: usize = 3;
        const ACC: usize = 4;
        const C1: usize = 5;
        const C2: usize = 6;
        let mut b = SeqBuilder::new("nested", 7, 0);
        b.straight("init", |d| {
            let z = d.imm(0);
            let ni = d.imm(3);
            let nj = d.imm(4);
            d.output(I, z);
            d.output(ACC, z);
            d.output(NI, ni);
            d.output(NJ, nj);
        });
        b.begin_for("i", I, NI, C1, 3);
        b.straight("reset_j", |d| {
            let z = d.imm(0);
            d.output(J, z);
        });
        b.begin_for("j", J, NJ, C2, 4);
        b.straight("body", |d| {
            let i = d.input(I);
            let j = d.input(J);
            let acc = d.input(ACC);
            let ten = d.bin_imm(rtise_ir::OpKind::Mul, i, 10);
            let t = d.bin(rtise_ir::OpKind::Add, ten, j);
            let acc2 = d.bin(rtise_ir::OpKind::Add, acc, t);
            d.output(ACC, acc2);
        });
        b.end_for();
        b.end_for();
        let p = b.finish();
        let out = Simulator::new(&p)
            .expect("valid")
            .run(&[], &[])
            .expect("run");
        let want: i64 = (0..3).flat_map(|i| (0..4).map(move |j| i * 10 + j)).sum();
        assert_eq!(out.vars[ACC], want);
        // WCET analysis accepts the structure.
        let wcet = rtise_ir::wcet::analyze(&p).expect("wcet");
        assert!(wcet.wcet >= out.cycles);
    }

    #[test]
    fn helpers_compute_expected_values() {
        const OUT: usize = 0;
        let mut b = SeqBuilder::new("helpers", 1, 8);
        b.straight("main", |d| {
            let x = d.imm(0x1234_5678);
            let r = rotl32(d, x, 8);
            let c = clamp(d, r, 0, 0x4000_0000);
            let a = d.imm(3);
            mem_store(d, a, c);
            let back = mem_load(d, a);
            d.output(OUT, back);
        });
        let p = b.finish();
        let out = Simulator::new(&p)
            .expect("valid")
            .run(&[], &[])
            .expect("run");
        let want = (0x1234_5678u32.rotate_left(8) as i64).clamp(0, 0x4000_0000);
        assert_eq!(out.vars[OUT], want);
    }

    #[test]
    fn try_finish_reports_unclosed_loops() {
        let mut b = SeqBuilder::new("bad", 4, 0);
        b.straight("init", |d| {
            let z = d.imm(0);
            d.output(0, z);
            d.output(1, z);
        });
        b.begin_for("i", 0, 1, 2, 1);
        let err = b.try_finish().expect_err("unclosed loop must be rejected");
        assert_eq!(err, BuildError::UnclosedLoop { open: 1 });
    }

    #[test]
    fn try_finish_reports_duplicate_labels() {
        let mut b = SeqBuilder::new("dup", 2, 0);
        b.straight("stage", |d| {
            let z = d.imm(0);
            d.output(0, z);
        });
        b.straight("stage", |d| {
            let o = d.imm(1);
            d.output(1, o);
        });
        match b.try_finish() {
            Err(BuildError::DuplicateBlockLabel {
                label,
                first,
                second,
            }) => {
                assert_eq!(label, "stage");
                assert_eq!(first, BlockId(0));
                assert_eq!(second, BlockId(1));
            }
            other => panic!("expected duplicate-label error, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "duplicate block label")]
    fn finish_panics_on_duplicate_labels() {
        let mut b = SeqBuilder::new("dup", 1, 0);
        b.straight("x", |d| {
            let z = d.imm(0);
            d.output(0, z);
        });
        b.straight("x", |d| {
            let z = d.imm(0);
            d.output(0, z);
        });
        let _ = b.finish();
    }

    #[test]
    fn try_straight_surfaces_dfg_errors() {
        use rtise_ir::dfg::{DfgError, NodeId, Operand};
        let mut b = SeqBuilder::new("bad_dfg", 2, 0);
        let err = b
            .try_straight("main", |d| {
                // Reference a node that does not exist.
                d.try_node(
                    rtise_ir::OpKind::Add,
                    &[Operand::Node(NodeId(7)), Operand::Imm(1)],
                )?;
                Ok(())
            })
            .expect_err("unknown value reference must be rejected");
        assert_eq!(
            err,
            BuildError::Dfg(DfgError::UndefinedOperand { operand: NodeId(7) })
        );
        // The builder stays usable: the bad block was not appended.
        b.straight("main", |d| {
            let z = d.imm(0);
            d.output(0, z);
        });
        let p = b.try_finish().expect("recovered program is valid");
        assert_eq!(p.blocks.len(), 2);
    }

    #[test]
    #[should_panic(expected = "unclosed loop")]
    fn unclosed_loop_panics() {
        let mut b = SeqBuilder::new("bad", 4, 0);
        b.straight("init", |d| {
            let z = d.imm(0);
            d.output(0, z);
            d.output(1, z);
        });
        b.begin_for("i", 0, 1, 2, 1);
        let _ = b.finish();
    }
}

//! Cryptographic / hashing kernels: `crc32`, `sha`, `blowfish`,
//! `rijndael`, `des3`, `ndes`.
//!
//! Each kernel computes a real algorithm on deterministic input and is
//! cross-checked against a Rust reference. `des3` is deliberately built as
//! one very large unrolled basic block (the Table 5.1 outlier with
//! thousands of primitive instructions per block); the others mix loops and
//! table lookups the way their MiBench counterparts do.

use crate::builder::{mem_load_at, mem_store_at, rotl32, SeqBuilder};
use crate::{DataGen, Kernel};
use rtise_ir::dfg::Dfg;
use rtise_ir::op::OpKind;

const M32: i64 = 0xffff_ffff;

/// CRC-32 (reflected, polynomial `0xEDB88320`) over 64 bytes, with the
/// 8-bit inner loop fully unrolled inside the byte-loop body — the classic
/// custom-instruction showcase.
pub fn crc32() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const CRC: usize = 2;
    const COND: usize = 3;
    const LEN: usize = 64;

    let mut gen = DataGen::new(0xc4c3_2001);
    let data = gen.vec_below(LEN, 256);

    let mut b = SeqBuilder::new("crc32", 4, LEN);
    b.straight("init", |d| {
        let n = d.imm(LEN as i64);
        let zero = d.imm(0);
        let init = d.imm(M32);
        d.output(N, n);
        d.output(I, zero);
        d.output(CRC, init);
    });
    b.begin_for("bytes", I, N, COND, LEN as u64);
    b.straight("body", |d| {
        let i = d.input(I);
        let byte = mem_load_at(d, 0, i);
        let crc_in = d.input(CRC);
        let mut crc = d.bin(OpKind::Xor, crc_in, byte);
        for _ in 0..8 {
            let bit = d.bin_imm(OpKind::And, crc, 1);
            let masked = d.bin_imm(OpKind::And, crc, M32);
            let shifted = d.bin_imm(OpKind::Shr, masked, 1);
            let poly = d.bin_imm(OpKind::Xor, shifted, 0xedb8_8320);
            crc = d.node(
                OpKind::Select,
                &[
                    rtise_ir::dfg::Operand::Node(bit),
                    rtise_ir::dfg::Operand::Node(poly),
                    rtise_ir::dfg::Operand::Node(shifted),
                ],
            );
        }
        d.output(CRC, crc);
    });
    b.end_for();
    let program = b.finish();

    let expected = {
        let mut crc: u32 = 0xffff_ffff;
        for &byte in &data {
            crc ^= byte as u32;
            for _ in 0..8 {
                let bit = crc & 1;
                crc >>= 1;
                if bit != 0 {
                    crc ^= 0xedb8_8320;
                }
            }
        }
        crc as i64
    };
    Kernel::new("crc32", program, vec![], data, move |out| {
        if out.vars[CRC] == expected {
            Ok(())
        } else {
            Err(format!(
                "crc {:x} != expected {:x}",
                out.vars[CRC], expected
            ))
        }
    })
}

/// SHA-1 compression of one 512-bit block: message-schedule expansion to 80
/// words followed by the 80-round loop with the genuine per-phase `f`/`k`
/// selection.
pub fn sha() -> Kernel {
    const T: usize = 0;
    const N: usize = 1;
    const A: usize = 2;
    const B: usize = 3;
    const C: usize = 4;
    const D: usize = 5;
    const E: usize = 6;
    const COND: usize = 7;
    const W: i64 = 0; // w[0..80] in memory

    let mut gen = DataGen::new(0x5aa1_0001);
    let msg: Vec<i64> = (0..16).map(|_| gen.below(1 << 32)).collect();
    let mut mem = msg.clone();
    mem.resize(80, 0);

    const H: [i64; 5] = [
        0x6745_2301,
        0xefcd_ab89,
        0x98ba_dcfe,
        0x1032_5476,
        0xc3d2_e1f0,
    ];
    const K: [i64; 4] = [0x5a82_7999, 0x6ed9_eba1, 0x8f1b_bcdc, 0xca62_c1d6];

    let mut bld = SeqBuilder::new("sha", 8, 80);
    bld.straight("init_expand", |d| {
        let t16 = d.imm(16);
        let n = d.imm(80);
        d.output(T, t16);
        d.output(N, n);
    });
    bld.begin_for("expand", T, N, COND, 64);
    bld.straight("wexp", |d| {
        let t = d.input(T);
        let t3 = d.bin_imm(OpKind::Sub, t, 3);
        let t8 = d.bin_imm(OpKind::Sub, t, 8);
        let t14 = d.bin_imm(OpKind::Sub, t, 14);
        let t16 = d.bin_imm(OpKind::Sub, t, 16);
        let w3 = mem_load_at(d, W, t3);
        let w8 = mem_load_at(d, W, t8);
        let w14 = mem_load_at(d, W, t14);
        let w16 = mem_load_at(d, W, t16);
        let x1 = d.bin(OpKind::Xor, w3, w8);
        let x2 = d.bin(OpKind::Xor, x1, w14);
        let x3 = d.bin(OpKind::Xor, x2, w16);
        let w = rotl32(d, x3, 1);
        mem_store_at(d, W, t, w);
    });
    bld.end_for();
    bld.straight("init_state", |d| {
        let z = d.imm(0);
        d.output(T, z);
        for (slot, h) in [A, B, C, D, E].into_iter().zip(H) {
            let v = d.imm(h);
            d.output(slot, v);
        }
    });
    bld.begin_for("rounds", T, N, COND, 80);
    bld.straight("round", |d| {
        let t = d.input(T);
        let a = d.input(A);
        let b = d.input(B);
        let c = d.input(C);
        let dd = d.input(D);
        let e = d.input(E);
        // Phase predicates.
        let p20 = d.bin_imm(OpKind::Lt, t, 20);
        let p40 = d.bin_imm(OpKind::Lt, t, 40);
        let p60 = d.bin_imm(OpKind::Lt, t, 60);
        // f variants.
        let bc = d.bin(OpKind::And, b, c);
        let nb = d.un(OpKind::Not, b);
        let nbd = d.bin(OpKind::And, nb, dd);
        let f1 = d.bin(OpKind::Or, bc, nbd);
        let bx = d.bin(OpKind::Xor, b, c);
        let f2 = d.bin(OpKind::Xor, bx, dd);
        let bd = d.bin(OpKind::And, b, dd);
        let cd = d.bin(OpKind::And, c, dd);
        let f3a = d.bin(OpKind::Or, bc, bd);
        let f3 = d.bin(OpKind::Or, f3a, cd);
        let sel = |d: &mut Dfg, cnd, x, y| {
            d.node(
                OpKind::Select,
                &[
                    rtise_ir::dfg::Operand::Node(cnd),
                    rtise_ir::dfg::Operand::Node(x),
                    rtise_ir::dfg::Operand::Node(y),
                ],
            )
        };
        let f34 = sel(d, p60, f3, f2);
        let f24 = sel(d, p40, f2, f34);
        let f = sel(d, p20, f1, f24);
        let k1 = d.imm(K[0]);
        let k2 = d.imm(K[1]);
        let k3 = d.imm(K[2]);
        let k4 = d.imm(K[3]);
        let k34 = sel(d, p60, k3, k4);
        let k24 = sel(d, p40, k2, k34);
        let k = sel(d, p20, k1, k24);
        let w = mem_load_at(d, W, t);
        let a5 = rotl32(d, a, 5);
        let s1 = d.bin(OpKind::Add, a5, f);
        let s2 = d.bin(OpKind::Add, s1, e);
        let s3 = d.bin(OpKind::Add, s2, k);
        let s4 = d.bin(OpKind::Add, s3, w);
        let temp = d.bin_imm(OpKind::And, s4, M32);
        let b30 = rotl32(d, b, 30);
        d.output(E, dd);
        d.output(D, c);
        d.output(C, b30);
        d.output(B, a);
        d.output(A, temp);
    });
    bld.end_for();
    let program = bld.finish();

    // Reference SHA-1 compression.
    let expected = {
        let mut w = [0u32; 80];
        for (i, &m) in msg.iter().enumerate() {
            w[i] = m as u32;
        }
        for t in 16..80 {
            w[t] = (w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (
            H[0] as u32,
            H[1] as u32,
            H[2] as u32,
            H[3] as u32,
            H[4] as u32,
        );
        for (t, &wt) in w.iter().enumerate() {
            let (f, k) = match t {
                0..=19 => ((b & c) | (!b & d), K[0] as u32),
                20..=39 => (b ^ c ^ d, K[1] as u32),
                40..=59 => ((b & c) | (b & d) | (c & d), K[2] as u32),
                _ => (b ^ c ^ d, K[3] as u32),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        [a as i64, b as i64, c as i64, d as i64, e as i64]
    };
    Kernel::new("sha", program, vec![], mem, move |out| {
        let got = [
            out.vars[A],
            out.vars[B],
            out.vars[C],
            out.vars[D],
            out.vars[E],
        ];
        // The IR keeps b/d unmasked between rounds except where rotl32
        // masks; compare modulo 2^32.
        for (g, w) in got.iter().zip(expected) {
            if g & M32 != w & M32 {
                return Err(format!("state {got:x?} != {expected:x?}"));
            }
        }
        Ok(())
    })
}

/// Blowfish-style Feistel network: 16 rounds over four 256-entry S-boxes
/// and an 18-entry P-array, operating on one 64-bit block.
pub fn blowfish() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const L: usize = 2;
    const R: usize = 3;
    const COND: usize = 4;
    const P: i64 = 0; // P[0..18]
    const S: i64 = 18; // S[0..4][0..256]

    let mut gen = DataGen::new(0xb10f_1501);
    let mut mem: Vec<i64> = Vec::with_capacity(18 + 4 * 256);
    for _ in 0..18 + 4 * 256 {
        mem.push(gen.below(1 << 32));
    }
    let l0 = gen.below(1 << 32);
    let r0 = gen.below(1 << 32);

    let mut b = SeqBuilder::new("blowfish", 5, mem.len());
    b.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(16);
        let l = d.imm(l0);
        let r = d.imm(r0);
        d.output(I, z);
        d.output(N, n);
        d.output(L, l);
        d.output(R, r);
    });
    b.begin_for("rounds", I, N, COND, 16);
    b.straight("feistel", |d| {
        let i = d.input(I);
        let l_in = d.input(L);
        let r_in = d.input(R);
        let p = mem_load_at(d, P, i);
        let l1 = d.bin(OpKind::Xor, l_in, p);
        // F(l1): byte extraction and S-box mixing.
        let a = {
            let sh = d.bin_imm(OpKind::Shr, l1, 24);
            d.bin_imm(OpKind::And, sh, 0xff)
        };
        let bb = {
            let sh = d.bin_imm(OpKind::Shr, l1, 16);
            d.bin_imm(OpKind::And, sh, 0xff)
        };
        let c = {
            let sh = d.bin_imm(OpKind::Shr, l1, 8);
            d.bin_imm(OpKind::And, sh, 0xff)
        };
        let dd = d.bin_imm(OpKind::And, l1, 0xff);
        let s0 = mem_load_at(d, S, a);
        let s1 = mem_load_at(d, S + 256, bb);
        let s2 = mem_load_at(d, S + 512, c);
        let s3 = mem_load_at(d, S + 768, dd);
        let t1 = d.bin(OpKind::Add, s0, s1);
        let t1m = d.bin_imm(OpKind::And, t1, M32);
        let t2 = d.bin(OpKind::Xor, t1m, s2);
        let t3 = d.bin(OpKind::Add, t2, s3);
        let f = d.bin_imm(OpKind::And, t3, M32);
        let r1 = d.bin(OpKind::Xor, r_in, f);
        // Swap halves for the next round.
        d.output(L, r1);
        d.output(R, l1);
    });
    b.end_for();
    b.straight("final_whiten", |d| {
        // Undo last swap, apply P[16], P[17].
        let l_in = d.input(L);
        let r_in = d.input(R);
        let i16 = d.imm(16);
        let i17 = d.imm(17);
        let p16 = mem_load_at(d, P, i16);
        let p17 = mem_load_at(d, P, i17);
        let r_out = d.bin(OpKind::Xor, r_in, p16);
        let l_out = d.bin(OpKind::Xor, l_in, p17);
        d.output(L, l_out);
        d.output(R, r_out);
    });
    let program = b.finish();

    let expected = {
        let p = &mem[..18];
        let s = &mem[18..];
        let (mut l, mut r) = (l0 as u64, r0 as u64);
        for &pk in p.iter().take(16) {
            l ^= pk as u64;
            let a = (l >> 24 & 0xff) as usize;
            let bb = (l >> 16 & 0xff) as usize;
            let c = (l >> 8 & 0xff) as usize;
            let dd = (l & 0xff) as usize;
            let f = ((s[a] as u64).wrapping_add(s[256 + bb] as u64) & 0xffff_ffff
                ^ s[512 + c] as u64)
                .wrapping_add(s[768 + dd] as u64)
                & 0xffff_ffff;
            r ^= f;
            std::mem::swap(&mut l, &mut r);
        }
        let r_out = r ^ p[16] as u64;
        let l_out = l ^ p[17] as u64;
        (l_out as i64, r_out as i64)
    };
    Kernel::new("blowfish", program, vec![], mem, move |out| {
        if (out.vars[L], out.vars[R]) == expected {
            Ok(())
        } else {
            Err(format!(
                "block ({:x},{:x}) != expected ({:x},{:x})",
                out.vars[L], out.vars[R], expected.0, expected.1
            ))
        }
    })
}

/// AES-style round structure over a 16-byte state: byte substitution
/// through a 256-entry S-box, a shift-rows index permutation, an
/// `xtime`-based column mix, and round-key addition — 10 rounds.
pub fn rijndael() -> Kernel {
    const R: usize = 0;
    const NR: usize = 1;
    const J: usize = 2;
    const NJ: usize = 3;
    const C1: usize = 4;
    const C2: usize = 5;
    const STATE: i64 = 0; // 16 bytes
    const TMP: i64 = 16; // 16 bytes scratch
    const SBOX: i64 = 32; // 256 entries
    const SHIFT: i64 = 288; // 16-entry permutation
    const KEYS: i64 = 304; // 10*16 round keys

    let mut gen = DataGen::new(0xae51_ca1e);
    let state0 = gen.vec_below(16, 256);
    let sbox = gen.vec_below(256, 256);
    // The AES ShiftRows permutation.
    let shift: Vec<i64> = vec![0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11];
    let keys = gen.vec_below(160, 256);
    let mut mem = Vec::new();
    mem.extend_from_slice(&state0);
    mem.extend(std::iter::repeat_n(0, 16));
    mem.extend_from_slice(&sbox);
    mem.extend_from_slice(&shift);
    mem.extend_from_slice(&keys);

    let mut b = SeqBuilder::new("rijndael", 6, mem.len());
    b.straight("init", |d| {
        let z = d.imm(0);
        let nr = d.imm(10);
        let nj = d.imm(16);
        d.output(R, z);
        d.output(NR, nr);
        d.output(NJ, nj);
    });
    b.begin_for("rounds", R, NR, C1, 10);
    // Sub-bytes + shift-rows into TMP.
    b.straight("reset_j1", |d| {
        let z = d.imm(0);
        d.output(J, z);
    });
    b.begin_for("subshift", J, NJ, C2, 16);
    b.straight("sbox_lookup", |d| {
        let j = d.input(J);
        let src_idx = mem_load_at(d, SHIFT, j);
        let byte = mem_load_at(d, STATE, src_idx);
        let subbed = mem_load_at(d, SBOX, byte);
        mem_store_at(d, TMP, j, subbed);
    });
    b.end_for();
    // Mix + add round key back into STATE.
    b.straight("reset_j2", |d| {
        let z = d.imm(0);
        d.output(J, z);
    });
    b.begin_for("mix", J, NJ, C2, 16);
    b.straight("mix_body", |d| {
        let r = d.input(R);
        let j = d.input(J);
        let cur = mem_load_at(d, TMP, j);
        // Neighbor within the same 4-byte column: j ^ 1 keeps it in-column
        // for our simplified mix.
        let nb_idx = d.bin_imm(OpKind::Xor, j, 1);
        let nb = mem_load_at(d, TMP, nb_idx);
        // xtime(nb): shift left, conditionally reduce by 0x1b.
        let dbl = d.bin_imm(OpKind::Shl, nb, 1);
        let hi = d.bin_imm(OpKind::And, dbl, 0x100);
        let red = d.bin_imm(OpKind::Xor, dbl, 0x1b);
        let xt = d.node(
            OpKind::Select,
            &[
                rtise_ir::dfg::Operand::Node(hi),
                rtise_ir::dfg::Operand::Node(red),
                rtise_ir::dfg::Operand::Node(dbl),
            ],
        );
        let xt8 = d.bin_imm(OpKind::And, xt, 0xff);
        let mixed = d.bin(OpKind::Xor, cur, xt8);
        // Round key: keys[r*16 + j].
        let r16 = d.bin_imm(OpKind::Mul, r, 16);
        let kidx = d.bin(OpKind::Add, r16, j);
        let key = mem_load_at(d, KEYS, kidx);
        let out = d.bin(OpKind::Xor, mixed, key);
        mem_store_at(d, STATE, j, out);
    });
    b.end_for();
    b.end_for();
    let program = b.finish();

    let expected = {
        let mut st: Vec<i64> = state0.clone();
        for r in 0..10 {
            let mut tmp = [0i64; 16];
            for j in 0..16 {
                tmp[j] = sbox[st[shift[j] as usize] as usize];
            }
            let mut next = vec![0i64; 16];
            for j in 0..16 {
                let nb = tmp[j ^ 1] as u32;
                let dbl = nb << 1;
                let xt = if dbl & 0x100 != 0 { dbl ^ 0x1b } else { dbl } & 0xff;
                next[j] = (tmp[j] as u32 ^ xt ^ keys[r * 16 + j] as u32) as i64;
            }
            st = next;
        }
        st
    };
    Kernel::new("rijndael", program, vec![], mem, move |out| {
        let got = &out.mem[STATE as usize..STATE as usize + 16];
        if got == expected.as_slice() {
            Ok(())
        } else {
            Err(format!("state {got:x?} != {expected:x?}"))
        }
    })
}

/// Triple-DES-flavoured kernel: twelve Feistel-ish mixing rounds *fully
/// unrolled into a single basic block*, reproducing the huge-basic-block
/// workload of Table 5.1 (thousands of primitive instructions in one DFG).
pub fn des3() -> Kernel {
    const L: usize = 0;
    const R: usize = 1;
    const ROUNDS: usize = 48;

    let mut gen = DataGen::new(0xde53_0003);
    let keys: Vec<i64> = (0..ROUNDS).map(|_| gen.below(1 << 32)).collect();
    let l0 = gen.below(1 << 32);
    let r0 = gen.below(1 << 32);

    let keys_ir = keys.clone();
    let mut b = SeqBuilder::new("des3", 2, 0);
    b.straight("unrolled", move |d| {
        let mut l = d.imm(l0);
        let mut r = d.imm(r0);
        for &k in &keys_ir {
            // F(r, k): expansion-ish mixing with rotates, adds and xors.
            let kx = d.bin_imm(OpKind::Xor, r, k);
            let rot = rotl32(d, kx, 3);
            let sum = d.bin(OpKind::Add, rot, kx);
            let summ = d.bin_imm(OpKind::And, sum, M32);
            let sh = d.bin_imm(OpKind::Shr, summ, 5);
            let f = d.bin(OpKind::Xor, summ, sh);
            let newr = d.bin(OpKind::Xor, l, f);
            l = r;
            r = newr;
        }
        d.output(L, l);
        d.output(R, r);
    });
    let program = b.finish();

    let expected = {
        let (mut l, mut r) = (l0 as u64 & 0xffff_ffff, r0 as u64 & 0xffff_ffff);
        for &k in &keys {
            let kx = r ^ k as u64;
            let rot = ((kx & 0xffff_ffff) as u32).rotate_left(3) as u64;
            let sum = rot.wrapping_add(kx) & 0xffff_ffff;
            let f = sum ^ (sum >> 5);
            let newr = l ^ f;
            l = r;
            r = newr;
        }
        (l as i64, r as i64)
    };
    Kernel::new("des3", program, vec![], vec![], move |out| {
        // r accumulates xors of 32-bit values; compare modulo 2^64 is exact
        // because every operand stays within 33 bits.
        if (out.vars[L], out.vars[R]) == expected {
            Ok(())
        } else {
            Err(format!(
                "({:x},{:x}) != ({:x},{:x})",
                out.vars[L], out.vars[R], expected.0, expected.1
            ))
        }
    })
}

/// A compact DES variant ("new DES"): eight looped rounds with an 8-entry
/// substitution table and byte rotations — the small-block counterpart to
/// [`des3`].
pub fn ndes() -> Kernel {
    const I: usize = 0;
    const N: usize = 1;
    const L: usize = 2;
    const R: usize = 3;
    const COND: usize = 4;
    const TBL: i64 = 0; // 8 entries
    const KEYS: i64 = 8; // 8 round keys

    let mut gen = DataGen::new(0x9de5_0007);
    let mut mem = gen.vec_below(8, 256);
    mem.extend(gen.vec_below(8, 1 << 16));
    let l0 = gen.below(1 << 16);
    let r0 = gen.below(1 << 16);

    let mut b = SeqBuilder::new("ndes", 5, mem.len());
    b.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(8);
        let l = d.imm(l0);
        let r = d.imm(r0);
        d.output(I, z);
        d.output(N, n);
        d.output(L, l);
        d.output(R, r);
    });
    b.begin_for("rounds", I, N, COND, 8);
    b.straight("round", |d| {
        let i = d.input(I);
        let l_in = d.input(L);
        let r_in = d.input(R);
        let k = mem_load_at(d, KEYS, i);
        let mixed = d.bin(OpKind::Xor, r_in, k);
        let idx = d.bin_imm(OpKind::And, mixed, 7);
        let s = mem_load_at(d, TBL, idx);
        let shifted = d.bin_imm(OpKind::Shl, s, 4);
        let f0 = d.bin(OpKind::Add, mixed, shifted);
        let f = d.bin_imm(OpKind::And, f0, 0xffff);
        let newr = d.bin(OpKind::Xor, l_in, f);
        d.output(L, r_in);
        d.output(R, newr);
    });
    b.end_for();
    let program = b.finish();

    let expected = {
        let tbl = &mem[..8];
        let keys = &mem[8..16];
        let (mut l, mut r) = (l0, r0);
        for &key in keys.iter().take(8) {
            let mixed = r ^ key;
            let s = tbl[(mixed & 7) as usize];
            let f = (mixed + (s << 4)) & 0xffff;
            let newr = l ^ f;
            l = r;
            r = newr;
        }
        (l, r)
    };
    Kernel::new("ndes", program, vec![], mem, move |out| {
        if (out.vars[L], out.vars[R]) == expected {
            Ok(())
        } else {
            Err(format!(
                "({:x},{:x}) != ({:x},{:x})",
                out.vars[L], out.vars[R], expected.0, expected.1
            ))
        }
    })
}

/// MD5 compression of one 512-bit block: the real algorithm — sine-derived
/// round constants, per-phase round functions and message indexing, and
/// data-dependent rotate amounts loaded from the shift table.
pub fn md5() -> Kernel {
    const T: usize = 0;
    const N: usize = 1;
    const A: usize = 2;
    const B: usize = 3;
    const C: usize = 4;
    const D: usize = 5;
    const COND: usize = 6;
    const MSG: i64 = 0; // 16 words
    const KTAB: i64 = 16; // 64 sine constants
    const STAB: i64 = 80; // 64 shift amounts

    const S: [i64; 64] = [
        7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
        5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
        4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
        6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
    ];
    const H: [i64; 4] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476];
    let k_tab: Vec<i64> = (0..64)
        .map(|i| (((i as f64 + 1.0).sin().abs()) * 4294967296.0) as i64 & M32)
        .collect();

    let mut gen = DataGen::new(0x3d50_0005);
    let msg: Vec<i64> = (0..16).map(|_| gen.below(1 << 32)).collect();
    let mut mem = msg.clone();
    mem.extend_from_slice(&k_tab);
    mem.extend_from_slice(&S);

    let mut bld = SeqBuilder::new("md5", 7, mem.len());
    bld.straight("init", |d| {
        let z = d.imm(0);
        let n = d.imm(64);
        d.output(T, z);
        d.output(N, n);
        for (slot, h) in [A, B, C, D].into_iter().zip(H) {
            let v = d.imm(h);
            d.output(slot, v);
        }
    });
    bld.begin_for("rounds", T, N, COND, 64);
    bld.straight("round", |d| {
        use rtise_ir::dfg::Operand;
        let sel = |d: &mut Dfg, c, x, y| {
            d.node(
                OpKind::Select,
                &[Operand::Node(c), Operand::Node(x), Operand::Node(y)],
            )
        };
        let t = d.input(T);
        let a = d.input(A);
        let b = d.input(B);
        let c = d.input(C);
        let dd = d.input(D);
        let p16 = d.bin_imm(OpKind::Lt, t, 16);
        let p32 = d.bin_imm(OpKind::Lt, t, 32);
        let p48 = d.bin_imm(OpKind::Lt, t, 48);
        // Round functions.
        let bc = d.bin(OpKind::And, b, c);
        let nb = d.un(OpKind::Not, b);
        let nbd = d.bin(OpKind::And, nb, dd);
        let f1 = d.bin(OpKind::Or, bc, nbd);
        let bd = d.bin(OpKind::And, b, dd);
        let nd = d.un(OpKind::Not, dd);
        let cnd = d.bin(OpKind::And, c, nd);
        let f2 = d.bin(OpKind::Or, bd, cnd);
        let bx = d.bin(OpKind::Xor, b, c);
        let f3 = d.bin(OpKind::Xor, bx, dd);
        let dm = d.bin_imm(OpKind::And, nd, M32);
        let bor = d.bin(OpKind::Or, b, dm);
        let f4 = d.bin(OpKind::Xor, c, bor);
        let f34 = sel(d, p48, f3, f4);
        let f24 = sel(d, p32, f2, f34);
        let f = sel(d, p16, f1, f24);
        // Message index per phase.
        let g1 = d.bin_imm(OpKind::And, t, 15);
        let t5 = d.bin_imm(OpKind::Mul, t, 5);
        let t5p1 = d.bin_imm(OpKind::Add, t5, 1);
        let g2 = d.bin_imm(OpKind::And, t5p1, 15);
        let t3 = d.bin_imm(OpKind::Mul, t, 3);
        let t3p5 = d.bin_imm(OpKind::Add, t3, 5);
        let g3 = d.bin_imm(OpKind::And, t3p5, 15);
        let t7 = d.bin_imm(OpKind::Mul, t, 7);
        let g4 = d.bin_imm(OpKind::And, t7, 15);
        let g34 = sel(d, p48, g3, g4);
        let g24 = sel(d, p32, g2, g34);
        let g = sel(d, p16, g1, g24);
        let m = mem_load_at(d, MSG, g);
        let k = mem_load_at(d, KTAB, t);
        let s = mem_load_at(d, STAB, t);
        // a + F + K[t] + M[g], rotate by s, add b.
        let s1 = d.bin(OpKind::Add, a, f);
        let s2 = d.bin(OpKind::Add, s1, k);
        let s3 = d.bin(OpKind::Add, s2, m);
        let x = d.bin_imm(OpKind::And, s3, M32);
        // Variable rotate-left.
        let hi = d.bin(OpKind::Shl, x, s);
        let inv = d.imm(32);
        let rs = d.bin(OpKind::Sub, inv, s);
        let lo = d.bin(OpKind::Shr, x, rs);
        let rot0 = d.bin(OpKind::Or, hi, lo);
        let rot = d.bin_imm(OpKind::And, rot0, M32);
        let sum = d.bin(OpKind::Add, b, rot);
        let new_b = d.bin_imm(OpKind::And, sum, M32);
        d.output(A, dd);
        d.output(D, c);
        d.output(C, b);
        d.output(B, new_b);
    });
    bld.end_for();
    bld.straight("final_add", |d| {
        for (slot, h) in [A, B, C, D].into_iter().zip(H) {
            let v = d.input(slot);
            let hv = d.imm(h);
            let sum = d.bin(OpKind::Add, v, hv);
            let m = d.bin_imm(OpKind::And, sum, M32);
            d.output(slot, m);
        }
    });
    let program = bld.finish();

    let expected = {
        let (mut a, mut b, mut c, mut d) = (H[0] as u32, H[1] as u32, H[2] as u32, H[3] as u32);
        for t in 0..64usize {
            let (f, g) = match t {
                0..=15 => ((b & c) | (!b & d), t),
                16..=31 => ((b & d) | (c & !d), (5 * t + 1) % 16),
                32..=47 => (b ^ c ^ d, (3 * t + 5) % 16),
                _ => (c ^ (b | !d), (7 * t) % 16),
            };
            let x = a
                .wrapping_add(f)
                .wrapping_add(k_tab[t] as u32)
                .wrapping_add(msg[g] as u32);
            let rot = x.rotate_left(S[t] as u32);
            let nb = b.wrapping_add(rot);
            a = d;
            d = c;
            c = b;
            b = nb;
        }
        [
            (a.wrapping_add(H[0] as u32)) as i64,
            (b.wrapping_add(H[1] as u32)) as i64,
            (c.wrapping_add(H[2] as u32)) as i64,
            (d.wrapping_add(H[3] as u32)) as i64,
        ]
    };
    Kernel::new("md5", program, vec![], mem, move |out| {
        let got = [out.vars[A], out.vars[B], out.vars[C], out.vars[D]];
        if got == expected {
            Ok(())
        } else {
            Err(format!("digest {got:x?} != {expected:x?}"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md5_matches_reference() {
        md5().validate().expect("md5");
    }

    #[test]
    fn crc32_matches_reference() {
        crc32().validate().expect("crc32");
    }

    #[test]
    fn sha_matches_reference() {
        sha().validate().expect("sha");
    }

    #[test]
    fn blowfish_matches_reference() {
        blowfish().validate().expect("blowfish");
    }

    #[test]
    fn rijndael_matches_reference() {
        rijndael().validate().expect("rijndael");
    }

    #[test]
    fn des3_matches_reference_and_has_a_huge_block() {
        let k = des3();
        k.validate().expect("des3");
        assert!(
            k.program.max_block_ops() > 300,
            "des3 should have a very large basic block, got {}",
            k.program.max_block_ops()
        );
    }

    #[test]
    fn ndes_matches_reference() {
        ndes().validate().expect("ndes");
    }

    #[test]
    fn crc32_unrolled_body_is_custom_instruction_material() {
        let k = crc32();
        // The byte-loop body should contain one sizable valid region.
        let sizes: Vec<usize> = k.program.blocks.iter().map(|b| b.dfg.op_count()).collect();
        assert!(*sizes.iter().max().unwrap_or(&0) >= 30, "{sizes:?}");
    }
}

//! Worst-case execution time via the timing-schema approach.
//!
//! Chapter 5 of the paper derives each task's WCET and the basic blocks on
//! its worst-case path with the Timing Schema method (Park/Shaw): loop bodies
//! are collapsed innermost-first (per-iteration longest path × iteration
//! bound) and the remaining acyclic graph is solved by longest path.
//!
//! [`analyze`] returns both the WCET and the per-block worst-case execution
//! counts/cycles used by the iterative customization scheme (Algorithm 4) to
//! rank blocks by their contribution to the WCET.

use crate::cfg::{BlockId, Cfg, Program, Terminator, ValidateProgramError};
use std::collections::HashMap;
use std::fmt;

/// Errors from [`analyze`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WcetError {
    /// The program failed structural validation.
    Validate(ValidateProgramError),
    /// A loop header has no declared iteration bound
    /// ([`Program::set_loop_bound`]).
    MissingLoopBound(BlockId),
    /// A loop exits from a non-header block; the timing schema implemented
    /// here requires while-style (header-exit) loops.
    MultiExitLoop {
        /// The loop's header.
        header: BlockId,
        /// The offending body block with an outside successor.
        exit_block: BlockId,
    },
    /// The control-flow graph contains a cycle that is not a natural loop
    /// (irreducible control flow).
    Irreducible,
    /// No path from the entry reaches a [`Terminator::Return`].
    NoReturn,
}

impl fmt::Display for WcetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcetError::Validate(e) => write!(f, "invalid program: {e}"),
            WcetError::MissingLoopBound(h) => {
                write!(f, "loop at block {} has no iteration bound", h.0)
            }
            WcetError::MultiExitLoop { header, exit_block } => write!(
                f,
                "loop at block {} exits from non-header block {}",
                header.0, exit_block.0
            ),
            WcetError::Irreducible => write!(f, "irreducible control flow"),
            WcetError::NoReturn => write!(f, "no path from entry to a return"),
        }
    }
}

impl std::error::Error for WcetError {}

impl From<ValidateProgramError> for WcetError {
    fn from(e: ValidateProgramError) -> Self {
        WcetError::Validate(e)
    }
}

/// Result of WCET analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WcetReport {
    /// Worst-case execution time of the program, in base-core cycles.
    pub wcet: u64,
    /// Worst-case execution count of each block (0 for blocks off the WCET
    /// path).
    pub counts: Vec<u64>,
    /// Per-block contribution to the WCET: `counts[b] * cost(b)`.
    pub cycles: Vec<u64>,
}

impl WcetReport {
    /// Blocks on the WCET path, sorted by descending contribution — the
    /// block ranking used by Algorithm 4 (line 7).
    pub fn blocks_by_weight(&self) -> Vec<BlockId> {
        let mut v: Vec<BlockId> = (0..self.counts.len())
            .filter(|&b| self.counts[b] > 0)
            .map(BlockId)
            .collect();
        v.sort_by(|a, b| self.cycles[b.0].cmp(&self.cycles[a.0]).then(a.0.cmp(&b.0)));
        v
    }

    /// The fraction of the WCET contributed by block `b`.
    pub fn weight(&self, b: BlockId) -> f64 {
        if self.wcet == 0 {
            0.0
        } else {
            self.cycles[b.0] as f64 / self.wcet as f64
        }
    }
}

/// Computes the WCET of `program` and the per-block worst-case counts.
///
/// # Errors
///
/// See [`WcetError`]. The analysis requires reducible control flow,
/// while-style single-exit loops, and an iteration bound for every loop
/// header.
pub fn analyze(program: &Program) -> Result<WcetReport, WcetError> {
    let costs: Vec<u64> = program
        .block_ids()
        .map(|b| program.block(b).cost())
        .collect();
    analyze_with_costs(program, &costs)
}

/// Like [`analyze`], but with explicit per-block cycle costs — used to
/// re-time a task after custom instructions replaced part of a block's data
/// flow (the per-block cost drops by the selected gains).
///
/// # Errors
///
/// See [`WcetError`].
///
/// # Panics
///
/// Panics if `block_costs.len()` does not match the block count.
pub fn analyze_with_costs(program: &Program, block_costs: &[u64]) -> Result<WcetReport, WcetError> {
    assert_eq!(
        block_costs.len(),
        program.blocks.len(),
        "cost vector length mismatch"
    );
    program.validate()?;
    let cfg = Cfg::analyze(program);
    let n = program.blocks.len();

    // Collapsed cost per block; starts at the supplied block cost.
    let mut cost: Vec<u64> = block_costs.to_vec();
    // Blocks swallowed by a collapsed loop (everything but headers).
    let mut swallowed = vec![false; n];
    // Per loop header: (bound, per-iteration path from latch back to header).
    let mut loop_info: HashMap<BlockId, (u64, Vec<BlockId>)> = HashMap::new();

    for l in cfg.loops_innermost_first() {
        let bound = *program
            .loop_bounds
            .get(&l.header)
            .ok_or(WcetError::MissingLoopBound(l.header))?;
        // Single-exit check: only the header may leave the body.
        for &b in &l.blocks {
            if b == l.header {
                continue;
            }
            if cfg.succs(b).iter().any(|s| !l.contains(*s)) {
                return Err(WcetError::MultiExitLoop {
                    header: l.header,
                    exit_block: b,
                });
            }
        }
        // Longest path through one iteration: header -> ... -> latch, over
        // body edges except back edges, skipping blocks already swallowed by
        // inner loops.
        let body: Vec<BlockId> = l
            .blocks
            .iter()
            .copied()
            .filter(|&b| !swallowed[b.0] || b == l.header)
            .collect();
        let in_body = |b: BlockId| body.contains(&b);
        // Topological order within the body DAG (body edges minus back
        // edges): reuse global RPO, which is a topo order once back edges are
        // removed.
        let mut dist: HashMap<BlockId, u64> = HashMap::new();
        let mut pred_choice: HashMap<BlockId, BlockId> = HashMap::new();
        dist.insert(l.header, cost[l.header.0]);
        for &b in cfg.rpo() {
            if !in_body(b) || b == l.header {
                continue;
            }
            let mut best: Option<(u64, BlockId)> = None;
            for &p in cfg.preds(b) {
                if !in_body(p) {
                    continue;
                }
                // All in-body edges into b are forward edges: back edges
                // target the header and b != header here.
                if let Some(&d) = dist.get(&p) {
                    if best.is_none_or(|(bd, _)| d > bd) {
                        best = Some((d, p));
                    }
                }
            }
            if let Some((d, p)) = best {
                dist.insert(b, d + cost[b.0]);
                pred_choice.insert(b, p);
            }
        }
        let (&best_latch, &per_iter) = l
            .latches
            .iter()
            .filter_map(|lb| dist.get_key_value(lb))
            .max_by_key(|(_, &d)| d)
            .ok_or(WcetError::Irreducible)?;
        // Reconstruct the per-iteration path latch -> header.
        let mut path = vec![best_latch];
        let mut cur = best_latch;
        while cur != l.header {
            cur = *pred_choice.get(&cur).ok_or(WcetError::Irreducible)?;
            path.push(cur);
        }
        // Collapse: loop cost = bound * per-iteration + one extra header
        // evaluation (the failing exit test).
        let header_cost = cost[l.header.0];
        cost[l.header.0] = bound
            .checked_mul(per_iter)
            .and_then(|c| c.checked_add(header_cost))
            .expect("WCET overflow");
        for &b in &l.blocks {
            if b != l.header {
                swallowed[b.0] = true;
            }
        }
        loop_info.insert(l.header, (bound, path));
    }

    // Top-level longest path over the collapsed graph.
    let mut dist: HashMap<BlockId, u64> = HashMap::new();
    let mut pred_choice: HashMap<BlockId, BlockId> = HashMap::new();
    let mut best_return: Option<(u64, BlockId)> = None;
    for &b in cfg.rpo() {
        if swallowed[b.0] {
            continue;
        }
        let d = if b == program.entry {
            cost[b.0]
        } else {
            let mut best: Option<(u64, BlockId)> = None;
            for &p in cfg.preds(b) {
                if swallowed[p.0] {
                    continue;
                }
                // Ignore back edges: p -> b where b is a loop header and p
                // is inside b's loop. After collapsing, the only such edge
                // left is a self back-edge from the header; preds inside the
                // body were swallowed except latch == header itself.
                if loop_info.contains_key(&b) && p == b {
                    continue;
                }
                if let Some(&dp) = dist.get(&p) {
                    if best.is_none_or(|(bd, _)| dp > bd) {
                        best = Some((dp, p));
                    }
                }
            }
            match best {
                Some((dp, p)) => {
                    pred_choice.insert(b, p);
                    dp + cost[b.0]
                }
                None => continue, // unreachable in collapsed graph
            }
        };
        dist.insert(b, d);
        if matches!(program.block(b).terminator, Terminator::Return)
            && best_return.is_none_or(|(bd, _)| d > bd)
        {
            best_return = Some((d, b));
        }
    }
    let (wcet, ret_block) = best_return.ok_or(WcetError::NoReturn)?;

    // Expand counts along the chosen paths.
    let mut counts = vec![0u64; n];
    let mut cur = ret_block;
    let mut top_path = vec![cur];
    while cur != program.entry {
        cur = *pred_choice.get(&cur).ok_or(WcetError::Irreducible)?;
        top_path.push(cur);
    }
    for &b in &top_path {
        expand_counts(b, 1, &loop_info, &mut counts);
    }

    let cycles: Vec<u64> = (0..n).map(|b| counts[b] * block_costs[b]).collect();
    Ok(WcetReport {
        wcet,
        counts,
        cycles,
    })
}

/// Assigns worst-case counts for block `b` executed `ctx` times in its
/// enclosing context, recursing into collapsed loops.
fn expand_counts(
    b: BlockId,
    ctx: u64,
    loop_info: &HashMap<BlockId, (u64, Vec<BlockId>)>,
    counts: &mut Vec<u64>,
) {
    match loop_info.get(&b) {
        None => counts[b.0] += ctx,
        Some((bound, path)) => {
            // The header runs `bound` iterations plus one failing exit test.
            counts[b.0] += ctx * (bound + 1);
            for &pb in path {
                if pb != b {
                    expand_counts(pb, ctx * bound, loop_info, counts);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{BasicBlock, Program};
    use crate::dfg::Dfg;
    use crate::op::OpKind;

    fn block(name: &str, ops: usize, term: Terminator) -> BasicBlock {
        let mut dfg = Dfg::new();
        let mut v = dfg.input(0);
        for _ in 0..ops {
            v = dfg.bin_imm(OpKind::Add, v, 1);
        }
        dfg.output(0, v);
        BasicBlock {
            name: name.into(),
            dfg,
            terminator: term,
        }
    }

    /// entry(2 ops) -> header(1) -> body(5) -> header; header -> exit(1).
    fn loop_program(bound: u64) -> Program {
        let mut p = Program::new("loop", 2, 0);
        p.add_block(block("entry", 2, Terminator::Jump(BlockId(1))));
        p.add_block(block(
            "header",
            1,
            Terminator::Branch {
                cond: 0,
                then_block: BlockId(2),
                else_block: BlockId(3),
            },
        ));
        p.add_block(block("body", 5, Terminator::Jump(BlockId(1))));
        p.add_block(block("exit", 1, Terminator::Return));
        p.set_loop_bound(BlockId(1), bound);
        p
    }

    #[test]
    fn straight_line_wcet_is_sum() {
        let mut p = Program::new("straight", 1, 0);
        p.add_block(block("a", 3, Terminator::Jump(BlockId(1))));
        p.add_block(block("b", 2, Terminator::Return));
        let r = analyze(&p).expect("analyze");
        assert_eq!(r.wcet, (3 + 1) + (2 + 1));
        assert_eq!(r.counts, vec![1, 1]);
    }

    #[test]
    fn branch_takes_longer_arm() {
        let mut p = Program::new("branch", 1, 0);
        p.add_block(block(
            "a",
            1,
            Terminator::Branch {
                cond: 0,
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        ));
        p.add_block(block("short", 1, Terminator::Jump(BlockId(3))));
        p.add_block(block("long", 9, Terminator::Jump(BlockId(3))));
        p.add_block(block("exit", 0, Terminator::Return));
        let r = analyze(&p).expect("analyze");
        assert_eq!(r.counts[1], 0, "short arm off the WCET path");
        assert_eq!(r.counts[2], 1);
        assert_eq!(r.wcet, 2 + 10 + 1);
    }

    #[test]
    fn loop_wcet_scales_with_bound() {
        let p = loop_program(10);
        let r = analyze(&p).expect("analyze");
        // per-iteration = header(2) + body(6) = 8; loop = 10*8 + 2 = 82;
        // total = entry(3) + 82 + exit(2) = 87.
        assert_eq!(r.wcet, 87);
        assert_eq!(r.counts[1], 11, "header runs bound+1 times");
        assert_eq!(r.counts[2], 10);
        // Identity: WCET == sum of per-block cycles on the path.
        assert_eq!(r.wcet, r.cycles.iter().sum::<u64>());
    }

    #[test]
    fn block_weights_rank_hot_blocks_first() {
        let p = loop_program(100);
        let r = analyze(&p).expect("analyze");
        let ranked = r.blocks_by_weight();
        assert_eq!(ranked[0], BlockId(2), "loop body dominates");
        assert!(r.weight(BlockId(2)) > 0.7);
    }

    #[test]
    fn missing_bound_is_reported() {
        let mut p = loop_program(10);
        p.loop_bounds.clear();
        assert_eq!(analyze(&p), Err(WcetError::MissingLoopBound(BlockId(1))));
    }

    #[test]
    fn multi_exit_loop_is_rejected() {
        let mut p = loop_program(10);
        // Make the body branch straight to the exit.
        p.block_mut(BlockId(2)).terminator = Terminator::Branch {
            cond: 0,
            then_block: BlockId(1),
            else_block: BlockId(3),
        };
        assert_eq!(
            analyze(&p),
            Err(WcetError::MultiExitLoop {
                header: BlockId(1),
                exit_block: BlockId(2)
            })
        );
    }

    #[test]
    fn nested_loops_multiply() {
        // entry -> oh -> ih -> ibody -> ih; ih -> latch -> oh; oh -> exit.
        let mut p = Program::new("nested", 2, 0);
        p.add_block(block("entry", 0, Terminator::Jump(BlockId(1))));
        p.add_block(block(
            "oh",
            0,
            Terminator::Branch {
                cond: 0,
                then_block: BlockId(2),
                else_block: BlockId(5),
            },
        ));
        p.add_block(block(
            "ih",
            0,
            Terminator::Branch {
                cond: 0,
                then_block: BlockId(3),
                else_block: BlockId(4),
            },
        ));
        p.add_block(block("ibody", 4, Terminator::Jump(BlockId(2))));
        p.add_block(block("latch", 0, Terminator::Jump(BlockId(1))));
        p.add_block(block("exit", 0, Terminator::Return));
        p.set_loop_bound(BlockId(1), 5);
        p.set_loop_bound(BlockId(2), 7);
        let r = analyze(&p).expect("analyze");
        assert_eq!(r.counts[3], 5 * 7, "inner body runs outer*inner times");
        assert_eq!(r.counts[2], 5 * (7 + 1));
        assert_eq!(r.counts[1], 6);
        assert_eq!(r.wcet, r.cycles.iter().sum::<u64>());
    }

    #[test]
    fn no_return_is_reported() {
        let mut p = Program::new("noret", 1, 0);
        p.add_block(block("spin", 0, Terminator::Jump(BlockId(0))));
        p.set_loop_bound(BlockId(0), 3);
        assert_eq!(analyze(&p), Err(WcetError::NoReturn));
    }
}

//! Region decomposition of a data-flow graph.
//!
//! §5.2.1 of the paper: invalid nodes (memory and control operations)
//! partition a DFG into *regions* — maximal subgraphs of valid nodes that are
//! weakly connected and have no edge to a valid node outside the region.
//! Regions are the unit the MLGP generator partitions into custom
//! instructions, selected in descending weight (operation count) order.

use crate::dfg::{Dfg, NodeId};
use crate::nodeset::NodeSet;

/// A maximal connected subgraph of CI-valid nodes within one [`Dfg`].
#[derive(Debug, Clone)]
pub struct Region {
    /// Member nodes (all CI-valid).
    pub nodes: NodeSet,
    /// Number of real operations in the region (its *weight*, §5.2.2).
    pub weight: usize,
}

/// Splits `dfg` into its regions, heaviest first.
///
/// Constants attached to a region's operations are included in the region
/// (they are valid and hardwired); isolated pseudo-ops form no region.
///
/// # Example
///
/// ```
/// use rtise_ir::dfg::Dfg;
/// use rtise_ir::op::OpKind;
/// use rtise_ir::region::regions;
///
/// let mut g = Dfg::new();
/// let a = g.input(0);
/// let x = g.bin_imm(OpKind::Add, a, 1);
/// let addr = g.bin_imm(OpKind::Add, x, 64);
/// let loaded = g.un(OpKind::Load, addr);      // invalid op splits regions
/// let y = g.bin_imm(OpKind::Mul, loaded, 3);
/// g.output(0, x);
/// g.output(1, y);
///
/// let rs = regions(&g);
/// assert_eq!(rs.len(), 2);
/// ```
pub fn regions(dfg: &Dfg) -> Vec<Region> {
    let n = dfg.len();
    let mut seen = vec![false; n];
    let mut out = Vec::new();
    for start in dfg.ids() {
        if seen[start.0] || !dfg.kind(start).is_ci_valid() || dfg.kind(start).is_pseudo() {
            continue;
        }
        // Flood fill over undirected valid-valid edges.
        let mut nodes = dfg.empty_set();
        let mut stack = vec![start];
        seen[start.0] = true;
        nodes.insert(start);
        while let Some(v) = stack.pop() {
            let neighbours: Vec<NodeId> = dfg
                .args(v)
                .iter()
                .copied()
                .chain(dfg.consumers(v).iter().copied())
                .collect();
            for u in neighbours {
                if !seen[u.0] && dfg.kind(u).is_ci_valid() {
                    seen[u.0] = true;
                    nodes.insert(u);
                    // Constants are absorbed but not expanded through (a
                    // shared constant must not merge unrelated regions).
                    if dfg.kind(u) != crate::op::OpKind::Const {
                        stack.push(u);
                    }
                }
            }
        }
        let weight = nodes.iter().filter(|id| !dfg.kind(*id).is_pseudo()).count();
        if weight > 0 {
            out.push(Region { nodes, weight });
        }
    }
    out.sort_by_key(|r| std::cmp::Reverse(r.weight));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    #[test]
    fn single_region_without_invalid_ops() {
        let mut g = Dfg::new();
        let a = g.input(0);
        let b = g.input(1);
        let s = g.bin(OpKind::Add, a, b);
        let m = g.bin(OpKind::Mul, s, b);
        g.output(0, m);
        let rs = regions(&g);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs[0].weight, 2);
    }

    #[test]
    fn load_splits_regions_and_heaviest_comes_first() {
        let mut g = Dfg::new();
        let a = g.input(0);
        // Region A: 1 op.
        let x = g.bin_imm(OpKind::Add, a, 1);
        g.output(0, x);
        // Load barrier.
        let ld = g.un(OpKind::Load, a);
        // Region B: 3 ops.
        let y1 = g.bin_imm(OpKind::Mul, ld, 3);
        let y2 = g.bin_imm(OpKind::Add, y1, 7);
        let y3 = g.bin(OpKind::Xor, y2, y1);
        g.output(1, y3);
        let rs = regions(&g);
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].weight, 3);
        assert_eq!(rs[1].weight, 1);
        assert!(!rs[0].nodes.contains(ld));
    }

    #[test]
    fn shared_constant_does_not_merge_regions() {
        let mut g = Dfg::new();
        let a = g.input(0);
        let x = g.bin_imm(OpKind::Add, a, 42);
        g.output(0, x);
        let ld = g.un(OpKind::Load, a);
        let y = g.bin_imm(OpKind::Mul, ld, 42); // same interned constant
        g.output(1, y);
        let rs = regions(&g);
        assert_eq!(rs.len(), 2, "constant must not bridge regions");
    }

    #[test]
    fn regions_are_feasible_seed_material() {
        let mut g = Dfg::new();
        let a = g.input(0);
        let b = g.input(1);
        let s = g.bin(OpKind::Add, a, b);
        let t = g.bin(OpKind::Sub, s, b);
        g.output(0, t);
        let rs = regions(&g);
        // A whole region is always convex (it is closed under valid edges).
        assert!(g.is_convex(&rs[0].nodes));
    }
}

//! Hardware cost model for custom functional units.
//!
//! The paper estimates custom-instruction latency and area by synthesizing
//! primitive operators with Synopsys tools on a 0.18 µm library (§5.3.1) and
//! normalizes: area is reported in *adder equivalents* and latency in cycles
//! of a 120 MHz base core where one multiply–accumulate (MAC) takes exactly
//! one cycle. [`HwModel`] reproduces that normalization with a static
//! per-operator table:
//!
//! * `area(op)` — silicon cost in *cells*; 1 adder = [`HwModel::CELLS_PER_ADDER`]
//!   cells, so logic ops can cost fractions of an adder;
//! * `latency_ps(op)` — combinational delay;
//! * a custom instruction's hardware latency is the critical path through its
//!   subgraph, its cycle count is that delay divided by the clock period
//!   (rounded up), and its area is the sum over member operators.

use crate::dfg::Dfg;
use crate::nodeset::NodeSet;
use crate::op::OpKind;

/// Per-operator hardware latency/area table and clock normalization.
///
/// The default model corresponds to the paper's 120 MHz, MAC-normalized
/// setup. All methods are pure; the struct exists so alternative technology
/// points can be swapted in (e.g. for ablation benches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwModel {
    /// Clock period of the customized core, in picoseconds.
    pub cycle_ps: u64,
}

impl HwModel {
    /// Area cells per adder equivalent; used when reporting area "in number
    /// of adders" as Figures 3.1/5.4 do.
    pub const CELLS_PER_ADDER: u64 = 4;

    /// The paper's operating point: 120 MHz (period ≈ 8333 ps), at which a
    /// 32-bit MAC has single-cycle latency.
    pub fn new() -> Self {
        HwModel { cycle_ps: 8333 }
    }

    /// A model with an explicit clock period, for technology ablations.
    pub fn with_cycle_ps(cycle_ps: u64) -> Self {
        assert!(cycle_ps > 0, "cycle period must be positive");
        HwModel { cycle_ps }
    }

    /// Combinational delay of one operator, in picoseconds.
    ///
    /// Pseudo-ops and constants are free (constants are hardwired).
    pub fn latency_ps(&self, op: OpKind) -> u64 {
        match op {
            OpKind::Const | OpKind::Input | OpKind::Output => 0,
            OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Not => 150,
            OpKind::Add | OpKind::Sub => 550,
            OpKind::Eq | OpKind::Ne | OpKind::Lt | OpKind::Le => 600,
            OpKind::Shl | OpKind::Shr | OpKind::Sar => 400,
            OpKind::Select => 200,
            OpKind::Min | OpKind::Max => 700,
            OpKind::Abs => 650,
            OpKind::Mul => 2200,
            OpKind::Div | OpKind::Rem => 9000,
            // Memory ops never appear inside a CFU; cost mirrors an SRAM port
            // so that accidental inclusion is visibly expensive.
            OpKind::Load | OpKind::Store => 4000,
        }
    }

    /// Silicon area of one operator, in cells (see
    /// [`HwModel::CELLS_PER_ADDER`]).
    pub fn area(&self, op: OpKind) -> u64 {
        match op {
            OpKind::Const | OpKind::Input | OpKind::Output => 0,
            OpKind::And | OpKind::Or | OpKind::Xor | OpKind::Not => 1,
            OpKind::Add | OpKind::Sub => 4,
            OpKind::Eq | OpKind::Ne | OpKind::Lt | OpKind::Le => 4,
            OpKind::Shl | OpKind::Shr | OpKind::Sar => 6,
            OpKind::Select => 2,
            OpKind::Min | OpKind::Max => 6,
            OpKind::Abs => 5,
            OpKind::Mul => 70,
            OpKind::Div | OpKind::Rem => 160,
            OpKind::Load | OpKind::Store => 40,
        }
    }

    /// Total area of a candidate subgraph, in cells.
    pub fn ci_area(&self, dfg: &Dfg, set: &NodeSet) -> u64 {
        set.iter().map(|id| self.area(dfg.kind(id))).sum()
    }

    /// Critical-path combinational delay of a candidate subgraph, in
    /// picoseconds (operator chaining inside the CFU, §5.2.3 `hw_ltc`).
    pub fn ci_latency_ps(&self, dfg: &Dfg, set: &NodeSet) -> u64 {
        let mut depth: Vec<u64> = vec![0; dfg.len()];
        let mut max = 0;
        for id in set.iter() {
            let arrive = dfg
                .args(id)
                .iter()
                .filter(|a| set.contains(**a))
                .map(|a| depth[a.0])
                .max()
                .unwrap_or(0);
            depth[id.0] = arrive + self.latency_ps(dfg.kind(id));
            max = max.max(depth[id.0]);
        }
        max
    }

    /// Execution cycles of the candidate as a custom instruction: the
    /// critical-path delay normalized to the clock period, at least one
    /// cycle for any non-empty candidate.
    pub fn ci_cycles(&self, dfg: &Dfg, set: &NodeSet) -> u64 {
        if set.is_empty() {
            return 0;
        }
        self.ci_latency_ps(dfg, set).div_ceil(self.cycle_ps).max(1)
    }

    /// Per-execution cycle gain of the candidate: software latency of the
    /// covered operations minus the custom-instruction cycles (never
    /// negative).
    pub fn ci_gain(&self, dfg: &Dfg, set: &NodeSet) -> u64 {
        let sw = dfg.sw_latency(set);
        let hw = self.ci_cycles(dfg, set);
        sw.saturating_sub(hw)
    }

    /// Area of a subgraph in whole adder equivalents (rounded up), the unit
    /// used for reporting in Figures 3.1 and 5.4.
    pub fn ci_area_adders(&self, dfg: &Dfg, set: &NodeSet) -> u64 {
        self.ci_area(dfg, set).div_ceil(Self::CELLS_PER_ADDER)
    }
}

impl Default for HwModel {
    fn default() -> Self {
        HwModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfg::Dfg;

    fn chain(kinds: &[OpKind]) -> (Dfg, NodeSet) {
        let mut g = Dfg::new();
        let mut prev = g.input(0);
        let other = g.input(1);
        for &k in kinds {
            prev = g.bin(k, prev, other);
        }
        g.output(0, prev);
        let set = g.full_valid_set();
        (g, set)
    }

    #[test]
    fn mac_is_single_cycle() {
        let hw = HwModel::default();
        let (g, set) = chain(&[OpKind::Mul, OpKind::Add]);
        assert_eq!(hw.ci_latency_ps(&g, &set), 2750);
        assert_eq!(hw.ci_cycles(&g, &set), 1);
    }

    #[test]
    fn long_chain_spills_into_more_cycles() {
        let hw = HwModel::default();
        let (g, set) = chain(&[OpKind::Mul; 5]);
        // 5 * 2200 = 11000 ps > one 8333 ps cycle.
        assert_eq!(hw.ci_cycles(&g, &set), 2);
    }

    #[test]
    fn gain_is_sw_minus_hw() {
        let hw = HwModel::default();
        let (g, set) = chain(&[OpKind::Mul, OpKind::Add, OpKind::Xor]);
        // sw: 3 + 1 + 1 = 5; hw: 1 cycle.
        assert_eq!(hw.ci_gain(&g, &set), 4);
    }

    #[test]
    fn area_sums_and_normalizes() {
        let hw = HwModel::default();
        let (g, set) = chain(&[OpKind::Add, OpKind::Add]);
        assert_eq!(hw.ci_area(&g, &set), 8);
        assert_eq!(hw.ci_area_adders(&g, &set), 2);
    }

    #[test]
    fn empty_set_costs_nothing() {
        let hw = HwModel::default();
        let g = Dfg::new();
        let s = g.empty_set();
        assert_eq!(hw.ci_cycles(&g, &s), 0);
        assert_eq!(hw.ci_area(&g, &s), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_period_rejected() {
        let _ = HwModel::with_cycle_ps(0);
    }
}

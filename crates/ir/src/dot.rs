//! Graphviz (DOT) export for data-flow and control-flow graphs.
//!
//! Customization work is graph surgery; being able to *look* at a block's
//! DFG with a candidate subgraph highlighted, or at a program's CFG with
//! loop structure, is the difference between debugging blind and seeing the
//! cut. Render with e.g. `dot -Tsvg block.dot -o block.svg`.

use crate::cfg::{Cfg, Program, Terminator};
use crate::dfg::Dfg;
use crate::nodeset::NodeSet;
use crate::op::OpKind;
use std::fmt::Write as _;

/// Renders a DFG as DOT. Nodes in `highlight` (e.g. a custom-instruction
/// candidate) are filled; memory/pseudo operations get distinct shapes so
/// region boundaries are visible at a glance.
pub fn dfg_to_dot(dfg: &Dfg, name: &str, highlight: Option<&NodeSet>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=TB; node [fontsize=10];");
    for id in dfg.ids() {
        let kind = dfg.kind(id);
        let label = match kind {
            OpKind::Const => format!("#{}", dfg.node_ref(id).const_value()),
            OpKind::Input => format!("in v{}", dfg.node_ref(id).slot()),
            OpKind::Output => format!("out v{}", dfg.node_ref(id).slot()),
            k => k.to_string(),
        };
        let shape = match kind {
            OpKind::Load | OpKind::Store => "box3d",
            OpKind::Input | OpKind::Output => "invhouse",
            OpKind::Const => "plaintext",
            _ => "ellipse",
        };
        let fill = if highlight.is_some_and(|h| h.contains(id)) {
            ", style=filled, fillcolor=lightgoldenrod"
        } else if !kind.is_ci_valid() {
            ", style=filled, fillcolor=lightgray"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}:{}\", shape={}{}];",
            id.0, id.0, label, shape, fill
        );
    }
    for id in dfg.ids() {
        for &a in dfg.args(id) {
            let _ = writeln!(out, "  n{} -> n{};", a.0, id.0);
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a program's CFG as DOT: one node per basic block (labelled with
/// its name and operation count), branch edges labelled T/F, back edges
/// dashed, and loop headers double-circled.
pub fn cfg_to_dot(program: &Program) -> String {
    let cfg = Cfg::analyze(program);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(&program.name));
    let _ = writeln!(out, "  node [fontsize=10, shape=box];");
    for b in program.block_ids() {
        let bb = program.block(b);
        let is_header = cfg.loops().iter().any(|l| l.header == b);
        let peripheries = if is_header { 2 } else { 1 };
        let _ = writeln!(
            out,
            "  b{} [label=\"{}\\n{} ops\", peripheries={}];",
            b.0,
            sanitize(&bb.name),
            bb.dfg.op_count(),
            peripheries
        );
    }
    for b in program.block_ids() {
        let back = |to: crate::cfg::BlockId| {
            cfg.loops()
                .iter()
                .any(|l| l.header == to && l.latches.contains(&b))
        };
        match program.block(b).terminator {
            Terminator::Jump(t) => {
                let style = if back(t) { " [style=dashed]" } else { "" };
                let _ = writeln!(out, "  b{} -> b{}{};", b.0, t.0, style);
            }
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => {
                for (t, lbl) in [(then_block, "T"), (else_block, "F")] {
                    let style = if back(t) { ", style=dashed" } else { "" };
                    let _ = writeln!(out, "  b{} -> b{} [label=\"{lbl}\"{style}];", b.0, t.0);
                }
            }
            Terminator::Return => {
                let _ = writeln!(out, "  b{} -> exit;", b.0);
            }
        }
    }
    let _ = writeln!(out, "  exit [shape=doublecircle, label=\"ret\"];");
    out.push_str("}\n");
    out
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c == '"' || c == '\\' { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{BasicBlock, BlockId};

    fn sample() -> (Program, NodeSet) {
        let mut dfg = Dfg::new();
        let a = dfg.input(0);
        let m = dfg.bin_imm(OpKind::Mul, a, 3);
        let s = dfg.bin_imm(OpKind::Add, m, 1);
        let ld = dfg.un(OpKind::Load, s);
        dfg.output(0, ld);
        let mut hl = dfg.empty_set();
        hl.insert(m);
        hl.insert(s);
        let mut p = Program::new("sample", 1, 16);
        p.add_block(BasicBlock {
            name: "entry".into(),
            dfg,
            terminator: Terminator::Jump(BlockId(1)),
        });
        p.add_block(BasicBlock {
            name: "body".into(),
            dfg: Dfg::new(),
            terminator: Terminator::Branch {
                cond: 0,
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        });
        p.add_block(BasicBlock {
            name: "done".into(),
            dfg: Dfg::new(),
            terminator: Terminator::Return,
        });
        p.set_loop_bound(BlockId(1), 4);
        (p, hl)
    }

    #[test]
    fn dfg_dot_contains_nodes_edges_and_highlight() {
        let (p, hl) = sample();
        let dot = dfg_to_dot(&p.block(BlockId(0)).dfg, "entry", Some(&hl));
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("mul"));
        assert!(dot.contains("lightgoldenrod"), "highlight rendered");
        assert!(dot.contains("box3d"), "load gets the memory shape");
        assert!(dot.contains("->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn cfg_dot_marks_loops_and_branches() {
        let (p, _) = sample();
        let dot = cfg_to_dot(&p);
        assert!(dot.contains("peripheries=2"), "loop header double-circled");
        assert!(dot.contains("style=dashed"), "back edge dashed");
        assert!(dot.contains("label=\"T\""));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn quotes_in_names_are_sanitized() {
        let mut dfg = Dfg::new();
        let a = dfg.input(0);
        dfg.output(0, a);
        let dot = dfg_to_dot(&dfg, "we\"ird", None);
        assert!(!dot.contains("we\"ird"));
    }

    #[test]
    fn whole_kernel_cfgs_render() {
        // Smoke-render a nontrivial program from the sample above repeated;
        // real kernels are covered by the kernels crate's dev-dependency
        // cycle being unavailable here.
        let (p, _) = sample();
        let dot = cfg_to_dot(&p);
        assert!(dot.lines().count() > 8);
    }
}

//! # rtise-ir
//!
//! Intermediate representation for the `rtise` instruction-set customization
//! toolchain.
//!
//! The crate provides the substrate that every customization algorithm in the
//! workspace consumes:
//!
//! * [`op::OpKind`] — the primitive operation set of the base processor,
//!   annotated with software latencies, hardware latencies and silicon area
//!   (see [`hw`]).
//! * [`dfg::Dfg`] — a data-flow graph for one basic block, with convexity and
//!   input/output-operand feasibility checks over [`nodeset::NodeSet`]
//!   subgraphs. Feasible convex subgraphs are exactly the *custom instruction
//!   candidates* of the paper.
//! * [`mod@cfg`] — basic blocks, a control-flow graph with executable terminator
//!   semantics, natural-loop detection and per-loop iteration bounds.
//! * [`wcet`] — worst-case execution time via the timing-schema approach used
//!   in Chapter 5 of the paper, including the WCET path and per-block weights.
//! * [`region`] — decomposition of a DFG into maximal regions of *valid*
//!   (hardware-implementable) operations, the unit of work for the MLGP
//!   generator.
//!
//! # Example
//!
//! Build a tiny multiply–accumulate data-flow graph and check that it is a
//! feasible custom-instruction candidate under a 4-input / 2-output budget:
//!
//! ```
//! use rtise_ir::dfg::{Dfg, Operand};
//! use rtise_ir::op::OpKind;
//! use rtise_ir::hw::HwModel;
//!
//! let mut dfg = Dfg::new();
//! let a = dfg.input(0);
//! let b = dfg.input(1);
//! let c = dfg.input(2);
//! let m = dfg.node(OpKind::Mul, &[Operand::Node(a), Operand::Node(b)]);
//! let s = dfg.node(OpKind::Add, &[Operand::Node(m), Operand::Node(c)]);
//! dfg.output(0, s);
//!
//! let cand = dfg.full_valid_set();
//! assert!(dfg.is_convex(&cand));
//! assert!(dfg.io_counts(&cand).fits(4, 2));
//!
//! let hw = HwModel::default();
//! // A multiply–add chain fits in a single custom-instruction cycle.
//! assert_eq!(hw.ci_cycles(&dfg, &cand), 1);
//! ```

pub mod cfg;
pub mod dfg;
pub mod dot;
pub mod hw;
pub mod nodeset;
pub mod op;
pub mod region;
pub mod wcet;

pub use cfg::{BasicBlock, BlockId, Cfg, Program, Terminator};
pub use dfg::{Dfg, IoCounts, NodeId, Operand};
pub use hw::HwModel;
pub use nodeset::NodeSet;
pub use op::OpKind;

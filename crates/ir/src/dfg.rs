//! Data-flow graphs and custom-instruction feasibility checks.
//!
//! A [`Dfg`] models one basic block: a directed acyclic graph whose nodes are
//! primitive operations ([`crate::op::OpKind`]) and whose edges are data
//! dependencies. Custom-instruction candidates are node subsets
//! ([`crate::nodeset::NodeSet`]) that must satisfy the three architectural
//! constraints of §2.3.1 / §5.2.1 of the paper:
//!
//! 1. every member operation is hardware-implementable
//!    ([`OpKind::is_ci_valid`]),
//! 2. the subgraph is **convex** — no data path leaves and re-enters it
//!    ([`Dfg::is_convex`]), so it can execute atomically,
//! 3. its distinct input/output operand counts fit the register-file port
//!    budget ([`Dfg::io_counts`], [`IoCounts::fits`]).

use crate::nodeset::NodeSet;
use crate::op::OpKind;
use std::collections::HashMap;
use std::fmt;

/// Index of a node within its owning [`Dfg`].
///
/// Ids are assigned in construction order, which the builder guarantees to be
/// a topological order (operands always precede their consumers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// An operand given to [`Dfg::node`]: either an existing node or an
/// immediate, which is interned as a [`OpKind::Const`] node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// The value produced by an existing node.
    Node(NodeId),
    /// An immediate constant (interned and deduplicated).
    Imm(i64),
}

/// One operation in a [`Dfg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    kind: OpKind,
    args: Vec<NodeId>,
    /// Constant value for [`OpKind::Const`], variable slot for
    /// [`OpKind::Input`] / [`OpKind::Output`]; unused otherwise.
    payload: i64,
}

impl Node {
    /// The operation kind.
    pub fn kind(&self) -> OpKind {
        self.kind
    }

    /// Ordered operand nodes.
    pub fn args(&self) -> &[NodeId] {
        &self.args
    }

    /// The constant value of a [`OpKind::Const`] node.
    ///
    /// # Panics
    ///
    /// Panics if the node is not a constant.
    pub fn const_value(&self) -> i64 {
        assert_eq!(self.kind, OpKind::Const, "not a const node");
        self.payload
    }

    /// The variable slot of an [`OpKind::Input`] or [`OpKind::Output`] node.
    ///
    /// # Panics
    ///
    /// Panics if the node is neither input nor output.
    pub fn slot(&self) -> usize {
        assert!(
            matches!(self.kind, OpKind::Input | OpKind::Output),
            "not an input/output node"
        );
        self.payload as usize
    }
}

/// A structural error rejected by [`Dfg::try_node`].
///
/// The panicking constructors ([`Dfg::node`] and friends) enforce the same
/// invariants with `assert!`; `try_node` surfaces them as values so
/// front-ends (and the `rtise-check` analyzer) can report them as
/// diagnostics instead of aborting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DfgError {
    /// `kind` is a pseudo-op; use [`Dfg::imm`], [`Dfg::input`],
    /// [`Dfg::output`] instead.
    PseudoOp {
        /// The rejected operation kind.
        kind: OpKind,
    },
    /// The operand count does not match [`OpKind::arity`].
    ArityMismatch {
        /// The operation kind.
        kind: OpKind,
        /// `kind.arity()`.
        expected: usize,
        /// Operands actually supplied.
        got: usize,
    },
    /// An operand references a node that does not exist yet (unknown value
    /// reference — would break the topological-order invariant).
    UndefinedOperand {
        /// The unknown reference.
        operand: NodeId,
    },
}

impl fmt::Display for DfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfgError::PseudoOp { kind } => {
                write!(f, "use imm/input/output for pseudo-op {kind}")
            }
            DfgError::ArityMismatch {
                kind,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for {kind}: expected {expected} operands, got {got}"
            ),
            DfgError::UndefinedOperand { operand } => {
                write!(f, "operand {operand:?} not yet defined")
            }
        }
    }
}

impl std::error::Error for DfgError {}

/// Distinct input/output operand counts of a candidate subgraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoCounts {
    /// Distinct external value producers feeding the subgraph
    /// (constants are hardwired and do not count).
    pub inputs: usize,
    /// Member nodes whose value is consumed outside the subgraph.
    pub outputs: usize,
}

impl IoCounts {
    /// Whether the counts fit a register-port budget of `max_in` inputs and
    /// `max_out` outputs.
    pub fn fits(self, max_in: usize, max_out: usize) -> bool {
        self.inputs <= max_in && self.outputs <= max_out
    }
}

/// A data-flow graph for one basic block.
///
/// Construction is append-only and topologically ordered; see the
/// [crate-level example](crate).
#[derive(Debug, Clone, Default)]
pub struct Dfg {
    nodes: Vec<Node>,
    succs: Vec<Vec<NodeId>>,
    consts: HashMap<i64, NodeId>,
}

impl Dfg {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Dfg::default()
    }

    /// Number of nodes (including pseudo-ops and constants).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Interns an immediate constant, returning its node.
    pub fn imm(&mut self, value: i64) -> NodeId {
        if let Some(&id) = self.consts.get(&value) {
            return id;
        }
        let id = self.push(Node {
            kind: OpKind::Const,
            args: vec![],
            payload: value,
        });
        self.consts.insert(value, id);
        id
    }

    /// Adds an [`OpKind::Input`] node reading variable slot `slot`.
    pub fn input(&mut self, slot: usize) -> NodeId {
        self.push(Node {
            kind: OpKind::Input,
            args: vec![],
            payload: slot as i64,
        })
    }

    /// Adds an [`OpKind::Output`] node writing `value` to variable `slot` at
    /// block exit.
    pub fn output(&mut self, slot: usize, value: NodeId) -> NodeId {
        self.push(Node {
            kind: OpKind::Output,
            args: vec![value],
            payload: slot as i64,
        })
    }

    /// Adds a compute / memory node.
    ///
    /// # Panics
    ///
    /// Panics if the operand count does not match [`OpKind::arity`], if an
    /// operand refers to a not-yet-created node (which would break the
    /// topological-order invariant), or if `kind` is a pseudo-op (use
    /// [`Dfg::imm`], [`Dfg::input`], [`Dfg::output`] for those).
    pub fn node(&mut self, kind: OpKind, operands: &[Operand]) -> NodeId {
        match self.try_node(kind, operands) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Dfg::node`]: rejects pseudo-ops, arity
    /// mismatches and unknown value references as a [`DfgError`] instead of
    /// panicking, leaving the graph unchanged.
    ///
    /// # Errors
    ///
    /// See [`DfgError`].
    pub fn try_node(&mut self, kind: OpKind, operands: &[Operand]) -> Result<NodeId, DfgError> {
        if kind.is_pseudo() {
            return Err(DfgError::PseudoOp { kind });
        }
        if operands.len() != kind.arity() {
            return Err(DfgError::ArityMismatch {
                kind,
                expected: kind.arity(),
                got: operands.len(),
            });
        }
        for &o in operands {
            if let Operand::Node(n) = o {
                if n.0 >= self.nodes.len() {
                    return Err(DfgError::UndefinedOperand { operand: n });
                }
            }
        }
        let args: Vec<NodeId> = operands
            .iter()
            .map(|&o| match o {
                Operand::Node(n) => n,
                Operand::Imm(v) => self.imm(v),
            })
            .collect();
        Ok(self.push(Node {
            kind,
            args,
            payload: 0,
        }))
    }

    /// Convenience: binary node over two existing nodes.
    pub fn bin(&mut self, kind: OpKind, a: NodeId, b: NodeId) -> NodeId {
        self.node(kind, &[Operand::Node(a), Operand::Node(b)])
    }

    /// Convenience: binary node with an immediate right operand.
    pub fn bin_imm(&mut self, kind: OpKind, a: NodeId, imm: i64) -> NodeId {
        self.node(kind, &[Operand::Node(a), Operand::Imm(imm)])
    }

    /// Convenience: unary node.
    pub fn un(&mut self, kind: OpKind, a: NodeId) -> NodeId {
        self.node(kind, &[Operand::Node(a)])
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len());
        for &a in &node.args {
            self.succs[a.0].push(id);
        }
        self.nodes.push(node);
        self.succs.push(vec![]);
        id
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node_ref(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// The operation kind of `id`.
    pub fn kind(&self, id: NodeId) -> OpKind {
        self.nodes[id.0].kind
    }

    /// Ordered operand nodes of `id`.
    pub fn args(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.0].args
    }

    /// Consumers of the value produced by `id`.
    pub fn consumers(&self, id: NodeId) -> &[NodeId] {
        &self.succs[id.0]
    }

    /// Iterates all node ids in topological (construction) order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// An empty [`NodeSet`] sized for this graph.
    pub fn empty_set(&self) -> NodeSet {
        NodeSet::with_capacity(self.nodes.len())
    }

    /// The set of all CI-valid nodes (compute ops and constants).
    pub fn full_valid_set(&self) -> NodeSet {
        let mut s = self.empty_set();
        for id in self.ids() {
            if self.kind(id).is_ci_valid() {
                s.insert(id);
            }
        }
        s
    }

    /// Number of real (non-pseudo) operations — the "primitive instruction"
    /// size of the block used in Table 5.1.
    pub fn op_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.kind.is_pseudo()).count()
    }

    /// Total software latency of the whole block on the base core.
    pub fn sw_latency_total(&self) -> u64 {
        self.nodes.iter().map(|n| n.kind.sw_latency()).sum()
    }

    /// Software latency of a node subset.
    pub fn sw_latency(&self, set: &NodeSet) -> u64 {
        set.iter().map(|id| self.kind(id).sw_latency()).sum()
    }

    /// Checks the convexity constraint: there is no data path from a member
    /// node through a non-member back into the set.
    ///
    /// A non-convex candidate cannot execute atomically because it would need
    /// an intermediate result produced outside the custom functional unit
    /// mid-execution.
    pub fn is_convex(&self, set: &NodeSet) -> bool {
        // descendants-of-set ∩ ancestors-of-set \ set must be empty.
        let n = self.nodes.len();
        let mut desc = vec![false; n]; // strictly-outside nodes reachable from set
        for id in self.ids() {
            let via_member_pred = self.args(id).iter().any(|a| set.contains(*a));
            let via_outside_desc = self.args(id).iter().any(|a| desc[a.0]);
            if !set.contains(id) && (via_member_pred || via_outside_desc) {
                desc[id.0] = true;
            }
        }
        // Walk again: does any `desc` node feed (directly or transitively
        // through other desc nodes) back into the set? Direct check suffices:
        // a desc node with a member consumer closes the non-convex path.
        for id in self.ids() {
            if desc[id.0] && self.succs[id.0].iter().any(|s| set.contains(*s)) {
                return false;
            }
        }
        true
    }

    /// Distinct input/output operand counts of a candidate subgraph.
    ///
    /// Inputs are distinct external producers feeding the set; constants are
    /// hardwired into the datapath and excluded, matching common practice in
    /// the identification literature. Outputs are member nodes consumed
    /// outside the set (including by [`OpKind::Output`] pseudo-ops).
    pub fn io_counts(&self, set: &NodeSet) -> IoCounts {
        let mut inputs = self.empty_set();
        let mut outputs = 0usize;
        for id in set.iter() {
            for &a in self.args(id) {
                if !set.contains(a) && self.kind(a) != OpKind::Const {
                    inputs.insert(a);
                }
            }
            if self.succs[id.0].iter().any(|s| !set.contains(*s)) {
                outputs += 1;
            }
        }
        IoCounts {
            inputs: inputs.len(),
            outputs,
        }
    }

    /// Whether `set` is a legal custom-instruction candidate: all members
    /// valid, convex, and within the `(max_in, max_out)` port budget.
    pub fn is_feasible_ci(&self, set: &NodeSet, max_in: usize, max_out: usize) -> bool {
        !set.is_empty()
            && set.iter().all(|id| self.kind(id).is_ci_valid())
            && self.io_counts(set).fits(max_in, max_out)
            && self.is_convex(set)
    }

    /// Ancestors of `id` (transitive operands), excluding `id` itself.
    pub fn ancestors(&self, id: NodeId) -> NodeSet {
        let mut anc = self.empty_set();
        let mut stack = vec![id];
        while let Some(v) = stack.pop() {
            for &a in self.args(v) {
                if anc.insert(a) {
                    stack.push(a);
                }
            }
        }
        anc
    }

    /// Descendants of `id` (transitive consumers), excluding `id` itself.
    pub fn descendants(&self, id: NodeId) -> NodeSet {
        let mut desc = self.empty_set();
        let mut stack = vec![id];
        while let Some(v) = stack.pop() {
            for &s in &self.succs[v.0] {
                if desc.insert(s) {
                    stack.push(s);
                }
            }
        }
        desc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of Fig. 5.1: a diamond with a tail.
    ///
    /// ```text
    ///   i0   i1
    ///    \   /
    ///     add(2)
    ///    /     \
    ///  mul(3)  sub(4)
    ///    \     /
    ///     xor(5)
    /// ```
    fn diamond() -> (Dfg, [NodeId; 6]) {
        let mut g = Dfg::new();
        let i0 = g.input(0);
        let i1 = g.input(1);
        let add = g.bin(OpKind::Add, i0, i1);
        let mul = g.bin_imm(OpKind::Mul, add, 3);
        let sub = g.bin_imm(OpKind::Sub, add, 1);
        let xor = g.bin(OpKind::Xor, mul, sub);
        g.output(0, xor);
        (g, [i0, i1, add, mul, sub, xor])
    }

    #[test]
    fn construction_orders_topologically() {
        let (g, n) = diamond();
        for id in g.ids() {
            for &a in g.args(id) {
                assert!(a.0 < id.0, "operand after consumer");
            }
        }
        assert_eq!(g.consumers(n[2]).len(), 2);
    }

    #[test]
    fn const_interning_deduplicates() {
        let mut g = Dfg::new();
        let a = g.imm(7);
        let b = g.imm(7);
        let c = g.imm(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(g.node_ref(a).const_value(), 7);
    }

    #[test]
    fn convexity_detects_escaping_path() {
        let (g, n) = diamond();
        // {add, mul, xor} is non-convex: add -> sub (outside) -> xor.
        let mut bad = g.empty_set();
        for id in [n[2], n[3], n[5]] {
            bad.insert(id);
        }
        assert!(!g.is_convex(&bad));
        // {add, mul, sub, xor} is convex.
        let mut good = g.empty_set();
        for id in [n[2], n[3], n[4], n[5]] {
            good.insert(id);
        }
        assert!(g.is_convex(&good));
        // Singletons are always convex.
        for id in g.ids() {
            let mut s = g.empty_set();
            s.insert(id);
            assert!(g.is_convex(&s), "{id:?}");
        }
    }

    #[test]
    fn io_counts_ignore_constants() {
        let (g, n) = diamond();
        let mut s = g.empty_set();
        for id in [n[2], n[3], n[4], n[5]] {
            s.insert(id);
        }
        let io = g.io_counts(&s);
        // Inputs: i0, i1 (the two const operands of mul/sub are hardwired).
        assert_eq!(io.inputs, 2);
        // Outputs: only xor feeds the Output pseudo-op.
        assert_eq!(io.outputs, 1);
        assert!(io.fits(4, 2));
        assert!(!io.fits(1, 2));
    }

    #[test]
    fn internal_values_are_not_outputs() {
        let (g, n) = diamond();
        let mut s = g.empty_set();
        s.insert(n[2]);
        let io = g.io_counts(&s);
        // add feeds mul and sub, both outside -> it is one output producer.
        assert_eq!(io.outputs, 1);
        assert_eq!(io.inputs, 2);
    }

    #[test]
    fn feasibility_combines_all_constraints() {
        let (g, n) = diamond();
        let mut s = g.empty_set();
        for id in [n[2], n[3], n[4], n[5]] {
            s.insert(id);
        }
        assert!(g.is_feasible_ci(&s, 2, 1));
        assert!(!g.is_feasible_ci(&s, 1, 1));
        let mut with_input = s.clone();
        with_input.insert(n[0]);
        assert!(
            !g.is_feasible_ci(&with_input, 4, 4),
            "inputs are invalid ops"
        );
        assert!(
            !g.is_feasible_ci(&g.empty_set(), 4, 2),
            "empty set infeasible"
        );
    }

    #[test]
    fn ancestors_descendants() {
        let (g, n) = diamond();
        let anc = g.ancestors(n[5]);
        assert!(anc.contains(n[2]) && anc.contains(n[0]) && anc.contains(n[1]));
        assert!(!anc.contains(n[5]));
        let desc = g.descendants(n[2]);
        assert!(desc.contains(n[3]) && desc.contains(n[4]) && desc.contains(n[5]));
    }

    #[test]
    fn sw_latency_sums_members_only() {
        let (g, n) = diamond();
        let mut s = g.empty_set();
        s.insert(n[3]); // mul = 3 cycles
        s.insert(n[2]); // add = 1 cycle
        assert_eq!(g.sw_latency(&s), 4);
        assert_eq!(
            g.sw_latency_total(),
            3 + 1 + 1 + 1 // mul + add + sub + xor (inputs/outputs/consts free)
        );
    }
}

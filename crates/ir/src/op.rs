//! The primitive operation set of the base processor.
//!
//! Every data-flow node carries an [`OpKind`]. The kind determines
//!
//! * how many operands the operation takes ([`OpKind::arity`]),
//! * whether it may be absorbed into a custom instruction
//!   ([`OpKind::is_ci_valid`] — memory and control operations may not, per the
//!   convexity/atomicity discussion in §5.2.1 of the paper),
//! * its software cost on the single-issue base core and its hardware
//!   latency/area (see [`crate::hw::HwModel`]).

use std::fmt;

/// A primitive operation of the base instruction set.
///
/// The set mirrors the integer subset of a Trimaran/Xtensa-class embedded
/// core: ALU ops, multiplier, divider, shifts, comparisons, predicated
/// select, and the memory/pseudo operations that delimit custom-instruction
/// regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Integer constant (immediate). Hardwired in hardware: zero area, zero
    /// latency, and it does not count as a custom-instruction input operand.
    Const,
    /// Block input: reads variable slot `k` at block entry (pseudo-op).
    Input,
    /// Block output: writes variable slot `k` at block exit (pseudo-op).
    Output,
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Signed multiplication (low 64 bits).
    Mul,
    /// Signed division (quotient); traps avoided by defining `x / 0 = 0`.
    Div,
    /// Signed remainder; `x % 0 = x` by convention.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT.
    Not,
    /// Logical shift left (shift amount masked to 0..63).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Equality comparison producing 0/1.
    Eq,
    /// Inequality comparison producing 0/1.
    Ne,
    /// Signed less-than producing 0/1.
    Lt,
    /// Signed less-or-equal producing 0/1.
    Le,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Absolute value.
    Abs,
    /// Predicated select: `select(c, t, f) = if c != 0 { t } else { f }`.
    Select,
    /// Memory load; operand is the address. Invalid inside custom
    /// instructions (limited memory ports, §5.2.1).
    Load,
    /// Memory store; operands are address and value. Invalid inside custom
    /// instructions.
    Store,
}

impl OpKind {
    /// Number of operands the operation consumes.
    ///
    /// `Const` and `Input` are sources (0 operands); `Output` consumes one
    /// value; `Select` is the only ternary operation.
    pub const fn arity(self) -> usize {
        match self {
            OpKind::Const | OpKind::Input => 0,
            OpKind::Not | OpKind::Abs | OpKind::Load | OpKind::Output => 1,
            OpKind::Select => 3,
            OpKind::Store => 2,
            _ => 2,
        }
    }

    /// Whether the operation may be included in a custom instruction.
    ///
    /// Memory operations are excluded because the custom functional unit has
    /// no direct memory port; `Input`/`Output` are pseudo-operations that
    /// represent register traffic and live outside any candidate subgraph.
    pub const fn is_ci_valid(self) -> bool {
        !matches!(
            self,
            OpKind::Load | OpKind::Store | OpKind::Input | OpKind::Output
        )
    }

    /// Whether the operation is a pseudo-op (register traffic, immediates)
    /// rather than real computation.
    pub const fn is_pseudo(self) -> bool {
        matches!(self, OpKind::Const | OpKind::Input | OpKind::Output)
    }

    /// Software latency in base-processor cycles (single-issue, in-order,
    /// perfect cache — the evaluation model of §4.3/§5.3.1).
    pub const fn sw_latency(self) -> u64 {
        match self {
            OpKind::Const | OpKind::Input | OpKind::Output => 0,
            OpKind::Mul => 3,
            OpKind::Div | OpKind::Rem => 35,
            OpKind::Load => 2,
            OpKind::Store => 1,
            OpKind::Min | OpKind::Max | OpKind::Abs => 2,
            _ => 1,
        }
    }

    /// All operation kinds, for exhaustive iteration in tests and tables.
    pub const ALL: [OpKind; 25] = [
        OpKind::Const,
        OpKind::Input,
        OpKind::Output,
        OpKind::Add,
        OpKind::Sub,
        OpKind::Mul,
        OpKind::Div,
        OpKind::Rem,
        OpKind::And,
        OpKind::Or,
        OpKind::Xor,
        OpKind::Not,
        OpKind::Shl,
        OpKind::Shr,
        OpKind::Sar,
        OpKind::Eq,
        OpKind::Ne,
        OpKind::Lt,
        OpKind::Le,
        OpKind::Min,
        OpKind::Max,
        OpKind::Abs,
        OpKind::Select,
        OpKind::Load,
        OpKind::Store,
    ];

    /// Evaluate the operation on concrete `i64` operands.
    ///
    /// Used by the simulator and by differential tests that cross-check IR
    /// kernels against reference Rust implementations.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.arity()` or if called on a pseudo-op or
    /// memory op (those are interpreted by the simulator, not here).
    pub fn eval(self, args: &[i64]) -> i64 {
        assert_eq!(args.len(), self.arity(), "arity mismatch for {self}");
        match self {
            OpKind::Add => args[0].wrapping_add(args[1]),
            OpKind::Sub => args[0].wrapping_sub(args[1]),
            OpKind::Mul => args[0].wrapping_mul(args[1]),
            OpKind::Div => {
                if args[1] == 0 {
                    0
                } else {
                    args[0].wrapping_div(args[1])
                }
            }
            OpKind::Rem => {
                if args[1] == 0 {
                    args[0]
                } else {
                    args[0].wrapping_rem(args[1])
                }
            }
            OpKind::And => args[0] & args[1],
            OpKind::Or => args[0] | args[1],
            OpKind::Xor => args[0] ^ args[1],
            OpKind::Not => !args[0],
            OpKind::Shl => ((args[0] as u64) << (args[1] as u64 & 63)) as i64,
            OpKind::Shr => ((args[0] as u64) >> (args[1] as u64 & 63)) as i64,
            OpKind::Sar => args[0] >> (args[1] as u64 & 63),
            OpKind::Eq => (args[0] == args[1]) as i64,
            OpKind::Ne => (args[0] != args[1]) as i64,
            OpKind::Lt => (args[0] < args[1]) as i64,
            OpKind::Le => (args[0] <= args[1]) as i64,
            OpKind::Min => args[0].min(args[1]),
            OpKind::Max => args[0].max(args[1]),
            OpKind::Abs => args[0].wrapping_abs(),
            OpKind::Select => {
                if args[0] != 0 {
                    args[1]
                } else {
                    args[2]
                }
            }
            _ => panic!("{self} is not a pure compute operation"),
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OpKind::Const => "const",
            OpKind::Input => "input",
            OpKind::Output => "output",
            OpKind::Add => "add",
            OpKind::Sub => "sub",
            OpKind::Mul => "mul",
            OpKind::Div => "div",
            OpKind::Rem => "rem",
            OpKind::And => "and",
            OpKind::Or => "or",
            OpKind::Xor => "xor",
            OpKind::Not => "not",
            OpKind::Shl => "shl",
            OpKind::Shr => "shr",
            OpKind::Sar => "sar",
            OpKind::Eq => "eq",
            OpKind::Ne => "ne",
            OpKind::Lt => "lt",
            OpKind::Le => "le",
            OpKind::Min => "min",
            OpKind::Max => "max",
            OpKind::Abs => "abs",
            OpKind::Select => "select",
            OpKind::Load => "load",
            OpKind::Store => "store",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_contract() {
        assert_eq!(OpKind::Add.arity(), 2);
        assert_eq!(OpKind::Select.arity(), 3);
        assert_eq!(OpKind::Not.arity(), 1);
        assert_eq!(OpKind::Const.arity(), 0);
    }

    #[test]
    fn memory_and_pseudo_ops_are_invalid_in_ci() {
        assert!(!OpKind::Load.is_ci_valid());
        assert!(!OpKind::Store.is_ci_valid());
        assert!(!OpKind::Input.is_ci_valid());
        assert!(!OpKind::Output.is_ci_valid());
        assert!(OpKind::Add.is_ci_valid());
        assert!(OpKind::Const.is_ci_valid());
    }

    #[test]
    fn eval_basic_semantics() {
        assert_eq!(OpKind::Add.eval(&[2, 3]), 5);
        assert_eq!(OpKind::Sub.eval(&[2, 3]), -1);
        assert_eq!(OpKind::Mul.eval(&[4, 5]), 20);
        assert_eq!(OpKind::Div.eval(&[7, 2]), 3);
        assert_eq!(OpKind::Div.eval(&[7, 0]), 0);
        assert_eq!(OpKind::Rem.eval(&[7, 0]), 7);
        assert_eq!(OpKind::Shl.eval(&[1, 4]), 16);
        assert_eq!(OpKind::Sar.eval(&[-8, 1]), -4);
        assert_eq!(OpKind::Shr.eval(&[-1, 63]), 1);
        assert_eq!(OpKind::Select.eval(&[1, 10, 20]), 10);
        assert_eq!(OpKind::Select.eval(&[0, 10, 20]), 20);
        assert_eq!(OpKind::Abs.eval(&[-3]), 3);
        assert_eq!(OpKind::Min.eval(&[3, -1]), -1);
        assert_eq!(OpKind::Max.eval(&[3, -1]), 3);
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(OpKind::Shl.eval(&[1, 64]), 1);
        assert_eq!(OpKind::Shl.eval(&[1, 65]), 2);
    }

    #[test]
    fn comparisons_produce_zero_one() {
        for (op, a, b, want) in [
            (OpKind::Eq, 1, 1, 1),
            (OpKind::Eq, 1, 2, 0),
            (OpKind::Ne, 1, 2, 1),
            (OpKind::Lt, -1, 0, 1),
            (OpKind::Le, 0, 0, 1),
            (OpKind::Lt, 0, 0, 0),
        ] {
            assert_eq!(op.eval(&[a, b]), want, "{op} {a} {b}");
        }
    }

    #[test]
    fn sw_latency_sane() {
        assert!(OpKind::Div.sw_latency() > OpKind::Mul.sw_latency());
        assert!(OpKind::Mul.sw_latency() > OpKind::Add.sw_latency());
        assert_eq!(OpKind::Const.sw_latency(), 0);
    }
}

//! Basic blocks, programs, and control-flow analysis.
//!
//! A [`Program`] is an executable control-flow graph: each [`BasicBlock`]
//! holds a [`Dfg`] (straight-line data flow over variable slots and memory)
//! and a [`Terminator`]. [`Cfg`] derives the structural facts the analyses
//! need — predecessors/successors, dominators and natural loops — and is the
//! substrate for both the WCET timing schema ([`crate::wcet`]) and hot-loop
//! detection in the reconfiguration flow.

use crate::dfg::Dfg;
use std::collections::HashMap;
use std::fmt;

/// Index of a basic block within its [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub usize);

/// How control leaves a basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Two-way branch on variable slot `cond`: non-zero takes `then_block`.
    Branch {
        /// Variable slot holding the branch condition.
        cond: usize,
        /// Successor when the condition is non-zero.
        then_block: BlockId,
        /// Successor when the condition is zero.
        else_block: BlockId,
    },
    /// Function return; ends execution of the program.
    Return,
}

impl Terminator {
    /// Control-transfer cost on the base core, in cycles.
    pub fn cost(&self) -> u64 {
        match self {
            Terminator::Return => 1,
            Terminator::Jump(_) => 1,
            Terminator::Branch { .. } => 1,
        }
    }

    /// Successor blocks (empty for [`Terminator::Return`]).
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Terminator::Jump(b) => vec![b],
            Terminator::Branch {
                then_block,
                else_block,
                ..
            } => vec![then_block, else_block],
            Terminator::Return => vec![],
        }
    }
}

/// One basic block: a name (for reports), its data-flow graph, and its
/// terminator.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Human-readable label, used in experiment reports.
    pub name: String,
    /// Straight-line data flow of the block.
    pub dfg: Dfg,
    /// Control transfer out of the block.
    pub terminator: Terminator,
}

impl BasicBlock {
    /// Total base-core cycles to execute the block once: data-flow software
    /// latency plus the control-transfer cost.
    pub fn cost(&self) -> u64 {
        self.dfg.sw_latency_total() + self.terminator.cost()
    }
}

/// An error found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateProgramError {
    /// A terminator targets a block id outside the program.
    DanglingTarget {
        /// Block whose terminator is invalid.
        from: BlockId,
        /// The out-of-range target.
        to: BlockId,
    },
    /// A branch condition or DFG slot exceeds the declared variable count.
    SlotOutOfRange {
        /// Block containing the reference.
        block: BlockId,
        /// The offending slot.
        slot: usize,
    },
    /// The program has no blocks.
    Empty,
}

impl fmt::Display for ValidateProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateProgramError::DanglingTarget { from, to } => {
                write!(f, "block {} jumps to missing block {}", from.0, to.0)
            }
            ValidateProgramError::SlotOutOfRange { block, slot } => {
                write!(f, "block {} uses out-of-range slot {}", block.0, slot)
            }
            ValidateProgramError::Empty => write!(f, "program has no blocks"),
        }
    }
}

impl std::error::Error for ValidateProgramError {}

/// An executable program: blocks, an entry point, a variable file, a flat
/// data memory, and per-loop iteration bounds for WCET analysis.
#[derive(Debug, Clone)]
pub struct Program {
    /// Program name, used in benchmark tables.
    pub name: String,
    /// The basic blocks; [`BlockId`] indexes into this.
    pub blocks: Vec<BasicBlock>,
    /// Entry block.
    pub entry: BlockId,
    /// Number of `i64` variable slots.
    pub n_vars: usize,
    /// Number of `i64` memory words.
    pub mem_size: usize,
    /// Maximum iteration count per loop header, required by WCET analysis.
    pub loop_bounds: HashMap<BlockId, u64>,
}

impl Program {
    /// Creates an empty program shell.
    pub fn new(name: impl Into<String>, n_vars: usize, mem_size: usize) -> Self {
        Program {
            name: name.into(),
            blocks: Vec::new(),
            entry: BlockId(0),
            n_vars,
            mem_size,
            loop_bounds: HashMap::new(),
        }
    }

    /// Appends a block and returns its id.
    pub fn add_block(&mut self, block: BasicBlock) -> BlockId {
        let id = BlockId(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// Declares the iteration bound of the loop headed at `header`.
    pub fn set_loop_bound(&mut self, header: BlockId, bound: u64) {
        self.loop_bounds.insert(header, bound);
    }

    /// Borrow a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &BasicBlock {
        &self.blocks[id.0]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BasicBlock {
        &mut self.blocks[id.0]
    }

    /// Iterates all block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId)
    }

    /// Checks structural sanity (targets in range, slots within the variable
    /// file).
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateProgramError`] encountered.
    pub fn validate(&self) -> Result<(), ValidateProgramError> {
        if self.blocks.is_empty() {
            return Err(ValidateProgramError::Empty);
        }
        for id in self.block_ids() {
            let bb = self.block(id);
            for t in bb.terminator.successors() {
                if t.0 >= self.blocks.len() {
                    return Err(ValidateProgramError::DanglingTarget { from: id, to: t });
                }
            }
            if let Terminator::Branch { cond, .. } = bb.terminator {
                if cond >= self.n_vars {
                    return Err(ValidateProgramError::SlotOutOfRange {
                        block: id,
                        slot: cond,
                    });
                }
            }
            for n in bb.dfg.ids() {
                let node = bb.dfg.node_ref(n);
                if matches!(
                    node.kind(),
                    crate::op::OpKind::Input | crate::op::OpKind::Output
                ) && node.slot() >= self.n_vars
                {
                    return Err(ValidateProgramError::SlotOutOfRange {
                        block: id,
                        slot: node.slot(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Maximum basic-block size in primitive instructions (Table 5.1).
    pub fn max_block_ops(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.dfg.op_count())
            .max()
            .unwrap_or(0)
    }

    /// Average basic-block size in primitive instructions (Table 5.1).
    pub fn avg_block_ops(&self) -> f64 {
        if self.blocks.is_empty() {
            return 0.0;
        }
        self.blocks.iter().map(|b| b.dfg.op_count()).sum::<usize>() as f64
            / self.blocks.len() as f64
    }
}

/// A natural loop discovered by [`Cfg::analyze`].
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// All blocks in the loop body, header included.
    pub blocks: Vec<BlockId>,
    /// Sources of back edges (`latch -> header`).
    pub latches: Vec<BlockId>,
    /// Nesting depth (1 = outermost).
    pub depth: usize,
}

impl NaturalLoop {
    /// Whether `b` belongs to the loop body.
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.contains(&b)
    }
}

/// Derived control-flow facts for a [`Program`].
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    idom: Vec<Option<BlockId>>,
    loops: Vec<NaturalLoop>,
}

impl Cfg {
    /// Computes predecessors/successors, dominators (iterative
    /// Cooper–Harvey–Kennedy on reverse postorder) and natural loops.
    ///
    /// Unreachable blocks are ignored by the dominator and loop analyses.
    pub fn analyze(program: &Program) -> Self {
        let n = program.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for id in program.block_ids() {
            for t in program.block(id).terminator.successors() {
                succs[id.0].push(t);
                preds[t.0].push(id);
            }
        }

        // Reverse postorder from entry.
        let mut rpo = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack = vec![(program.entry, 0usize)];
        state[program.entry.0] = 1;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b.0].len() {
                let s = succs[b.0][*i];
                *i += 1;
                if state[s.0] == 0 {
                    state[s.0] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[b.0] = 2;
                rpo.push(b);
                stack.pop();
            }
        }
        rpo.reverse();

        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.0] = i;
        }

        // Iterative dominators.
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[program.entry.0] = Some(program.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &rpo {
                if b == program.entry {
                    continue;
                }
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.0] {
                    if idom[p.0].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(cur, p, &idom, &rpo_index),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0] != Some(ni) {
                        idom[b.0] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        // Natural loops: back edge t -> h where h dominates t.
        let dominates = |a: BlockId, mut b: BlockId| -> bool {
            loop {
                if a == b {
                    return true;
                }
                match idom[b.0] {
                    Some(d) if d != b => b = d,
                    _ => return false,
                }
            }
        };
        let mut loops_by_header: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &t in &rpo {
            for &h in &succs[t.0] {
                if dominates(h, t) {
                    loops_by_header.entry(h).or_default().push(t);
                }
            }
        }
        // Body = header plus everything that reaches a latch backwards
        // without passing through the header.
        let mut loops: Vec<NaturalLoop> = Vec::new();
        for (&h, latches) in &loops_by_header {
            let mut body = vec![h];
            let mut work: Vec<BlockId> = latches.clone();
            while let Some(b) = work.pop() {
                if !body.contains(&b) {
                    body.push(b);
                    for &p in &preds[b.0] {
                        work.push(p);
                    }
                }
            }
            body.sort_by_key(|b| b.0);
            loops.push(NaturalLoop {
                header: h,
                blocks: body,
                latches: latches.clone(),
                depth: 0,
            });
        }
        // Nesting depth: loop A contains loop B if B.header ∈ A.blocks, A ≠ B.
        let containment: Vec<usize> = loops
            .iter()
            .map(|b| {
                loops
                    .iter()
                    .filter(|a| a.header != b.header && a.blocks.contains(&b.header))
                    .count()
            })
            .collect();
        for (l, c) in loops.iter_mut().zip(containment) {
            l.depth = c + 1;
        }
        loops.sort_by_key(|l| (l.depth, l.header.0));

        Cfg {
            preds,
            succs,
            rpo,
            idom,
            loops,
        }
    }

    /// Successors of a block.
    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.0]
    }

    /// Predecessors of a block.
    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.0]
    }

    /// Reachable blocks in reverse postorder.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Immediate dominator (the entry dominates itself).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom[b.0]
    }

    /// Natural loops, outermost first.
    pub fn loops(&self) -> &[NaturalLoop] {
        &self.loops
    }

    /// Natural loops, innermost first (deepest nesting first).
    pub fn loops_innermost_first(&self) -> Vec<&NaturalLoop> {
        let mut v: Vec<&NaturalLoop> = self.loops.iter().collect();
        v.sort_by(|a, b| b.depth.cmp(&a.depth).then(a.header.0.cmp(&b.header.0)));
        v
    }
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &[Option<BlockId>],
    rpo_index: &[usize],
) -> BlockId {
    while a != b {
        while rpo_index[a.0] > rpo_index[b.0] {
            a = idom[a.0].expect("dominator chain broken");
        }
        while rpo_index[b.0] > rpo_index[a.0] {
            b = idom[b.0].expect("dominator chain broken");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    fn empty_block(name: &str, term: Terminator) -> BasicBlock {
        BasicBlock {
            name: name.into(),
            dfg: Dfg::new(),
            terminator: term,
        }
    }

    /// entry -> header; header -> {body, exit}; body -> header (loop).
    fn while_loop_program() -> Program {
        let mut p = Program::new("while", 2, 0);
        let mut hdr_dfg = Dfg::new();
        let i = hdr_dfg.input(0);
        let c = hdr_dfg.bin_imm(OpKind::Lt, i, 10);
        hdr_dfg.output(1, c);
        p.add_block(empty_block("entry", Terminator::Jump(BlockId(1))));
        p.add_block(BasicBlock {
            name: "header".into(),
            dfg: hdr_dfg,
            terminator: Terminator::Branch {
                cond: 1,
                then_block: BlockId(2),
                else_block: BlockId(3),
            },
        });
        let mut body_dfg = Dfg::new();
        let i = body_dfg.input(0);
        let i1 = body_dfg.bin_imm(OpKind::Add, i, 1);
        body_dfg.output(0, i1);
        p.add_block(BasicBlock {
            name: "body".into(),
            dfg: body_dfg,
            terminator: Terminator::Jump(BlockId(1)),
        });
        p.add_block(empty_block("exit", Terminator::Return));
        p.set_loop_bound(BlockId(1), 10);
        p
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(while_loop_program().validate().is_ok());
    }

    #[test]
    fn validate_rejects_dangling_target() {
        let mut p = Program::new("bad", 1, 0);
        p.add_block(empty_block("b", Terminator::Jump(BlockId(7))));
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::DanglingTarget { .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_slot() {
        let mut p = Program::new("bad", 1, 0);
        p.add_block(empty_block(
            "b",
            Terminator::Branch {
                cond: 5,
                then_block: BlockId(0),
                else_block: BlockId(0),
            },
        ));
        assert!(matches!(
            p.validate(),
            Err(ValidateProgramError::SlotOutOfRange { slot: 5, .. })
        ));
    }

    #[test]
    fn validate_rejects_empty() {
        assert_eq!(
            Program::new("e", 0, 0).validate(),
            Err(ValidateProgramError::Empty)
        );
    }

    #[test]
    fn loop_detection_finds_while_loop() {
        let p = while_loop_program();
        let cfg = Cfg::analyze(&p);
        assert_eq!(cfg.loops().len(), 1);
        let l = &cfg.loops()[0];
        assert_eq!(l.header, BlockId(1));
        assert_eq!(l.latches, vec![BlockId(2)]);
        assert!(l.contains(BlockId(1)) && l.contains(BlockId(2)));
        assert!(!l.contains(BlockId(0)) && !l.contains(BlockId(3)));
        assert_eq!(l.depth, 1);
    }

    #[test]
    fn dominators_of_diamond() {
        // 0 -> {1,2} -> 3
        let mut p = Program::new("diamond", 1, 0);
        p.add_block(empty_block(
            "a",
            Terminator::Branch {
                cond: 0,
                then_block: BlockId(1),
                else_block: BlockId(2),
            },
        ));
        p.add_block(empty_block("b", Terminator::Jump(BlockId(3))));
        p.add_block(empty_block("c", Terminator::Jump(BlockId(3))));
        p.add_block(empty_block("d", Terminator::Return));
        let cfg = Cfg::analyze(&p);
        assert_eq!(cfg.idom(BlockId(3)), Some(BlockId(0)));
        assert_eq!(cfg.idom(BlockId(1)), Some(BlockId(0)));
        assert!(cfg.loops().is_empty());
    }

    #[test]
    fn nested_loops_get_depths() {
        // 0 -> 1(outer hdr) -> 2(inner hdr) -> 3(inner body) -> 2; 2 -> 4 -> 1; 1 -> 5.
        let mut p = Program::new("nested", 1, 0);
        p.add_block(empty_block("e", Terminator::Jump(BlockId(1))));
        p.add_block(empty_block(
            "outer",
            Terminator::Branch {
                cond: 0,
                then_block: BlockId(2),
                else_block: BlockId(5),
            },
        ));
        p.add_block(empty_block(
            "inner",
            Terminator::Branch {
                cond: 0,
                then_block: BlockId(3),
                else_block: BlockId(4),
            },
        ));
        p.add_block(empty_block("ibody", Terminator::Jump(BlockId(2))));
        p.add_block(empty_block("latch", Terminator::Jump(BlockId(1))));
        p.add_block(empty_block("exit", Terminator::Return));
        let cfg = Cfg::analyze(&p);
        assert_eq!(cfg.loops().len(), 2);
        let inner = cfg
            .loops()
            .iter()
            .find(|l| l.header == BlockId(2))
            .expect("inner loop");
        let outer = cfg
            .loops()
            .iter()
            .find(|l| l.header == BlockId(1))
            .expect("outer loop");
        assert_eq!(inner.depth, 2);
        assert_eq!(outer.depth, 1);
        assert!(outer.contains(BlockId(2)) && outer.contains(BlockId(4)));
        let innermost = cfg.loops_innermost_first();
        assert_eq!(innermost[0].header, BlockId(2));
    }

    #[test]
    fn block_cost_includes_terminator() {
        let p = while_loop_program();
        // header: lt (1 cycle) + branch (1 cycle); inputs/outputs free.
        assert_eq!(p.block(BlockId(1)).cost(), 2);
        assert_eq!(p.max_block_ops(), 1);
    }
}

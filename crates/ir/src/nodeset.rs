//! Compact bitset over data-flow graph nodes.
//!
//! Custom-instruction candidates are subsets of a DFG's nodes; enumeration
//! algorithms manipulate millions of them, so the representation is a plain
//! `Vec<u64>` bitset with set-algebra operations.

use crate::dfg::NodeId;
use std::fmt;

/// A set of [`NodeId`]s, stored as a fixed-capacity bitset.
///
/// All sets participating in one computation should be created with the same
/// capacity (the node count of the owning [`crate::dfg::Dfg`]); binary
/// operations panic on capacity mismatch to catch cross-graph mixups early.
///
/// # Example
///
/// ```
/// use rtise_ir::nodeset::NodeSet;
/// use rtise_ir::dfg::NodeId;
///
/// let mut s = NodeSet::with_capacity(100);
/// s.insert(NodeId(3));
/// s.insert(NodeId(64));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(NodeId(64)));
/// assert!(!s.contains(NodeId(65)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct NodeSet {
    words: Vec<u64>,
    capacity: usize,
}

impl NodeSet {
    /// Creates an empty set able to hold node ids `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// The capacity (exclusive upper bound on storable node ids).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Inserts a node. Returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of capacity.
    pub fn insert(&mut self, id: NodeId) -> bool {
        assert!(id.0 < self.capacity, "node id {} out of capacity", id.0);
        let (w, b) = (id.0 / 64, id.0 % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !was
    }

    /// Removes a node. Returns `true` if it was present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        if id.0 >= self.capacity {
            return false;
        }
        let (w, b) = (id.0 / 64, id.0 % 64);
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        was
    }

    /// Flips a node's membership. Returns `true` if the node is present
    /// *after* the toggle — the primitive move of Kernighan–Lin-style
    /// iterative improvement over cuts.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of capacity.
    pub fn toggle(&mut self, id: NodeId) -> bool {
        assert!(id.0 < self.capacity, "node id {} out of capacity", id.0);
        let (w, b) = (id.0 / 64, id.0 % 64);
        self.words[w] ^= 1 << b;
        self.words[w] & (1 << b) != 0
    }

    /// Membership test.
    pub fn contains(&self, id: NodeId) -> bool {
        id.0 < self.capacity && self.words[id.0 / 64] & (1 << (id.0 % 64)) != 0
    }

    /// In-place union.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn union_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place set difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics on capacity mismatch.
    pub fn difference_with(&mut self, other: &NodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Whether the two sets share at least one node.
    pub fn intersects(&self, other: &NodeSet) -> bool {
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Removes all nodes.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates the member node ids in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    /// The raw bit words backing the set (bit `i % 64` of word `i / 64`
    /// is node `i`). Lets word-level fast paths read a set without
    /// per-node calls.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a set of the given capacity directly from bit words (the
    /// layout [`words`](Self::words) exposes). Missing words are zero.
    ///
    /// # Panics
    ///
    /// Panics if `words` is longer than the capacity needs or sets a bit
    /// at or above `capacity`.
    pub fn from_words(capacity: usize, words: &[u64]) -> Self {
        let n_words = capacity.div_ceil(64);
        assert!(words.len() <= n_words, "too many words for capacity");
        let mut w = words.to_vec();
        w.resize(n_words, 0);
        if !capacity.is_multiple_of(64) {
            if let Some(last) = w.last() {
                assert_eq!(
                    last & !((1u64 << (capacity % 64)) - 1),
                    0,
                    "bit set at or above capacity"
                );
            }
        }
        NodeSet { words: w, capacity }
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Collects node ids; capacity is sized to the largest id.
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let ids: Vec<NodeId> = iter.into_iter().collect();
        let cap = ids.iter().map(|n| n.0 + 1).max().unwrap_or(0);
        let mut s = NodeSet::with_capacity(cap);
        for id in ids {
            s.insert(id);
        }
        s
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|n| n.0)).finish()
    }
}

/// Iterator over the members of a [`NodeSet`] in increasing id order.
pub struct Iter<'a> {
    set: &'a NodeSet,
    word: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.bits != 0 {
                let b = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(NodeId(self.word * 64 + b));
            }
            self.word += 1;
            if self.word >= self.set.words.len() {
                return None;
            }
            self.bits = self.set.words[self.word];
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::with_capacity(130);
        assert!(s.insert(NodeId(0)));
        assert!(s.insert(NodeId(129)));
        assert!(!s.insert(NodeId(0)));
        assert!(s.contains(NodeId(129)));
        assert!(s.remove(NodeId(129)));
        assert!(!s.remove(NodeId(129)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn toggle_flips_membership() {
        let mut s = NodeSet::with_capacity(130);
        assert!(s.toggle(NodeId(129)), "absent -> present");
        assert!(s.contains(NodeId(129)));
        assert!(!s.toggle(NodeId(129)), "present -> absent");
        assert!(!s.contains(NodeId(129)));
        assert!(s.is_empty());
    }

    #[test]
    fn iteration_is_sorted() {
        let mut s = NodeSet::with_capacity(200);
        for &i in &[150usize, 3, 64, 63, 65] {
            s.insert(NodeId(i));
        }
        let got: Vec<NodeId> = s.iter().collect();
        assert_eq!(got, ids(&[3, 63, 64, 65, 150]));
    }

    #[test]
    fn set_algebra() {
        let mut a = NodeSet::with_capacity(10);
        let mut b = NodeSet::with_capacity(10);
        a.extend(ids(&[1, 2, 3]));
        b.extend(ids(&[3, 4]));
        assert!(a.intersects(&b));
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), ids(&[3]));
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), ids(&[1, 2]));
        assert!(i.is_subset(&a));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn empty_and_clear() {
        let mut s = NodeSet::with_capacity(5);
        assert!(s.is_empty());
        s.insert(NodeId(4));
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_capacity_panics() {
        NodeSet::with_capacity(4).insert(NodeId(4));
    }

    #[test]
    fn words_round_trip() {
        let mut s = NodeSet::with_capacity(130);
        s.extend(ids(&[0, 63, 64, 129]));
        let rebuilt = NodeSet::from_words(130, s.words());
        assert_eq!(rebuilt, s);
        // Short word slices are zero-extended.
        let small = NodeSet::from_words(130, &[0b1001]);
        assert_eq!(small.iter().collect::<Vec<_>>(), ids(&[0, 3]));
    }

    #[test]
    #[should_panic(expected = "at or above capacity")]
    fn from_words_rejects_out_of_capacity_bits() {
        NodeSet::from_words(4, &[1 << 4]);
    }
}

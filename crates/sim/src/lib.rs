//! # rtise-sim
//!
//! Executable semantics for [`rtise_ir::Program`]s: a single-issue in-order
//! interpreter with a cycle model, a profiler, and custom-instruction-aware
//! re-timing.
//!
//! The paper's flow profiles each task on representative inputs to obtain
//! basic-block execution frequencies and hot-loop traces (§2.2, §6.1), and
//! evaluates custom instructions by replacing covered operation subgraphs
//! with single multi-cycle instructions. This crate supplies all three
//! observables:
//!
//! * [`Simulator::run`] executes a program and returns cycle count, final
//!   variable/memory state, per-block execution counts and (optionally) the
//!   full block trace;
//! * [`CiMap`] describes selected custom instructions per block;
//!   [`Simulator::run_with_cis`] re-times the same execution with covered
//!   operations folded into their custom instructions (results are bit-exact,
//!   only timing changes);
//! * [`loop_entry_trace`] turns a block trace into the loop-header entry
//!   sequence consumed by the runtime-reconfiguration partitioner.
//!
//! # Example
//!
//! ```
//! use rtise_ir::{BasicBlock, Dfg, OpKind, Program, Terminator, BlockId};
//! use rtise_sim::Simulator;
//!
//! // var0 = var0 * 3 + 1
//! let mut dfg = Dfg::new();
//! let x = dfg.input(0);
//! let m = dfg.bin_imm(OpKind::Mul, x, 3);
//! let r = dfg.bin_imm(OpKind::Add, m, 1);
//! dfg.output(0, r);
//! let mut p = Program::new("affine", 1, 0);
//! p.add_block(BasicBlock { name: "b".into(), dfg, terminator: Terminator::Return });
//!
//! let sim = Simulator::new(&p)?;
//! let out = sim.run(&[5], &[])?;
//! assert_eq!(out.vars[0], 16);
//! assert_eq!(out.cycles, 3 + 1 + 1); // mul + add + return
//! # Ok::<(), rtise_sim::SimError>(())
//! ```

use rtise_ir::cfg::{BlockId, Cfg, Program, Terminator, ValidateProgramError};
use rtise_ir::nodeset::NodeSet;
use rtise_ir::op::OpKind;
use std::collections::HashMap;
use std::fmt;

/// Errors from simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program failed structural validation.
    Validate(ValidateProgramError),
    /// A load or store addressed memory outside `Program::mem_size`.
    MemOutOfBounds {
        /// Block performing the access.
        block: BlockId,
        /// The out-of-range address.
        addr: i64,
    },
    /// Execution exceeded the configured block-step limit (runaway loop).
    StepLimit {
        /// The limit that was hit.
        limit: u64,
    },
    /// Initial variable/memory images have the wrong length.
    BadInitialState,
    /// A [`CiMap`] entry is malformed (overlapping or infeasible subgraphs).
    BadCiMap {
        /// Block whose custom-instruction list is malformed.
        block: BlockId,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Validate(e) => write!(f, "invalid program: {e}"),
            SimError::MemOutOfBounds { block, addr } => {
                write!(f, "block {} accessed out-of-range address {addr}", block.0)
            }
            SimError::StepLimit { limit } => write!(f, "exceeded step limit of {limit} blocks"),
            SimError::BadInitialState => write!(f, "initial state has wrong dimensions"),
            SimError::BadCiMap { block } => {
                write!(f, "malformed custom-instruction map for block {}", block.0)
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<ValidateProgramError> for SimError {
    fn from(e: ValidateProgramError) -> Self {
        SimError::Validate(e)
    }
}

/// One selected custom instruction inside a block: the covered node set and
/// its hardware execution cycles.
#[derive(Debug, Clone)]
pub struct SelectedCi {
    /// Covered DFG nodes of the owning block.
    pub nodes: NodeSet,
    /// Execution cycles of the custom instruction.
    pub cycles: u64,
}

/// Selected custom instructions per basic block.
///
/// Used by [`Simulator::run_with_cis`] to re-time execution: every covered
/// operation contributes zero software cycles and each custom instruction
/// contributes its own `cycles` per block execution.
#[derive(Debug, Clone, Default)]
pub struct CiMap {
    per_block: HashMap<BlockId, Vec<SelectedCi>>,
}

impl CiMap {
    /// An empty map (pure-software execution).
    pub fn new() -> Self {
        CiMap::default()
    }

    /// Adds a custom instruction to `block`.
    pub fn add(&mut self, block: BlockId, ci: SelectedCi) {
        self.per_block.entry(block).or_default().push(ci);
    }

    /// The custom instructions of `block`, if any.
    pub fn block_cis(&self, block: BlockId) -> &[SelectedCi] {
        self.per_block.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of selected custom instructions.
    pub fn len(&self) -> usize {
        self.per_block.values().map(Vec::len).sum()
    }

    /// Whether no custom instruction is selected.
    pub fn is_empty(&self) -> bool {
        self.per_block.is_empty()
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunResult {
    /// Total execution cycles under the cycle model.
    pub cycles: u64,
    /// Final variable file.
    pub vars: Vec<i64>,
    /// Final memory image.
    pub mem: Vec<i64>,
    /// Execution count per basic block (the profile of §2.2).
    pub block_counts: Vec<u64>,
    /// Full block trace, present only when enabled via
    /// [`Simulator::with_trace`].
    pub trace: Option<Vec<BlockId>>,
}

/// Post-run execution statistics from [`Simulator::run_with_stats`].
///
/// Derived from the block profile: each block's static operation mix and
/// cycle cost are scaled by its execution count, so the histogram reflects
/// *dynamic* instruction counts without per-step bookkeeping overhead.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Blocks executed (length of the trace).
    pub blocks_executed: u64,
    /// Dynamic operations executed (custom-instruction-covered nodes
    /// count under their own `ci` bucket, not their software kind).
    pub instructions: u64,
    /// Dynamic instruction mix: executed operation count per
    /// [`OpKind`] mnemonic, plus `"ci"` for custom-instruction issues.
    pub instr_mix: std::collections::BTreeMap<String, u64>,
    /// Cycles attributed to each basic block
    /// (`block_counts[b] × cost(b)`); sums to [`RunResult::cycles`].
    pub block_cycles: Vec<u64>,
}

/// An interpreter for one program.
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Simulator<'p> {
    program: &'p Program,
    step_limit: u64,
    record_trace: bool,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator after validating the program.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Validate`] if the program is malformed.
    pub fn new(program: &'p Program) -> Result<Self, SimError> {
        program.validate()?;
        Ok(Simulator {
            program,
            step_limit: 100_000_000,
            record_trace: false,
        })
    }

    /// Sets the maximum number of executed blocks before aborting.
    pub fn with_step_limit(mut self, limit: u64) -> Self {
        self.step_limit = limit;
        self
    }

    /// Enables recording of the full block trace.
    pub fn with_trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Runs the program in pure software.
    ///
    /// `vars` and `mem` initialize the variable file and memory; shorter
    /// images are zero-extended.
    ///
    /// # Errors
    ///
    /// See [`SimError`].
    pub fn run(&self, vars: &[i64], mem: &[i64]) -> Result<RunResult, SimError> {
        self.run_with_cis(vars, mem, &CiMap::new())
    }

    /// Runs the program with the given custom instructions applied.
    ///
    /// Functional results are identical to [`Simulator::run`]; only the cycle
    /// accounting changes: nodes covered by a [`SelectedCi`] cost nothing in
    /// software and each custom instruction adds its `cycles` every time the
    /// block executes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadCiMap`] if custom instructions within one
    /// block overlap or cover invalid operations, plus all [`SimError`]
    /// run-time conditions.
    pub fn run_with_cis(
        &self,
        vars: &[i64],
        mem: &[i64],
        cis: &CiMap,
    ) -> Result<RunResult, SimError> {
        let p = self.program;
        if vars.len() > p.n_vars || mem.len() > p.mem_size {
            return Err(SimError::BadInitialState);
        }
        // Pre-compute the per-block cycle cost under the CI map.
        let mut block_cost = Vec::with_capacity(p.blocks.len());
        for b in p.block_ids() {
            block_cost.push(self.block_cycles(b, cis)?);
        }

        let mut var_file = vec![0i64; p.n_vars];
        var_file[..vars.len()].copy_from_slice(vars);
        let mut memory = vec![0i64; p.mem_size];
        memory[..mem.len()].copy_from_slice(mem);

        let mut counts = vec![0u64; p.blocks.len()];
        let mut trace = self.record_trace.then(Vec::new);
        let mut cycles: u64 = 0;
        let mut steps: u64 = 0;
        let mut values: Vec<i64> = Vec::new();
        let mut cur = p.entry;
        loop {
            steps += 1;
            if steps > self.step_limit {
                return Err(SimError::StepLimit {
                    limit: self.step_limit,
                });
            }
            counts[cur.0] += 1;
            if let Some(t) = trace.as_mut() {
                t.push(cur);
            }
            cycles += block_cost[cur.0];

            let bb = p.block(cur);
            values.clear();
            values.resize(bb.dfg.len(), 0);
            for id in bb.dfg.ids() {
                let node = bb.dfg.node_ref(id);
                let v = match node.kind() {
                    OpKind::Const => node.const_value(),
                    OpKind::Input => var_file[node.slot()],
                    OpKind::Output => {
                        let v = values[node.args()[0].0];
                        var_file[node.slot()] = v;
                        v
                    }
                    OpKind::Load => {
                        let addr = values[node.args()[0].0];
                        *memory
                            .get(addr as usize)
                            .ok_or(SimError::MemOutOfBounds { block: cur, addr })?
                    }
                    OpKind::Store => {
                        let addr = values[node.args()[0].0];
                        let val = values[node.args()[1].0];
                        let cell = memory
                            .get_mut(addr as usize)
                            .ok_or(SimError::MemOutOfBounds { block: cur, addr })?;
                        *cell = val;
                        val
                    }
                    k => {
                        let args: Vec<i64> = node.args().iter().map(|a| values[a.0]).collect();
                        k.eval(&args)
                    }
                };
                values[id.0] = v;
            }

            cur = match bb.terminator {
                Terminator::Jump(b) => b,
                Terminator::Branch {
                    cond,
                    then_block,
                    else_block,
                } => {
                    if var_file[cond] != 0 {
                        then_block
                    } else {
                        else_block
                    }
                }
                Terminator::Return => {
                    return Ok(RunResult {
                        cycles,
                        vars: var_file,
                        mem: memory,
                        block_counts: counts,
                        trace,
                    });
                }
            };
        }
    }

    /// Like [`Simulator::run_with_cis`], additionally returning a
    /// [`RunStats`] (dynamic instruction mix and per-block cycle
    /// attribution) and publishing `sim.*` counters to the [`rtise_obs`]
    /// registry.
    ///
    /// # Errors
    ///
    /// See [`Simulator::run_with_cis`].
    pub fn run_with_stats(
        &self,
        vars: &[i64],
        mem: &[i64],
        cis: &CiMap,
    ) -> Result<(RunResult, RunStats), SimError> {
        let result = self.run_with_cis(vars, mem, cis)?;
        let p = self.program;
        let mut stats = RunStats::default();
        for (b, &count) in p.block_ids().zip(&result.block_counts) {
            stats.blocks_executed += count;
            stats.block_cycles.push(count * self.block_cycles(b, cis)?);
            if count == 0 {
                continue;
            }
            let bb = p.block(b);
            let selected = cis.block_cis(b);
            let mut covered = bb.dfg.empty_set();
            for ci in selected {
                covered.union_with(&ci.nodes);
            }
            if !selected.is_empty() {
                let issues = selected.len() as u64 * count;
                *stats.instr_mix.entry("ci".into()).or_default() += issues;
                stats.instructions += issues;
            }
            for id in bb.dfg.ids() {
                if covered.contains(id) {
                    continue;
                }
                let kind = bb.dfg.kind(id).to_string();
                *stats.instr_mix.entry(kind).or_default() += count;
                stats.instructions += count;
            }
        }
        debug_assert_eq!(stats.block_cycles.iter().sum::<u64>(), result.cycles);
        rtise_obs::record("sim.runs", 1);
        rtise_obs::record("sim.blocks_executed", stats.blocks_executed);
        rtise_obs::record("sim.instructions", stats.instructions);
        Ok((result, stats))
    }

    /// Cycle cost of one execution of `block` under `cis`.
    fn block_cycles(&self, block: BlockId, cis: &CiMap) -> Result<u64, SimError> {
        let bb = self.program.block(block);
        let selected = cis.block_cis(block);
        let mut covered = bb.dfg.empty_set();
        let mut cost = bb.terminator.cost();
        for ci in selected {
            if ci.nodes.capacity() != bb.dfg.len()
                || ci.nodes.intersects(&covered)
                || ci.nodes.iter().any(|n| !bb.dfg.kind(n).is_ci_valid())
            {
                return Err(SimError::BadCiMap { block });
            }
            covered.union_with(&ci.nodes);
            cost += ci.cycles;
        }
        for id in bb.dfg.ids() {
            if !covered.contains(id) {
                cost += bb.dfg.kind(id).sw_latency();
            }
        }
        Ok(cost)
    }
}

/// Converts a block trace into the sequence of *loop entries*: one event per
/// transition from outside a loop to its header.
///
/// This is the "hot loop trace" consumed by the runtime-reconfiguration
/// partitioner (§6.1); consecutive iterations of the same loop produce a
/// single event. Only innermost-loop entries are reported, matching the
/// paper's loop-level granularity.
pub fn loop_entry_trace(program: &Program, trace: &[BlockId]) -> Vec<BlockId> {
    let cfg = Cfg::analyze(program);
    let loops = cfg.loops();
    // Innermost loop membership per block.
    let mut member: Vec<Option<usize>> = vec![None; program.blocks.len()];
    for (i, l) in loops.iter().enumerate() {
        for &b in &l.blocks {
            match member[b.0] {
                Some(j) if loops[j].depth >= l.depth => {}
                _ => member[b.0] = Some(i),
            }
        }
    }
    let mut events = Vec::new();
    let mut prev: Option<usize> = None;
    for &b in trace {
        let cur = member[b.0];
        if let Some(i) = cur {
            if prev != Some(i) && b == loops[i].header {
                events.push(loops[i].header);
            }
        }
        prev = cur;
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ir::cfg::BasicBlock;
    use rtise_ir::dfg::Dfg;
    use rtise_ir::HwModel;

    /// sum = Σ_{i<n} (i*3+1), via a counted loop.
    fn sum_program() -> Program {
        let mut p = Program::new("sum", 4, 0); // 0:i 1:n 2:sum 3:cond
        let mut entry = Dfg::new();
        let z = entry.imm(0);
        entry.output(0, z);
        entry.output(2, z);
        p.add_block(BasicBlock {
            name: "entry".into(),
            dfg: entry,
            terminator: Terminator::Jump(BlockId(1)),
        });
        let mut hdr = Dfg::new();
        let i = hdr.input(0);
        let n = hdr.input(1);
        let c = hdr.bin(OpKind::Lt, i, n);
        hdr.output(3, c);
        p.add_block(BasicBlock {
            name: "header".into(),
            dfg: hdr,
            terminator: Terminator::Branch {
                cond: 3,
                then_block: BlockId(2),
                else_block: BlockId(3),
            },
        });
        let mut body = Dfg::new();
        let i = body.input(0);
        let s = body.input(2);
        let m = body.bin_imm(OpKind::Mul, i, 3);
        let a = body.bin_imm(OpKind::Add, m, 1);
        let s2 = body.bin(OpKind::Add, s, a);
        let i2 = body.bin_imm(OpKind::Add, i, 1);
        body.output(2, s2);
        body.output(0, i2);
        p.add_block(BasicBlock {
            name: "body".into(),
            dfg: body,
            terminator: Terminator::Jump(BlockId(1)),
        });
        let mut exit = Dfg::new();
        let d = exit.imm(0);
        exit.output(3, d);
        p.add_block(BasicBlock {
            name: "exit".into(),
            dfg: exit,
            terminator: Terminator::Return,
        });
        p.set_loop_bound(BlockId(1), 1000);
        p
    }

    #[test]
    fn computes_correct_sum() {
        let p = sum_program();
        let sim = Simulator::new(&p).expect("valid");
        let out = sim.run(&[0, 10], &[]).expect("run");
        let want: i64 = (0..10).map(|i| i * 3 + 1).sum();
        assert_eq!(out.vars[2], want);
        assert_eq!(out.block_counts, vec![1, 11, 10, 1]);
    }

    #[test]
    fn cycle_count_matches_block_costs() {
        let p = sum_program();
        let sim = Simulator::new(&p).expect("valid");
        let out = sim.run(&[0, 10], &[]).expect("run");
        let by_blocks: u64 = p
            .block_ids()
            .map(|b| out.block_counts[b.0] * p.block(b).cost())
            .sum();
        assert_eq!(out.cycles, by_blocks);
    }

    #[test]
    fn custom_instruction_speeds_up_but_preserves_result() {
        let p = sum_program();
        let sim = Simulator::new(&p).expect("valid");
        let sw = sim.run(&[0, 50], &[]).expect("sw run");

        // Cover the whole valid region of the loop body as one CI.
        let body = &p.block(BlockId(2)).dfg;
        let set = body.full_valid_set();
        assert!(body.is_feasible_ci(&set, 4, 2));
        let hw = HwModel::default();
        let mut cis = CiMap::new();
        cis.add(
            BlockId(2),
            SelectedCi {
                nodes: set.clone(),
                cycles: hw.ci_cycles(body, &set),
            },
        );
        let acc = sim.run_with_cis(&[0, 50], &[], &cis).expect("hw run");
        assert_eq!(acc.vars, sw.vars, "results must be bit-exact");
        assert!(acc.cycles < sw.cycles, "CI must save cycles");
        // Saved cycles = gain * body executions.
        let gain = hw.ci_gain(body, &set);
        assert_eq!(sw.cycles - acc.cycles, gain * sw.block_counts[2]);
    }

    #[test]
    fn overlapping_cis_rejected() {
        let p = sum_program();
        let sim = Simulator::new(&p).expect("valid");
        let body = &p.block(BlockId(2)).dfg;
        let set = body.full_valid_set();
        let mut cis = CiMap::new();
        cis.add(
            BlockId(2),
            SelectedCi {
                nodes: set.clone(),
                cycles: 1,
            },
        );
        cis.add(
            BlockId(2),
            SelectedCi {
                nodes: set,
                cycles: 1,
            },
        );
        assert_eq!(
            sim.run_with_cis(&[0, 5], &[], &cis),
            Err(SimError::BadCiMap { block: BlockId(2) })
        );
    }

    #[test]
    fn step_limit_catches_runaway() {
        let p = sum_program();
        let sim = Simulator::new(&p).expect("valid").with_step_limit(5);
        assert_eq!(
            sim.run(&[0, 100], &[]),
            Err(SimError::StepLimit { limit: 5 })
        );
    }

    #[test]
    fn memory_bounds_checked() {
        let mut p = Program::new("oob", 1, 4);
        let mut dfg = Dfg::new();
        let a = dfg.imm(99);
        let l = dfg.un(OpKind::Load, a);
        dfg.output(0, l);
        p.add_block(BasicBlock {
            name: "b".into(),
            dfg,
            terminator: Terminator::Return,
        });
        let sim = Simulator::new(&p).expect("valid");
        assert_eq!(
            sim.run(&[], &[]),
            Err(SimError::MemOutOfBounds {
                block: BlockId(0),
                addr: 99
            })
        );
    }

    #[test]
    fn memory_store_then_load_roundtrips() {
        let mut p = Program::new("mem", 1, 8);
        let mut dfg = Dfg::new();
        let a = dfg.imm(3);
        let v = dfg.imm(1234);
        dfg.node(
            OpKind::Store,
            &[
                rtise_ir::dfg::Operand::Node(a),
                rtise_ir::dfg::Operand::Node(v),
            ],
        );
        let l = dfg.un(OpKind::Load, a);
        dfg.output(0, l);
        p.add_block(BasicBlock {
            name: "b".into(),
            dfg,
            terminator: Terminator::Return,
        });
        let sim = Simulator::new(&p).expect("valid");
        let out = sim.run(&[], &[]).expect("run");
        assert_eq!(out.vars[0], 1234);
        assert_eq!(out.mem[3], 1234);
    }

    #[test]
    fn trace_records_block_sequence_and_loop_entries() {
        let p = sum_program();
        let sim = Simulator::new(&p).expect("valid").with_trace(true);
        let out = sim.run(&[0, 3], &[]).expect("run");
        let trace = out.trace.expect("trace enabled");
        assert_eq!(trace[0], BlockId(0));
        assert_eq!(trace.last(), Some(&BlockId(3)));
        let entries = loop_entry_trace(&p, &trace);
        assert_eq!(entries, vec![BlockId(1)], "one loop entry event");
    }

    #[test]
    fn wcet_bounds_simulated_cycles() {
        let p = sum_program();
        let sim = Simulator::new(&p).expect("valid");
        let out = sim.run(&[0, 1000], &[]).expect("run");
        let wcet = rtise_ir::wcet::analyze(&p).expect("wcet").wcet;
        assert!(wcet >= out.cycles, "WCET {wcet} < observed {}", out.cycles);
    }

    #[test]
    fn run_stats_account_for_cycles_and_instruction_mix() {
        let p = sum_program();
        let sim = Simulator::new(&p).expect("valid");
        let plain = sim.run(&[0, 10], &[]).expect("run");
        let (out, stats) = sim
            .run_with_stats(&[0, 10], &[], &CiMap::new())
            .expect("run");
        assert_eq!(out, plain, "stats must not change the result");
        assert_eq!(stats.blocks_executed, out.block_counts.iter().sum::<u64>());
        assert_eq!(stats.block_cycles.iter().sum::<u64>(), out.cycles);
        assert_eq!(stats.instr_mix.values().sum::<u64>(), stats.instructions);
        // The loop body (block 2, executed 10×) contains one mul.
        assert_eq!(stats.instr_mix.get("mul"), Some(&10));
        assert!(!stats.instr_mix.contains_key("ci"));

        // Under a CI over the loop body, covered ops move to the `ci`
        // bucket and the attributed cycles still sum to the total.
        let body = &p.block(BlockId(2)).dfg;
        let set = body.full_valid_set();
        let hw = HwModel::default();
        let mut cis = CiMap::new();
        cis.add(
            BlockId(2),
            SelectedCi {
                cycles: hw.ci_cycles(body, &set),
                nodes: set,
            },
        );
        let (acc, hw_stats) = sim.run_with_stats(&[0, 10], &[], &cis).expect("hw run");
        assert_eq!(hw_stats.instr_mix.get("ci"), Some(&10));
        assert_eq!(hw_stats.instr_mix.get("mul"), None);
        assert_eq!(hw_stats.block_cycles.iter().sum::<u64>(), acc.cycles);
        assert!(hw_stats.instructions < stats.instructions);
    }

    #[test]
    fn bad_initial_state_rejected() {
        let p = sum_program();
        let sim = Simulator::new(&p).expect("valid");
        assert_eq!(
            sim.run(&[0, 0, 0, 0, 0], &[]),
            Err(SimError::BadInitialState)
        );
    }
}

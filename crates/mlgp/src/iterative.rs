//! Algorithm 4: the iterative, WCET-guided customization loop.
//!
//! Each iteration zooms into the task with the highest utilization,
//! computes how much WCET reduction `Δ` would bring the set to the target
//! utilization, and generates custom instructions region-by-region along
//! the task's WCET path (heaviest basic blocks first) until `Δ` is covered
//! or the task is exhausted. Tasks that yield no further gain are dropped;
//! the loop stops when the target is met or no task can improve.

use crate::mlgp::{mlgp_partition, MlgpOptions};
use rtise_ir::cfg::{BlockId, Program};
use rtise_ir::hw::HwModel;
use rtise_ir::nodeset::NodeSet;
use rtise_ir::region::regions;
use rtise_ir::wcet::{analyze_with_costs, WcetError};

/// One task offered to the iterative customizer.
#[derive(Debug, Clone, Copy)]
pub struct IterTask<'a> {
    /// The task's program.
    pub program: &'a Program,
    /// Its period (= deadline).
    pub period: u64,
}

/// Options for [`customize_task_set`].
#[derive(Debug, Clone, Copy)]
pub struct IterativeOptions {
    /// MLGP generator parameters.
    pub mlgp: MlgpOptions,
    /// Fraction of the WCET covered by the basic-block prefix explored per
    /// iteration (the "total weight exceeds 90 %" rule of §5.1).
    pub weight_coverage: f64,
    /// Safety cap on iterations.
    pub max_iterations: usize,
}

impl Default for IterativeOptions {
    fn default() -> Self {
        IterativeOptions {
            mlgp: MlgpOptions::default(),
            weight_coverage: 0.9,
            max_iterations: 64,
        }
    }
}

/// A custom instruction selected by the iterative flow.
#[derive(Debug, Clone)]
pub struct SelectedCi {
    /// Task index the instruction belongs to.
    pub task: usize,
    /// Basic block the subgraph lives in.
    pub block: BlockId,
    /// Covered nodes.
    pub nodes: NodeSet,
    /// Cycles saved per block execution.
    pub gain_per_exec: u64,
    /// Area in cells.
    pub area: u64,
}

/// Progress of one iteration (the data behind Fig. 5.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Task customized this iteration.
    pub task: usize,
    /// Utilization after the iteration.
    pub utilization: f64,
    /// Cumulative custom-instruction area so far.
    pub cumulative_area: u64,
}

/// Final outcome of the iterative flow.
#[derive(Debug, Clone)]
pub struct IterativeResult {
    /// Final utilization.
    pub utilization: f64,
    /// All selected custom instructions.
    pub selected: Vec<SelectedCi>,
    /// Per-iteration history.
    pub history: Vec<IterationRecord>,
    /// Total area of the selection, in cells.
    pub total_area: u64,
    /// Whether the target utilization was reached.
    pub met_target: bool,
}

/// Runs Algorithm 4 on `tasks` with target utilization `u_target`.
///
/// # Errors
///
/// Propagates WCET-analysis errors ([`WcetError`]) for malformed programs.
pub fn customize_task_set(
    tasks: &[IterTask<'_>],
    u_target: f64,
    hw: &HwModel,
    opts: IterativeOptions,
) -> Result<IterativeResult, WcetError> {
    let n = tasks.len();
    // Mutable per-task state: current block costs and used regions.
    let mut costs: Vec<Vec<u64>> = tasks
        .iter()
        .map(|t| {
            t.program
                .block_ids()
                .map(|b| t.program.block(b).cost())
                .collect()
        })
        .collect();
    let mut used: Vec<Vec<(BlockId, NodeSet)>> = vec![Vec::new(); n];
    let mut active: Vec<bool> = vec![true; n];
    let mut wcet: Vec<u64> = Vec::with_capacity(n);
    for (t, c) in tasks.iter().zip(&costs) {
        wcet.push(analyze_with_costs(t.program, c)?.wcet);
    }
    let util = |wcet: &[u64]| -> f64 {
        wcet.iter()
            .zip(tasks)
            .map(|(&c, t)| c as f64 / t.period as f64)
            .sum()
    };

    let mut selected: Vec<SelectedCi> = Vec::new();
    let mut history: Vec<IterationRecord> = Vec::new();
    let mut total_area: u64 = 0;
    let mut u = util(&wcet);

    for _iter in 0..opts.max_iterations {
        if u <= u_target {
            break;
        }
        // Task with maximum utilization among the active ones (line 5).
        let Some(ti) = (0..n).filter(|&i| active[i]).max_by(|&a, &b| {
            let ua = wcet[a] as f64 / tasks[a].period as f64;
            let ub = wcet[b] as f64 / tasks[b].period as f64;
            ua.partial_cmp(&ub).unwrap_or(std::cmp::Ordering::Equal)
        }) else {
            break;
        };
        let task = &tasks[ti];
        let delta = ((u - u_target) * task.period as f64).ceil().max(1.0) as u64;

        // Rank blocks on the WCET path and keep the coverage prefix
        // (line 7).
        let report = analyze_with_costs(task.program, &costs[ti])?;
        let ranked = report.blocks_by_weight();
        let mut prefix = Vec::new();
        let mut covered = 0.0;
        for b in ranked {
            prefix.push(b);
            covered += report.weight(b);
            if covered >= opts.weight_coverage {
                break;
            }
        }

        // Generate custom instructions region by region until Δ is covered
        // (line 8, §5.2.2).
        let mut gained: u64 = 0;
        'blocks: for &b in &prefix {
            let count = report.counts[b.0];
            if count == 0 {
                continue;
            }
            let dfg = &task.program.block(b).dfg;
            for region in regions(dfg) {
                let already = used[ti]
                    .iter()
                    .any(|(ub, us)| *ub == b && us.intersects(&region.nodes));
                if already {
                    continue;
                }
                let parts = mlgp_partition(dfg, &region.nodes, hw, opts.mlgp);
                used[ti].push((b, region.nodes.clone()));
                for p in parts {
                    let per_exec = hw.ci_gain(dfg, &p);
                    if per_exec == 0 {
                        continue;
                    }
                    let area = hw.ci_area(dfg, &p);
                    costs[ti][b.0] -= per_exec;
                    total_area += area;
                    gained += per_exec * count;
                    selected.push(SelectedCi {
                        task: ti,
                        block: b,
                        nodes: p,
                        gain_per_exec: per_exec,
                        area,
                    });
                    if gained >= delta {
                        break 'blocks;
                    }
                }
            }
        }

        if gained == 0 {
            // No improvement possible: drop the task from consideration
            // (line 12).
            active[ti] = false;
            continue;
        }
        wcet[ti] = analyze_with_costs(task.program, &costs[ti])?.wcet;
        u = util(&wcet);
        history.push(IterationRecord {
            task: ti,
            utilization: u,
            cumulative_area: total_area,
        });
    }

    Ok(IterativeResult {
        utilization: u,
        met_target: u <= u_target,
        selected,
        history,
        total_area,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_kernels::by_name;

    fn task_with_utilization(name: &str, u: f64) -> (rtise_ir::cfg::Program, u64) {
        let k = by_name(name).expect("kernel");
        let wcet = rtise_ir::wcet::analyze(&k.program).expect("wcet").wcet;
        let period = (wcet as f64 / u).ceil() as u64;
        (k.program, period)
    }

    #[test]
    fn unschedulable_pair_becomes_schedulable() {
        let (p1, per1) = task_with_utilization("crc32", 0.6);
        let (p2, per2) = task_with_utilization("sha", 0.55);
        let tasks = vec![
            IterTask {
                program: &p1,
                period: per1,
            },
            IterTask {
                program: &p2,
                period: per2,
            },
        ];
        let hw = HwModel::default();
        let res = customize_task_set(&tasks, 1.0, &hw, IterativeOptions::default()).expect("run");
        assert!(res.met_target, "final U = {}", res.utilization);
        assert!(res.utilization <= 1.0);
        assert!(!res.selected.is_empty());
        assert!(res.total_area > 0);
    }

    #[test]
    fn utilization_decreases_monotonically_over_iterations() {
        let (p1, per1) = task_with_utilization("jfdctint", 0.8);
        let (p2, per2) = task_with_utilization("ndes", 0.5);
        let tasks = vec![
            IterTask {
                program: &p1,
                period: per1,
            },
            IterTask {
                program: &p2,
                period: per2,
            },
        ];
        let hw = HwModel::default();
        // Impossible target forces full iteration until exhaustion.
        let res = customize_task_set(&tasks, 0.01, &hw, IterativeOptions::default()).expect("run");
        let mut prev = f64::INFINITY;
        for rec in &res.history {
            assert!(rec.utilization < prev, "history {:#?}", res.history);
            prev = rec.utilization;
        }
        assert!(!res.met_target);
    }

    #[test]
    fn selected_instructions_are_legal_and_consistent() {
        let (p1, per1) = task_with_utilization("blowfish", 1.2);
        let tasks = vec![IterTask {
            program: &p1,
            period: per1,
        }];
        let hw = HwModel::default();
        let res = customize_task_set(&tasks, 1.0, &hw, IterativeOptions::default()).expect("run");
        for ci in &res.selected {
            let dfg = &p1.block(ci.block).dfg;
            assert!(dfg.is_feasible_ci(&ci.nodes, 4, 2));
            assert_eq!(ci.gain_per_exec, hw.ci_gain(dfg, &ci.nodes));
            assert_eq!(ci.area, hw.ci_area(dfg, &ci.nodes));
        }
        // Instructions within one block never overlap.
        for (i, a) in res.selected.iter().enumerate() {
            for b in &res.selected[i + 1..] {
                if a.task == b.task && a.block == b.block {
                    assert!(!a.nodes.intersects(&b.nodes));
                }
            }
        }
    }

    #[test]
    fn already_schedulable_set_is_untouched() {
        let (p1, per1) = task_with_utilization("fir", 0.4);
        let tasks = vec![IterTask {
            program: &p1,
            period: per1,
        }];
        let hw = HwModel::default();
        let res = customize_task_set(&tasks, 1.0, &hw, IterativeOptions::default()).expect("run");
        assert!(res.met_target);
        assert!(res.selected.is_empty());
        assert_eq!(res.total_area, 0);
    }

    #[test]
    fn first_iteration_gives_the_largest_drop() {
        // Fig. 5.3's shape: the drop shrinks over iterations (the first
        // regions are the hottest).
        let (p1, per1) = task_with_utilization("rijndael", 1.3);
        let tasks = vec![IterTask {
            program: &p1,
            period: per1,
        }];
        let hw = HwModel::default();
        let res = customize_task_set(&tasks, 0.01, &hw, IterativeOptions::default()).expect("run");
        if res.history.len() >= 2 {
            let drops: Vec<f64> = std::iter::once(1.3 - res.history[0].utilization)
                .chain(
                    res.history
                        .windows(2)
                        .map(|w| w[0].utilization - w[1].utilization),
                )
                .collect();
            assert!(
                drops[0] >= *drops.last().expect("non-empty") - 1e-9,
                "drops {drops:?}"
            );
        }
    }
}

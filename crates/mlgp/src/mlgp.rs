//! The Multi-Level Graph Partitioning (MLGP) custom-instruction generator
//! (§5.2.3).
//!
//! Unlike k-way partitioning of undirected graphs, MLGP partitions a
//! *directed* region so that every partition is a legal custom instruction
//! (convex, valid ops, within the I/O port budget), maximizing performance
//! gain rather than balancing sizes, and without fixing the number of
//! partitions in advance:
//!
//! 1. **Coarsening** — random-order matching; a vertex merges with the
//!    adjacent vertex maximizing the merged group's gain/area ratio, but
//!    only if the merged subgraph stays feasible. Fixpoint ends the phase.
//! 2. **Initial partitioning** — each coarsest vertex *is* a partition.
//! 3. **Refinement** — boundary nodes move to neighbouring partitions when
//!    that improves the summed gain/area ratio; an input-count violation is
//!    repaired by absorbing producers (multi-edge first), an output
//!    violation by absorbing consumers (Algorithm 5).

use rtise_ir::dfg::{Dfg, NodeId};
use rtise_ir::hw::HwModel;
use rtise_ir::nodeset::NodeSet;
use rtise_obs::Rng;

/// Options for [`mlgp_partition`].
#[derive(Debug, Clone, Copy)]
pub struct MlgpOptions {
    /// Maximum input operands per custom instruction.
    pub max_in: usize,
    /// Maximum output operands per custom instruction.
    pub max_out: usize,
    /// RNG seed for the matching/refinement visit orders.
    pub seed: u64,
    /// Refinement passes at the finest level.
    pub refine_passes: usize,
}

impl Default for MlgpOptions {
    fn default() -> Self {
        MlgpOptions {
            max_in: 4,
            max_out: 2,
            seed: 0x1175,
            refine_passes: 4,
        }
    }
}

/// Partitions `region` (a subset of `dfg`'s nodes, all CI-valid) into legal
/// custom instructions, maximizing gain. Returns the partitions with
/// positive gain, best gain/area ratio first.
///
/// # Panics
///
/// Panics if `region` contains CI-invalid nodes.
pub fn mlgp_partition(
    dfg: &Dfg,
    region: &NodeSet,
    hw: &HwModel,
    opts: MlgpOptions,
) -> Vec<NodeSet> {
    mlgp_partition_with_stats(dfg, region, hw, opts).0
}

/// Solver statistics for one [`mlgp_partition_with_stats`] call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MlgpStats {
    /// Coarsening passes run until the merge fixpoint (includes the final
    /// pass that found nothing to merge).
    pub coarsen_passes: u64,
    /// Partition pairs merged across all coarsening passes.
    pub merges: u64,
    /// Refinement passes run at node granularity.
    pub refine_passes: u64,
    /// Boundary-node moves applied across all refinement passes.
    pub refine_moves: u64,
    /// Partitions emitted (positive-gain custom instructions).
    pub partitions_out: u64,
}

/// Like [`mlgp_partition`], additionally returning [`MlgpStats`] and
/// publishing `mlgp.*` counters to the [`rtise_obs`] registry.
///
/// # Panics
///
/// Panics if `region` contains CI-invalid nodes.
pub fn mlgp_partition_with_stats(
    dfg: &Dfg,
    region: &NodeSet,
    hw: &HwModel,
    opts: MlgpOptions,
) -> (Vec<NodeSet>, MlgpStats) {
    assert!(
        region.iter().all(|n| dfg.kind(n).is_ci_valid()),
        "region contains invalid nodes"
    );
    let mut rng = Rng::new(opts.seed);
    let mut stats = MlgpStats::default();

    // Partition state: node -> partition id; partitions as node sets.
    let mut parts: Vec<NodeSet> = region
        .iter()
        .map(|n| {
            let mut s = dfg.empty_set();
            s.insert(n);
            s
        })
        .collect();

    // --- Coarsening to a fixpoint. ---
    loop {
        stats.coarsen_passes += 1;
        let merged = coarsen_pass(dfg, hw, &mut parts, &opts, &mut rng);
        if merged == 0 {
            break;
        }
        stats.merges += merged;
    }

    // --- Refinement at node granularity. ---
    for _ in 0..opts.refine_passes {
        stats.refine_passes += 1;
        let moved = refine_pass(dfg, hw, &mut parts, &opts, &mut rng);
        if moved == 0 {
            break;
        }
        stats.refine_moves += moved;
    }

    let mut out: Vec<NodeSet> = parts
        .into_iter()
        .filter(|p| !p.is_empty() && hw.ci_gain(dfg, p) > 0)
        .collect();
    out.sort_by(|a, b| {
        let ra = hw.ci_gain(dfg, a) as u128 * hw.ci_area(dfg, b).max(1) as u128;
        let rb = hw.ci_gain(dfg, b) as u128 * hw.ci_area(dfg, a).max(1) as u128;
        rb.cmp(&ra)
    });
    stats.partitions_out = out.len() as u64;
    rtise_obs::record("mlgp.calls", 1);
    rtise_obs::record("mlgp.coarsen_passes", stats.coarsen_passes);
    rtise_obs::record("mlgp.merges", stats.merges);
    rtise_obs::record("mlgp.refine_moves", stats.refine_moves);
    (out, stats)
}

/// One coarsening pass: each partition tries to merge with its best
/// feasible neighbour. Returns the number of merges performed.
fn coarsen_pass(
    dfg: &Dfg,
    hw: &HwModel,
    parts: &mut Vec<NodeSet>,
    opts: &MlgpOptions,
    rng: &mut Rng,
) -> u64 {
    let node_part = node_partition_map(dfg, parts);
    let mut order: Vec<usize> = (0..parts.len()).collect();
    rng.shuffle(&mut order);
    let mut consumed = vec![false; parts.len()];
    let mut merged = 0u64;
    for &pi in &order {
        if consumed[pi] || parts[pi].is_empty() {
            continue;
        }
        // Adjacent partitions.
        let mut best: Option<(u128, usize)> = None; // (ratio scaled, partner)
        for nb in adjacent_partitions(dfg, &parts[pi], &node_part) {
            if nb == pi || consumed[nb] || parts[nb].is_empty() {
                continue;
            }
            let mut merged = parts[pi].clone();
            merged.union_with(&parts[nb]);
            if !dfg.is_feasible_ci(&merged, opts.max_in, opts.max_out) {
                continue;
            }
            let gain = hw.ci_gain(dfg, &merged) as u128;
            let area = hw.ci_area(dfg, &merged).max(1) as u128;
            // Compare gain/area as gain * K / area with fixed scale.
            let ratio = gain * 1_000_000 / area;
            if best.is_none_or(|(r, _)| ratio > r) {
                best = Some((ratio, nb));
            }
        }
        if let Some((_, nb)) = best {
            let other = std::mem::replace(&mut parts[nb], dfg.empty_set());
            parts[pi].union_with(&other);
            consumed[nb] = true;
            consumed[pi] = true; // matched this pass
            merged += 1;
        }
    }
    parts.retain(|p| !p.is_empty());
    merged
}

/// One refinement pass of boundary-node moves (Algorithm 5). Returns the
/// number of moves applied.
fn refine_pass(
    dfg: &Dfg,
    hw: &HwModel,
    parts: &mut [NodeSet],
    opts: &MlgpOptions,
    rng: &mut Rng,
) -> u64 {
    let mut moved = 0u64;
    let mut node_order: Vec<NodeId> = parts.iter().flat_map(|p| p.iter()).collect();
    rng.shuffle(&mut node_order);
    for v in node_order {
        let node_part = node_partition_map(dfg, parts);
        let Some(&from) = node_part.get(v.0).and_then(|o| o.as_ref()) else {
            continue;
        };
        // Boundary check: some neighbour in a different partition.
        let neighbours: Vec<NodeId> = dfg
            .args(v)
            .iter()
            .copied()
            .chain(dfg.consumers(v).iter().copied())
            .collect();
        let neighbour_parts: Vec<usize> = neighbours
            .iter()
            .filter_map(|n| node_part.get(n.0).and_then(|o| *o))
            .filter(|&p| p != from)
            .collect();
        if neighbour_parts.is_empty() {
            continue;
        }
        // Source partition without v must stay feasible (or empty).
        let mut src = parts[from].clone();
        src.remove(v);
        if !src.is_empty() && !dfg.is_feasible_ci(&src, opts.max_in, opts.max_out) {
            continue;
        }
        let current_ratio = ratio_of(dfg, hw, &parts[from]);
        let mut best: Option<(f64, usize, NodeSet)> = None;
        for &to in &neighbour_parts {
            let mut dst = parts[to].clone();
            dst.insert(v);
            let dst = match repair(dfg, &dst, opts) {
                Some(r) => r,
                None => continue,
            };
            // Absorbed nodes must come only from src or dst — anything else
            // would cascade; keep the move local (conservative variant).
            let mut absorbed_ok = true;
            for n in dst.iter() {
                let owner = node_part.get(n.0).and_then(|o| *o);
                if owner != Some(from) && owner != Some(to) {
                    absorbed_ok = false;
                    break;
                }
            }
            if !absorbed_ok {
                continue;
            }
            let mut new_src = parts[from].clone();
            new_src.difference_with(&dst);
            if !new_src.is_empty() && !dfg.is_feasible_ci(&new_src, opts.max_in, opts.max_out) {
                continue;
            }
            let old = current_ratio + ratio_of(dfg, hw, &parts[to]);
            let new = ratio_of(dfg, hw, &new_src) + ratio_of(dfg, hw, &dst);
            let improv = new - old;
            if improv > 1e-9 && best.as_ref().is_none_or(|(b, _, _)| improv > *b) {
                best = Some((improv, to, dst));
            }
        }
        if let Some((_, to, dst)) = best {
            let mut new_src = parts[from].clone();
            new_src.difference_with(&dst);
            parts[from] = new_src;
            parts[to] = dst;
            moved += 1;
        }
    }
    moved
}

/// Gain/area ratio of a partition (0 for empty).
fn ratio_of(dfg: &Dfg, hw: &HwModel, p: &NodeSet) -> f64 {
    if p.is_empty() {
        return 0.0;
    }
    hw.ci_gain(dfg, p) as f64 / hw.ci_area(dfg, p).max(1) as f64
}

/// Repairs I/O violations of `set` by absorbing producers (inputs) or
/// consumers (outputs), preferring nodes connected by the most edges
/// (§5.2.3, Algorithm 5 lines 6–9). Returns `None` when unrepairable
/// within 2× the original size.
fn repair(dfg: &Dfg, set: &NodeSet, opts: &MlgpOptions) -> Option<NodeSet> {
    let mut cur = set.clone();
    let limit = (set.len() * 2).max(set.len() + 4);
    loop {
        if cur.len() > limit {
            return None;
        }
        if !cur.iter().all(|n| dfg.kind(n).is_ci_valid()) {
            return None;
        }
        if !dfg.is_convex(&cur) {
            // Absorb the convexity-violating through-nodes if valid.
            let mut grew = false;
            for id in dfg.ids() {
                if cur.contains(id) || !dfg.kind(id).is_ci_valid() {
                    continue;
                }
                let from_in = dfg.args(id).iter().any(|a| cur.contains(*a));
                let to_in = dfg.consumers(id).iter().any(|c| cur.contains(*c));
                if from_in && to_in {
                    cur.insert(id);
                    grew = true;
                }
            }
            if !grew {
                return None;
            }
            continue;
        }
        let io = dfg.io_counts(&cur);
        if io.inputs > opts.max_in {
            // Absorb the external producer with the most edges into `cur`.
            let mut best: Option<(usize, NodeId)> = None;
            for m in cur.iter() {
                for &a in dfg.args(m) {
                    if cur.contains(a)
                        || !dfg.kind(a).is_ci_valid()
                        || dfg.kind(a) == rtise_ir::op::OpKind::Const
                    {
                        continue;
                    }
                    let edges = dfg
                        .consumers(a)
                        .iter()
                        .filter(|c| cur.contains(**c))
                        .count();
                    if best.is_none_or(|(e, _)| edges > e) {
                        best = Some((edges, a));
                    }
                }
            }
            match best {
                Some((_, a)) => {
                    cur.insert(a);
                    continue;
                }
                None => return None,
            }
        }
        if io.outputs > opts.max_out {
            // Absorb the external consumer with the most edges from `cur`.
            let mut best: Option<(usize, NodeId)> = None;
            for m in cur.iter() {
                for &c in dfg.consumers(m) {
                    if cur.contains(c) || !dfg.kind(c).is_ci_valid() {
                        continue;
                    }
                    let edges = dfg.args(c).iter().filter(|a| cur.contains(**a)).count();
                    if best.is_none_or(|(e, _)| edges > e) {
                        best = Some((edges, c));
                    }
                }
            }
            match best {
                Some((_, c)) => {
                    cur.insert(c);
                    continue;
                }
                None => return None,
            }
        }
        return Some(cur);
    }
}

/// node id -> partition index map.
fn node_partition_map(dfg: &Dfg, parts: &[NodeSet]) -> Vec<Option<usize>> {
    let mut map = vec![None; dfg.len()];
    for (pi, p) in parts.iter().enumerate() {
        for n in p.iter() {
            map[n.0] = Some(pi);
        }
    }
    map
}

/// Partitions adjacent to `part` (sharing at least one edge).
fn adjacent_partitions(dfg: &Dfg, part: &NodeSet, node_part: &[Option<usize>]) -> Vec<usize> {
    let mut out = Vec::new();
    for m in part.iter() {
        for n in dfg
            .args(m)
            .iter()
            .copied()
            .chain(dfg.consumers(m).iter().copied())
        {
            if let Some(p) = node_part.get(n.0).and_then(|o| *o) {
                if !out.contains(&p) {
                    out.push(p);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ir::op::OpKind;
    use rtise_ir::region::regions;

    fn mac_chain(n: usize) -> Dfg {
        let mut g = Dfg::new();
        let mut acc = g.input(0);
        for i in 0..n {
            let x = g.input(1 + i);
            let m = g.bin_imm(OpKind::Mul, x, (i + 3) as i64);
            acc = g.bin(OpKind::Add, acc, m);
        }
        g.output(0, acc);
        g
    }

    #[test]
    fn partitions_are_legal_custom_instructions() {
        let g = mac_chain(10);
        let hw = HwModel::default();
        let region = &regions(&g)[0];
        let parts = mlgp_partition(&g, &region.nodes, &hw, MlgpOptions::default());
        assert!(!parts.is_empty());
        for p in &parts {
            assert!(g.is_feasible_ci(p, 4, 2), "{p:?}");
            assert!(hw.ci_gain(&g, p) > 0);
        }
        // Partitions are pairwise disjoint.
        for (i, a) in parts.iter().enumerate() {
            for b in &parts[i + 1..] {
                assert!(!a.intersects(b));
            }
        }
    }

    #[test]
    fn coarsening_produces_multi_node_instructions() {
        let g = mac_chain(6);
        let hw = HwModel::default();
        let region = &regions(&g)[0];
        let parts = mlgp_partition(&g, &region.nodes, &hw, MlgpOptions::default());
        assert!(
            parts.iter().any(|p| p.len() >= 3),
            "expected coarse partitions, got {parts:?}"
        );
    }

    #[test]
    fn total_gain_beats_trivial_singletons() {
        let g = mac_chain(8);
        let hw = HwModel::default();
        let region = &regions(&g)[0];
        let parts = mlgp_partition(&g, &region.nodes, &hw, MlgpOptions::default());
        let total: u64 = parts.iter().map(|p| hw.ci_gain(&g, p)).sum();
        // Singleton muls each gain 3-1 = 2; adds gain 0. A good partition
        // chains them and collapses latency.
        let singleton_best: u64 = region
            .nodes
            .iter()
            .map(|n| {
                let mut s = g.empty_set();
                s.insert(n);
                hw.ci_gain(&g, &s)
            })
            .sum();
        assert!(
            total > singleton_best,
            "MLGP {total} <= singletons {singleton_best}"
        );
    }

    #[test]
    fn io_constraints_bind_partition_sizes() {
        let g = mac_chain(12);
        let hw = HwModel::default();
        let region = &regions(&g)[0];
        let tight = MlgpOptions {
            max_in: 2,
            max_out: 1,
            ..MlgpOptions::default()
        };
        for p in mlgp_partition(&g, &region.nodes, &hw, tight) {
            let io = g.io_counts(&p);
            assert!(io.fits(2, 1), "{io:?}");
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = mac_chain(9);
        let hw = HwModel::default();
        let region = &regions(&g)[0];
        let a = mlgp_partition(&g, &region.nodes, &hw, MlgpOptions::default());
        let b = mlgp_partition(&g, &region.nodes, &hw, MlgpOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn repair_absorbs_shared_producer() {
        // Two consumers of one producer: moving one consumer next to the
        // other pulls the producer in to reduce input count.
        let mut g = Dfg::new();
        let ins: Vec<_> = (0..6).map(|i| g.input(i)).collect();
        let p = g.bin(OpKind::Add, ins[0], ins[1]);
        let c1 = g.bin(OpKind::Mul, p, ins[2]);
        let c2 = g.bin(OpKind::Mul, p, ins[3]);
        let c3 = g.bin(OpKind::Add, c1, ins[4]);
        let c4 = g.bin(OpKind::Add, c2, ins[5]);
        let x = g.bin(OpKind::Xor, c3, c4);
        g.output(0, x);
        let mut set = g.empty_set();
        for n in [c1, c2, c3, c4, x] {
            set.insert(n);
        }
        let opts = MlgpOptions {
            max_in: 5,
            max_out: 1,
            ..MlgpOptions::default()
        };
        // 6 inputs (p, ins[2..6] plus...) exceed 5; repair should absorb p.
        let io = g.io_counts(&set);
        assert!(io.inputs >= 5, "{io:?}");
        if io.inputs > 5 {
            let repaired = repair(&g, &set, &opts).expect("repairable");
            assert!(repaired.contains(p));
            assert!(g.io_counts(&repaired).fits(5, 1));
        }
    }
}

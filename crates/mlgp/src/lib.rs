//! # rtise-mlgp
//!
//! Chapter 5: iterative, top-down custom-instruction generation.
//!
//! The bottom-up flow of Chapters 3–4 enumerates candidates for *every*
//! task and then selects a few — most of that work is wasted. This crate
//! inverts the flow:
//!
//! * [`mlgp`] — the Multi-Level Graph Partitioning generator: given one
//!   critical region, coarsen it by constraint-checked matching, take each
//!   coarse vertex as a custom instruction, and refine on the way back down
//!   (Algorithm 5's move-with-I/O-repair). It produces a few *large* legal
//!   custom instructions quickly instead of exhaustively enumerating all of
//!   them.
//! * [`iterative`] — Algorithm 4: repeatedly pick the highest-utilization
//!   task, walk its WCET path heaviest-block-first, and generate custom
//!   instructions region by region until the task set's utilization drops
//!   below the target (or no gain remains).

pub mod iterative;
pub mod mlgp;

pub use iterative::{customize_task_set, IterationRecord, IterativeOptions, IterativeResult};
pub use mlgp::{mlgp_partition, MlgpOptions};

//! Per-task configuration curves (the area/performance staircase of
//! Fig. 3.1).
//!
//! A *configuration* is one concrete customization of a task: a selected set
//! of custom instructions with a total silicon area and the resulting task
//! execution time. Sweeping the area budget yields the Pareto staircase the
//! multi-task selectors of Chapters 3, 4 and 7 consume — their
//! `config_{i,j} = (area_{i,j}, cycle_{i,j})` input, always beginning with
//! the pure-software point `(0, C_i)`.

use crate::candidate::CiCandidate;
use crate::select::{branch_and_bound, greedy_by_ratio, Selection};

/// One configuration of a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigPoint {
    /// Total custom-instruction area, in cells.
    pub area: u64,
    /// Task execution time (profiled cycles or WCET) in this configuration.
    pub cycles: u64,
    /// Cycles saved versus the software-only configuration.
    pub gain: u64,
    /// Indices of the selected candidates (into the library the curve was
    /// generated from); empty for the software point.
    pub selection: Vec<usize>,
}

/// The configuration curve of one task: undominated `(area, cycles)` points
/// in ascending-area order, starting at `(0, base_cycles)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigCurve {
    /// Task name.
    pub name: String,
    /// Execution time without any custom instruction.
    pub base_cycles: u64,
    points: Vec<ConfigPoint>,
}

impl ConfigCurve {
    /// Generates a curve by sweeping `n_budgets` area budgets over the
    /// candidate library.
    ///
    /// Budgets span 0 to the area of the unconstrained best selection. Each
    /// budget is solved exactly ([`branch_and_bound`]) when the library has
    /// at most `exact_threshold` candidates, else greedily.
    ///
    /// # Panics
    ///
    /// Panics if `n_budgets == 0`.
    pub fn generate(
        name: impl Into<String>,
        cands: &[CiCandidate],
        base_cycles: u64,
        n_budgets: usize,
        exact_threshold: usize,
    ) -> Self {
        assert!(n_budgets > 0, "need at least one budget");
        let solve = |budget: u64| -> Selection {
            if cands.len() <= exact_threshold {
                branch_and_bound(cands, budget)
            } else {
                greedy_by_ratio(cands, budget)
            }
        };
        let unconstrained = solve(cands.iter().map(|c| c.area).sum::<u64>().max(1));
        let max_area = unconstrained.total_area.max(1);

        let mut points = vec![ConfigPoint {
            area: 0,
            cycles: base_cycles,
            gain: 0,
            selection: Vec::new(),
        }];
        for step in 1..=n_budgets {
            let budget = max_area * step as u64 / n_budgets as u64;
            let sel = solve(budget);
            let gain = sel.total_gain.min(base_cycles);
            points.push(ConfigPoint {
                area: sel.total_area,
                cycles: base_cycles - gain,
                gain,
                selection: sel.chosen,
            });
        }
        ConfigCurve::from_pointset(name, base_cycles, points)
    }

    /// Builds a curve from explicit `(area, cycles)` pairs, e.g. the CIS
    /// version tables of the motivating examples. A software point `(0,
    /// base_cycles)` is added if missing; dominated points are removed.
    pub fn from_points(name: impl Into<String>, base_cycles: u64, pairs: &[(u64, u64)]) -> Self {
        let mut points: Vec<ConfigPoint> = pairs
            .iter()
            .map(|&(area, cycles)| ConfigPoint {
                area,
                cycles,
                gain: base_cycles.saturating_sub(cycles),
                selection: Vec::new(),
            })
            .collect();
        points.push(ConfigPoint {
            area: 0,
            cycles: base_cycles,
            gain: 0,
            selection: Vec::new(),
        });
        ConfigCurve::from_pointset(name, base_cycles, points)
    }

    /// Rebuilds a curve from previously-exported points (a disk cache, a
    /// serialized report), preserving each point's selection indices. The
    /// points pass through the same staircase normalization as
    /// [`generate`](ConfigCurve::generate), so malformed input degrades to
    /// a valid (possibly smaller) curve instead of breaking the invariant
    /// — callers that need byte-exact restoration should compare the
    /// result against what they stored.
    pub fn from_saved(name: impl Into<String>, base_cycles: u64, points: Vec<ConfigPoint>) -> Self {
        let mut points = points;
        if !points.iter().any(|p| p.area == 0) {
            points.push(ConfigPoint {
                area: 0,
                cycles: base_cycles,
                gain: 0,
                selection: Vec::new(),
            });
        }
        ConfigCurve::from_pointset(name, base_cycles, points)
    }

    fn from_pointset(
        name: impl Into<String>,
        base_cycles: u64,
        mut points: Vec<ConfigPoint>,
    ) -> Self {
        // Keep the Pareto staircase: ascending area, strictly descending
        // cycles.
        points.sort_by(|a, b| a.area.cmp(&b.area).then(a.cycles.cmp(&b.cycles)));
        let mut kept: Vec<ConfigPoint> = Vec::new();
        for p in points {
            match kept.last() {
                Some(last) if p.cycles >= last.cycles => {} // dominated
                _ => kept.push(p),
            }
        }
        ConfigCurve {
            name: name.into(),
            base_cycles,
            points: kept,
        }
    }

    /// The undominated configurations, ascending by area.
    pub fn points(&self) -> &[ConfigPoint] {
        &self.points
    }

    /// Number of configurations (including the software point).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Curves always contain at least the software point.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Largest area on the curve (`Max_Area` contribution of §3.2).
    pub fn max_area(&self) -> u64 {
        self.points.last().map(|p| p.area).unwrap_or(0)
    }

    /// The best (lowest-cycles) configuration within `budget`, by binary
    /// search over the staircase.
    pub fn best_within(&self, budget: u64) -> &ConfigPoint {
        let idx = self.points.partition_point(|p| p.area <= budget);
        &self.points[idx.saturating_sub(1).min(self.points.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ir::cfg::BlockId;
    use rtise_ir::nodeset::NodeSet;

    fn cand(nodes: &[usize], area: u64, gain: u64) -> CiCandidate {
        let mut set = NodeSet::with_capacity(32);
        for &n in nodes {
            set.insert(rtise_ir::dfg::NodeId(n));
        }
        CiCandidate {
            block: BlockId(0),
            nodes: set,
            area,
            hw_cycles: 1,
            sw_cycles: 1 + gain,
            exec_count: 1,
        }
    }

    #[test]
    fn from_points_matches_fig_3_1_shape() {
        // g721-style: larger area, fewer cycles.
        let curve = ConfigCurve::from_points(
            "g721",
            1000,
            &[(10, 900), (20, 850), (40, 800), (30, 890)], // (30, 890) dominated
        );
        let areas: Vec<u64> = curve.points().iter().map(|p| p.area).collect();
        assert_eq!(areas, vec![0, 10, 20, 40]);
        let cycles: Vec<u64> = curve.points().iter().map(|p| p.cycles).collect();
        assert_eq!(cycles, vec![1000, 900, 850, 800]);
    }

    #[test]
    fn software_point_always_present() {
        let curve = ConfigCurve::from_points("t", 100, &[(5, 90)]);
        assert_eq!(curve.points()[0].area, 0);
        assert_eq!(curve.points()[0].cycles, 100);
        assert_eq!(curve.points()[0].gain, 0);
    }

    #[test]
    fn best_within_walks_the_staircase() {
        let curve = ConfigCurve::from_points("t", 100, &[(10, 80), (20, 60)]);
        assert_eq!(curve.best_within(0).cycles, 100);
        assert_eq!(curve.best_within(9).cycles, 100);
        assert_eq!(curve.best_within(10).cycles, 80);
        assert_eq!(curve.best_within(15).cycles, 80);
        assert_eq!(curve.best_within(1000).cycles, 60);
        assert_eq!(curve.max_area(), 20);
    }

    #[test]
    fn generate_produces_monotone_staircase() {
        let cands = vec![
            cand(&[0], 4, 10),
            cand(&[1], 8, 15),
            cand(&[2], 2, 3),
            cand(&[0, 1], 10, 22), // conflicts with the first two
        ];
        let curve = ConfigCurve::generate("t", &cands, 200, 8, 16);
        let pts = curve.points();
        assert_eq!(pts[0].area, 0);
        for w in pts.windows(2) {
            assert!(w[1].area > w[0].area);
            assert!(w[1].cycles < w[0].cycles);
        }
        // The unconstrained best uses the conflict-free optimum: the three
        // disjoint singletons (10 + 15 + 3) beat the pair candidate (22 + 3).
        assert_eq!(pts.last().map(|p| p.gain), Some(28));
    }

    #[test]
    fn generate_with_empty_library_is_software_only() {
        let curve = ConfigCurve::generate("t", &[], 50, 4, 16);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve.best_within(u64::MAX).cycles, 50);
    }

    #[test]
    fn from_saved_round_trips_points_and_selections() {
        let cands = vec![cand(&[0], 4, 10), cand(&[1], 8, 15), cand(&[2], 2, 3)];
        let curve = ConfigCurve::generate("t", &cands, 200, 8, 16);
        let rebuilt =
            ConfigCurve::from_saved(curve.name.clone(), curve.base_cycles, curve.points.clone());
        assert_eq!(rebuilt, curve);
        // Malformed input (dominated / missing software point) degrades to
        // a valid staircase instead of panicking.
        let degraded = ConfigCurve::from_saved(
            "t",
            100,
            vec![
                ConfigPoint {
                    area: 5,
                    cycles: 120,
                    gain: 0,
                    selection: vec![1],
                },
                ConfigPoint {
                    area: 9,
                    cycles: 80,
                    gain: 20,
                    selection: vec![0, 1],
                },
            ],
        );
        assert_eq!(degraded.points()[0].area, 0);
        for w in degraded.points().windows(2) {
            assert!(w[1].area > w[0].area && w[1].cycles < w[0].cycles);
        }
    }

    #[test]
    fn gains_never_exceed_base_cycles() {
        let cands = vec![cand(&[0], 1, 1_000_000)];
        let curve = ConfigCurve::generate("t", &cands, 10, 4, 16);
        for p in curve.points() {
            assert!(p.cycles <= 10);
            assert!(p.gain <= 10);
        }
    }
}

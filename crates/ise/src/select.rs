//! Custom-instruction selection under an area budget.
//!
//! Given a candidate library, selection picks a pairwise non-overlapping
//! subset maximizing total profiled gain subject to `Σ area ≤ budget`
//! (§2.3.2). Three algorithms:
//!
//! * [`greedy_by_ratio`] — the classic gain/area priority heuristic;
//! * [`branch_and_bound`] — exact search with fractional-knapsack bounding,
//!   for modest candidate counts (the optimum the heuristics are judged
//!   against);
//! * [`iterative_selection`] — the IS baseline of Pozzi et al. \[81\] used in
//!   the Chapter 5 comparison: repeatedly commit the single best remaining
//!   candidate and discard everything overlapping it.

use crate::candidate::CiCandidate;

/// Default cap on certificate events per [`branch_and_bound_with_cert`]
/// call; overflow is counted in [`IseCertificate::dropped`].
pub const DEFAULT_CERT_CAP: usize = 1 << 22;

/// Maximum frontier depth of the decomposed parallel search: phase 1
/// walks the tree serially down to the frontier, and every node reaching
/// it becomes an independent subtree for the worker pool. The actual
/// depth is sized from the engaged thread count
/// ([`rtise_obs::par::sized_frontier_depth`]) so a 2-worker run does not
/// pay the 64-subtree decomposition built for wide pools; output is
/// byte-identical for any thread count *at a fixed depth* (pin one with
/// [`rtise_obs::par::set_frontier_for`] to compare across counts).
pub const PAR_FRONTIER_DEPTH: usize = 6;

/// One branch-and-bound decision node, in preorder.
///
/// Leaves (depth = library size) record no event — the replayer detects
/// them from its own depth counter; and incumbent updates record no event
/// either, because the incumbent rule is deterministic (better gain, or
/// equal gain at smaller area, at every node entry) and the replayer
/// reproduces it independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IseCertEvent {
    /// The node was abandoned: the fractional-knapsack relaxation over the
    /// remaining candidates cannot beat the incumbent gain.
    PruneBound,
    /// The node branched on the next candidate in ratio order. `include`
    /// states whether the include child was explored — which the search
    /// does exactly when the candidate fits the remaining budget, conflicts
    /// with nothing on the stack, and has positive gain. The exclude child
    /// is always explored, so the two children cover the space.
    Expand {
        /// Whether the include child exists.
        include: bool,
    },
}

/// A replayable optimality certificate of one
/// [`branch_and_bound_with_cert`] call.
///
/// `rtise-check`'s `bnb` analyzer replays it with an exact-integer bound
/// (no floating point) and confirms the returned [`Selection`] is
/// gain-optimal under the budget. A truncated log (`dropped > 0`) proves
/// nothing beyond its prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IseCertificate {
    /// `order[d]` is the candidate index branched at depth `d` — a
    /// permutation of `0..cands.len()` in descending gain/area order.
    pub order: Vec<usize>,
    /// One event per decision node, in preorder.
    pub events: Vec<IseCertEvent>,
    /// Events dropped past the recording cap (0 = complete log).
    pub dropped: u64,
}

/// A selection outcome: indices into the candidate slice plus totals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Selection {
    /// Indices of chosen candidates (into the input slice).
    pub chosen: Vec<usize>,
    /// Total cycles saved.
    pub total_gain: u64,
    /// Total area consumed, in cells.
    pub total_area: u64,
}

impl Selection {
    fn from_indices(cands: &[CiCandidate], chosen: Vec<usize>) -> Self {
        let total_gain = chosen.iter().map(|&i| cands[i].total_gain()).sum();
        let total_area = chosen.iter().map(|&i| cands[i].area).sum();
        Selection {
            chosen,
            total_gain,
            total_area,
        }
    }

    /// Whether the selection is pairwise conflict-free and within `budget`.
    pub fn is_valid(&self, cands: &[CiCandidate], budget: u64) -> bool {
        if self.total_area > budget {
            return false;
        }
        for (i, &a) in self.chosen.iter().enumerate() {
            for &b in &self.chosen[i + 1..] {
                if cands[a].conflicts_with(&cands[b]) {
                    return false;
                }
            }
        }
        true
    }
}

/// Greedy selection by descending gain/area ratio.
///
/// Zero-area candidates (pure logic folded into existing cells) rank first.
/// Candidates conflicting with an already-chosen one are skipped.
pub fn greedy_by_ratio(cands: &[CiCandidate], budget: u64) -> Selection {
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        // gain_a/area_a > gain_b/area_b  <=>  gain_a*area_b > gain_b*area_a
        let ga = cands[a].total_gain() as u128 * cands[b].area.max(1) as u128;
        let gb = cands[b].total_gain() as u128 * cands[a].area.max(1) as u128;
        gb.cmp(&ga).then(cands[a].area.cmp(&cands[b].area))
    });
    let mut chosen: Vec<usize> = Vec::new();
    let mut area = 0u64;
    for i in order {
        let c = &cands[i];
        if c.total_gain() == 0 || area + c.area > budget {
            continue;
        }
        if chosen.iter().any(|&j| cands[j].conflicts_with(c)) {
            continue;
        }
        area += c.area;
        chosen.push(i);
    }
    chosen.sort_unstable();
    Selection::from_indices(cands, chosen)
}

/// Exact selection by branch-and-bound with a fractional-knapsack upper
/// bound.
///
/// Exponential in the worst case; intended for candidate libraries up to a
/// few dozen entries (the optimality reference in tests and the Chapter 3
/// per-task configuration generator at fine granularity).
///
/// Variables are ordered by descending gain density (gain/area) so the
/// fractional bound is tight, and the bound itself is evaluated from
/// prefix sums over that ordering (greedy-fitting prefix found by binary
/// search) instead of rescanning the whole suffix at every node. The
/// prefix-sum bound is bit-identical to the reference scan — the integer
/// partial sums are exact in `f64` and the single fractional term plus
/// any trailing zero-area additions round in the same order — so the
/// search tree, prunes, and returned selection match
/// [`branch_and_bound_reference`] exactly (debug builds assert this at
/// every prune decision).
pub fn branch_and_bound(cands: &[CiCandidate], budget: u64) -> Selection {
    bnb_observed(cands, budget, rtise_obs::par::threads(), None)
}

/// Like [`branch_and_bound`], but forcing the decomposed parallel search
/// with `threads` workers regardless of the process-wide
/// [`rtise_obs::par::threads`] knob. The frontier depth is sized from
/// `threads`; selection, counters, traces, and certificates are
/// byte-identical for every worker count *at a fixed depth* (pin one
/// with [`rtise_obs::par::set_frontier_for`] to compare runs at
/// different thread counts). Libraries too small to have a frontier
/// fall back to the serial search.
pub fn branch_and_bound_par(cands: &[CiCandidate], budget: u64, threads: usize) -> Selection {
    bnb_observed(cands, budget, threads.max(1), None)
}

/// [`branch_and_bound_par_with_cert`] at an explicit frontier depth,
/// bypassing the thread-count sizing — the determinism-contract test
/// hook (identity across thread counts holds per depth).
#[doc(hidden)]
pub fn branch_and_bound_par_with_cert_at_depth(
    cands: &[CiCandidate],
    budget: u64,
    threads: usize,
    depth: usize,
) -> (Selection, IseCertificate) {
    let mut log = rtise_obs::BoundedLog::new(DEFAULT_CERT_CAP);
    let sel = bnb_observed_at_depth(cands, budget, threads.max(1), depth, Some(&mut log));
    let order = ratio_order(cands);
    let (events, dropped) = log.into_parts();
    (
        sel,
        IseCertificate {
            order,
            events,
            dropped,
        },
    )
}

/// Like [`branch_and_bound`], additionally emitting a replayable
/// [`IseCertificate`] of the search tree (capped at [`DEFAULT_CERT_CAP`]
/// events).
pub fn branch_and_bound_with_cert(
    cands: &[CiCandidate],
    budget: u64,
) -> (Selection, IseCertificate) {
    branch_and_bound_with_cert_capped(cands, budget, DEFAULT_CERT_CAP)
}

/// [`branch_and_bound_with_cert`] with an explicit event cap; events past
/// the cap are dropped and counted in [`IseCertificate::dropped`].
pub fn branch_and_bound_with_cert_capped(
    cands: &[CiCandidate],
    budget: u64,
    cap: usize,
) -> (Selection, IseCertificate) {
    bnb_cert_at(cands, budget, rtise_obs::par::threads(), cap)
}

/// [`branch_and_bound_with_cert`] on the decomposed parallel search; see
/// [`branch_and_bound_par`] for the determinism contract.
pub fn branch_and_bound_par_with_cert(
    cands: &[CiCandidate],
    budget: u64,
    threads: usize,
) -> (Selection, IseCertificate) {
    bnb_cert_at(cands, budget, threads.max(1), DEFAULT_CERT_CAP)
}

/// [`branch_and_bound_par_with_cert`] with an explicit event cap.
pub fn branch_and_bound_par_with_cert_capped(
    cands: &[CiCandidate],
    budget: u64,
    threads: usize,
    cap: usize,
) -> (Selection, IseCertificate) {
    bnb_cert_at(cands, budget, threads.max(1), cap)
}

fn bnb_cert_at(
    cands: &[CiCandidate],
    budget: u64,
    threads: usize,
    cap: usize,
) -> (Selection, IseCertificate) {
    let mut log = rtise_obs::BoundedLog::new(cap);
    let sel = bnb_observed(cands, budget, threads, Some(&mut log));
    let order = ratio_order(cands);
    let (events, dropped) = log.into_parts();
    (
        sel,
        IseCertificate {
            order,
            events,
            dropped,
        },
    )
}

/// Candidate indices in descending gain/area order — the branching order
/// of every search variant and the order a certificate declares.
fn ratio_order(cands: &[CiCandidate]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        // gain_a/area_a > gain_b/area_b  <=>  gain_a*area_b > gain_b*area_a
        let ga = cands[a].total_gain() as u128 * cands[b].area.max(1) as u128;
        let gb = cands[b].total_gain() as u128 * cands[a].area.max(1) as u128;
        gb.cmp(&ga)
    });
    order
}

/// Prefix tables over the gain-density ordering. `nf_*` index the
/// subsequence of non-free (area > 0) candidates: `nf_cum_area[k]` /
/// `nf_cum_gain[k]` sum the first `k` of them; `nf_from[p]` counts the
/// non-free candidates at order positions `< p`. `free_cum_gain[p]`
/// sums zero-area gains at order positions `< p`, and `free_pos` /
/// `free_gain` list them for the post-fractional tail.
struct Tables {
    order: Vec<usize>,
    nf_from: Vec<usize>,
    nf_pos: Vec<usize>,
    nf_cum_area: Vec<u64>,
    nf_cum_gain: Vec<u64>,
    free_cum_gain: Vec<u64>,
    free_pos: Vec<usize>,
    free_gain: Vec<u64>,
}

fn build_tables(cands: &[CiCandidate]) -> Tables {
    let order = ratio_order(cands);
    let n = order.len();
    let mut nf_from = vec![0usize; n + 1];
    let mut nf_cum_area = vec![0u64; 1];
    let mut nf_cum_gain = vec![0u64; 1];
    let mut free_cum_gain = vec![0u64; n + 1];
    let mut free_pos: Vec<usize> = Vec::new();
    let mut free_gain: Vec<u64> = Vec::new();
    for (p, &i) in order.iter().enumerate() {
        nf_from[p + 1] = nf_from[p];
        free_cum_gain[p + 1] = free_cum_gain[p];
        let c = &cands[i];
        if c.area == 0 {
            free_cum_gain[p + 1] += c.total_gain();
            free_pos.push(p);
            free_gain.push(c.total_gain());
        } else {
            nf_from[p + 1] += 1;
            nf_cum_area.push(nf_cum_area.last().unwrap() + c.area);
            nf_cum_gain.push(nf_cum_gain.last().unwrap() + c.total_gain());
        }
    }
    let nf_pos: Vec<usize> = order
        .iter()
        .enumerate()
        .filter(|&(_, &i)| cands[i].area > 0)
        .map(|(p, _)| p)
        .collect();
    Tables {
        order,
        nf_from,
        nf_pos,
        nf_cum_area,
        nf_cum_gain,
        free_cum_gain,
        free_pos,
        free_gain,
    }
}

/// Search-tree telemetry, outside `Selection` so the result equality
/// against `branch_and_bound_reference` is untouched.
#[derive(Default)]
struct BnbTelemetry {
    nodes: u64,
    pruned_bound: u64,
    incumbents: u64,
    depth_hist: rtise_obs::Hist,
}

/// A phase-1 node captured at the parallel frontier: the subtree root
/// state, the phase-1 incumbent at capture time (the cumulative fold of
/// all earlier phase-1 node entries, which seeds the subtree and anchors
/// the deterministic merge), and where in the phase-1 certificate log the
/// subtree's events splice in.
struct IseFrontierNode {
    area: u64,
    gain: u64,
    stack: Vec<usize>,
    pre_best: Selection,
    cert_pos: usize,
}

/// Everything one subtree search produced, merged by the caller in
/// subtree index order.
struct IseSubResult {
    best: Selection,
    tel: BnbTelemetry,
    events: Vec<IseCertEvent>,
    cert_dropped: u64,
    trace: Vec<rtise_trace::Event>,
    trace_dropped: u64,
}

/// The incumbent rule shared by search, merge, and replayer: better gain,
/// or equal gain at strictly smaller area.
fn improves(cur: &Selection, cand: &Selection) -> bool {
    cand.total_gain > cur.total_gain
        || (cand.total_gain == cur.total_gain && cand.total_area < cur.total_area)
}

struct Ctx<'a> {
    cands: &'a [CiCandidate],
    budget: u64,
    t: &'a Tables,
    best: Selection,
    stack: Vec<usize>,
    tel: BnbTelemetry,
    cert: Option<&'a mut rtise_obs::BoundedLog<IseCertEvent>>,
    /// Phase-1 mode of the decomposed parallel search: nodes reaching
    /// the given depth are captured (uncounted, eventless, no incumbent
    /// update — the subtree root replays the node entry itself) instead
    /// of expanded.
    frontier: Option<(usize, &'a mut Vec<IseFrontierNode>)>,
}

/// The fractional-knapsack bound from the prefix tables; bit-identical
/// to the reference linear scan (see [`branch_and_bound`] docs).
fn bound(ctx: &Ctx<'_>, depth: usize, area: u64, gain: u64) -> f64 {
    let room = ctx.budget - area;
    let s = ctx.t.nf_from[depth];
    let m = ctx.t.nf_cum_area.len() - 1;
    // Largest k such that the first k non-free candidates at or after
    // `depth` fit in `room` together (the greedy fill stops at the
    // first misfit and never resumes).
    let base = ctx.t.nf_cum_area[s];
    let k = ctx.t.nf_cum_area[s..=m].partition_point(|&ca| ca - base <= room) - 1;
    let fit_gain = ctx.t.nf_cum_gain[s + k] - ctx.t.nf_cum_gain[s];
    if s + k == m {
        // Everything fits: the whole bound is an exact integer sum.
        let total = gain + (ctx.t.free_cum_gain[ctx.t.order.len()] - ctx.t.free_cum_gain[depth]);
        return (total + fit_gain) as f64;
    }
    let t_pos = ctx.t.nf_pos[s + k];
    let int_part = gain + (ctx.t.free_cum_gain[t_pos] - ctx.t.free_cum_gain[depth]) + fit_gain;
    let rem = room - (ctx.t.nf_cum_area[s + k] - base);
    let c = &ctx.cands[ctx.t.order[t_pos]];
    let mut b = int_part as f64 + c.total_gain() as f64 * rem as f64 / c.area as f64;
    // Free candidates past the fractional position rounded one by one,
    // in order, exactly as the reference scan adds them.
    let f = ctx.t.free_pos.partition_point(|&p| p <= t_pos);
    for &g in &ctx.t.free_gain[f..] {
        b += g as f64;
    }
    b
}

fn dfs(ctx: &mut Ctx<'_>, depth: usize, area: u64, gain: u64) {
    if let Some((fd, nodes)) = &mut ctx.frontier {
        if depth == *fd {
            let cert_pos = ctx.cert.as_ref().map_or(0, |c| c.len());
            nodes.push(IseFrontierNode {
                area,
                gain,
                stack: ctx.stack.clone(),
                pre_best: ctx.best.clone(),
                cert_pos,
            });
            return;
        }
    }
    ctx.tel.nodes += 1;
    ctx.tel.depth_hist.observe(depth as u64);
    if gain > ctx.best.total_gain || (gain == ctx.best.total_gain && area < ctx.best.total_area) {
        let mut chosen = ctx.stack.clone();
        chosen.sort_unstable();
        ctx.best = Selection {
            chosen,
            total_gain: gain,
            total_area: area,
        };
        ctx.tel.incumbents += 1;
        if rtise_trace::enabled() {
            rtise_trace::instant_with(
                rtise_trace::codes::ISE_BNB_INCUMBENT,
                &[("depth", depth as u64), ("gain", gain)],
            );
        }
    }
    if depth == ctx.t.order.len() {
        return;
    }
    let b = bound(ctx, depth, area, gain);
    debug_assert_eq!(
        b.to_bits(),
        bound_by_scan(ctx.cands, &ctx.t.order, ctx.budget, depth, area, gain).to_bits(),
        "prefix-sum bound diverged from the reference scan at depth {depth}"
    );
    if b <= ctx.best.total_gain as f64 {
        ctx.tel.pruned_bound += 1;
        if let Some(cert) = &mut ctx.cert {
            cert.push(IseCertEvent::PruneBound);
        }
        if rtise_trace::enabled() {
            rtise_trace::instant_with(
                rtise_trace::codes::ISE_BNB_PRUNE_BOUND,
                &[("depth", depth as u64)],
            );
        }
        return;
    }
    let i = ctx.t.order[depth];
    let fits = area + ctx.cands[i].area <= ctx.budget;
    let conflict = ctx
        .stack
        .iter()
        .any(|&j| ctx.cands[j].conflicts_with(&ctx.cands[i]));
    let include = fits && !conflict && ctx.cands[i].total_gain() > 0;
    if let Some(cert) = &mut ctx.cert {
        cert.push(IseCertEvent::Expand { include });
    }
    if include {
        ctx.stack.push(i);
        dfs(
            ctx,
            depth + 1,
            area + ctx.cands[i].area,
            gain + ctx.cands[i].total_gain(),
        );
        ctx.stack.pop();
    }
    dfs(ctx, depth + 1, area, gain);
}

fn bnb_observed(
    cands: &[CiCandidate],
    budget: u64,
    threads: usize,
    cert: Option<&mut rtise_obs::BoundedLog<IseCertEvent>>,
) -> Selection {
    let depth = rtise_obs::par::sized_frontier_depth(PAR_FRONTIER_DEPTH, threads);
    bnb_observed_at_depth(cands, budget, threads, depth, cert)
}

fn bnb_observed_at_depth(
    cands: &[CiCandidate],
    budget: u64,
    threads: usize,
    depth: usize,
    cert: Option<&mut rtise_obs::BoundedLog<IseCertEvent>>,
) -> Selection {
    let _span = rtise_trace::span(rtise_trace::codes::ISE_BNB_SOLVE);
    let (best, tel) = if threads > 0 && cands.len() > depth {
        bnb_par(cands, budget, threads, depth, cert)
    } else {
        bnb_serial(cands, budget, cert)
    };
    rtise_obs::record("ise.bnb.solves", 1);
    rtise_obs::record("ise.bnb.nodes", tel.nodes);
    rtise_obs::record("ise.bnb.pruned_bound", tel.pruned_bound);
    rtise_obs::record("ise.bnb.incumbent_updates", tel.incumbents);
    rtise_obs::observe_hist("ise.bnb.depth", &tel.depth_hist);
    rtise_trace::summary(
        rtise_trace::codes::ISE_BNB_SUMMARY,
        &[
            ("nodes", tel.nodes),
            ("pruned_bound", tel.pruned_bound),
            ("incumbents", tel.incumbents),
        ],
    );
    best
}

fn bnb_serial(
    cands: &[CiCandidate],
    budget: u64,
    cert: Option<&mut rtise_obs::BoundedLog<IseCertEvent>>,
) -> (Selection, BnbTelemetry) {
    let t = build_tables(cands);
    let mut ctx = Ctx {
        cands,
        budget,
        t: &t,
        best: Selection::default(),
        stack: Vec::new(),
        tel: BnbTelemetry::default(),
        cert,
        frontier: None,
    };
    dfs(&mut ctx, 0, 0, 0);
    (ctx.best, ctx.tel)
}

/// The decomposed parallel search; same two-phase structure as
/// `rtise_ilp`'s (see its `solve_par_inner` docs), with one twist: this
/// search updates its incumbent at *every* node entry, so phase-1
/// entries interleave with subtree entries in preorder. Each frontier
/// node therefore snapshots the cumulative phase-1 incumbent at its
/// capture point (`pre_best`), and the merge folds
/// `pre_best_0, result_0, pre_best_1, result_1, …, final phase-1 best`
/// in that order — reproducing the replayer's preorder-first incumbent
/// exactly, ties included.
fn bnb_par(
    cands: &[CiCandidate],
    budget: u64,
    threads: usize,
    depth: usize,
    cert: Option<&mut rtise_obs::BoundedLog<IseCertEvent>>,
) -> (Selection, BnbTelemetry) {
    let t = build_tables(cands);
    let want_cert = cert.is_some();
    let cap = cert.as_ref().map_or(0, |log| log.cap());

    // Phase 1: serial walk truncated at the frontier.
    let mut frontier: Vec<IseFrontierNode> = Vec::new();
    let mut ph_log = want_cert.then(|| rtise_obs::BoundedLog::new(usize::MAX));
    let (ph_best, ph_tel) = {
        let mut ctx = Ctx {
            cands,
            budget,
            t: &t,
            best: Selection::default(),
            stack: Vec::new(),
            tel: BnbTelemetry::default(),
            cert: ph_log.as_mut(),
            frontier: Some((depth, &mut frontier)),
        };
        dfs(&mut ctx, 0, 0, 0);
        (ctx.best, ctx.tel)
    };
    let ph_events = ph_log.map_or(Vec::new(), |log| log.into_parts().0);

    // Phase 2: independent subtree searches on the deterministic
    // scheduler, each seeded with the strongest incumbent among its
    // phase-1 snapshot, subtree 0's warm-start result, and its
    // completed-prefix window. Subtree 0 runs serially first: it is the
    // preorder-earliest region, so its best seeds every later subtree —
    // without it the first `WINDOW` subtrees would search with only
    // their phase-1 snapshots and can explosively overexpand — and
    // remains a valid prune justification under the replayer's preorder
    // incumbent.
    let trace_on = rtise_trace::enabled();
    let run_subtree = |node: &IseFrontierNode, seed: Selection| {
        let scope = trace_on.then(|| rtise_trace::TraceScope::new(rtise_trace::Clock::Virtual));
        let mut log = want_cert.then(|| rtise_obs::BoundedLog::new(cap));
        let mut ctx = Ctx {
            cands,
            budget,
            t: &t,
            best: seed,
            stack: node.stack.clone(),
            tel: BnbTelemetry::default(),
            cert: log.as_mut(),
            frontier: None,
        };
        {
            let _isolated = trace_on.then(rtise_trace::isolate);
            let _active = scope.as_ref().map(rtise_trace::TraceScope::enter);
            dfs(&mut ctx, depth, node.area, node.gain);
        }
        let Ctx { best, tel, .. } = ctx;
        let (events, cert_dropped) = log.map_or((Vec::new(), 0), rtise_obs::BoundedLog::into_parts);
        IseSubResult {
            best,
            tel,
            events,
            cert_dropped,
            trace: scope
                .as_ref()
                .map_or_else(Vec::new, rtise_trace::TraceScope::events),
            trace_dropped: scope.as_ref().map_or(0, rtise_trace::TraceScope::dropped),
        }
    };
    let first = frontier
        .first()
        .map(|node| run_subtree(node, node.pre_best.clone()));
    let rest: Vec<IseSubResult> = rtise_obs::par::run_ordered(
        frontier.get(1..).unwrap_or(&[]),
        threads,
        |_, node, prefix: rtise_obs::par::Completed<'_, IseSubResult>| {
            let mut seed = node.pre_best.clone();
            for r in
                std::iter::once(first.as_ref().expect("frontier is non-empty")).chain(prefix.iter())
            {
                if improves(&seed, &r.best) {
                    seed = r.best.clone();
                }
            }
            run_subtree(node, seed)
        },
    );
    let results: Vec<IseSubResult> = first.into_iter().chain(rest).collect();

    // Merge, all in subtree index order.
    let mut tel = ph_tel;
    let mut best = Selection::default();
    for (node, r) in frontier.iter().zip(&results) {
        if improves(&best, &node.pre_best) {
            best = node.pre_best.clone();
        }
        if improves(&best, &r.best) {
            best = r.best.clone();
        }
        tel.nodes += r.tel.nodes;
        tel.pruned_bound += r.tel.pruned_bound;
        tel.incumbents += r.tel.incumbents;
        tel.depth_hist.merge(&r.tel.depth_hist);
    }
    if improves(&best, &ph_best) {
        best = ph_best;
    }
    if trace_on {
        for r in &results {
            rtise_trace::replay(&r.trace, r.trace_dropped);
        }
    }
    if let Some(log) = cert {
        let mut prev = 0;
        for (node, r) in frontier.iter().zip(&results) {
            for &e in &ph_events[prev..node.cert_pos] {
                log.push(e);
            }
            prev = node.cert_pos;
            for &e in &r.events {
                log.push(e);
            }
            log.add_dropped(r.cert_dropped);
        }
        for &e in &ph_events[prev..] {
            log.push(e);
        }
    }
    (best, tel)
}

/// The reference fractional bound: a linear scan over the remaining
/// candidates, ignoring conflicts. The optimized [`branch_and_bound`]
/// asserts bit-equality against this in debug builds.
fn bound_by_scan(
    cands: &[CiCandidate],
    order: &[usize],
    budget: u64,
    depth: usize,
    area: u64,
    gain: u64,
) -> f64 {
    let mut b = gain as f64;
    let mut room = budget - area;
    let mut fractional_used = false;
    for &i in &order[depth..] {
        let c = &cands[i];
        if c.area == 0 {
            // Free candidates always fit, regardless of where the greedy
            // fill stopped.
            b += c.total_gain() as f64;
        } else if !fractional_used {
            if c.area <= room {
                room -= c.area;
                b += c.total_gain() as f64;
            } else {
                b += c.total_gain() as f64 * room as f64 / c.area as f64;
                fractional_used = true;
            }
        }
    }
    b
}

/// The original branch-and-bound that recomputes the fractional bound by
/// scanning the whole remaining suffix at every node. Kept callable so
/// differential tests and benchmarks can compare the prefix-sum bound
/// against it.
#[doc(hidden)]
pub fn branch_and_bound_reference(cands: &[CiCandidate], budget: u64) -> Selection {
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        let ga = cands[a].total_gain() as u128 * cands[b].area.max(1) as u128;
        let gb = cands[b].total_gain() as u128 * cands[a].area.max(1) as u128;
        gb.cmp(&ga)
    });

    struct Ctx<'a> {
        cands: &'a [CiCandidate],
        order: &'a [usize],
        budget: u64,
        best: Selection,
        stack: Vec<usize>,
    }

    fn dfs(ctx: &mut Ctx<'_>, depth: usize, area: u64, gain: u64) {
        if gain > ctx.best.total_gain || (gain == ctx.best.total_gain && area < ctx.best.total_area)
        {
            let mut chosen = ctx.stack.clone();
            chosen.sort_unstable();
            ctx.best = Selection {
                chosen,
                total_gain: gain,
                total_area: area,
            };
        }
        if depth == ctx.order.len() {
            return;
        }
        if bound_by_scan(ctx.cands, ctx.order, ctx.budget, depth, area, gain)
            <= ctx.best.total_gain as f64
        {
            return;
        }
        let i = ctx.order[depth];
        let fits = area + ctx.cands[i].area <= ctx.budget;
        let conflict = ctx
            .stack
            .iter()
            .any(|&j| ctx.cands[j].conflicts_with(&ctx.cands[i]));
        if fits && !conflict && ctx.cands[i].total_gain() > 0 {
            ctx.stack.push(i);
            dfs(
                ctx,
                depth + 1,
                area + ctx.cands[i].area,
                gain + ctx.cands[i].total_gain(),
            );
            ctx.stack.pop();
        }
        dfs(ctx, depth + 1, area, gain);
    }

    let mut ctx = Ctx {
        cands,
        order: &order,
        budget,
        best: Selection::default(),
        stack: Vec::new(),
    };
    dfs(&mut ctx, 0, 0, 0);
    ctx.best
}

/// The Iterative Selection (IS) baseline \[81\]: per iteration, commit the
/// single remaining candidate with maximum total gain (ties to smaller
/// area), then discard all candidates overlapping it; stop when the budget
/// or library is exhausted.
///
/// Returns the selection *and* the per-iteration prefix gains, which the
/// Chapter 5 speedup-vs-analysis-time comparison plots.
pub fn iterative_selection(cands: &[CiCandidate], budget: u64) -> (Selection, Vec<u64>) {
    let mut alive: Vec<bool> = cands.iter().map(|c| c.total_gain() > 0).collect();
    let mut chosen = Vec::new();
    let mut area = 0u64;
    let mut gains = Vec::new();
    let mut gain = 0u64;
    loop {
        let next = (0..cands.len())
            .filter(|&i| alive[i] && area + cands[i].area <= budget)
            .max_by(|&a, &b| {
                cands[a]
                    .total_gain()
                    .cmp(&cands[b].total_gain())
                    .then(cands[b].area.cmp(&cands[a].area))
            });
        let Some(i) = next else { break };
        alive[i] = false;
        for (j, a) in alive.iter_mut().enumerate() {
            if *a && cands[j].conflicts_with(&cands[i]) {
                *a = false;
            }
        }
        area += cands[i].area;
        gain += cands[i].total_gain();
        chosen.push(i);
        gains.push(gain);
    }
    chosen.sort_unstable();
    (Selection::from_indices(cands, chosen), gains)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ir::cfg::BlockId;
    use rtise_ir::nodeset::NodeSet;

    /// A synthetic candidate covering `nodes` of `block` in a 64-node DFG.
    fn cand(block: usize, nodes: &[usize], area: u64, gain: u64, freq: u64) -> CiCandidate {
        let mut set = NodeSet::with_capacity(64);
        for &n in nodes {
            set.insert(rtise_ir::dfg::NodeId(n));
        }
        CiCandidate {
            block: BlockId(block),
            nodes: set,
            area,
            hw_cycles: 1,
            sw_cycles: 1 + gain,
            exec_count: freq,
        }
    }

    #[test]
    fn greedy_prefers_ratio() {
        let cands = vec![
            cand(0, &[0], 10, 5, 1), // ratio 0.5
            cand(0, &[1], 2, 3, 1),  // ratio 1.5
            cand(0, &[2], 4, 4, 1),  // ratio 1.0
        ];
        let s = greedy_by_ratio(&cands, 6);
        assert_eq!(s.chosen, vec![1, 2]);
        assert_eq!(s.total_gain, 7);
        assert!(s.is_valid(&cands, 6));
    }

    #[test]
    fn greedy_skips_conflicts() {
        let cands = vec![
            cand(0, &[0, 1], 2, 10, 1),
            cand(0, &[1, 2], 2, 9, 1), // overlaps the first
            cand(0, &[3], 2, 1, 1),
        ];
        let s = greedy_by_ratio(&cands, 10);
        assert_eq!(s.chosen, vec![0, 2]);
    }

    #[test]
    fn bnb_beats_greedy_on_knapsack_trap() {
        // Greedy takes the high-ratio small item and misses the optimum.
        let cands = vec![
            cand(0, &[0], 6, 10, 1), // ratio 1.67
            cand(0, &[1], 5, 8, 1),  // ratio 1.6
            cand(0, &[2], 5, 8, 1),  // ratio 1.6
        ];
        let g = greedy_by_ratio(&cands, 10);
        let e = branch_and_bound(&cands, 10);
        assert_eq!(g.total_gain, 10);
        assert_eq!(e.total_gain, 16);
        assert!(e.is_valid(&cands, 10));
    }

    #[test]
    fn bnb_respects_conflicts() {
        let cands = vec![
            cand(0, &[0, 1], 1, 10, 1),
            cand(0, &[1, 2], 1, 10, 1),
            cand(0, &[2, 3], 1, 10, 1),
        ];
        let e = branch_and_bound(&cands, 100);
        // Candidates 0 and 2 are disjoint; 1 conflicts with both.
        assert_eq!(e.chosen, vec![0, 2]);
        assert_eq!(e.total_gain, 20);
    }

    #[test]
    fn zero_budget_selects_only_free_candidates() {
        let cands = vec![cand(0, &[0], 0, 2, 1), cand(0, &[1], 1, 50, 1)];
        let s = branch_and_bound(&cands, 0);
        assert_eq!(s.chosen, vec![0]);
        assert_eq!(greedy_by_ratio(&cands, 0).chosen, vec![0]);
    }

    #[test]
    fn iterative_selection_reports_prefix_gains() {
        let cands = vec![
            cand(0, &[0, 1], 4, 10, 1),
            cand(0, &[2], 1, 6, 1),
            cand(0, &[1, 2], 1, 9, 1), // conflicts with both above
        ];
        let (s, gains) = iterative_selection(&cands, 100);
        assert_eq!(s.chosen, vec![0, 1]);
        assert_eq!(gains, vec![10, 16]);
        assert!(s.is_valid(&cands, 100));
    }

    #[test]
    fn all_selectors_agree_on_independent_items_with_large_budget() {
        let cands: Vec<CiCandidate> = (0..6)
            .map(|i| cand(i, &[0], 2, (i + 1) as u64, 1))
            .collect();
        let g = greedy_by_ratio(&cands, 100);
        let e = branch_and_bound(&cands, 100);
        let (is, _) = iterative_selection(&cands, 100);
        assert_eq!(g.total_gain, 21);
        assert_eq!(e.total_gain, 21);
        assert_eq!(is.total_gain, 21);
    }

    #[test]
    fn prefix_sum_bound_matches_reference_search_exactly() {
        use rtise_obs::Rng;
        let mut rng = Rng::new(0xB0B);
        for case in 0..120 {
            let n = rng.gen_range(1..=14usize);
            let cands: Vec<CiCandidate> = (0..n)
                .map(|i| {
                    let lo = rng.gen_range(0..12usize);
                    let hi = lo + rng.gen_range(1..=4usize);
                    let nodes: Vec<usize> = (lo..hi).collect();
                    // Zero areas exercise the free-candidate tail of the
                    // bound; repeated ratios exercise ordering ties.
                    let area = rng.gen_range(0..9u64);
                    let gain = rng.gen_range(0..20u64);
                    cand(i % 3, &nodes, area, gain, rng.gen_range(1..4u64))
                })
                .collect();
            let budget = rng.gen_range(0..30u64);
            // Identical chosen indices, not just the optimum: the
            // prefix-sum bound must reproduce the reference search tree.
            assert_eq!(
                branch_and_bound(&cands, budget),
                branch_and_bound_reference(&cands, budget),
                "case {case}"
            );
        }
    }

    #[test]
    fn bnb_matches_exhaustive_on_random_instances() {
        use rtise_obs::Rng;
        let mut rng = Rng::new(17);
        for case in 0..40 {
            let n = rng.gen_range(1..=10usize);
            let cands: Vec<CiCandidate> = (0..n)
                .map(|i| {
                    let lo = rng.gen_range(0..8usize);
                    let hi = lo + rng.gen_range(1..=3usize);
                    let nodes: Vec<usize> = (lo..hi).collect();
                    let block = i % 2;
                    let area = (i as u64 * 7 + 3) % 10;
                    let gain = (i as u64 * 5 + 1) % 15;
                    cand(block, &nodes, area, gain, 1)
                })
                .collect();
            let budget = rng.gen_range(0..25u64);
            let e = branch_and_bound(&cands, budget);
            // Exhaustive reference.
            let mut best = 0u64;
            for mask in 0u32..(1 << n) {
                let chosen: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
                let sel = Selection {
                    total_gain: chosen.iter().map(|&i| cands[i].total_gain()).sum(),
                    total_area: chosen.iter().map(|&i| cands[i].area).sum(),
                    chosen,
                };
                if sel.is_valid(&cands, budget) {
                    best = best.max(sel.total_gain);
                }
            }
            assert_eq!(e.total_gain, best, "case {case}");
        }
    }

    /// Random libraries deep enough (`n > PAR_FRONTIER_DEPTH`) that the
    /// decomposed parallel search actually engages.
    fn random_deep_library(rng: &mut rtise_obs::Rng) -> (Vec<CiCandidate>, u64) {
        let n = rng.gen_range(7..=12usize);
        let cands: Vec<CiCandidate> = (0..n)
            .map(|i| {
                let lo = rng.gen_range(0..12usize);
                let hi = lo + rng.gen_range(1..=4usize);
                let nodes: Vec<usize> = (lo..hi).collect();
                cand(
                    i % 3,
                    &nodes,
                    rng.gen_range(0..9u64),
                    rng.gen_range(0..20u64),
                    rng.gen_range(1..4u64),
                )
            })
            .collect();
        (cands, rng.gen_range(0..30u64))
    }

    /// The parallel search proves the same optimal gain. Its area may be
    /// *smaller* on gain ties: the serial prune rule only protects gain,
    /// so the less-pruned parallel tree can visit an equal-gain
    /// smaller-area node the serial search cut — never a worse one.
    #[test]
    fn parallel_selection_matches_serial_optimum() {
        let mut rng = rtise_obs::Rng::new(0x15e_9a11);
        for case in 0..60 {
            let (cands, budget) = random_deep_library(&mut rng);
            let s = branch_and_bound(&cands, budget);
            let p = branch_and_bound_par(&cands, budget, 4);
            assert_eq!(s.total_gain, p.total_gain, "case {case}");
            assert!(p.total_area <= s.total_area, "case {case}");
            assert!(p.is_valid(&cands, budget), "case {case}");
        }
    }

    /// Selection and certificate are identical at every thread count for
    /// a fixed frontier depth — checked at each depth the adaptive
    /// sizing picks for 1, 2, and 4 workers. (At *different* depths the
    /// search tree legitimately differs; the optimum still matches, per
    /// `parallel_selection_matches_serial_optimum`.)
    #[test]
    fn parallel_output_is_identical_at_any_thread_count() {
        let mut rng = rtise_obs::Rng::new(0x15e_7a11);
        for case in 0..30 {
            let (cands, budget) = random_deep_library(&mut rng);
            for sized_for in [1usize, 2, 4] {
                let depth = rtise_obs::par::frontier_depth(PAR_FRONTIER_DEPTH, sized_for);
                let base = branch_and_bound_par_with_cert_at_depth(&cands, budget, 1, depth);
                for threads in [2, 4, 7] {
                    assert_eq!(
                        base,
                        branch_and_bound_par_with_cert_at_depth(&cands, budget, threads, depth),
                        "case {case} depth {depth} threads {threads}"
                    );
                }
            }
        }
    }

    /// Libraries with no frontier fall back to the serial search,
    /// byte-for-byte.
    #[test]
    fn parallel_falls_back_on_small_libraries() {
        let cands = vec![
            cand(0, &[0], 6, 10, 1),
            cand(0, &[1], 5, 8, 1),
            cand(0, &[2], 5, 8, 1),
        ];
        assert_eq!(
            branch_and_bound_par(&cands, 10, 4),
            branch_and_bound(&cands, 10)
        );
        assert_eq!(
            branch_and_bound_par_with_cert(&cands, 10, 4),
            branch_and_bound_with_cert(&cands, 10)
        );
    }
}

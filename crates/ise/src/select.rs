//! Custom-instruction selection under an area budget.
//!
//! Given a candidate library, selection picks a pairwise non-overlapping
//! subset maximizing total profiled gain subject to `Σ area ≤ budget`
//! (§2.3.2). Three algorithms:
//!
//! * [`greedy_by_ratio`] — the classic gain/area priority heuristic;
//! * [`branch_and_bound`] — exact search with fractional-knapsack bounding,
//!   for modest candidate counts (the optimum the heuristics are judged
//!   against);
//! * [`iterative_selection`] — the IS baseline of Pozzi et al. \[81\] used in
//!   the Chapter 5 comparison: repeatedly commit the single best remaining
//!   candidate and discard everything overlapping it.

use crate::candidate::CiCandidate;

/// A selection outcome: indices into the candidate slice plus totals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Selection {
    /// Indices of chosen candidates (into the input slice).
    pub chosen: Vec<usize>,
    /// Total cycles saved.
    pub total_gain: u64,
    /// Total area consumed, in cells.
    pub total_area: u64,
}

impl Selection {
    fn from_indices(cands: &[CiCandidate], chosen: Vec<usize>) -> Self {
        let total_gain = chosen.iter().map(|&i| cands[i].total_gain()).sum();
        let total_area = chosen.iter().map(|&i| cands[i].area).sum();
        Selection {
            chosen,
            total_gain,
            total_area,
        }
    }

    /// Whether the selection is pairwise conflict-free and within `budget`.
    pub fn is_valid(&self, cands: &[CiCandidate], budget: u64) -> bool {
        if self.total_area > budget {
            return false;
        }
        for (i, &a) in self.chosen.iter().enumerate() {
            for &b in &self.chosen[i + 1..] {
                if cands[a].conflicts_with(&cands[b]) {
                    return false;
                }
            }
        }
        true
    }
}

/// Greedy selection by descending gain/area ratio.
///
/// Zero-area candidates (pure logic folded into existing cells) rank first.
/// Candidates conflicting with an already-chosen one are skipped.
pub fn greedy_by_ratio(cands: &[CiCandidate], budget: u64) -> Selection {
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        // gain_a/area_a > gain_b/area_b  <=>  gain_a*area_b > gain_b*area_a
        let ga = cands[a].total_gain() as u128 * cands[b].area.max(1) as u128;
        let gb = cands[b].total_gain() as u128 * cands[a].area.max(1) as u128;
        gb.cmp(&ga).then(cands[a].area.cmp(&cands[b].area))
    });
    let mut chosen: Vec<usize> = Vec::new();
    let mut area = 0u64;
    for i in order {
        let c = &cands[i];
        if c.total_gain() == 0 || area + c.area > budget {
            continue;
        }
        if chosen.iter().any(|&j| cands[j].conflicts_with(c)) {
            continue;
        }
        area += c.area;
        chosen.push(i);
    }
    chosen.sort_unstable();
    Selection::from_indices(cands, chosen)
}

/// Exact selection by branch-and-bound with a fractional-knapsack upper
/// bound.
///
/// Exponential in the worst case; intended for candidate libraries up to a
/// few dozen entries (the optimality reference in tests and the Chapter 3
/// per-task configuration generator at fine granularity).
pub fn branch_and_bound(cands: &[CiCandidate], budget: u64) -> Selection {
    // Order by ratio so the fractional bound is tight.
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        let ga = cands[a].total_gain() as u128 * cands[b].area.max(1) as u128;
        let gb = cands[b].total_gain() as u128 * cands[a].area.max(1) as u128;
        gb.cmp(&ga)
    });

    struct Ctx<'a> {
        cands: &'a [CiCandidate],
        order: &'a [usize],
        budget: u64,
        best: Selection,
        stack: Vec<usize>,
    }

    /// Optimistic bound: fractional knapsack over the remaining candidates,
    /// ignoring conflicts.
    fn bound(ctx: &Ctx<'_>, depth: usize, area: u64, gain: u64) -> f64 {
        let mut b = gain as f64;
        let mut room = ctx.budget - area;
        let mut fractional_used = false;
        for &i in &ctx.order[depth..] {
            let c = &ctx.cands[i];
            if c.area == 0 {
                // Free candidates always fit, regardless of where the
                // greedy fill stopped.
                b += c.total_gain() as f64;
            } else if !fractional_used {
                if c.area <= room {
                    room -= c.area;
                    b += c.total_gain() as f64;
                } else {
                    b += c.total_gain() as f64 * room as f64 / c.area as f64;
                    fractional_used = true;
                }
            }
        }
        b
    }

    fn dfs(ctx: &mut Ctx<'_>, depth: usize, area: u64, gain: u64) {
        if gain > ctx.best.total_gain || (gain == ctx.best.total_gain && area < ctx.best.total_area)
        {
            let mut chosen = ctx.stack.clone();
            chosen.sort_unstable();
            ctx.best = Selection {
                chosen,
                total_gain: gain,
                total_area: area,
            };
        }
        if depth == ctx.order.len() {
            return;
        }
        if bound(ctx, depth, area, gain) <= ctx.best.total_gain as f64 {
            return;
        }
        let i = ctx.order[depth];
        let fits = area + ctx.cands[i].area <= ctx.budget;
        let conflict = ctx
            .stack
            .iter()
            .any(|&j| ctx.cands[j].conflicts_with(&ctx.cands[i]));
        if fits && !conflict && ctx.cands[i].total_gain() > 0 {
            ctx.stack.push(i);
            dfs(
                ctx,
                depth + 1,
                area + ctx.cands[i].area,
                gain + ctx.cands[i].total_gain(),
            );
            ctx.stack.pop();
        }
        dfs(ctx, depth + 1, area, gain);
    }

    let mut ctx = Ctx {
        cands,
        order: &order,
        budget,
        best: Selection::default(),
        stack: Vec::new(),
    };
    dfs(&mut ctx, 0, 0, 0);
    ctx.best
}

/// The Iterative Selection (IS) baseline \[81\]: per iteration, commit the
/// single remaining candidate with maximum total gain (ties to smaller
/// area), then discard all candidates overlapping it; stop when the budget
/// or library is exhausted.
///
/// Returns the selection *and* the per-iteration prefix gains, which the
/// Chapter 5 speedup-vs-analysis-time comparison plots.
pub fn iterative_selection(cands: &[CiCandidate], budget: u64) -> (Selection, Vec<u64>) {
    let mut alive: Vec<bool> = cands.iter().map(|c| c.total_gain() > 0).collect();
    let mut chosen = Vec::new();
    let mut area = 0u64;
    let mut gains = Vec::new();
    let mut gain = 0u64;
    loop {
        let next = (0..cands.len())
            .filter(|&i| alive[i] && area + cands[i].area <= budget)
            .max_by(|&a, &b| {
                cands[a]
                    .total_gain()
                    .cmp(&cands[b].total_gain())
                    .then(cands[b].area.cmp(&cands[a].area))
            });
        let Some(i) = next else { break };
        alive[i] = false;
        for (j, a) in alive.iter_mut().enumerate() {
            if *a && cands[j].conflicts_with(&cands[i]) {
                *a = false;
            }
        }
        area += cands[i].area;
        gain += cands[i].total_gain();
        chosen.push(i);
        gains.push(gain);
    }
    chosen.sort_unstable();
    (Selection::from_indices(cands, chosen), gains)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ir::cfg::BlockId;
    use rtise_ir::nodeset::NodeSet;

    /// A synthetic candidate covering `nodes` of `block` in a 64-node DFG.
    fn cand(block: usize, nodes: &[usize], area: u64, gain: u64, freq: u64) -> CiCandidate {
        let mut set = NodeSet::with_capacity(64);
        for &n in nodes {
            set.insert(rtise_ir::dfg::NodeId(n));
        }
        CiCandidate {
            block: BlockId(block),
            nodes: set,
            area,
            hw_cycles: 1,
            sw_cycles: 1 + gain,
            exec_count: freq,
        }
    }

    #[test]
    fn greedy_prefers_ratio() {
        let cands = vec![
            cand(0, &[0], 10, 5, 1), // ratio 0.5
            cand(0, &[1], 2, 3, 1),  // ratio 1.5
            cand(0, &[2], 4, 4, 1),  // ratio 1.0
        ];
        let s = greedy_by_ratio(&cands, 6);
        assert_eq!(s.chosen, vec![1, 2]);
        assert_eq!(s.total_gain, 7);
        assert!(s.is_valid(&cands, 6));
    }

    #[test]
    fn greedy_skips_conflicts() {
        let cands = vec![
            cand(0, &[0, 1], 2, 10, 1),
            cand(0, &[1, 2], 2, 9, 1), // overlaps the first
            cand(0, &[3], 2, 1, 1),
        ];
        let s = greedy_by_ratio(&cands, 10);
        assert_eq!(s.chosen, vec![0, 2]);
    }

    #[test]
    fn bnb_beats_greedy_on_knapsack_trap() {
        // Greedy takes the high-ratio small item and misses the optimum.
        let cands = vec![
            cand(0, &[0], 6, 10, 1), // ratio 1.67
            cand(0, &[1], 5, 8, 1),  // ratio 1.6
            cand(0, &[2], 5, 8, 1),  // ratio 1.6
        ];
        let g = greedy_by_ratio(&cands, 10);
        let e = branch_and_bound(&cands, 10);
        assert_eq!(g.total_gain, 10);
        assert_eq!(e.total_gain, 16);
        assert!(e.is_valid(&cands, 10));
    }

    #[test]
    fn bnb_respects_conflicts() {
        let cands = vec![
            cand(0, &[0, 1], 1, 10, 1),
            cand(0, &[1, 2], 1, 10, 1),
            cand(0, &[2, 3], 1, 10, 1),
        ];
        let e = branch_and_bound(&cands, 100);
        // Candidates 0 and 2 are disjoint; 1 conflicts with both.
        assert_eq!(e.chosen, vec![0, 2]);
        assert_eq!(e.total_gain, 20);
    }

    #[test]
    fn zero_budget_selects_only_free_candidates() {
        let cands = vec![cand(0, &[0], 0, 2, 1), cand(0, &[1], 1, 50, 1)];
        let s = branch_and_bound(&cands, 0);
        assert_eq!(s.chosen, vec![0]);
        assert_eq!(greedy_by_ratio(&cands, 0).chosen, vec![0]);
    }

    #[test]
    fn iterative_selection_reports_prefix_gains() {
        let cands = vec![
            cand(0, &[0, 1], 4, 10, 1),
            cand(0, &[2], 1, 6, 1),
            cand(0, &[1, 2], 1, 9, 1), // conflicts with both above
        ];
        let (s, gains) = iterative_selection(&cands, 100);
        assert_eq!(s.chosen, vec![0, 1]);
        assert_eq!(gains, vec![10, 16]);
        assert!(s.is_valid(&cands, 100));
    }

    #[test]
    fn all_selectors_agree_on_independent_items_with_large_budget() {
        let cands: Vec<CiCandidate> = (0..6)
            .map(|i| cand(i, &[0], 2, (i + 1) as u64, 1))
            .collect();
        let g = greedy_by_ratio(&cands, 100);
        let e = branch_and_bound(&cands, 100);
        let (is, _) = iterative_selection(&cands, 100);
        assert_eq!(g.total_gain, 21);
        assert_eq!(e.total_gain, 21);
        assert_eq!(is.total_gain, 21);
    }

    #[test]
    fn bnb_matches_exhaustive_on_random_instances() {
        use rtise_obs::Rng;
        let mut rng = Rng::new(17);
        for case in 0..40 {
            let n = rng.gen_range(1..=10usize);
            let cands: Vec<CiCandidate> = (0..n)
                .map(|i| {
                    let lo = rng.gen_range(0..8usize);
                    let hi = lo + rng.gen_range(1..=3usize);
                    let nodes: Vec<usize> = (lo..hi).collect();
                    let block = i % 2;
                    let area = (i as u64 * 7 + 3) % 10;
                    let gain = (i as u64 * 5 + 1) % 15;
                    cand(block, &nodes, area, gain, 1)
                })
                .collect();
            let budget = rng.gen_range(0..25u64);
            let e = branch_and_bound(&cands, budget);
            // Exhaustive reference.
            let mut best = 0u64;
            for mask in 0u32..(1 << n) {
                let chosen: Vec<usize> = (0..n).filter(|i| mask >> i & 1 == 1).collect();
                let sel = Selection {
                    total_gain: chosen.iter().map(|&i| cands[i].total_gain()).sum(),
                    total_area: chosen.iter().map(|&i| cands[i].area).sum(),
                    chosen,
                };
                if sel.is_valid(&cands, budget) {
                    best = best.max(sel.total_gain);
                }
            }
            assert_eq!(e.total_gain, best, "case {case}");
        }
    }
}

//! Profiled, costed custom-instruction candidates.
//!
//! A [`CiCandidate`] couples a feasible subgraph with everything selection
//! needs: its silicon area, hardware cycles, software cycles, and the
//! execution frequency of its basic block (from profiling or WCET counts).

use crate::enumerate::{enumerate_connected, maximal_miso, EnumerateOptions};
use rtise_ir::cfg::{BlockId, Program};
use rtise_ir::hw::HwModel;
use rtise_ir::nodeset::NodeSet;

/// A costed candidate custom instruction in one basic block.
#[derive(Debug, Clone)]
pub struct CiCandidate {
    /// The basic block the subgraph lives in.
    pub block: BlockId,
    /// Covered nodes of that block's DFG.
    pub nodes: NodeSet,
    /// Silicon area in cells.
    pub area: u64,
    /// Execution cycles as a custom instruction.
    pub hw_cycles: u64,
    /// Software cycles of the covered operations.
    pub sw_cycles: u64,
    /// Execution count of the block (profile frequency or WCET count).
    pub exec_count: u64,
}

impl CiCandidate {
    /// Cycles saved per block execution.
    pub fn gain_per_exec(&self) -> u64 {
        self.sw_cycles.saturating_sub(self.hw_cycles)
    }

    /// Total cycles saved over the whole run: `gain_per_exec × exec_count`
    /// (the benefit definition of §2.3.2).
    pub fn total_gain(&self) -> u64 {
        self.gain_per_exec() * self.exec_count
    }

    /// Whether this candidate overlaps `other` (same block, shared nodes) —
    /// overlapping candidates may not be selected together because a base
    /// operation is covered by at most one custom instruction.
    pub fn conflicts_with(&self, other: &CiCandidate) -> bool {
        self.block == other.block && self.nodes.intersects(&other.nodes)
    }
}

/// Options for [`harvest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarvestOptions {
    /// Enumeration parameters (ports, caps).
    pub enumerate: EnumerateOptions,
    /// Keep only the `top_per_block` best candidates (by total gain) in each
    /// block, pruning the long tail of near-duplicates.
    pub top_per_block: usize,
    /// Skip blocks whose execution count is below this threshold (cold
    /// code; the ≥1 %-of-execution-time rule of §6.1 maps here).
    pub min_exec_count: u64,
}

impl Default for HarvestOptions {
    fn default() -> Self {
        HarvestOptions {
            enumerate: EnumerateOptions::default(),
            top_per_block: 40,
            min_exec_count: 1,
        }
    }
}

/// Enumerates and costs candidates for every profiled block of `program`.
///
/// `exec_counts[b]` is the execution count of block `b` (from
/// [`rtise_sim::RunResult::block_counts`] or
/// [`rtise_ir::wcet::WcetReport::counts`]). Candidates with zero gain are
/// dropped; each block keeps its `top_per_block` best by total gain, ties
/// broken toward smaller area.
///
/// # Panics
///
/// Panics if `exec_counts.len()` does not match the block count.
pub fn harvest(
    program: &Program,
    exec_counts: &[u64],
    hw: &HwModel,
    opts: HarvestOptions,
) -> Vec<CiCandidate> {
    assert_eq!(
        exec_counts.len(),
        program.blocks.len(),
        "profile length mismatch"
    );
    let mut out = Vec::new();
    for block in program.block_ids() {
        let count = exec_counts[block.0];
        if count < opts.min_exec_count {
            continue;
        }
        let dfg = &program.block(block).dfg;
        let mut sets = enumerate_connected(dfg, opts.enumerate);
        for miso in maximal_miso(dfg) {
            if dfg
                .io_counts(&miso)
                .fits(opts.enumerate.max_in, opts.enumerate.max_out)
                && !sets.contains(&miso)
            {
                sets.push(miso);
            }
        }
        let mut cands: Vec<CiCandidate> = sets
            .into_iter()
            .map(|nodes| CiCandidate {
                block,
                area: hw.ci_area(dfg, &nodes),
                hw_cycles: hw.ci_cycles(dfg, &nodes),
                sw_cycles: dfg.sw_latency(&nodes),
                exec_count: count,
                nodes,
            })
            .filter(|c| c.gain_per_exec() > 0)
            .collect();
        cands.sort_by(|a, b| {
            b.total_gain()
                .cmp(&a.total_gain())
                .then(a.area.cmp(&b.area))
        });
        cands.truncate(opts.top_per_block);
        out.extend(cands);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ir::cfg::{BasicBlock, Terminator};
    use rtise_ir::dfg::Dfg;
    use rtise_ir::op::OpKind;

    fn one_block_program(ops: usize) -> Program {
        let mut dfg = Dfg::new();
        let mut v = dfg.input(0);
        let w = dfg.input(1);
        for i in 0..ops {
            let k = match i % 3 {
                0 => OpKind::Add,
                1 => OpKind::Xor,
                _ => OpKind::Mul,
            };
            v = dfg.bin(k, v, w);
        }
        dfg.output(0, v);
        let mut p = Program::new("t", 2, 0);
        p.add_block(BasicBlock {
            name: "b".into(),
            dfg,
            terminator: Terminator::Return,
        });
        p
    }

    #[test]
    fn harvest_yields_profitable_feasible_candidates() {
        let p = one_block_program(8);
        let hw = HwModel::default();
        let cands = harvest(&p, &[1000], &hw, HarvestOptions::default());
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.gain_per_exec() > 0);
            assert_eq!(c.total_gain(), c.gain_per_exec() * 1000);
            let dfg = &p.block(c.block).dfg;
            assert!(dfg.is_feasible_ci(&c.nodes, 4, 2));
            assert_eq!(c.area, hw.ci_area(dfg, &c.nodes));
        }
    }

    #[test]
    fn cold_blocks_are_skipped() {
        let p = one_block_program(8);
        let hw = HwModel::default();
        let opts = HarvestOptions {
            min_exec_count: 10,
            ..HarvestOptions::default()
        };
        assert!(harvest(&p, &[5], &hw, opts).is_empty());
    }

    #[test]
    fn top_per_block_truncates() {
        let p = one_block_program(10);
        let hw = HwModel::default();
        let opts = HarvestOptions {
            top_per_block: 3,
            ..HarvestOptions::default()
        };
        let cands = harvest(&p, &[10], &hw, opts);
        assert!(cands.len() <= 3);
        // They must be the best ones: sorted descending by total gain.
        assert!(cands
            .windows(2)
            .all(|w| w[0].total_gain() >= w[1].total_gain()));
    }

    #[test]
    fn conflicts_detected_within_block_only() {
        let p = one_block_program(6);
        let hw = HwModel::default();
        let cands = harvest(&p, &[10], &hw, HarvestOptions::default());
        let overlapping: Vec<_> = cands
            .iter()
            .filter(|c| c.nodes.intersects(&cands[0].nodes))
            .collect();
        assert!(overlapping.len() >= 2, "expected overlapping candidates");
        assert!(overlapping[0].conflicts_with(overlapping[1]));
        let mut other_block = cands[0].clone();
        other_block.block = BlockId(99);
        assert!(!cands[0].conflicts_with(&other_block));
    }

    #[test]
    #[should_panic(expected = "profile length mismatch")]
    fn profile_length_checked() {
        let p = one_block_program(4);
        let hw = HwModel::default();
        let _ = harvest(&p, &[1, 2], &hw, HarvestOptions::default());
    }
}

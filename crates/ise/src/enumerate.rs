//! Custom-instruction candidate identification.
//!
//! Two enumerators from the literature surveyed in §2.3.1:
//!
//! * [`maximal_miso`] — the linear-time greedy of Alippi et al. that grows
//!   maximal multiple-input single-output patterns from each sink;
//! * [`enumerate_connected`] — connected convex MIMO subgraphs under
//!   input/output constraints, grown breadth-first from every seed node with
//!   convexity/feasibility pruning and a candidate cap (the scalable
//!   clustering-style alternative to full exponential enumeration).

use rtise_ir::dfg::Dfg;
use rtise_ir::nodeset::NodeSet;
use std::collections::HashSet;
use std::hash::Hasher;

/// Options for [`enumerate_connected`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumerateOptions {
    /// Maximum input operands per candidate (register read ports).
    pub max_in: usize,
    /// Maximum output operands per candidate (register write ports).
    pub max_out: usize,
    /// Upper bound on distinct candidates returned per DFG; the growth
    /// frontier is truncated once reached (largest-first is not guaranteed,
    /// but seeds cover the whole block).
    pub max_candidates: usize,
    /// Maximum nodes per candidate; bounds the search depth.
    pub max_nodes: usize,
}

impl Default for EnumerateOptions {
    /// The paper's usual 4-input / 2-output budget with generous caps.
    fn default() -> Self {
        EnumerateOptions {
            max_in: 4,
            max_out: 2,
            max_candidates: 5_000,
            max_nodes: 24,
        }
    }
}

/// Largest DFG the bitset fast path — and with it, practical exact
/// enumeration — handles; the "enumeration wall". Larger DFGs either
/// fall back to the generic exponential walk or switch to the
/// [`crate::iterative`] backend.
pub const MAX_FAST_NODES: usize = fast::MAX_FAST_NODES;

/// Which candidate-identification engine to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnumerateBackend {
    /// Exhaustive connected-convex enumeration: the bitset fast path up
    /// to [`MAX_FAST_NODES`] nodes, the generic walk beyond.
    Exact,
    /// The generic any-size walk, unconditionally (differential testing
    /// and benchmarking against the fast path).
    Generic,
    /// Kernighan–Lin iterative improvement ([`crate::iterative`]) with
    /// default knobs; anytime, scales to thousands of nodes.
    Iterative,
    /// Policy switch: [`Exact`](EnumerateBackend::Exact) inside the
    /// bitset wall, [`Iterative`](EnumerateBackend::Iterative) past it —
    /// exhaustive where affordable, anytime where not.
    #[default]
    Auto,
}

/// Enumerates candidates with an explicitly chosen backend. The exact
/// backends return complete libraries (up to the caps); the iterative
/// backend returns the gain-ranked cuts its move budget reached.
pub fn enumerate_with_backend(
    dfg: &Dfg,
    opts: EnumerateOptions,
    backend: EnumerateBackend,
) -> Vec<NodeSet> {
    match backend {
        EnumerateBackend::Exact => enumerate_connected(dfg, opts),
        EnumerateBackend::Generic => {
            let (results, _) = enumerate_generic(dfg, opts);
            results
        }
        EnumerateBackend::Iterative => crate::iterative::iterative_candidates(
            dfg,
            crate::iterative::IterativeOptions {
                enumerate: opts,
                ..Default::default()
            },
        ),
        EnumerateBackend::Auto => {
            if dfg.len() <= MAX_FAST_NODES {
                enumerate_connected(dfg, opts)
            } else {
                enumerate_with_backend(dfg, opts, EnumerateBackend::Iterative)
            }
        }
    }
}

/// Enumerates the maximal MISO pattern rooted at every sink of `dfg`.
///
/// Starting from each valid node, predecessors are absorbed as long as all
/// of their consumers already lie inside the pattern (so the pattern keeps a
/// single output) and they are valid; patterns that collapse to a single
/// trivial node are dropped. Input counts are *not* constrained here — the
/// caller filters with [`Dfg::io_counts`] if needed, mirroring MaxMISO.
pub fn maximal_miso(dfg: &Dfg) -> Vec<NodeSet> {
    let out = if dfg.len() <= fast::MAX_FAST_NODES {
        fast::maximal_miso_shapes(dfg)
    } else {
        maximal_miso_generic(dfg)
    };
    #[cfg(debug_assertions)]
    for set in &out {
        debug_assert!(dfg.is_convex(set));
        debug_assert!(dfg.io_counts(set).outputs <= 1);
    }
    rtise_obs::record("ise.miso.patterns", out.len() as u64);
    out
}

/// The generic (any-size) MISO growth loop, exposed for differential tests
/// against the bitset fast path. Does not publish counters.
#[doc(hidden)]
pub fn maximal_miso_reference(dfg: &Dfg) -> Vec<NodeSet> {
    maximal_miso_generic(dfg)
}

fn maximal_miso_generic(dfg: &Dfg) -> Vec<NodeSet> {
    let mut out: Vec<NodeSet> = Vec::new();
    let mut seen: HashSet<NodeSet> = HashSet::new();
    for root in dfg.ids() {
        if !dfg.kind(root).is_ci_valid() || dfg.kind(root).is_pseudo() {
            continue;
        }
        let mut set = dfg.empty_set();
        set.insert(root);
        // Grow upward to the (unique, monotone) fixpoint. A predecessor
        // becomes absorbable exactly when its last outside consumer joins
        // the pattern, and it is an argument of that consumer — so
        // re-examining only the arguments of newly added nodes visits
        // every absorption opportunity without rescanning the whole set.
        let mut worklist = vec![root];
        while let Some(m) = worklist.pop() {
            for &p in dfg.args(m) {
                if set.contains(p) || !dfg.kind(p).is_ci_valid() || dfg.kind(p).is_pseudo() {
                    continue;
                }
                // p may join only if every consumer of p is inside,
                // keeping the pattern single-output.
                if dfg.consumers(p).iter().all(|c| set.contains(*c)) {
                    set.insert(p);
                    worklist.push(p);
                }
            }
        }
        if set.len() >= 2 && seen.insert(set.clone()) {
            out.push(set);
        }
    }
    out
}

/// Enumeration statistics for one [`enumerate_connected_with_stats`] call.
///
/// Invariant: `generated == accepted + rejected_infeasible` — every shape
/// taken off the growth frontier is either kept as a candidate or rejected
/// by the I/O feasibility test (non-convex shapes never reach the
/// frontier: they are repaired to their convex hull or dropped at growth
/// time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnumerateStats {
    /// Shapes taken off the growth frontier and tested.
    pub generated: u64,
    /// Shapes kept as feasible candidates.
    pub accepted: u64,
    /// Shapes rejected by the input/output port constraints.
    pub rejected_infeasible: u64,
    /// Non-convex growths repaired to their convex hull and re-queued.
    pub convexity_repairs: u64,
    /// Non-convex growths dropped because the hull needed an invalid node
    /// or exceeded `max_nodes`.
    pub dropped_nonconvex: u64,
    /// Whether the `max_candidates` cap cut enumeration short.
    pub hit_candidate_cap: bool,
    /// Whether the visited-shapes work bound stopped further growth.
    pub hit_visited_cap: bool,
}

/// Enumerates connected convex subgraphs satisfying the I/O constraints.
///
/// Growth starts from every valid seed node and extends one adjacent valid
/// node at a time. A grown set is kept when it is feasible under
/// `opts.max_in`/`opts.max_out`; infeasible intermediate shapes are still
/// extended (adding a node can *reduce* the input count) until `max_nodes`.
/// Duplicates are removed globally.
///
/// The worst case is exponential (§2.3.1); `max_candidates` bounds the work,
/// trading completeness for the scalability of the clustering heuristics the
/// paper cites.
pub fn enumerate_connected(dfg: &Dfg, opts: EnumerateOptions) -> Vec<NodeSet> {
    enumerate_connected_with_stats(dfg, opts).0
}

/// Like [`enumerate_connected`], additionally returning [`EnumerateStats`]
/// and publishing `ise.enumerate.*` counters to the [`rtise_obs`]
/// registry.
///
/// DFGs of at most 128 nodes (the common kernel size) take an inline
/// bitset fast path: shapes live in two `u64` words, the visited set is
/// FNV-keyed over the raw words, and convexity/port tests run on
/// precomputed transitive masks. The fast path is differentially tested to
/// produce bit-identical results and stats to the generic path.
pub fn enumerate_connected_with_stats(
    dfg: &Dfg,
    opts: EnumerateOptions,
) -> (Vec<NodeSet>, EnumerateStats) {
    let (results, stats) = if dfg.len() <= fast::MAX_FAST_NODES {
        fast::enumerate(dfg, opts)
    } else {
        // The enumeration wall: count and trace every fall-through so
        // reports show when runs leave the fast path instead of just
        // getting slow.
        rtise_obs::record("ise.enumerate.generic_path", 1);
        rtise_trace::instant_with(
            rtise_trace::codes::ISE_ENUM_GENERIC_PATH,
            &[("nodes", dfg.len() as u64)],
        );
        enumerate_generic(dfg, opts)
    };
    rtise_obs::record("ise.enumerate.calls", 1);
    rtise_obs::record("ise.enumerate.generated", stats.generated);
    rtise_obs::record("ise.enumerate.accepted", stats.accepted);
    rtise_obs::record("ise.enumerate.rejected", stats.rejected_infeasible);
    rtise_obs::record("ise.enumerate.convexity_repairs", stats.convexity_repairs);
    (results, stats)
}

/// The generic (any-size) enumeration path, exposed for differential tests
/// and benchmarks against the bitset fast path. Does not publish counters.
#[doc(hidden)]
pub fn enumerate_connected_reference(
    dfg: &Dfg,
    opts: EnumerateOptions,
) -> (Vec<NodeSet>, EnumerateStats) {
    enumerate_generic(dfg, opts)
}

fn enumerate_generic(dfg: &Dfg, opts: EnumerateOptions) -> (Vec<NodeSet>, EnumerateStats) {
    let mut stats = EnumerateStats::default();
    let mut results: Vec<NodeSet> = Vec::new();
    let mut visited: HashSet<NodeSet> = HashSet::new();
    let mut frontier: Vec<NodeSet> = Vec::new();
    // Total-work bound: the candidate cap limits *results*, but on very
    // large blocks the space of infeasible intermediate shapes dwarfs the
    // feasible ones; cap the explored shapes as well so enumeration stays
    // linear-ish in the cap (MaxMISO patterns cover huge blocks instead).
    let max_visited = opts.max_candidates.saturating_mul(24).max(4_096);

    for seed in dfg.ids() {
        let k = dfg.kind(seed);
        // Constants are absorbed as operands but never seed a candidate —
        // a hardwired immediate is not an instruction.
        if !k.is_ci_valid() || k.is_pseudo() || k == rtise_ir::op::OpKind::Const {
            continue;
        }
        let mut s = dfg.empty_set();
        s.insert(seed);
        if visited.insert(s.clone()) {
            frontier.push(s);
        }
    }

    while let Some(set) = frontier.pop() {
        stats.generated += 1;
        if dfg.is_feasible_ci(&set, opts.max_in, opts.max_out) {
            stats.accepted += 1;
            results.push(set.clone());
            if results.len() >= opts.max_candidates {
                stats.hit_candidate_cap = true;
                break;
            }
        } else {
            stats.rejected_infeasible += 1;
        }
        if set.len() >= opts.max_nodes || visited.len() >= max_visited {
            if visited.len() >= max_visited {
                stats.hit_visited_cap = true;
            }
            continue;
        }
        // Extend by every adjacent valid node (connectedness preserved).
        let mut neighbours = dfg.empty_set();
        for m in set.iter() {
            for &p in dfg.args(m) {
                if !set.contains(p) && dfg.kind(p).is_ci_valid() && !dfg.kind(p).is_pseudo() {
                    neighbours.insert(p);
                }
            }
            for &c in dfg.consumers(m) {
                if !set.contains(c) && dfg.kind(c).is_ci_valid() && !dfg.kind(c).is_pseudo() {
                    neighbours.insert(c);
                }
            }
        }
        for nb in neighbours.iter() {
            let mut grown = set.clone();
            grown.insert(nb);
            // Convexity can be repaired by further growth only through the
            // violating path's nodes, which are neighbours too — so prune
            // non-convex shapes immediately (the violating intermediate node
            // itself will be offered as an extension of a different branch).
            if !dfg.is_convex(&grown) {
                // Repair instead of dropping: absorb everything on the
                // violating paths if that keeps the size bounded.
                if let Some(repaired) = convex_hull(dfg, &grown, opts.max_nodes) {
                    stats.convexity_repairs += 1;
                    if visited.insert(repaired.clone()) {
                        frontier.push(repaired);
                    }
                } else {
                    stats.dropped_nonconvex += 1;
                }
                continue;
            }
            if visited.insert(grown.clone()) {
                frontier.push(grown);
            }
        }
    }
    (results, stats)
}

/// Two-word bitset fast path for DFGs of at most 128 nodes.
///
/// Mirrors [`enumerate_generic`] decision for decision: same seeds, same
/// LIFO frontier, same ascending-id neighbour order, same accept/repair/
/// drop logic — only the set representation changes, from heap-allocated
/// [`NodeSet`]s cloned per growth step to inline `[u64; 2]` words with
/// precomputed adjacency and transitive ancestor/descendant masks.
mod fast {
    use super::{EnumerateOptions, EnumerateStats, FnvWords};
    use rtise_ir::dfg::{Dfg, NodeId};
    use rtise_ir::nodeset::NodeSet;
    use rtise_ir::op::OpKind;
    use std::collections::HashSet;
    use std::hash::BuildHasherDefault;

    /// Words per shape; DFGs above `MAX_FAST_NODES` use the generic path.
    const WORDS: usize = 2;
    /// Largest DFG the fast path handles.
    pub(super) const MAX_FAST_NODES: usize = WORDS * 64;

    /// An inline node subset of a ≤128-node DFG.
    type Shape = [u64; WORDS];

    const EMPTY: Shape = [0; WORDS];

    fn bit(id: usize) -> (usize, u64) {
        (id / 64, 1u64 << (id % 64))
    }

    fn contains(s: &Shape, id: usize) -> bool {
        let (w, m) = bit(id);
        s[w] & m != 0
    }

    fn insert(s: &mut Shape, id: usize) {
        let (w, m) = bit(id);
        s[w] |= m;
    }

    fn len(s: &Shape) -> usize {
        s.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn is_empty(s: &Shape) -> bool {
        s.iter().all(|&w| w == 0)
    }

    fn union(a: &Shape, b: &Shape) -> Shape {
        std::array::from_fn(|i| a[i] | b[i])
    }

    fn minus(a: &Shape, b: &Shape) -> Shape {
        std::array::from_fn(|i| a[i] & !b[i])
    }

    fn is_subset(a: &Shape, b: &Shape) -> bool {
        a.iter().zip(b).all(|(x, y)| x & !y == 0)
    }

    /// Iterates member ids in ascending order.
    fn iter_bits(s: Shape) -> impl Iterator<Item = usize> {
        (0..WORDS).flat_map(move |w| {
            let mut bits = s[w];
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(w * 64 + b)
            })
        })
    }

    /// Per-node masks precomputed once per enumeration call.
    struct Masks {
        n: usize,
        /// `is_ci_valid` nodes (hull members may be constants).
        valid: Shape,
        /// Growable nodes: CI-valid and not pseudo.
        grow: Shape,
        /// Adjacent growable nodes (args ∪ consumers, filtered by `grow`).
        adj: Vec<Shape>,
        /// Non-constant direct arguments (for the input-port count).
        in_nc: Vec<Shape>,
        /// All direct consumers (for the output-port count).
        out_any: Vec<Shape>,
        /// Transitive ancestors, excluding the node itself.
        anc: Vec<Shape>,
        /// Transitive descendants, excluding the node itself.
        desc: Vec<Shape>,
    }

    impl Masks {
        fn build(dfg: &Dfg) -> Masks {
            let n = dfg.len();
            debug_assert!(n <= MAX_FAST_NODES);
            let mut m = Masks {
                n,
                valid: EMPTY,
                grow: EMPTY,
                adj: vec![EMPTY; n],
                in_nc: vec![EMPTY; n],
                out_any: vec![EMPTY; n],
                anc: vec![EMPTY; n],
                desc: vec![EMPTY; n],
            };
            for id in 0..n {
                let k = dfg.kind(NodeId(id));
                if k.is_ci_valid() {
                    insert(&mut m.valid, id);
                    if !k.is_pseudo() {
                        insert(&mut m.grow, id);
                    }
                }
            }
            for id in 0..n {
                // Ids are topological, so ancestor masks fold forward.
                for &a in dfg.args(NodeId(id)) {
                    m.anc[id] = union(&m.anc[id], &m.anc[a.0]);
                    insert(&mut m.anc[id], a.0);
                    if dfg.kind(a) != OpKind::Const {
                        insert(&mut m.in_nc[id], a.0);
                    }
                    if contains(&m.grow, a.0) {
                        insert(&mut m.adj[id], a.0);
                    }
                }
                for &c in dfg.consumers(NodeId(id)) {
                    insert(&mut m.out_any[id], c.0);
                    if contains(&m.grow, c.0) {
                        insert(&mut m.adj[id], c.0);
                    }
                }
            }
            for id in (0..n).rev() {
                for &c in dfg.consumers(NodeId(id)) {
                    m.desc[id] = union(&m.desc[id], &m.desc[c.0]);
                    insert(&mut m.desc[id], c.0);
                }
            }
            m
        }

        /// Union of a per-node mask over the members of `s`.
        fn fold(&self, s: &Shape, table: &[Shape]) -> Shape {
            let mut acc = EMPTY;
            for id in iter_bits(*s) {
                acc = union(&acc, &table[id]);
            }
            acc
        }

        /// Convexity via the mask identity: a set is non-convex exactly
        /// when some node outside it is both reachable from a member and
        /// an ancestor of a member (it then closes an escape path, which
        /// is what [`Dfg::is_convex`]'s forward/backward sweep detects).
        fn is_convex(&self, s: &Shape) -> bool {
            let desc_u = self.fold(s, &self.desc);
            let anc_u = self.fold(s, &self.anc);
            let mut escape = desc_u;
            for i in 0..WORDS {
                escape[i] &= anc_u[i] & !s[i];
            }
            escape == EMPTY
        }

        fn io_fits(&self, s: &Shape, max_in: usize, max_out: usize) -> bool {
            let inputs = minus(&self.fold(s, &self.in_nc), s);
            if len(&inputs) > max_in {
                return false;
            }
            let mut outputs = 0usize;
            for id in iter_bits(*s) {
                if minus(&self.out_any[id], s) != EMPTY {
                    outputs += 1;
                }
            }
            outputs <= max_out
        }

        fn is_feasible(&self, s: &Shape, max_in: usize, max_out: usize) -> bool {
            !is_empty(s)
                && is_subset(s, &self.valid)
                && self.io_fits(s, max_in, max_out)
                && self.is_convex(s)
        }

        /// Mask twin of [`super::convex_hull`]: iteratively absorbs every
        /// outside node that is both a descendant and an ancestor of the
        /// hull; `None` if the closure needs a CI-invalid node or grows
        /// past `max_nodes`.
        fn convex_hull(&self, s: &Shape, max_nodes: usize) -> Option<Shape> {
            let mut hull = *s;
            loop {
                let desc_u = self.fold(&hull, &self.desc);
                let anc_u = self.fold(&hull, &self.anc);
                let mut need = desc_u;
                for i in 0..WORDS {
                    need[i] &= anc_u[i] & !hull[i];
                }
                if need == EMPTY {
                    return Some(hull);
                }
                if !is_subset(&need, &self.valid) {
                    return None;
                }
                hull = union(&hull, &need);
                if len(&hull) > max_nodes {
                    return None;
                }
            }
        }

        fn to_node_set(&self, s: &Shape) -> NodeSet {
            NodeSet::from_words(self.n, &s[..self.n.div_ceil(64)])
        }
    }

    pub(super) fn enumerate(dfg: &Dfg, opts: EnumerateOptions) -> (Vec<NodeSet>, EnumerateStats) {
        let masks = Masks::build(dfg);
        let mut stats = EnumerateStats::default();
        let mut results: Vec<NodeSet> = Vec::new();
        let mut visited: HashSet<Shape, BuildHasherDefault<FnvWords>> = HashSet::default();
        let mut frontier: Vec<Shape> = Vec::new();
        let max_visited = opts.max_candidates.saturating_mul(24).max(4_096);

        for seed in 0..masks.n {
            if !contains(&masks.grow, seed) || dfg.kind(NodeId(seed)) == OpKind::Const {
                continue;
            }
            let mut s = EMPTY;
            insert(&mut s, seed);
            if visited.insert(s) {
                frontier.push(s);
            }
        }

        while let Some(set) = frontier.pop() {
            stats.generated += 1;
            if masks.is_feasible(&set, opts.max_in, opts.max_out) {
                stats.accepted += 1;
                results.push(masks.to_node_set(&set));
                if results.len() >= opts.max_candidates {
                    stats.hit_candidate_cap = true;
                    break;
                }
            } else {
                stats.rejected_infeasible += 1;
            }
            if len(&set) >= opts.max_nodes || visited.len() >= max_visited {
                if visited.len() >= max_visited {
                    stats.hit_visited_cap = true;
                }
                continue;
            }
            let neighbours = minus(&masks.fold(&set, &masks.adj), &set);
            for nb in iter_bits(neighbours) {
                let mut grown = set;
                insert(&mut grown, nb);
                if !masks.is_convex(&grown) {
                    if let Some(repaired) = masks.convex_hull(&grown, opts.max_nodes) {
                        stats.convexity_repairs += 1;
                        if visited.insert(repaired) {
                            frontier.push(repaired);
                        }
                    } else {
                        stats.dropped_nonconvex += 1;
                    }
                    continue;
                }
                if visited.insert(grown) {
                    frontier.push(grown);
                }
            }
        }
        (results, stats)
    }

    /// The maximal-MISO growth loop over masks: same worklist closure as
    /// the generic version, with the all-consumers-inside test reduced to
    /// one word-level subset check.
    pub(super) fn maximal_miso_shapes(dfg: &Dfg) -> Vec<NodeSet> {
        let masks = Masks::build(dfg);
        let mut out = Vec::new();
        let mut seen: HashSet<Shape, BuildHasherDefault<FnvWords>> = HashSet::default();
        for root in 0..masks.n {
            if !contains(&masks.grow, root) {
                continue;
            }
            let mut set = EMPTY;
            insert(&mut set, root);
            let mut worklist = vec![root];
            while let Some(m) = worklist.pop() {
                for &p in dfg.args(NodeId(m)) {
                    if contains(&set, p.0) || !contains(&masks.grow, p.0) {
                        continue;
                    }
                    if is_subset(&masks.out_any[p.0], &set) {
                        insert(&mut set, p.0);
                        worklist.push(p.0);
                    }
                }
            }
            if len(&set) >= 2 && seen.insert(set) {
                out.push(masks.to_node_set(&set));
            }
        }
        out
    }
}

/// FNV-1a hasher specialized for hashing raw shape words: small state, no
/// allocation, and good dispersion over sparse bitsets — the visited set
/// is the hottest map in enumeration.
#[derive(Clone)]
struct FnvWords(u64);

impl Default for FnvWords {
    fn default() -> Self {
        FnvWords(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for FnvWords {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, w: u64) {
        self.0 ^= w;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
}

/// Pairs up disjoint feasible candidates into *disconnected* candidates
/// (two weakly-connected components in one custom instruction), the
/// instruction-level-parallelism extension of §2.3.1 \[81, 23, 36\]: inside
/// the CFU the components execute in parallel, so the combined hardware
/// latency is the maximum — not the sum — of the parts.
///
/// `connected` is a library of feasible candidates (e.g. from
/// [`enumerate_connected`]); pairs whose union is still feasible under
/// `opts` are returned, capped at `opts.max_candidates`.
pub fn enumerate_disconnected(
    dfg: &Dfg,
    connected: &[NodeSet],
    opts: EnumerateOptions,
) -> Vec<NodeSet> {
    let mut out = Vec::new();
    let mut seen: HashSet<NodeSet> = HashSet::new();
    'outer: for (i, a) in connected.iter().enumerate() {
        for b in &connected[i + 1..] {
            if a.intersects(b) {
                continue;
            }
            let mut union = a.clone();
            union.union_with(b);
            if union.len() > opts.max_nodes
                || !dfg.is_feasible_ci(&union, opts.max_in, opts.max_out)
            {
                continue;
            }
            // Require genuine disconnection: no data edge between the parts
            // (otherwise the pair is just a connected candidate again).
            let touching = a.iter().any(|n| {
                dfg.args(n).iter().any(|p| b.contains(*p))
                    || dfg.consumers(n).iter().any(|c| b.contains(*c))
            });
            if touching {
                continue;
            }
            if seen.insert(union.clone()) {
                out.push(union);
                if out.len() >= opts.max_candidates {
                    break 'outer;
                }
            }
        }
    }
    rtise_obs::record("ise.disconnected.pairs", out.len() as u64);
    out
}

/// The convex closure of `set`: adds every valid node lying on a path
/// between two members. Returns `None` if the closure needs an invalid node
/// or exceeds `max_nodes`. Shared with the iterative backend's repair step.
pub(crate) fn convex_hull(dfg: &Dfg, set: &NodeSet, max_nodes: usize) -> Option<NodeSet> {
    let mut hull = set.clone();
    loop {
        // Nodes outside the hull reachable from it...
        let mut desc = dfg.empty_set();
        for id in dfg.ids() {
            let from_member = dfg.args(id).iter().any(|a| hull.contains(*a));
            let from_desc = dfg.args(id).iter().any(|a| desc.contains(*a));
            if !hull.contains(id) && (from_member || from_desc) {
                desc.insert(id);
            }
        }
        // ...that also reach back into the hull must be absorbed.
        let mut anc = dfg.empty_set();
        for id in dfg.ids().collect::<Vec<_>>().into_iter().rev() {
            let to_member = dfg.consumers(id).iter().any(|c| hull.contains(*c));
            let to_anc = dfg.consumers(id).iter().any(|c| anc.contains(*c));
            if !hull.contains(id) && (to_member || to_anc) {
                anc.insert(id);
            }
        }
        let mut need = desc;
        need.intersect_with(&anc);
        if need.is_empty() {
            return Some(hull);
        }
        for id in need.iter() {
            if !dfg.kind(id).is_ci_valid() {
                return None;
            }
            hull.insert(id);
        }
        if hull.len() > max_nodes {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ir::op::OpKind;

    /// A two-output diamond over a shared add.
    fn diamond() -> Dfg {
        let mut g = Dfg::new();
        let a = g.input(0);
        let b = g.input(1);
        let add = g.bin(OpKind::Add, a, b);
        let mul = g.bin_imm(OpKind::Mul, add, 3);
        let sub = g.bin_imm(OpKind::Sub, add, 1);
        let x = g.bin(OpKind::Xor, mul, sub);
        g.output(0, x);
        g
    }

    #[test]
    fn maxmiso_finds_the_full_diamond() {
        let g = diamond();
        let misos = maximal_miso(&g);
        // The maximal MISO rooted at xor covers all four ops.
        assert!(misos.iter().any(|s| s.len() == 4));
        for s in &misos {
            assert!(g.is_convex(s));
            assert!(g.io_counts(s).outputs <= 1, "{s:?}");
        }
    }

    #[test]
    fn maxmiso_respects_external_consumers() {
        // add feeds both mul and an Output: growing from mul must not absorb
        // add unless all of add's consumers are inside.
        let mut g = Dfg::new();
        let a = g.input(0);
        let add = g.bin_imm(OpKind::Add, a, 1);
        let mul = g.bin_imm(OpKind::Mul, add, 3);
        g.output(0, add);
        g.output(1, mul);
        let misos = maximal_miso(&g);
        for s in &misos {
            if s.contains(mul) {
                assert!(!s.contains(add), "add escapes through Output");
            }
        }
    }

    #[test]
    fn connected_enumeration_is_feasible_and_convex() {
        let g = diamond();
        let cands = enumerate_connected(&g, EnumerateOptions::default());
        assert!(!cands.is_empty());
        for s in &cands {
            assert!(g.is_feasible_ci(&s.clone(), 4, 2), "{s:?}");
        }
        // The full diamond is among them.
        assert!(cands.iter().any(|s| s.len() == 4));
    }

    #[test]
    fn enumeration_honours_io_constraints() {
        // A 6-input tree: with max_in = 2 only small pieces qualify.
        let mut g = Dfg::new();
        let ins: Vec<_> = (0..6).map(|i| g.input(i)).collect();
        let s0 = g.bin(OpKind::Add, ins[0], ins[1]);
        let s1 = g.bin(OpKind::Add, ins[2], ins[3]);
        let s2 = g.bin(OpKind::Add, ins[4], ins[5]);
        let t0 = g.bin(OpKind::Add, s0, s1);
        let t1 = g.bin(OpKind::Add, t0, s2);
        g.output(0, t1);
        let opts = EnumerateOptions {
            max_in: 2,
            ..EnumerateOptions::default()
        };
        let cands = enumerate_connected(&g, opts);
        for s in &cands {
            assert!(g.io_counts(s).inputs <= 2);
        }
        // The full tree (6 inputs) must be excluded.
        assert!(cands.iter().all(|s| s.len() < 5));
    }

    #[test]
    fn candidate_cap_limits_output() {
        // A wide block with many nodes explodes combinatorially; the cap
        // must hold.
        let mut g = Dfg::new();
        let mut prev = g.input(0);
        let other = g.input(1);
        for i in 0..20 {
            let k = if i % 2 == 0 { OpKind::Add } else { OpKind::Xor };
            prev = g.bin(k, prev, other);
        }
        g.output(0, prev);
        let opts = EnumerateOptions {
            max_candidates: 50,
            ..EnumerateOptions::default()
        };
        let cands = enumerate_connected(&g, opts);
        assert!(cands.len() <= 50);
        assert!(!cands.is_empty());
    }

    #[test]
    fn invalid_ops_never_appear_in_candidates() {
        let mut g = Dfg::new();
        let a = g.input(0);
        let x = g.bin_imm(OpKind::Add, a, 1);
        let ld = g.un(OpKind::Load, x);
        let y = g.bin_imm(OpKind::Mul, ld, 3);
        g.output(0, y);
        for s in enumerate_connected(&g, EnumerateOptions::default()) {
            assert!(!s.contains(ld));
        }
        for s in maximal_miso(&g) {
            assert!(!s.contains(ld));
        }
    }

    #[test]
    fn disconnected_pairs_execute_in_parallel() {
        use rtise_ir::hw::HwModel;
        // Two independent mul-mul chains.
        let mut g = Dfg::new();
        let a = g.input(0);
        let b = g.input(1);
        let m1 = g.bin_imm(OpKind::Mul, a, 3);
        let m2 = g.bin_imm(OpKind::Mul, m1, 5);
        let n1 = g.bin_imm(OpKind::Mul, b, 7);
        let n2 = g.bin_imm(OpKind::Mul, n1, 9);
        g.output(0, m2);
        g.output(1, n2);

        let connected = enumerate_connected(&g, EnumerateOptions::default());
        let pairs = enumerate_disconnected(&g, &connected, EnumerateOptions::default());
        assert!(!pairs.is_empty());
        // The full pair {m1,m2} ∪ {n1,n2} runs both chains in parallel.
        let full: Vec<_> = pairs.iter().filter(|p| p.len() >= 4).collect();
        assert!(!full.is_empty(), "expected the 4-op disconnected pair");
        let hw = HwModel::default();
        for p in full {
            // sw = 4 muls = 12 cycles; hw = one 2-mul chain = 1 cycle.
            assert_eq!(hw.ci_cycles(&g, p), 1);
            assert_eq!(hw.ci_gain(&g, p), 11, "parallelism beats the sum of parts");
        }
        // And every pair is feasible + genuinely disconnected.
        for p in &pairs {
            assert!(g.is_feasible_ci(p, 4, 2));
        }
    }

    #[test]
    fn disconnected_rejects_touching_components() {
        let g = diamond();
        let connected = enumerate_connected(&g, EnumerateOptions::default());
        let pairs = enumerate_disconnected(&g, &connected, EnumerateOptions::default());
        // The only disconnected pair in the diamond is the sibling set
        // {mul, sub}: every other combination shares a data edge.
        assert_eq!(pairs.len(), 1, "{pairs:?}");
        let pair = &pairs[0];
        assert_eq!(pair.len(), 2);
        let kinds: Vec<OpKind> = pair.iter().map(|n| g.kind(n)).collect();
        assert!(kinds.contains(&OpKind::Mul) && kinds.contains(&OpKind::Sub));
        // No data edge between the two members.
        for n in pair.iter() {
            assert!(!g.args(n).iter().any(|p| pair.contains(*p)));
        }
    }

    #[test]
    fn stats_account_for_every_generated_shape() {
        let g = diamond();
        let (cands, stats) = enumerate_connected_with_stats(&g, EnumerateOptions::default());
        assert_eq!(
            stats.generated,
            stats.accepted + stats.rejected_infeasible,
            "diamond: {stats:?}"
        );
        assert_eq!(stats.accepted as usize, cands.len());
        assert!(stats.generated >= 1);
        assert!(!stats.hit_candidate_cap && !stats.hit_visited_cap);
        // And with a tight cap the flag trips.
        let mut g = Dfg::new();
        let mut prev = g.input(0);
        let other = g.input(1);
        for i in 0..20 {
            let k = if i % 2 == 0 { OpKind::Add } else { OpKind::Xor };
            prev = g.bin(k, prev, other);
        }
        g.output(0, prev);
        let opts = EnumerateOptions {
            max_candidates: 10,
            ..EnumerateOptions::default()
        };
        let (cands, stats) = enumerate_connected_with_stats(&g, opts);
        assert_eq!(cands.len(), 10);
        assert!(stats.hit_candidate_cap);
        assert_eq!(stats.generated, stats.accepted + stats.rejected_infeasible);
    }

    #[test]
    fn stats_do_not_change_the_result() {
        let g = diamond();
        let plain = enumerate_connected(&g, EnumerateOptions::default());
        let (with_stats, _) = enumerate_connected_with_stats(&g, EnumerateOptions::default());
        assert_eq!(plain, with_stats);
    }

    #[test]
    fn fast_path_matches_reference_on_unit_graphs() {
        let mut graphs = vec![diamond()];
        // The 6-input tree and the wide 20-op block from the other tests.
        let mut g = Dfg::new();
        let ins: Vec<_> = (0..6).map(|i| g.input(i)).collect();
        let s0 = g.bin(OpKind::Add, ins[0], ins[1]);
        let s1 = g.bin(OpKind::Add, ins[2], ins[3]);
        let s2 = g.bin(OpKind::Add, ins[4], ins[5]);
        let t0 = g.bin(OpKind::Add, s0, s1);
        let t1 = g.bin(OpKind::Add, t0, s2);
        g.output(0, t1);
        graphs.push(g);
        let mut g = Dfg::new();
        let mut prev = g.input(0);
        let other = g.input(1);
        for i in 0..20 {
            let k = if i % 2 == 0 { OpKind::Add } else { OpKind::Xor };
            prev = g.bin(k, prev, other);
        }
        g.output(0, prev);
        graphs.push(g);
        for g in &graphs {
            for opts in [
                EnumerateOptions::default(),
                EnumerateOptions {
                    max_in: 2,
                    max_candidates: 10,
                    ..EnumerateOptions::default()
                },
            ] {
                let (fast, fast_stats) = enumerate_connected_with_stats(g, opts);
                let (slow, slow_stats) = enumerate_connected_reference(g, opts);
                assert_eq!(fast, slow);
                assert_eq!(fast_stats, slow_stats);
            }
            assert_eq!(maximal_miso(g), maximal_miso_reference(g));
        }
    }

    #[test]
    fn oversize_graphs_use_the_generic_path() {
        // 129+ nodes forces the generic path through the public API.
        let mut g = Dfg::new();
        let mut prev = g.input(0);
        for _ in 0..140 {
            prev = g.bin_imm(OpKind::Add, prev, 1);
        }
        g.output(0, prev);
        assert!(g.len() > 128);
        let opts = EnumerateOptions {
            max_candidates: 64,
            ..EnumerateOptions::default()
        };
        let (cands, stats) = enumerate_connected_with_stats(&g, opts);
        assert!(!cands.is_empty());
        assert_eq!(stats.generated, stats.accepted + stats.rejected_infeasible);
        assert!(!maximal_miso(&g).is_empty());
    }

    /// Satellite: crossing the enumeration wall is observable — the
    /// `ise.enumerate.generic_path` counter fires exactly when a DFG is
    /// too big for the bitset path, and never inside it.
    #[test]
    fn generic_path_fallback_is_counted() {
        let _iso = rtise_obs::registry::isolate();
        // Seeded construction: a 140-op chain (past the wall) and the
        // 8-op diamond (inside it).
        let mut big = Dfg::new();
        let mut prev = big.input(0);
        for _ in 0..140 {
            prev = big.bin_imm(OpKind::Add, prev, 1);
        }
        big.output(0, prev);
        assert!(big.len() > MAX_FAST_NODES);
        let opts = EnumerateOptions {
            max_candidates: 64,
            ..EnumerateOptions::default()
        };
        let scope = rtise_obs::CounterScope::new();
        let guard = scope.enter();
        let _ = enumerate_connected_with_stats(&big, opts);
        let _ = enumerate_connected_with_stats(&diamond(), opts);
        drop(guard);
        let counters = scope.counters();
        assert_eq!(
            counters.get("ise.enumerate.generic_path"),
            Some(&1),
            "one fallback for the 141-node chain, none for the diamond: {counters:?}"
        );
        assert_eq!(counters.get("ise.enumerate.calls"), Some(&2));
    }

    #[test]
    fn backends_agree_where_they_overlap() {
        let g = diamond();
        let opts = EnumerateOptions::default();
        let exact = enumerate_with_backend(&g, opts, EnumerateBackend::Exact);
        let generic = enumerate_with_backend(&g, opts, EnumerateBackend::Generic);
        let auto = enumerate_with_backend(&g, opts, EnumerateBackend::Auto);
        assert_eq!(exact, generic, "fast path is bit-identical to generic");
        assert_eq!(exact, auto, "auto picks exact inside the wall");
        // The iterative backend returns a subset of the same feasible
        // space (order differs: it ranks by gain).
        let iter = enumerate_with_backend(&g, opts, EnumerateBackend::Iterative);
        assert!(!iter.is_empty());
        let exact_set: HashSet<NodeSet> = exact.into_iter().collect();
        for c in &iter {
            assert!(
                exact_set.contains(c),
                "iterative emitted {c:?} outside the exact space"
            );
        }
        // Past the wall, auto switches to the iterative backend.
        let mut big = Dfg::new();
        let mut prev = big.input(0);
        let other = big.input(1);
        for i in 0..140 {
            let k = if i % 2 == 0 { OpKind::Add } else { OpKind::Xor };
            prev = big.bin(k, prev, other);
        }
        big.output(0, prev);
        let auto_big = enumerate_with_backend(&big, opts, EnumerateBackend::Auto);
        let iter_big = enumerate_with_backend(&big, opts, EnumerateBackend::Iterative);
        assert_eq!(auto_big, iter_big);
        assert!(!auto_big.is_empty());
    }

    #[test]
    fn convex_hull_repairs_or_rejects() {
        let g = diamond();
        // {add, xor} is non-convex; its hull is the full diamond.
        let add = rtise_ir::dfg::NodeId(2);
        let xor = rtise_ir::dfg::NodeId(7);
        assert_eq!(g.kind(add), OpKind::Add);
        assert_eq!(g.kind(xor), OpKind::Xor);
        let mut s = g.empty_set();
        s.insert(add);
        s.insert(xor);
        let hull = convex_hull(&g, &s, 16).expect("repairable");
        assert_eq!(hull.len(), 4);
        assert!(g.is_convex(&hull));
        // With a load on the path, repair is impossible.
        let mut g2 = Dfg::new();
        let a = g2.input(0);
        let p = g2.bin_imm(OpKind::Add, a, 1);
        let ld = g2.un(OpKind::Load, p);
        let q = g2.bin_imm(OpKind::Mul, ld, 3);
        let r = g2.bin(OpKind::Add, q, p);
        g2.output(0, r);
        let mut bad = g2.empty_set();
        bad.insert(p);
        bad.insert(r);
        assert!(convex_hull(&g2, &bad, 16).is_none());
    }
}

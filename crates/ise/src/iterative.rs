//! Anytime iterative candidate generation past the enumeration wall.
//!
//! Exact connected-convex enumeration (§2.3.1) is worst-case exponential
//! and our bitset fast path stops at 128 nodes; beyond that, exhaustive
//! identification is out of reach. This module implements the
//! Kernighan–Lin-style iterative-improvement generator of ISEGEN
//! (Biswas et al.): instead of enumerating every feasible cut, it *grows
//! and reshapes* a small population of cuts under a gain-driven move
//! rule, which scales to thousands of nodes while staying fully
//! deterministic.
//!
//! The algorithm, per seed (seeds are gain-ranked single operations):
//!
//! 1. **Grow** a cluster greedily: repeatedly add the boundary node whose
//!    addition most improves the score, while it improves at all.
//! 2. **Improve** with up to [`IterativeOptions::max_passes`]
//!    Kernighan–Lin passes: every pass repeatedly commits the single best
//!    *toggle* (add a boundary node or remove a member — even when it
//!    temporarily worsens the score), locks the toggled node, and finally
//!    reverts to the best prefix of the committed move sequence. Toggling
//!    through downhill moves is what lets a pass escape local optima that
//!    defeat pure greedy growth.
//! 3. **Repair**: after every pass the working cut is replaced by its
//!    convex hull when that is still within the node budget, so
//!    non-convex intermediate shapes get pulled back to legality instead
//!    of being discarded.
//! 4. **Emit**: the cut's weakly-connected components (each convex
//!    component of a convex set is itself convex, with a subset of the
//!    parent's I/O) are certified with [`Dfg::is_feasible_ci`] and
//!    collected; duplicates are dropped globally.
//!
//! Every score evaluation draws on a global *move budget*, making the
//! generator anytime: a small budget returns quickly with the
//! best-so-far cuts, a large one converges. For a fixed
//! ([`IterativeOptions::seed`], budget) pair the output — candidate
//! list, [`IterStats`], and trace — is byte-identical on every run at
//! any thread count, because nothing here depends on timing or
//! addresses: ties break on a SplitMix64 hash of the node id.
//!
//! Emitted cuts are connected, convex, feasible and within
//! `max_nodes` — exactly the space the exact enumerator covers — so on
//! DFGs where exhaustive enumeration completes uncapped, the iterative
//! generator can never *beat* the certified optimum; the fuzz suite
//! tests that differentially.

use crate::enumerate::{convex_hull, EnumerateOptions};
use rtise_ir::dfg::{Dfg, NodeId};
use rtise_ir::hw::HwModel;
use rtise_ir::nodeset::NodeSet;
use std::collections::HashSet;

/// Options for [`iterative_candidates`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IterativeOptions {
    /// Port and size constraints plus the returned-candidate cap,
    /// shared with the exact enumerator.
    pub enumerate: EnumerateOptions,
    /// How many gain-ranked seed nodes start their own cluster.
    pub seeds: usize,
    /// Kernighan–Lin improvement passes per seed cluster.
    pub max_passes: usize,
    /// Global score-evaluation budget (the anytime knob): every toggle
    /// or growth evaluation costs one unit; at zero the generator stops
    /// and returns what it has.
    pub move_budget: u64,
    /// Deterministic tie-break seed.
    pub seed: u64,
}

impl Default for IterativeOptions {
    /// Defaults sized so the 22-kernel suite converges well inside the
    /// budget while a 2000-node DFG still finishes promptly.
    fn default() -> Self {
        IterativeOptions {
            enumerate: EnumerateOptions::default(),
            seeds: 48,
            max_passes: 4,
            move_budget: 20_000,
            seed: 0,
        }
    }
}

/// Statistics for one [`iterative_candidates_with_stats`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterStats {
    /// Seed clusters processed.
    pub seeds: u64,
    /// Kernighan–Lin passes run.
    pub passes: u64,
    /// Score evaluations charged against the move budget.
    pub evaluated: u64,
    /// Toggle moves committed inside passes (before prefix revert).
    pub moves: u64,
    /// Working cuts replaced by their convex hull.
    pub repairs: u64,
    /// Seeds whose pass loop exited early for lack of improvement.
    pub plateau_exits: u64,
    /// Distinct feasible cuts collected before the candidate cap.
    pub emitted: u64,
    /// Candidates returned after gain-ranking and the cap.
    pub accepted: u64,
    /// Whether the move budget ran out before all seeds converged.
    pub hit_move_budget: bool,
}

/// Generates custom-instruction candidates by iterative improvement; the
/// backend of choice past the 128-node enumeration wall.
///
/// Deterministic: output is a pure function of (`dfg`, `opts`).
pub fn iterative_candidates(dfg: &Dfg, opts: IterativeOptions) -> Vec<NodeSet> {
    iterative_candidates_with_stats(dfg, opts).0
}

/// Like [`iterative_candidates`], additionally returning [`IterStats`]
/// and publishing `ise.iterative.*` counters and `ise.iter.*` trace
/// events.
pub fn iterative_candidates_with_stats(
    dfg: &Dfg,
    opts: IterativeOptions,
) -> (Vec<NodeSet>, IterStats) {
    let _span = rtise_trace::span(rtise_trace::codes::ISE_ITER_SOLVE);
    let mut gen = Gen {
        dfg,
        hw: HwModel::default(),
        opts,
        budget: opts.move_budget,
        stats: IterStats::default(),
        depth: vec![0; dfg.len()],
        seen: HashSet::new(),
        out: Vec::new(),
    };
    gen.run();
    let Gen { mut out, stats, .. } = gen;
    // Gain-ranked, then smallest-first, then set order: a total order
    // independent of discovery order.
    out.sort_by(|a, b| {
        b.0.cmp(&a.0)
            .then(a.1.len().cmp(&b.1.len()))
            .then(a.1.cmp(&b.1))
    });
    out.truncate(opts.enumerate.max_candidates);
    let mut stats = stats;
    stats.accepted = out.len() as u64;
    rtise_obs::record("ise.iterative.calls", 1);
    rtise_obs::record("ise.iterative.seeds", stats.seeds);
    rtise_obs::record("ise.iterative.passes", stats.passes);
    rtise_obs::record("ise.iterative.moves", stats.moves);
    rtise_obs::record("ise.iterative.repairs", stats.repairs);
    rtise_obs::record("ise.iterative.plateau_exits", stats.plateau_exits);
    rtise_obs::record("ise.iterative.accepted", stats.accepted);
    rtise_trace::summary(
        rtise_trace::codes::ISE_ITER_SUMMARY,
        &[
            ("passes", stats.passes),
            ("moves", stats.moves),
            ("repairs", stats.repairs),
            ("plateaus", stats.plateau_exits),
            ("accepted", stats.accepted),
        ],
    );
    (out.into_iter().map(|(_, s)| s).collect(), stats)
}

/// SplitMix64 finalizer; the deterministic tie-break hash.
fn mix(seed: u64, x: u64) -> u64 {
    let mut z = seed.wrapping_add(x.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One candidate toggle under consideration in a pass.
struct Move {
    node: NodeId,
    /// Score of the cut *after* the toggle.
    score: i64,
    /// Additions win ties over removals (growth explores more space).
    is_removal: bool,
    /// Deterministic hash tie-break before the id itself.
    tie: u64,
}

impl Move {
    /// Whether `self` beats `other` under the total move order.
    fn beats(&self, other: &Move) -> bool {
        (self.score, !self.is_removal, other.tie, other.node.0)
            > (other.score, !other.is_removal, self.tie, self.node.0)
    }
}

struct Gen<'a> {
    dfg: &'a Dfg,
    hw: HwModel,
    opts: IterativeOptions,
    budget: u64,
    stats: IterStats,
    /// Scratch arrival-time table for the critical-path scorer. Never
    /// reset: member ids are visited ascending and every member's slot
    /// is rewritten before any same-evaluation read (args have smaller
    /// ids), so stale values are unobservable.
    depth: Vec<u64>,
    seen: HashSet<NodeSet>,
    out: Vec<(u64, NodeSet)>,
}

impl Gen<'_> {
    fn run(&mut self) {
        let opts = self.opts;
        // Gain-ranked seeds: real operations only, most software latency
        // first — the ops a custom instruction most wants to swallow.
        let mut seeds: Vec<NodeId> = self
            .dfg
            .ids()
            .filter(|&id| {
                let k = self.dfg.kind(id);
                k.is_ci_valid() && !k.is_pseudo()
            })
            .collect();
        seeds.sort_by_key(|&id| {
            (
                std::cmp::Reverse(self.dfg.kind(id).sw_latency()),
                mix(opts.seed, id.0 as u64),
                id.0,
            )
        });
        seeds.truncate(opts.seeds);

        for seed in seeds {
            if self.exhausted() {
                break;
            }
            self.stats.seeds += 1;
            let salt = mix(opts.seed, seed.0 as u64 ^ 0xD1F7);
            let mut cut = self.dfg.empty_set();
            cut.insert(seed);
            self.emit(&cut);
            self.grow(&mut cut, salt);
            self.repair(&mut cut);
            self.emit(&cut);
            let mut best = self.score(&cut);
            for _ in 0..opts.max_passes {
                if self.exhausted() {
                    break;
                }
                let moves = self.kl_pass(&mut cut, salt);
                self.stats.passes += 1;
                self.repair(&mut cut);
                self.emit(&cut);
                let now = self.score(&cut);
                rtise_trace::instant_with(
                    rtise_trace::codes::ISE_ITER_PASS,
                    &[("moves", moves), ("score", now.max(0) as u64)],
                );
                if now <= best {
                    self.stats.plateau_exits += 1;
                    rtise_trace::instant(rtise_trace::codes::ISE_ITER_PLATEAU);
                    break;
                }
                best = now;
            }
        }
        if self.budget == 0 {
            self.stats.hit_move_budget = true;
        }
    }

    fn exhausted(&self) -> bool {
        self.budget == 0
    }

    /// The move-rule objective: cycle gain of the cut, minus a penalty
    /// of 4 per port over budget. I/O violations are *soft* during
    /// improvement — a pass may move through an over-ported shape to
    /// reach a better legal one — and emission certifies legality.
    fn score(&mut self, cut: &NodeSet) -> i64 {
        self.stats.evaluated += 1;
        self.budget = self.budget.saturating_sub(1);
        if cut.is_empty() {
            return 0;
        }
        let sw = self.dfg.sw_latency(cut) as i64;
        let mut max_ps = 0u64;
        for id in cut.iter() {
            let arrive = self
                .dfg
                .args(id)
                .iter()
                .filter(|a| cut.contains(**a))
                .map(|a| self.depth[a.0])
                .max()
                .unwrap_or(0);
            self.depth[id.0] = arrive + self.hw.latency_ps(self.dfg.kind(id));
            max_ps = max_ps.max(self.depth[id.0]);
        }
        let hw_cycles = max_ps.div_ceil(self.hw.cycle_ps).max(1) as i64;
        let io = self.dfg.io_counts(cut);
        let excess = io.inputs.saturating_sub(self.opts.enumerate.max_in)
            + io.outputs.saturating_sub(self.opts.enumerate.max_out);
        sw - hw_cycles - 4 * excess as i64
    }

    /// Boundary nodes addable to `cut`: CI-valid non-pseudo args and
    /// consumers of members, in ascending id order.
    fn neighbours(&self, cut: &NodeSet) -> NodeSet {
        let mut nb = self.dfg.empty_set();
        for m in cut.iter() {
            for &p in self.dfg.args(m).iter().chain(self.dfg.consumers(m)) {
                if !cut.contains(p)
                    && self.dfg.kind(p).is_ci_valid()
                    && !self.dfg.kind(p).is_pseudo()
                {
                    nb.insert(p);
                }
            }
        }
        nb
    }

    /// Greedy seeding: add the best-scoring neighbour while any addition
    /// improves the score at all.
    fn grow(&mut self, cut: &mut NodeSet, salt: u64) {
        let mut cur = self.score(cut);
        while cut.len() < self.opts.enumerate.max_nodes && !self.exhausted() {
            let mut best: Option<Move> = None;
            for nb in self.neighbours(cut).iter() {
                if self.exhausted() {
                    break;
                }
                cut.insert(nb);
                let s = self.score(cut);
                cut.remove(nb);
                let m = Move {
                    node: nb,
                    score: s,
                    is_removal: false,
                    tie: mix(salt, nb.0 as u64),
                };
                if best.as_ref().is_none_or(|b| m.beats(b)) {
                    best = Some(m);
                }
            }
            match best {
                Some(m) if m.score > cur => {
                    cut.insert(m.node);
                    cur = m.score;
                }
                _ => break,
            }
        }
    }

    /// One Kernighan–Lin pass: commit up to `2 * max_nodes` best toggles
    /// (locking each toggled node), then revert to the best prefix of
    /// the move sequence. Returns the committed move count.
    fn kl_pass(&mut self, cut: &mut NodeSet, salt: u64) -> u64 {
        let start = self.score(cut);
        let mut locked = self.dfg.empty_set();
        let mut trail: Vec<NodeId> = Vec::new();
        let mut best_score = start;
        let mut best_prefix = 0usize;
        let max_moves = 2 * self.opts.enumerate.max_nodes;
        while trail.len() < max_moves && !self.exhausted() {
            let mut best: Option<Move> = None;
            if cut.len() < self.opts.enumerate.max_nodes {
                for nb in self.neighbours(cut).iter() {
                    if locked.contains(nb) || self.exhausted() {
                        continue;
                    }
                    cut.insert(nb);
                    let s = self.score(cut);
                    cut.remove(nb);
                    let m = Move {
                        node: nb,
                        score: s,
                        is_removal: false,
                        tie: mix(salt, nb.0 as u64),
                    };
                    if best.as_ref().is_none_or(|b| m.beats(b)) {
                        best = Some(m);
                    }
                }
            }
            if cut.len() > 1 {
                for node in cut.clone().iter() {
                    if locked.contains(node) || self.exhausted() {
                        continue;
                    }
                    cut.remove(node);
                    let s = self.score(cut);
                    cut.insert(node);
                    let m = Move {
                        node,
                        score: s,
                        is_removal: true,
                        tie: mix(salt, node.0 as u64),
                    };
                    if best.as_ref().is_none_or(|b| m.beats(b)) {
                        best = Some(m);
                    }
                }
            }
            let Some(m) = best else { break };
            cut.toggle(m.node);
            locked.insert(m.node);
            trail.push(m.node);
            self.stats.moves += 1;
            if m.score > best_score {
                best_score = m.score;
                best_prefix = trail.len();
            }
        }
        for &n in trail[best_prefix..].iter().rev() {
            cut.toggle(n);
        }
        trail.len() as u64
    }

    /// Pulls a non-convex working cut back to its convex hull when the
    /// hull is legal and fits; otherwise leaves the cut alone (emission
    /// filters infeasible components, and later removals may fix it).
    fn repair(&mut self, cut: &mut NodeSet) {
        if self.dfg.is_convex(cut) {
            return;
        }
        if let Some(hull) = convex_hull(self.dfg, cut, self.opts.enumerate.max_nodes) {
            *cut = hull;
            self.stats.repairs += 1;
            rtise_trace::instant(rtise_trace::codes::ISE_ITER_REPAIR);
        }
    }

    /// Certifies and collects every feasible weakly-connected component
    /// of the working cut. Components of a convex feasible set are
    /// convex with a subset of the parent's ports, so splitting never
    /// discards a legal cut — and keeps every emission inside the space
    /// the exact (connected) enumerator covers.
    fn emit(&mut self, cut: &NodeSet) {
        for comp in components(self.dfg, cut) {
            if comp.len() <= self.opts.enumerate.max_nodes
                && self.dfg.is_feasible_ci(
                    &comp,
                    self.opts.enumerate.max_in,
                    self.opts.enumerate.max_out,
                )
                && !self.seen.contains(&comp)
            {
                let gain = self.hw.ci_gain(self.dfg, &comp);
                self.seen.insert(comp.clone());
                self.out.push((gain, comp));
                self.stats.emitted += 1;
            }
        }
    }
}

/// Splits `cut` into weakly-connected components (data edges only).
fn components(dfg: &Dfg, cut: &NodeSet) -> Vec<NodeSet> {
    let mut comps = Vec::new();
    let mut visited = dfg.empty_set();
    for start in cut.iter() {
        if visited.contains(start) {
            continue;
        }
        let mut comp = dfg.empty_set();
        comp.insert(start);
        visited.insert(start);
        let mut stack = vec![start];
        while let Some(m) = stack.pop() {
            for &p in dfg.args(m).iter().chain(dfg.consumers(m)) {
                if cut.contains(p) && !visited.contains(p) {
                    visited.insert(p);
                    comp.insert(p);
                    stack.push(p);
                }
            }
        }
        comps.push(comp);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::enumerate_connected_with_stats;
    use rtise_ir::op::OpKind;
    use rtise_obs::Rng;

    /// A two-output diamond over a shared add.
    fn diamond() -> Dfg {
        let mut g = Dfg::new();
        let a = g.input(0);
        let b = g.input(1);
        let add = g.bin(OpKind::Add, a, b);
        let mul = g.bin_imm(OpKind::Mul, add, 3);
        let sub = g.bin_imm(OpKind::Sub, add, 1);
        let x = g.bin(OpKind::Xor, mul, sub);
        g.output(0, x);
        g
    }

    /// A random layered DAG of `n` real ops (same shape family the fuzz
    /// generators use).
    fn layered(n: usize, seed: u64) -> Dfg {
        let mut rng = Rng::new(seed);
        let mut g = Dfg::new();
        let mut pool: Vec<NodeId> = (0..4).map(|i| g.input(i)).collect();
        const KINDS: [OpKind; 5] = [
            OpKind::Add,
            OpKind::Sub,
            OpKind::Mul,
            OpKind::Xor,
            OpKind::And,
        ];
        while g.op_count() < n {
            let k = KINDS[rng.gen_range(0..KINDS.len())];
            let a = pool[rng.gen_range(0..pool.len())];
            let b = pool[rng.gen_range(0..pool.len())];
            pool.push(g.bin(k, a, b));
        }
        let last = *pool.last().unwrap();
        g.output(0, last);
        g
    }

    #[test]
    fn every_candidate_is_feasible_and_connected() {
        for seed in [1u64, 7, 42] {
            let g = layered(60, seed);
            let opts = IterativeOptions::default();
            let (cands, stats) = iterative_candidates_with_stats(&g, opts);
            assert!(!cands.is_empty(), "seed {seed}");
            assert_eq!(stats.accepted as usize, cands.len());
            let mut uniq = HashSet::new();
            for s in &cands {
                assert!(g.is_feasible_ci(s, opts.enumerate.max_in, opts.enumerate.max_out));
                assert!(s.len() <= opts.enumerate.max_nodes);
                assert_eq!(components(&g, s).len(), 1, "must be connected: {s:?}");
                assert!(uniq.insert(s.clone()), "duplicate emitted: {s:?}");
            }
        }
    }

    #[test]
    fn same_options_give_byte_identical_output() {
        let g = layered(80, 3);
        let opts = IterativeOptions::default();
        let (c1, s1) = iterative_candidates_with_stats(&g, opts);
        let (c2, s2) = iterative_candidates_with_stats(&g, opts);
        assert_eq!(c1, c2);
        assert_eq!(s1, s2);
    }

    /// The full trace — solve span, per-pass instants, plateau markers,
    /// summary — is part of the determinism contract: two runs with the
    /// same seed and budget produce byte-identical virtual-clock events.
    #[test]
    fn traces_are_byte_identical_per_seed_and_budget() {
        let g = layered(60, 5);
        let opts = IterativeOptions {
            move_budget: 2_000,
            ..IterativeOptions::default()
        };
        let run = || {
            let scope = rtise_trace::TraceScope::new(rtise_trace::Clock::Virtual);
            {
                let _active = scope.enter();
                let _ = iterative_candidates(&g, opts);
            }
            (scope.events(), scope.dropped())
        };
        let first = run();
        assert!(
            first
                .0
                .iter()
                .any(|e| e.name == rtise_trace::codes::ISE_ITER_SOLVE),
            "trace should contain the iterative solve span"
        );
        assert_eq!(first, run());
    }

    #[test]
    fn never_beats_the_exact_optimum_on_small_graphs() {
        let hw = HwModel::default();
        for seed in 0..8u64 {
            let g = layered(20, seed * 11 + 1);
            // Cap candidate size so exhaustive enumeration stays fast;
            // both sides search the same bounded space.
            let opts = EnumerateOptions {
                max_candidates: 500_000,
                max_nodes: 8,
                ..EnumerateOptions::default()
            };
            let (exact, stats) = enumerate_connected_with_stats(&g, opts);
            assert!(
                !stats.hit_candidate_cap && !stats.hit_visited_cap,
                "exact must complete uncapped for the comparison to mean anything"
            );
            let exact_best = exact.iter().map(|s| hw.ci_gain(&g, s)).max().unwrap_or(0);
            let iter_opts = IterativeOptions {
                enumerate: opts,
                ..IterativeOptions::default()
            };
            let iter = iterative_candidates(&g, iter_opts);
            let iter_best = iter.iter().map(|s| hw.ci_gain(&g, s)).max().unwrap_or(0);
            assert!(
                iter_best <= exact_best,
                "seed {seed}: iterative {iter_best} beats certified optimum {exact_best}"
            );
        }
    }

    #[test]
    fn finds_the_full_diamond() {
        let g = diamond();
        let cands = iterative_candidates(&g, IterativeOptions::default());
        assert!(
            cands.iter().any(|s| s.len() == 4),
            "the whole diamond is the best cut: {cands:?}"
        );
    }

    #[test]
    fn scales_past_the_enumeration_wall() {
        let g = layered(600, 9);
        assert!(g.len() > 128);
        let opts = IterativeOptions::default();
        let (cands, stats) = iterative_candidates_with_stats(&g, opts);
        assert!(!cands.is_empty());
        assert!(stats.seeds >= 1);
        for s in &cands {
            assert!(g.is_feasible_ci(s, opts.enumerate.max_in, opts.enumerate.max_out));
        }
    }

    #[test]
    fn move_budget_makes_it_anytime() {
        let g = layered(200, 5);
        let tight = IterativeOptions {
            move_budget: 64,
            ..IterativeOptions::default()
        };
        let (cands, stats) = iterative_candidates_with_stats(&g, tight);
        assert!(stats.hit_move_budget);
        assert!(stats.evaluated <= 64 + 1, "budget bounds the work");
        // Still anytime: whatever was certified before exhaustion is kept.
        for s in &cands {
            assert!(g.is_feasible_ci(s, 4, 2));
        }
        // A zero budget returns immediately and empty-handed but sanely.
        let zero = IterativeOptions {
            move_budget: 0,
            ..IterativeOptions::default()
        };
        let (cands0, stats0) = iterative_candidates_with_stats(&g, zero);
        assert!(stats0.hit_move_budget);
        assert!(cands0.len() <= 1, "at most the first singleton: {cands0:?}");
    }

    #[test]
    fn different_seeds_are_both_valid() {
        let g = layered(100, 13);
        for s in [0u64, 1, 99] {
            let opts = IterativeOptions {
                seed: s,
                ..IterativeOptions::default()
            };
            for c in iterative_candidates(&g, opts) {
                assert!(g.is_feasible_ci(&c, 4, 2));
            }
        }
    }

    #[test]
    fn stats_and_counters_agree() {
        let _iso = rtise_obs::registry::isolate();
        let scope = rtise_obs::CounterScope::new();
        let guard = scope.enter();
        let g = layered(60, 21);
        let (_, stats) = iterative_candidates_with_stats(&g, IterativeOptions::default());
        drop(guard);
        let counters = scope.counters();
        assert_eq!(counters.get("ise.iterative.calls"), Some(&1));
        assert_eq!(counters.get("ise.iterative.seeds"), Some(&stats.seeds));
        assert_eq!(
            counters.get("ise.iterative.accepted"),
            Some(&stats.accepted)
        );
        if stats.repairs > 0 {
            assert_eq!(counters.get("ise.iterative.repairs"), Some(&stats.repairs));
        }
        assert!(stats.emitted >= stats.accepted);
    }

    #[test]
    fn candidate_cap_is_respected() {
        let g = layered(150, 2);
        let opts = IterativeOptions {
            enumerate: EnumerateOptions {
                max_candidates: 5,
                ..EnumerateOptions::default()
            },
            ..IterativeOptions::default()
        };
        let (cands, stats) = iterative_candidates_with_stats(&g, opts);
        assert!(cands.len() <= 5);
        assert_eq!(stats.accepted as usize, cands.len());
    }

    #[test]
    fn components_split_is_exact() {
        let mut g = Dfg::new();
        let a = g.input(0);
        let b = g.input(1);
        let x = g.bin_imm(OpKind::Mul, a, 3);
        let y = g.bin_imm(OpKind::Mul, b, 5);
        g.output(0, x);
        g.output(1, y);
        let mut cut = g.empty_set();
        cut.insert(x);
        cut.insert(y);
        let comps = components(&g, &cut);
        assert_eq!(comps.len(), 2);
        assert!(comps.iter().all(|c| c.len() == 1));
    }
}

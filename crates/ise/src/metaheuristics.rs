//! Metaheuristic selection baselines surveyed in §2.3.2: a genetic
//! algorithm (chromosome = candidate bit-vector, as in \[86\]) and simulated
//! annealing (as in \[43\]). Both trade optimality for analysis time and are
//! kept as comparison points for the exact branch-and-bound; the ablation
//! experiments quantify the gap.

use crate::candidate::CiCandidate;
use crate::select::Selection;

/// A deterministic xorshift64* generator — keeps the crate free of runtime
/// dependencies while making every run reproducible.
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next() % den < num
    }
}

/// Repairs a genome to feasibility: drop conflicting/over-budget genes,
/// lowest gain/area ratio first.
fn repair(genome: &mut [bool], cands: &[CiCandidate], budget: u64) {
    // Deterministic drop order: worst ratio first.
    let mut order: Vec<usize> = (0..cands.len()).filter(|&i| genome[i]).collect();
    order.sort_by(|&a, &b| {
        let ra = cands[a].total_gain() as u128 * cands[b].area.max(1) as u128;
        let rb = cands[b].total_gain() as u128 * cands[a].area.max(1) as u128;
        ra.cmp(&rb)
    });
    // Resolve conflicts: keep the better of any conflicting pair.
    for (pos, &i) in order.iter().enumerate() {
        if !genome[i] {
            continue;
        }
        for &j in &order[pos + 1..] {
            if genome[j] && cands[i].conflicts_with(&cands[j]) {
                genome[i] = false;
                break;
            }
        }
    }
    // Enforce the budget.
    let mut area: u64 = (0..cands.len())
        .filter(|&i| genome[i])
        .map(|i| cands[i].area)
        .sum();
    for &i in &order {
        if area <= budget {
            break;
        }
        if genome[i] {
            genome[i] = false;
            area -= cands[i].area;
        }
    }
}

fn fitness(genome: &[bool], cands: &[CiCandidate]) -> u64 {
    genome
        .iter()
        .zip(cands)
        .filter(|(&g, _)| g)
        .map(|(_, c)| c.total_gain())
        .sum()
}

fn to_selection(genome: &[bool], cands: &[CiCandidate]) -> Selection {
    let chosen: Vec<usize> = (0..cands.len()).filter(|&i| genome[i]).collect();
    Selection {
        total_gain: chosen.iter().map(|&i| cands[i].total_gain()).sum(),
        total_area: chosen.iter().map(|&i| cands[i].area).sum(),
        chosen,
    }
}

/// Options for [`genetic_select`].
#[derive(Debug, Clone, Copy)]
pub struct GaOptions {
    /// Population size.
    pub population: usize,
    /// Generations to evolve.
    pub generations: usize,
    /// Mutation probability per gene, as a permille.
    pub mutation_permille: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GaOptions {
    fn default() -> Self {
        GaOptions {
            population: 32,
            generations: 60,
            mutation_permille: 30,
            seed: 0x6e6e,
        }
    }
}

/// Genetic-algorithm selection \[86\]: uniform crossover, per-gene mutation,
/// feasibility repair, elitist replacement.
pub fn genetic_select(cands: &[CiCandidate], budget: u64, opts: GaOptions) -> Selection {
    if cands.is_empty() {
        return Selection::default();
    }
    let n = cands.len();
    let mut rng = Rng(opts.seed.max(1));
    // Seed the population with random genomes plus the greedy solution.
    let mut pop: Vec<Vec<bool>> = (0..opts.population.max(2))
        .map(|_| {
            let mut g: Vec<bool> = (0..n).map(|_| rng.chance(1, 3)).collect();
            repair(&mut g, cands, budget);
            g
        })
        .collect();
    let greedy = crate::select::greedy_by_ratio(cands, budget);
    let mut seed_genome = vec![false; n];
    for &i in &greedy.chosen {
        seed_genome[i] = true;
    }
    pop[0] = seed_genome;

    let mut best = pop
        .iter()
        .max_by_key(|g| fitness(g, cands))
        .cloned()
        .expect("non-empty population");
    for _gen in 0..opts.generations {
        let mut next = Vec::with_capacity(pop.len());
        next.push(best.clone()); // elitism
        while next.len() < pop.len() {
            // Binary-tournament parents.
            let pick = |rng: &mut Rng| {
                let a = rng.below(pop.len());
                let b = rng.below(pop.len());
                if fitness(&pop[a], cands) >= fitness(&pop[b], cands) {
                    a
                } else {
                    b
                }
            };
            let (pa, pb) = (pick(&mut rng), pick(&mut rng));
            let mut child: Vec<bool> = (0..n)
                .map(|i| {
                    if rng.chance(1, 2) {
                        pop[pa][i]
                    } else {
                        pop[pb][i]
                    }
                })
                .collect();
            for gene in child.iter_mut() {
                if rng.chance(opts.mutation_permille, 1000) {
                    *gene = !*gene;
                }
            }
            repair(&mut child, cands, budget);
            next.push(child);
        }
        pop = next;
        if let Some(gen_best) = pop.iter().max_by_key(|g| fitness(g, cands)) {
            if fitness(gen_best, cands) > fitness(&best, cands) {
                best = gen_best.clone();
            }
        }
    }
    to_selection(&best, cands)
}

/// Options for [`simulated_annealing_select`].
#[derive(Debug, Clone, Copy)]
pub struct SaOptions {
    /// Number of proposal steps.
    pub steps: usize,
    /// Initial temperature (in gain units).
    pub initial_temp: f64,
    /// Geometric cooling factor per step.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SaOptions {
    fn default() -> Self {
        SaOptions {
            steps: 4_000,
            initial_temp: 500.0,
            cooling: 0.999,
            seed: 0x5a5a,
        }
    }
}

/// Simulated-annealing selection \[43\]: single-gene flip proposals with
/// feasibility repair, Metropolis acceptance, geometric cooling.
pub fn simulated_annealing_select(
    cands: &[CiCandidate],
    budget: u64,
    opts: SaOptions,
) -> Selection {
    if cands.is_empty() {
        return Selection::default();
    }
    let n = cands.len();
    let mut rng = Rng(opts.seed.max(1));
    let greedy = crate::select::greedy_by_ratio(cands, budget);
    let mut cur = vec![false; n];
    for &i in &greedy.chosen {
        cur[i] = true;
    }
    let mut cur_fit = fitness(&cur, cands) as f64;
    let mut best = cur.clone();
    let mut best_fit = cur_fit;
    let mut temp = opts.initial_temp.max(1e-6);
    for _ in 0..opts.steps {
        let flip = rng.below(n);
        let mut cand = cur.clone();
        cand[flip] = !cand[flip];
        repair(&mut cand, cands, budget);
        let fit = fitness(&cand, cands) as f64;
        let accept = fit >= cur_fit || {
            // Metropolis with a fixed-point uniform draw.
            let u = (rng.next() % 1_000_000) as f64 / 1_000_000.0;
            u < ((fit - cur_fit) / temp).exp()
        };
        if accept {
            cur = cand;
            cur_fit = fit;
            if cur_fit > best_fit {
                best = cur.clone();
                best_fit = cur_fit;
            }
        }
        temp *= opts.cooling;
    }
    to_selection(&best, cands)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::branch_and_bound;
    use rtise_ir::cfg::BlockId;
    use rtise_ir::nodeset::NodeSet;

    fn cand(block: usize, nodes: &[usize], area: u64, gain: u64) -> CiCandidate {
        let mut set = NodeSet::with_capacity(64);
        for &n in nodes {
            set.insert(rtise_ir::dfg::NodeId(n));
        }
        CiCandidate {
            block: BlockId(block),
            nodes: set,
            area,
            hw_cycles: 1,
            sw_cycles: 1 + gain,
            exec_count: 1,
        }
    }

    fn library(seed: u64, n: usize) -> Vec<CiCandidate> {
        let mut rng = Rng(seed);
        (0..n)
            .map(|_| {
                let lo = rng.below(12);
                let hi = lo + 1 + rng.below(3);
                let nodes: Vec<usize> = (lo..hi).collect();
                cand(
                    rng.below(3),
                    &nodes,
                    1 + rng.next() % 15,
                    1 + rng.next() % 25,
                )
            })
            .collect()
    }

    #[test]
    fn ga_solutions_are_feasible_and_bounded_by_exact() {
        for seed in 1..=8u64 {
            let cands = library(seed, 12);
            let budget = 40;
            let exact = branch_and_bound(&cands, budget);
            let ga = genetic_select(&cands, budget, GaOptions::default());
            assert!(ga.is_valid(&cands, budget), "seed {seed}");
            assert!(ga.total_gain <= exact.total_gain, "seed {seed}");
        }
    }

    #[test]
    fn sa_solutions_are_feasible_and_bounded_by_exact() {
        for seed in 1..=8u64 {
            let cands = library(seed * 7, 12);
            let budget = 40;
            let exact = branch_and_bound(&cands, budget);
            let sa = simulated_annealing_select(&cands, budget, SaOptions::default());
            assert!(sa.is_valid(&cands, budget), "seed {seed}");
            assert!(sa.total_gain <= exact.total_gain, "seed {seed}");
        }
    }

    #[test]
    fn metaheuristics_escape_the_greedy_trap() {
        // The knapsack trap of the select tests: greedy takes the
        // high-ratio item and misses the optimum; GA/SA should find it.
        let cands = vec![
            cand(0, &[0], 6, 10),
            cand(0, &[1], 5, 8),
            cand(0, &[2], 5, 8),
        ];
        let greedy = crate::select::greedy_by_ratio(&cands, 10);
        assert_eq!(greedy.total_gain, 10);
        let ga = genetic_select(&cands, 10, GaOptions::default());
        assert_eq!(ga.total_gain, 16, "GA finds the 8+8 pairing");
        let sa = simulated_annealing_select(&cands, 10, SaOptions::default());
        assert_eq!(sa.total_gain, 16, "SA finds the 8+8 pairing");
    }

    #[test]
    fn empty_library_yields_empty_selection() {
        assert_eq!(
            genetic_select(&[], 10, GaOptions::default()),
            Selection::default()
        );
        assert_eq!(
            simulated_annealing_select(&[], 10, SaOptions::default()),
            Selection::default()
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cands = library(3, 10);
        let a = genetic_select(&cands, 30, GaOptions::default());
        let b = genetic_select(&cands, 30, GaOptions::default());
        assert_eq!(a, b);
        let c = simulated_annealing_select(&cands, 30, SaOptions::default());
        let d = simulated_annealing_select(&cands, 30, SaOptions::default());
        assert_eq!(c, d);
    }
}

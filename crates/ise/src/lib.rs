//! # rtise-ise
//!
//! Automated custom-instruction generation for a single task, following the
//! two-phase flow of §2.3:
//!
//! 1. **Identification** ([`enumerate`]) — enumerate feasible candidate
//!    subgraphs of each hot basic block's DFG: maximal multiple-input
//!    single-output (MaxMISO) patterns and connected convex MIMO subgraphs
//!    under input/output port constraints.
//! 2. **Selection** ([`select`]) — pick a non-overlapping subset of
//!    candidates maximizing profiled cycle gain under a silicon-area budget:
//!    a gain/area greedy, an exact branch-and-bound, and the Iterative
//!    Selection (IS) baseline of Pozzi et al. used for comparison in
//!    Chapter 5.
//!
//! On top of both sits [`configs`], which sweeps area budgets to produce a
//! task's *configuration curve* — the (area, cycles) staircase of Fig. 3.1
//! that the multi-task selectors of Chapters 3, 4 and 7 consume.

pub mod candidate;
pub mod configs;
pub mod enumerate;
pub mod iterative;
pub mod metaheuristics;
pub mod select;

pub use candidate::{harvest, CiCandidate, HarvestOptions};
pub use configs::{ConfigCurve, ConfigPoint};
pub use enumerate::{
    enumerate_connected, enumerate_disconnected, enumerate_with_backend, maximal_miso,
    EnumerateBackend, EnumerateOptions, MAX_FAST_NODES,
};
pub use iterative::{
    iterative_candidates, iterative_candidates_with_stats, IterStats, IterativeOptions,
};
pub use metaheuristics::{genetic_select, simulated_annealing_select, GaOptions, SaOptions};
pub use select::{
    branch_and_bound, branch_and_bound_with_cert, greedy_by_ratio, iterative_selection,
    IseCertEvent, IseCertificate, Selection,
};

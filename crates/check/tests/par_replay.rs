//! The decomposed parallel branch-and-bound searches must still *prove*
//! optimality: their stitched certificates replay clean through the same
//! unmodified checkers as the serial logs, and are byte-identical at any
//! thread count. Instances are generated with the deterministic
//! [`rtise_obs::Rng`], so failures reproduce exactly.

use rtise_check::bnb::{check_ilp_certificate, check_ise_certificate, check_rms_certificate};
use rtise_ilp::{Model, Sense};
use rtise_ir::cfg::BlockId;
use rtise_ir::nodeset::NodeSet;
use rtise_ise::configs::ConfigCurve;
use rtise_ise::select::branch_and_bound_par_with_cert_at_depth;
use rtise_ise::CiCandidate;
use rtise_obs::Rng;
use rtise_select::rms::select_rms_par_with_cert_at_depth;
use rtise_select::TaskSpec;

/// Random models deep enough that the ILP frontier decomposition
/// engages, mixing senses and row kinds; some are infeasible.
fn deep_model(rng: &mut Rng) -> Model {
    let n = rng.gen_range(7..=11usize);
    let mut m = Model::new(n);
    let sense = if rng.gen_bool(0.5) {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let obj: Vec<i64> = (0..n).map(|_| rng.gen_range(-20..=20i64)).collect();
    m.set_objective(sense, &obj);
    for _ in 0..rng.gen_range(1..4u32) {
        let mut terms: Vec<(usize, i64)> = Vec::new();
        for v in 0..n {
            if rng.gen_bool(0.7) {
                terms.push((v, rng.gen_range(-10..=10i64)));
            }
        }
        let rhs = rng.gen_range(-10..=15i64);
        match rng.gen_range(0..3u32) {
            0 => m.add_le(&terms, rhs),
            1 => m.add_ge(&terms, rhs),
            _ => m.add_eq(&terms, rhs),
        }
    }
    m
}

/// The frontier depths the adaptive sizing actually picks for small
/// pools, deduplicated (byte-identity across thread counts holds per
/// *depth*, so each comparison pins one).
fn sized_depths(max_depth: usize) -> Vec<usize> {
    let mut depths: Vec<usize> = [1, 2, 4]
        .iter()
        .map(|&t| rtise_obs::par::frontier_depth(max_depth, t))
        .collect();
    depths.dedup();
    depths
}

#[test]
fn parallel_ilp_certificates_replay_clean_at_any_thread_count() {
    let mut rng = Rng::new(0x9a7_c3e7);
    for case in 0..40 {
        let m = deep_model(&mut rng);
        for depth in sized_depths(rtise_ilp::PAR_FRONTIER_DEPTH) {
            let (res1, cert1) = m.solve_par_with_cert_at_depth(1, depth);
            assert_eq!(cert1.dropped, 0, "case {case}: log must be complete");
            let d = check_ilp_certificate(&m, res1.as_ref().ok(), &cert1);
            assert!(d.is_clean(), "case {case} depth {depth}: {d}");
            for threads in [2, 4] {
                let (rt, ct) = m.solve_par_with_cert_at_depth(threads, depth);
                assert_eq!(res1, rt, "case {case} depth {depth} threads {threads}");
                assert_eq!(cert1, ct, "case {case} depth {depth} threads {threads}");
            }
        }
    }
}

/// A synthetic candidate covering `nodes` of `block` in a 64-node DFG.
fn cand(block: usize, nodes: &[usize], area: u64, gain: u64) -> CiCandidate {
    let mut set = NodeSet::with_capacity(64);
    for &n in nodes {
        set.insert(rtise_ir::dfg::NodeId(n));
    }
    CiCandidate {
        block: BlockId(block),
        nodes: set,
        area,
        hw_cycles: 1,
        sw_cycles: 1 + gain,
        exec_count: 1,
    }
}

/// Random libraries deep enough that the ISE frontier decomposition
/// engages, with zero-area candidates and ratio ties in the mix.
fn deep_library(rng: &mut Rng) -> (Vec<CiCandidate>, u64) {
    let n = rng.gen_range(7..=12usize);
    let cands: Vec<CiCandidate> = (0..n)
        .map(|i| {
            let lo = rng.gen_range(0..12usize);
            let hi = lo + rng.gen_range(1..=4usize);
            let nodes: Vec<usize> = (lo..hi).collect();
            cand(
                i % 3,
                &nodes,
                rng.gen_range(0..9u64),
                rng.gen_range(0..20u64),
            )
        })
        .collect();
    (cands, rng.gen_range(0..30u64))
}

#[test]
fn parallel_ise_certificates_replay_clean_at_any_thread_count() {
    let mut rng = Rng::new(0x15e_c3e7);
    for case in 0..40 {
        let (cands, budget) = deep_library(&mut rng);
        for depth in sized_depths(rtise_ise::select::PAR_FRONTIER_DEPTH) {
            let (sel1, cert1) = branch_and_bound_par_with_cert_at_depth(&cands, budget, 1, depth);
            assert_eq!(cert1.dropped, 0, "case {case}: log must be complete");
            let d = check_ise_certificate(&cands, budget, &sel1, &cert1);
            assert!(d.is_clean(), "case {case} depth {depth}: {d}");
            for threads in [2, 4] {
                let (st, ct) =
                    branch_and_bound_par_with_cert_at_depth(&cands, budget, threads, depth);
                assert_eq!(sel1, st, "case {case} depth {depth} threads {threads}");
                assert_eq!(cert1, ct, "case {case} depth {depth} threads {threads}");
            }
        }
    }
}

/// Random RMS task sets deep enough (more tasks than the RMS frontier
/// depth) that the parallel decomposition engages; some are
/// unschedulable within the budget.
fn deep_task_set(rng: &mut Rng) -> (Vec<TaskSpec>, u64) {
    let n = rng.gen_range(5..=8usize);
    let specs: Vec<TaskSpec> = (0..n)
        .map(|i| {
            let base = rng.gen_range(2..8u64);
            let pts: Vec<(u64, u64)> = (0..rng.gen_range(0..4usize))
                .map(|k| {
                    (
                        rng.gen_range(1..10u64) * (k as u64 + 1),
                        rng.gen_range(1..=base),
                    )
                })
                .collect();
            let curve = ConfigCurve::from_points(format!("t{i}"), base, &pts);
            TaskSpec::new(curve, rng.gen_range(16..60u64))
        })
        .collect();
    (specs, rng.gen_range(0..30u64))
}

#[test]
fn parallel_rms_certificates_replay_clean_at_any_thread_count() {
    let mut rng = Rng::new(0x435_c3e7);
    for case in 0..40 {
        let (specs, budget) = deep_task_set(&mut rng);
        for depth in sized_depths(rtise_select::rms::PAR_FRONTIER_DEPTH) {
            let (res1, cert1) = select_rms_par_with_cert_at_depth(&specs, budget, 1, depth);
            assert_eq!(cert1.dropped, 0, "case {case}: log must be complete");
            let sel = res1.as_ref().ok().map(|(s, _)| s);
            let d = check_rms_certificate(&specs, budget, sel, &cert1);
            assert!(d.is_clean(), "case {case} depth {depth}: {d}");
            for threads in [2, 4] {
                let (rt, ct) = select_rms_par_with_cert_at_depth(&specs, budget, threads, depth);
                assert_eq!(res1, rt, "case {case} depth {depth} threads {threads}");
                assert_eq!(cert1, ct, "case {case} depth {depth} threads {threads}");
            }
        }
    }
}

/// The parallel log proves infeasibility too: a complete stitched log on
/// an infeasible model replays with no incumbent and no unjustified
/// prune.
#[test]
fn parallel_ilp_infeasibility_proofs_replay_clean() {
    let mut m = Model::new(8);
    m.set_objective(Sense::Minimize, &(0..8).map(|i| i - 4).collect::<Vec<_>>());
    let terms: Vec<(usize, i64)> = (0..8).map(|v| (v as usize, 1)).collect();
    m.add_ge(&terms, 9); // at most 8 ones available
    let (res, cert) = m.solve_par_with_cert(4);
    assert!(res.is_err());
    let d = check_ilp_certificate(&m, None, &cert);
    assert!(d.is_clean(), "{d}");
}

//! Satellite check: every multi-component candidate produced by
//! [`rtise_ise::enumerate_disconnected`] must pass the independent
//! candidate legality checks — disconnection must not smuggle in
//! non-convex, port-hungry, or invalid-node unions.

use rtise_check::cert::check_candidate_set;
use rtise_ir::nodeset::NodeSet;
use rtise_ise::{enumerate_connected, enumerate_disconnected, EnumerateOptions};

/// Number of weakly-connected components of `set` under data edges.
fn component_count(dfg: &rtise_ir::dfg::Dfg, set: &NodeSet) -> usize {
    let members: Vec<_> = set.iter().collect();
    let mut unseen: std::collections::HashSet<usize> = members.iter().map(|m| m.0).collect();
    let mut components = 0;
    while let Some(&start) = unseen.iter().next() {
        components += 1;
        let mut stack = vec![rtise_ir::NodeId(start)];
        unseen.remove(&start);
        while let Some(v) = stack.pop() {
            for n in dfg.args(v).iter().chain(dfg.consumers(v)) {
                if set.contains(*n) && unseen.remove(&n.0) {
                    stack.push(*n);
                }
            }
        }
    }
    components
}

#[test]
fn disconnected_candidates_pass_legality_checks() {
    // A tighter candidate cap than the default 5000: the pairing step is
    // quadratic in the library size, and a few hundred seeds per block
    // already exercise every kernel within seconds in debug builds.
    let opts = EnumerateOptions {
        max_candidates: 250,
        ..EnumerateOptions::default()
    };
    let mut total = 0usize;
    for kernel in rtise_kernels::suite() {
        for block in &kernel.program.blocks {
            let connected = enumerate_connected(&block.dfg, opts);
            let disconnected = enumerate_disconnected(&block.dfg, &connected, opts);
            for (i, set) in disconnected.iter().enumerate() {
                assert!(
                    component_count(&block.dfg, set) >= 2,
                    "{}/{}: candidate {i} is not multi-component",
                    kernel.name,
                    block.name
                );
                let d = check_candidate_set(&block.dfg, set, opts.max_in, opts.max_out, i);
                assert!(
                    d.is_clean(),
                    "{}/{}: disconnected candidate {i} fails legality: {d}",
                    kernel.name,
                    block.name
                );
                total += 1;
            }
        }
    }
    assert!(total > 0, "suite produced no disconnected candidates");
}

//! Seeded mutation tests: corrupt well-formed DFGs and verified solver
//! outputs in eight distinct ways and assert that rtise-check reports the
//! documented diagnostic code for each corruption class. Mutation sites
//! are picked with the deterministic [`rtise_obs::Rng`], so failures
//! reproduce exactly.

use rtise_check::cert::{
    check_candidate_set, check_ilp_solution, check_pareto_front, check_partitioning,
    check_selection,
};
use rtise_check::ir::{check_program, check_raw_dfg, raw_view};
use rtise_check::Code;
use rtise_graphpart::{Graph, Partitioning};
use rtise_ilp::{Model, Sense};
use rtise_ir::dfg::Dfg;
use rtise_ir::hw::HwModel;
use rtise_ir::nodeset::NodeSet;
use rtise_ir::op::OpKind;
use rtise_ise::select::greedy_by_ratio;
use rtise_ise::{enumerate_connected, harvest, EnumerateOptions, HarvestOptions};
use rtise_obs::Rng;
use rtise_select::pareto::{exact_pareto, Item};

const MAX_IN: usize = 4;
const MAX_OUT: usize = 2;

fn adpcm_dfg() -> Dfg {
    let kernel = rtise_kernels::suite()
        .into_iter()
        .find(|k| k.name == "adpcm_encode")
        .expect("adpcm_encode in suite");
    // Heaviest block: most room for interesting candidates.
    kernel
        .program
        .blocks
        .iter()
        .max_by_key(|b| b.dfg.len())
        .expect("non-empty program")
        .dfg
        .clone()
}

/// Mutation class 1 (`CAND002`): remove an interior node from a convex
/// candidate, leaving a hole a data path must cross.
#[test]
fn broken_convexity_is_caught() {
    let mut rng = Rng::new(0xC0DE_0001);
    let dfg = adpcm_dfg();
    let mut cands = enumerate_connected(&dfg, EnumerateOptions::default());
    rng.shuffle(&mut cands);
    let (set, interior) = cands
        .iter()
        .find_map(|set| {
            let interior = set.iter().find(|&v| {
                dfg.args(v).iter().any(|a| set.contains(*a))
                    && dfg.consumers(v).iter().any(|c| set.contains(*c))
            })?;
            Some((set.clone(), interior))
        })
        .expect("some candidate with an interior node");

    assert!(check_candidate_set(&dfg, &set, MAX_IN, MAX_OUT, 0).is_clean());
    let mutated: NodeSet = set.iter().filter(|&v| v != interior).collect();
    let d = check_candidate_set(&dfg, &mutated, MAX_IN, MAX_OUT, 0);
    assert!(d.has(Code::CAND002), "expected CAND002, got: {d}");
}

/// Mutation class 2 (`CAND003`): widen a reduction tree until its live
/// input count exceeds the register-file read ports.
#[test]
fn io_port_overflow_is_caught() {
    let mut rng = Rng::new(0xC0DE_0002);
    let width = rng.gen_range(5..9) as usize; // > MAX_IN by construction
    let mut g = Dfg::new();
    let mut adds = Vec::new();
    let mut acc = {
        let a = g.input(0);
        let b = g.input(1);
        g.bin(OpKind::Add, a, b)
    };
    adds.push(acc);
    for slot in 2..width {
        let next = g.input(slot);
        acc = g.bin(OpKind::Add, acc, next);
        adds.push(acc);
    }
    g.output(0, acc);
    let set: NodeSet = adds.into_iter().collect();

    let d = check_candidate_set(&g, &set, MAX_IN, MAX_OUT, 0);
    assert!(d.has(Code::CAND003), "expected CAND003, got: {d}");
    assert!(!d.has(Code::CAND002));
}

/// Mutation class 3 (`CERT004`): force a knapsack variable into a solved
/// ILP solution until a constraint row gives.
#[test]
fn ilp_row_violation_is_caught() {
    let mut rng = Rng::new(0xC0DE_0003);
    let n = 6usize;
    let areas: Vec<i64> = (0..n).map(|_| rng.gen_range(10..40) as i64).collect();
    let gains: Vec<i64> = (0..n).map(|_| rng.gen_range(5..90) as i64).collect();
    let budget: i64 = areas.iter().sum::<i64>() / 2;

    let mut m = Model::new(n);
    m.set_objective(Sense::Maximize, &gains);
    let terms: Vec<(usize, i64)> = areas.iter().copied().enumerate().collect();
    m.add_le(&terms, budget);
    let sol = m.solve().expect("knapsack is feasible");
    assert!(check_ilp_solution(&m, &sol).is_clean());

    let mut forged = sol.clone();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    for i in order {
        forged.values[i] = true;
        forged.objective = gains
            .iter()
            .zip(&forged.values)
            .map(|(&g, &x)| if x { g } else { 0 })
            .sum();
        if areas
            .iter()
            .zip(&forged.values)
            .map(|(&a, &x)| if x { a } else { 0 })
            .sum::<i64>()
            > budget
        {
            break;
        }
    }
    let d = check_ilp_solution(&m, &forged);
    assert!(d.has(Code::CERT004), "expected CERT004, got: {d}");
}

/// Mutation class 4 (`CERT007`): lift a Pareto point's value onto its
/// predecessor's, making it dominated.
#[test]
fn dominated_pareto_point_is_caught() {
    let mut rng = Rng::new(0xC0DE_0004);
    let items: Vec<Item> = (0..6)
        .map(|_| Item {
            delta: rng.gen_range(2u64..20),
            area: rng.gen_range(5u64..40),
        })
        .collect();
    let front = exact_pareto(200, &items);
    assert!(front.len() >= 2, "need at least two points to mutate");
    assert!(check_pareto_front(&front).is_clean());

    let mut mutated = front.clone();
    let i = rng.gen_range(1..mutated.len() as u64) as usize;
    mutated[i].value = mutated[i - 1].value;
    let d = check_pareto_front(&mutated);
    assert!(d.has(Code::CERT007), "expected CERT007, got: {d}");
}

/// Mutation class 5 (`CERT002`): grow a budget-tight selection past its
/// area budget (totals kept honest; overlap with existing picks is
/// irrelevant to the area sum, so `CERT002` must fire).
#[test]
fn area_budget_overrun_is_caught() {
    let mut rng = Rng::new(0xC0DE_0005);
    let kernel = rtise_kernels::suite()
        .into_iter()
        .find(|k| k.name == "adpcm_encode")
        .unwrap();
    let hw = HwModel::default();
    let exec = vec![1u64; kernel.program.blocks.len()];
    let cands = harvest(&kernel.program, &exec, &hw, HarvestOptions::default());
    assert!(cands.len() >= 2);

    let budget = cands.iter().map(|c| c.area).sum::<u64>() / 2;
    let sel = greedy_by_ratio(&cands, budget);
    assert!(check_selection(&cands, &sel, budget).is_clean());

    let mut forged = sel.clone();
    let mut order: Vec<usize> = (0..cands.len()).collect();
    rng.shuffle(&mut order);
    for i in order {
        if forged.chosen.contains(&i) {
            continue;
        }
        forged.chosen.push(i);
        forged.total_area += cands[i].area;
        forged.total_gain += cands[i].gain_per_exec() * cands[i].exec_count;
        if forged.total_area > budget {
            break;
        }
    }
    assert!(forged.total_area > budget, "mutation failed to overrun");
    let d = check_selection(&cands, &forged, budget);
    assert!(d.has(Code::CERT002), "expected CERT002, got: {d}");
}

/// Mutation class 6 (`IR007`): drop the trip-count bound of one natural
/// loop, making the program WCET-unanalyzable.
#[test]
fn dropped_loop_bound_is_caught() {
    let mut rng = Rng::new(0xC0DE_0006);
    let mut kernel = rtise_kernels::suite()
        .into_iter()
        .find(|k| !k.program.loop_bounds.is_empty())
        .expect("a kernel with loops");
    assert!(check_program(&kernel.program).is_clean());

    let mut headers: Vec<_> = kernel.program.loop_bounds.keys().copied().collect();
    headers.sort();
    let victim = headers[rng.gen_range(0..headers.len() as u64) as usize];
    kernel.program.loop_bounds.remove(&victim);
    let d = check_program(&kernel.program);
    assert!(d.has(Code::IR007), "expected IR007, got: {d}");
}

/// Mutation class 7 (`IR003`): rewire an operand onto one of the node's
/// own consumers, closing a data-flow cycle.
#[test]
fn dfg_cycle_is_caught() {
    let mut rng = Rng::new(0xC0DE_0007);
    let dfg = adpcm_dfg();
    let mut raw = raw_view(&dfg);
    assert!(check_raw_dfg(&raw, None).is_clean());

    let mut sites: Vec<(usize, usize)> = Vec::new();
    for v in dfg.ids() {
        if raw[v.0].args.is_empty() {
            continue;
        }
        for &c in dfg.consumers(v) {
            sites.push((v.0, c.0));
        }
    }
    assert!(!sites.is_empty());
    let (v, c) = sites[rng.gen_range(0..sites.len() as u64) as usize];
    let slot = rng.gen_range(0..raw[v].args.len() as u64) as usize;
    raw[v].args[slot] = c;
    let d = check_raw_dfg(&raw, None);
    assert!(d.has(Code::IR003), "expected IR003, got: {d}");
}

/// Mutation class 8 (`CERT009`): collapse a balanced bisection onto one
/// part, violating the balance contract.
#[test]
fn unbalanced_partition_is_caught() {
    let mut rng = Rng::new(0xC0DE_0008);
    let n = 16usize;
    let weights: Vec<u64> = (0..n).map(|_| rng.gen_range(1u64..9)).collect();
    let mut g = Graph::new(weights);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n, rng.gen_range(1u64..5));
    }
    let balanced = Partitioning {
        assignment: (0..n).map(|v| v % 2).collect(),
        k: 2,
    };
    let cut = balanced.edge_cut(&g);
    assert!(check_partitioning(&g, &balanced, Some(cut)).is_clean());

    let collapsed = Partitioning {
        assignment: vec![0; n],
        k: 2,
    };
    let cut = collapsed.edge_cut(&g);
    let d = check_partitioning(&g, &collapsed, Some(cut));
    assert!(d.has(Code::CERT009), "expected CERT009, got: {d}");
}

//! Seeded mutation tests for the branch-and-bound certificate replayers:
//! corrupt verified-clean optimality certificates in eight distinct ways
//! and assert the documented `CERTB` code for each corruption class.
//! Instances are generated with the deterministic [`rtise_obs::Rng`], so
//! failures reproduce exactly.

use rtise_check::bnb::{check_ilp_certificate, check_ise_certificate, check_rms_certificate};
use rtise_check::Code;
use rtise_ilp::{IlpCertEvent, Model, Sense};
use rtise_ir::cfg::BlockId;
use rtise_ir::nodeset::NodeSet;
use rtise_ise::configs::ConfigCurve;
use rtise_ise::select::{branch_and_bound_with_cert, branch_and_bound_with_cert_capped};
use rtise_ise::{CiCandidate, IseCertEvent};
use rtise_obs::Rng;
use rtise_select::rms::{select_rms_with_cert, RmsCertEvent};
use rtise_select::TaskSpec;

/// A feasible knapsack whose root node always branches: distinct positive
/// gains (so the variable order is unambiguous), non-negative weights and
/// a non-negative budget (so row 0 is satisfiable at the root).
fn knapsack(rng: &mut Rng) -> Model {
    let n = rng.gen_range(5..=8usize);
    let mut m = Model::new(n);
    let gains: Vec<i64> = (0..n)
        .map(|i| rng.gen_range(1..=9i64) + 10 * i as i64)
        .collect();
    m.set_objective(Sense::Maximize, &gains);
    let terms: Vec<(usize, i64)> = (0..n).map(|v| (v, rng.gen_range(1..=6i64))).collect();
    m.add_le(&terms, rng.gen_range(4..=10i64));
    m
}

/// A synthetic candidate covering `nodes` of `block` in a 64-node DFG.
fn cand(block: usize, nodes: &[usize], area: u64, gain: u64) -> CiCandidate {
    let mut set = NodeSet::with_capacity(64);
    for &n in nodes {
        set.insert(rtise_ir::dfg::NodeId(n));
    }
    CiCandidate {
        block: BlockId(block),
        nodes: set,
        area,
        hw_cycles: 1,
        sw_cycles: 1 + gain,
        exec_count: 1,
    }
}

fn ise_library(rng: &mut Rng) -> (Vec<CiCandidate>, u64) {
    let n = rng.gen_range(6..=10usize);
    let cands: Vec<CiCandidate> = (0..n)
        .map(|i| {
            let lo = rng.gen_range(0..10usize);
            let hi = lo + rng.gen_range(1..=3usize);
            let nodes: Vec<usize> = (lo..hi).collect();
            cand(
                i % 3,
                &nodes,
                rng.gen_range(1..8u64),
                rng.gen_range(1..15u64),
            )
        })
        .collect();
    let budget = rng.gen_range(5..20u64);
    (cands, budget)
}

fn spec(name: &str, base: u64, period: u64, pts: &[(u64, u64)]) -> TaskSpec {
    TaskSpec::new(ConfigCurve::from_points(name, base, pts), period)
}

/// Schedulable in software at generous periods, with hardware points a
/// tight budget must reject — guaranteeing `CfgArea` events in the log.
fn rms_instance(rng: &mut Rng) -> (Vec<TaskSpec>, u64) {
    let specs = vec![
        spec("a", rng.gen_range(2..5u64), 50, &[(6, 1), (9, 1)]),
        spec("b", rng.gen_range(2..5u64), 60, &[(7, 1)]),
        spec("c", rng.gen_range(2..5u64), 70, &[(8, 2)]),
    ];
    (specs, 5)
}

/// Class 1 (`CERTB001`): drop the final recorded node — the replayed
/// branching declares a larger tree than the log contains.
#[test]
fn dropped_node_is_caught() {
    let mut rng = Rng::new(0xC0DE_1001);
    let m = knapsack(&mut rng);
    let (res, mut cert) = m.solve_with_cert();
    let sol = res.expect("feasible");
    assert!(check_ilp_certificate(&m, Some(&sol), &cert).is_clean());
    cert.events.pop().expect("non-empty log");
    let d = check_ilp_certificate(&m, Some(&sol), &cert);
    assert!(d.has(Code::CERTB001), "expected CERTB001, got: {d}");
}

/// Class 2 (`CERTB001`): permute the declared variable order — the
/// events no longer describe the model's canonical search space.
#[test]
fn forged_variable_order_is_caught() {
    let mut rng = Rng::new(0xC0DE_1002);
    let m = knapsack(&mut rng);
    let (res, mut cert) = m.solve_with_cert();
    let sol = res.expect("feasible");
    assert!(check_ilp_certificate(&m, Some(&sol), &cert).is_clean());
    cert.order.swap(0, 1);
    let d = check_ilp_certificate(&m, Some(&sol), &cert);
    assert!(d.has(Code::CERTB001), "expected CERTB001, got: {d}");
}

/// Class 3 (`CERTB002`): claim a bound prune at the root, where no
/// incumbent exists and the whole space is still open.
#[test]
fn inflated_bound_prune_is_caught() {
    let mut rng = Rng::new(0xC0DE_1003);
    let m = knapsack(&mut rng);
    let (res, mut cert) = m.solve_with_cert();
    let sol = res.expect("feasible");
    assert!(matches!(cert.events[0], IlpCertEvent::Branch { .. }));
    cert.events[0] = IlpCertEvent::PruneBound;
    let d = check_ilp_certificate(&m, Some(&sol), &cert);
    assert!(d.has(Code::CERTB002), "expected CERTB002, got: {d}");
}

/// Class 4 (`CERTB003`): claim an infeasibility prune citing a witness
/// row that is still satisfiable.
#[test]
fn forged_infeasibility_witness_is_caught() {
    let mut rng = Rng::new(0xC0DE_1004);
    let m = knapsack(&mut rng);
    let (res, mut cert) = m.solve_with_cert();
    let sol = res.expect("feasible");
    cert.events[0] = IlpCertEvent::PruneInfeasible { row: 0 };
    let d = check_ilp_certificate(&m, Some(&sol), &cert);
    assert!(d.has(Code::CERTB003), "expected CERTB003, got: {d}");
}

/// Class 5 (`CERTB003`): flip an `include` flag so the recorded branching
/// silently skips the include child of a viable candidate.
#[test]
fn skipped_branch_child_is_caught() {
    let mut rng = Rng::new(0xC0DE_1005);
    let (cands, budget) = ise_library(&mut rng);
    let (sel, mut cert) = branch_and_bound_with_cert(&cands, budget);
    assert!(check_ise_certificate(&cands, budget, &sel, &cert).is_clean());
    let pos = cert
        .events
        .iter()
        .position(|e| matches!(e, IseCertEvent::Expand { include: true }))
        .expect("some include child in a positive-gain library");
    cert.events[pos] = IseCertEvent::Expand { include: false };
    let d = check_ise_certificate(&cands, budget, &sel, &cert);
    assert!(d.has(Code::CERTB003), "expected CERTB003, got: {d}");
}

/// Class 6 (`CERTB004`): rewrite a justified configuration prune as a
/// recursion — the certified path now claims an infeasible assignment
/// was explored as feasible.
#[test]
fn infeasible_recursion_is_caught() {
    let mut rng = Rng::new(0xC0DE_1006);
    let (specs, budget) = rms_instance(&mut rng);
    let (res, mut cert) = select_rms_with_cert(&specs, budget);
    let (sel, _) = res.expect("software configurations are schedulable");
    assert!(check_rms_certificate(&specs, budget, Some(&sel), &cert).is_clean());
    let pos = cert
        .events
        .iter()
        .position(|e| matches!(e, RmsCertEvent::CfgArea | RmsCertEvent::CfgUnsched))
        .expect("the tight budget forces at least one configuration prune");
    cert.events[pos] = RmsCertEvent::CfgRecurse;
    let d = check_rms_certificate(&specs, budget, Some(&sel), &cert);
    assert!(d.has(Code::CERTB004), "expected CERTB004, got: {d}");
}

/// Class 7 (`CERTB005`): return a stale incumbent — a solution other
/// than the one the replayed search proves optimal.
#[test]
fn stale_incumbent_is_caught() {
    let mut rng = Rng::new(0xC0DE_1007);
    let (specs, budget) = rms_instance(&mut rng);
    let (res, cert) = select_rms_with_cert(&specs, budget);
    let (mut sel, _) = res.expect("software configurations are schedulable");
    assert!(check_rms_certificate(&specs, budget, Some(&sel), &cert).is_clean());
    sel.utilization += 0.25;
    let d = check_rms_certificate(&specs, budget, Some(&sel), &cert);
    assert!(d.has(Code::CERTB005), "expected CERTB005, got: {d}");
}

/// Class 8 (`CERTB006`): cap the log below the tree size — the honest
/// verdict is "truncated, optimality NOT proven", never a clean pass.
#[test]
fn truncated_certificate_is_incomplete_not_clean() {
    let mut rng = Rng::new(0xC0DE_1008);
    let (cands, budget) = ise_library(&mut rng);
    let (sel, cert) = branch_and_bound_with_cert_capped(&cands, budget, 2);
    assert!(cert.dropped > 0, "a 2-event cap must truncate this search");
    let d = check_ise_certificate(&cands, budget, &sel, &cert);
    assert!(d.has(Code::CERTB006), "expected CERTB006, got: {d}");
    assert!(!d.is_clean());
}

//! Serve-protocol response certification.
//!
//! `rtise-serve` answers design-space-exploration requests with
//! line-delimited JSON responses whose `result` payloads are
//! *self-contained*: a selection response embeds the task curves and
//! budget it was solved against, an ILP response embeds the full model,
//! a reconfiguration response embeds the problem. That makes every
//! response independently checkable — this module re-verifies a response
//! from first principles without trusting the server: structural shape
//! (`SRV001`/`SRV002`/`SRV005`), the FNV-1a content checksum (`SRV003`),
//! and the embedded result via the same certificate checkers
//! `reproduce --check` uses (`SRV004`, with the underlying `CERT…`
//! findings merged in as evidence).
//!
//! The serve load-test gates on this checker for every response, and the
//! artifact store re-runs it whenever a cached response is loaded from
//! disk.

use crate::cert;
use crate::diag::{Code, Diagnostics, Location};
use rtise_ilp::{Cmp, Model, Sense, Solution as IlpSolution};
use rtise_ise::configs::{ConfigCurve, ConfigPoint};
use rtise_obs::fnv1a;
use rtise_obs::json::Value;
use rtise_reconfig::{CisVersion, HotLoop, ReconfigProblem, Solution as ReconfigSolution};
use rtise_select::edf::EdfSelection;
use rtise_select::rms::RmsSelection;
use rtise_select::{Assignment, TaskSpec};

/// The request kinds a response may declare.
pub const KINDS: [&str; 5] = ["curve", "select_edf", "select_rms", "ilp", "reconfig"];

/// The checksum a clean response must carry: FNV-1a over the kind, the
/// claimed work units, and the rendered result payload. The request id
/// is deliberately excluded so deduplicated and cached servings of the
/// same computation share one checksum.
#[must_use]
pub fn response_checksum(kind: &str, work: u64, result: &Value) -> u64 {
    fnv1a(format!("{kind}|{work}|{}", result.render()).as_bytes())
}

fn as_bool(v: &Value) -> Option<bool> {
    match v {
        Value::Bool(b) => Some(*b),
        _ => None,
    }
}

fn field_u64(d: &mut Diagnostics, doc: &Value, key: &str) -> Option<u64> {
    let v = doc
        .get(key)
        .and_then(Value::as_f64)
        .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0);
    if v.is_none() {
        d.error(
            Code::SRV001,
            Location::Global,
            format!("required field {key:?} is missing or not an unsigned integer"),
        );
    }
    v.map(|n| n as u64)
}

fn field_i64(d: &mut Diagnostics, doc: &Value, key: &str) -> Option<i64> {
    let v = doc
        .get(key)
        .and_then(Value::as_f64)
        .filter(|n| n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15);
    if v.is_none() {
        d.error(
            Code::SRV001,
            Location::Global,
            format!("required field {key:?} is missing or not an integer"),
        );
    }
    v.map(|n| n as i64)
}

fn u64_arr(doc: &Value, key: &str) -> Option<Vec<u64>> {
    let mut out = Vec::new();
    for v in doc.get(key).and_then(Value::as_arr)? {
        let n = v
            .as_f64()
            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)?;
        out.push(n as u64);
    }
    Some(out)
}

/// Decodes an embedded curve payload `{kernel|name, base_cycles, points}`.
fn decode_curve(doc: &Value, name_key: &str) -> Result<ConfigCurve, String> {
    let name = doc
        .get(name_key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("curve {name_key} missing"))?;
    let base_cycles = doc
        .get("base_cycles")
        .and_then(Value::as_f64)
        .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
        .map(|n| n as u64)
        .ok_or("curve base_cycles missing")?;
    let mut points = Vec::new();
    for p in doc
        .get("points")
        .and_then(Value::as_arr)
        .ok_or("curve points missing")?
    {
        let mut nums = [0u64; 3];
        for (slot, key) in nums.iter_mut().zip(["area", "cycles", "gain"]) {
            *slot = p
                .get(key)
                .and_then(Value::as_f64)
                .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                .map(|n| n as u64)
                .ok_or_else(|| format!("curve point {key} missing"))?;
        }
        let selection = u64_arr(p, "selection")
            .ok_or("curve point selection missing")?
            .into_iter()
            .map(|i| i as usize)
            .collect();
        points.push(ConfigPoint {
            area: nums[0],
            cycles: nums[1],
            gain: nums[2],
            selection,
        });
    }
    Ok(ConfigCurve::from_saved(name, base_cycles, points))
}

/// Whether the decoded curve kept every payload point: `from_saved`
/// silently drops dominated points and appends a missing software point,
/// so a forged payload can normalize into a *valid* curve. Requiring the
/// staircase to round-trip catches that.
fn curve_round_trips(payload: &Value, curve: &ConfigCurve) -> bool {
    let Some(raw) = payload.get("points").and_then(Value::as_arr) else {
        return false;
    };
    let has_zero = raw
        .iter()
        .any(|p| p.get("area").and_then(Value::as_f64) == Some(0.0));
    curve.len() == raw.len() + usize::from(!has_zero)
}

fn check_curve_result(d: &mut Diagnostics, result: &Value) {
    match decode_curve(result, "kernel") {
        Ok(curve) => {
            if !curve_round_trips(result, &curve) {
                d.error(
                    Code::SRV004,
                    Location::Global,
                    "embedded curve does not survive staircase normalization \
                     (dominated or duplicate points)",
                );
                return;
            }
            let inner = cert::check_curve(&curve);
            if !inner.is_clean() {
                d.error(
                    Code::SRV004,
                    Location::Global,
                    "embedded curve fails independent staircase re-certification",
                );
                d.merge(inner);
            }
        }
        Err(e) => d.error(Code::SRV001, Location::Global, e),
    }
}

/// Rebuilds the task specs a selection response embeds; every curve is
/// re-certified on the way.
fn decode_specs(d: &mut Diagnostics, result: &Value) -> Option<Vec<TaskSpec>> {
    let Some(tasks) = result.get("tasks").and_then(Value::as_arr) else {
        d.error(Code::SRV001, Location::Global, "tasks array missing");
        return None;
    };
    let mut specs = Vec::new();
    for (i, t) in tasks.iter().enumerate() {
        let curve = match decode_curve(t, "name") {
            Ok(c) => c,
            Err(e) => {
                d.error(Code::SRV001, Location::Task(i), e);
                return None;
            }
        };
        let inner = cert::check_curve(&curve);
        if !curve_round_trips(t, &curve) || !inner.is_clean() {
            d.error(
                Code::SRV004,
                Location::Task(i),
                "embedded task curve fails staircase re-certification",
            );
            d.merge(inner);
            return None;
        }
        let Some(period) = t
            .get("period")
            .and_then(Value::as_f64)
            .filter(|n| n.is_finite() && *n > 0.0 && n.fract() == 0.0)
        else {
            d.error(Code::SRV001, Location::Task(i), "task period missing");
            return None;
        };
        specs.push(TaskSpec::new(curve, period as u64));
    }
    Some(specs)
}

fn decode_assignment(d: &mut Diagnostics, result: &Value, n_tasks: usize) -> Option<Assignment> {
    let Some(config) = u64_arr(result, "assignment") else {
        d.error(Code::SRV001, Location::Global, "assignment array missing");
        return None;
    };
    if config.len() != n_tasks {
        d.error(
            Code::SRV004,
            Location::Global,
            format!("assignment covers {} of {n_tasks} tasks", config.len()),
        );
        return None;
    }
    Some(Assignment {
        config: config.into_iter().map(|c| c as usize).collect(),
    })
}

/// Compares a claimed parts-per-million utilization against an
/// independent recomputation (±1 ppm for rounding).
fn check_utilization_ppm(d: &mut Diagnostics, claimed_ppm: u64, recomputed: f64) {
    let recomputed_ppm = (recomputed * 1.0e6).round() as i64;
    if (claimed_ppm as i64 - recomputed_ppm).abs() > 1 {
        d.error(
            Code::SRV004,
            Location::Global,
            format!(
                "claimed utilization {claimed_ppm} ppm, independent recomputation \
                 gives {recomputed_ppm} ppm"
            ),
        );
    }
}

fn check_select_edf_result(d: &mut Diagnostics, result: &Value) {
    let (Some(budget), Some(claimed_ppm)) = (
        field_u64(d, result, "budget"),
        field_u64(d, result, "utilization_ppm"),
    ) else {
        return;
    };
    let Some(schedulable) = result.get("schedulable").and_then(as_bool) else {
        d.error(Code::SRV001, Location::Global, "schedulable flag missing");
        return;
    };
    let Some(specs) = decode_specs(d, result) else {
        return;
    };
    let Some(assignment) = decode_assignment(d, result, specs.len()) else {
        return;
    };
    if assignment
        .config
        .iter()
        .zip(&specs)
        .any(|(&c, s)| c >= s.curve.points().len())
    {
        d.error(
            Code::SRV004,
            Location::Global,
            "assignment indexes a configuration beyond its curve",
        );
        return;
    }
    let utilization = assignment.utilization(&specs);
    check_utilization_ppm(d, claimed_ppm, utilization);
    let sel = EdfSelection {
        assignment,
        utilization,
        schedulable,
    };
    let inner = cert::check_edf_selection(&specs, &sel, budget);
    if !inner.is_clean() {
        d.error(
            Code::SRV004,
            Location::Global,
            "embedded EDF selection fails independent re-certification",
        );
        d.merge(inner);
    }
}

fn check_select_rms_result(d: &mut Diagnostics, result: &Value) {
    let (Some(budget), Some(claimed_ppm)) = (
        field_u64(d, result, "budget"),
        field_u64(d, result, "utilization_ppm"),
    ) else {
        return;
    };
    let Some(specs) = decode_specs(d, result) else {
        return;
    };
    let Some(assignment) = decode_assignment(d, result, specs.len()) else {
        return;
    };
    if assignment
        .config
        .iter()
        .zip(&specs)
        .any(|(&c, s)| c >= s.curve.points().len())
    {
        d.error(
            Code::SRV004,
            Location::Global,
            "assignment indexes a configuration beyond its curve",
        );
        return;
    }
    let utilization = assignment.utilization(&specs);
    check_utilization_ppm(d, claimed_ppm, utilization);
    let sel = RmsSelection {
        assignment,
        utilization,
    };
    let inner = cert::check_rms_selection(&specs, &sel, budget);
    if !inner.is_clean() {
        d.error(
            Code::SRV004,
            Location::Global,
            "embedded RMS selection fails independent re-certification",
        );
        d.merge(inner);
    }
}

fn check_ilp_result(d: &mut Diagnostics, result: &Value) {
    let Some(model_json) = result.get("model") else {
        d.error(Code::SRV001, Location::Global, "ilp model missing");
        return;
    };
    let Some(vars) = field_u64(d, model_json, "vars") else {
        return;
    };
    let n = vars as usize;
    let sense = match model_json.get("sense").and_then(Value::as_str) {
        Some("min") => Sense::Minimize,
        Some("max") => Sense::Maximize,
        _ => {
            d.error(Code::SRV001, Location::Global, "ilp sense missing");
            return;
        }
    };
    let Some(obj_arr) = model_json.get("objective").and_then(Value::as_arr) else {
        d.error(Code::SRV001, Location::Global, "ilp objective missing");
        return;
    };
    let mut objective = Vec::new();
    for c in obj_arr {
        let Some(c) = c
            .as_f64()
            .filter(|x| x.is_finite() && x.fract() == 0.0 && x.abs() < 9.0e15)
        else {
            d.error(Code::SRV001, Location::Global, "ilp objective malformed");
            return;
        };
        objective.push(c as i64);
    }
    if objective.len() != n {
        d.error(
            Code::SRV001,
            Location::Global,
            format!(
                "ilp objective has {} coefficients for {n} vars",
                objective.len()
            ),
        );
        return;
    }
    let mut model = Model::new(n);
    model.set_objective(sense, &objective);
    let Some(rows) = model_json.get("rows").and_then(Value::as_arr) else {
        d.error(Code::SRV001, Location::Global, "ilp rows missing");
        return;
    };
    for (r, row) in rows.iter().enumerate() {
        let Some(rhs) = row
            .get("rhs")
            .and_then(Value::as_f64)
            .filter(|x| x.is_finite() && x.fract() == 0.0 && x.abs() < 9.0e15)
            .map(|x| x as i64)
        else {
            d.error(Code::SRV001, Location::Row(r), "ilp row rhs missing");
            return;
        };
        let Some(term_arr) = row.get("terms").and_then(Value::as_arr) else {
            d.error(Code::SRV001, Location::Row(r), "ilp row terms missing");
            return;
        };
        let mut terms = Vec::new();
        for t in term_arr {
            let (Some(pair), 2) = (t.as_arr(), t.as_arr().map_or(0, <[Value]>::len)) else {
                d.error(Code::SRV001, Location::Row(r), "ilp term is not a pair");
                return;
            };
            let idx = pair[0]
                .as_f64()
                .filter(|x| x.is_finite() && *x >= 0.0 && x.fract() == 0.0)
                .map(|x| x as usize);
            let coeff = pair[1]
                .as_f64()
                .filter(|x| x.is_finite() && x.fract() == 0.0 && x.abs() < 9.0e15)
                .map(|x| x as i64);
            let (Some(idx), Some(coeff)) = (idx, coeff) else {
                d.error(Code::SRV001, Location::Row(r), "ilp term malformed");
                return;
            };
            if idx >= n {
                d.error(
                    Code::SRV001,
                    Location::Row(r),
                    format!("ilp term indexes var {idx} of {n}"),
                );
                return;
            }
            terms.push((idx, coeff));
        }
        match row.get("cmp").and_then(Value::as_str) {
            Some("le") => model.add_le(&terms, rhs),
            Some("ge") => model.add_ge(&terms, rhs),
            Some("eq") => model.add_eq(&terms, rhs),
            _ => {
                d.error(Code::SRV001, Location::Row(r), "ilp row cmp missing");
                return;
            }
        }
    }
    let _ = Cmp::Le; // row comparisons round-trip through the model above
    let (Some(objective_value), Some(values)) =
        (field_i64(d, result, "objective"), u64_arr(result, "values"))
    else {
        if result.get("values").is_none() {
            d.error(Code::SRV001, Location::Global, "ilp values missing");
        }
        return;
    };
    if values.len() != n || values.iter().any(|&v| v > 1) {
        d.error(
            Code::SRV001,
            Location::Global,
            "ilp values are not one 0/1 entry per variable",
        );
        return;
    }
    let sol = IlpSolution {
        objective: objective_value,
        values: values.into_iter().map(|v| v == 1).collect(),
        nodes: 0,
    };
    let inner = cert::check_ilp_solution(&model, &sol);
    if !inner.is_clean() {
        d.error(
            Code::SRV004,
            Location::Global,
            "embedded ILP solution fails independent row/objective re-certification",
        );
        d.merge(inner);
    }
}

fn check_reconfig_result(d: &mut Diagnostics, result: &Value) {
    let Some(problem_json) = result.get("problem") else {
        d.error(Code::SRV001, Location::Global, "reconfig problem missing");
        return;
    };
    let (Some(max_area), Some(reconfig_cost)) = (
        field_u64(d, problem_json, "max_area"),
        field_u64(d, problem_json, "reconfig_cost"),
    ) else {
        return;
    };
    let Some(loops_json) = problem_json.get("loops").and_then(Value::as_arr) else {
        d.error(Code::SRV001, Location::Global, "reconfig loops missing");
        return;
    };
    let mut loops = Vec::new();
    for (i, l) in loops_json.iter().enumerate() {
        let Some(name) = l.get("name").and_then(Value::as_str) else {
            d.error(Code::SRV001, Location::Loop(i), "loop name missing");
            return;
        };
        let mut versions = Vec::new();
        let Some(version_arr) = l.get("versions").and_then(Value::as_arr) else {
            d.error(Code::SRV001, Location::Loop(i), "loop versions missing");
            return;
        };
        for v in version_arr {
            let area = v
                .get("area")
                .and_then(Value::as_f64)
                .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0);
            let gain = v
                .get("gain")
                .and_then(Value::as_f64)
                .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0);
            let (Some(area), Some(gain)) = (area, gain) else {
                d.error(Code::SRV001, Location::Loop(i), "loop version malformed");
                return;
            };
            versions.push(CisVersion {
                area: area as u64,
                gain: gain as u64,
            });
        }
        loops.push(HotLoop::new(name, &versions));
    }
    let Some(trace) = u64_arr(problem_json, "trace") else {
        d.error(Code::SRV001, Location::Global, "reconfig trace missing");
        return;
    };
    let problem = ReconfigProblem {
        loops,
        trace: trace.into_iter().map(|t| t as usize).collect(),
        max_area,
        reconfig_cost,
    };
    if let Err(e) = problem.validate() {
        d.error(
            Code::SRV004,
            Location::Global,
            format!("embedded reconfiguration problem fails validation: {e}"),
        );
        return;
    }
    let (Some(version), Some(config)) = (u64_arr(result, "version"), u64_arr(result, "config"))
    else {
        d.error(
            Code::SRV001,
            Location::Global,
            "reconfig version/config arrays missing",
        );
        return;
    };
    let Some(net_gain) = field_i64(d, result, "net_gain") else {
        return;
    };
    let sol = ReconfigSolution {
        version: version.into_iter().map(|v| v as usize).collect(),
        config: config.into_iter().map(|c| c as usize).collect(),
    };
    let inner = cert::check_reconfig_solution(&problem, &sol, Some(net_gain));
    if !inner.is_clean() {
        d.error(
            Code::SRV004,
            Location::Global,
            "embedded reconfiguration solution fails independent trace-walk re-certification",
        );
        d.merge(inner);
    }
}

/// Certifies one serve response document from first principles.
///
/// Structural problems report `SRV001`/`SRV002`/`SRV005`, checksum
/// mismatches `SRV003`, and semantic failures of the embedded result
/// `SRV004` with the underlying `CERT…` findings merged in. A clean
/// error response (`ok: false` with a non-empty message) certifies
/// clean: refusing a malformed request is correct behavior.
#[must_use]
pub fn check_response(doc: &Value) -> Diagnostics {
    let mut d = Diagnostics::new();
    if !matches!(doc, Value::Obj(_)) {
        d.error(Code::SRV001, Location::Global, "response is not an object");
        return d;
    }
    if field_u64(&mut d, doc, "id").is_none() {
        return d;
    }
    let Some(ok) = doc.get("ok").and_then(as_bool) else {
        d.error(Code::SRV001, Location::Global, "ok flag missing");
        return d;
    };
    if !ok {
        // Error responses carry a message and nothing else of substance.
        match doc.get("error").and_then(Value::as_str) {
            Some(msg) if !msg.is_empty() => {}
            _ => d.error(
                Code::SRV005,
                Location::Global,
                "error response lacks a non-empty error message",
            ),
        }
        if doc.get("result").is_some() {
            d.error(
                Code::SRV005,
                Location::Global,
                "error response also carries a result payload",
            );
        }
        return d;
    }
    let Some(kind) = doc.get("kind").and_then(Value::as_str) else {
        d.error(Code::SRV001, Location::Global, "kind missing");
        return d;
    };
    if !KINDS.contains(&kind) {
        d.error(
            Code::SRV002,
            Location::Global,
            format!("unknown request kind {kind:?}"),
        );
        return d;
    }
    let Some(work) = field_u64(&mut d, doc, "work") else {
        return d;
    };
    let Some(result) = doc.get("result") else {
        d.error(Code::SRV001, Location::Global, "result payload missing");
        return d;
    };
    let claimed = doc
        .get("checksum")
        .and_then(Value::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok());
    let Some(claimed) = claimed else {
        d.error(Code::SRV001, Location::Global, "checksum missing");
        return d;
    };
    if claimed != response_checksum(kind, work, result) {
        d.error(
            Code::SRV003,
            Location::Global,
            "response checksum disagrees with the result payload",
        );
        return d;
    }
    match kind {
        "curve" => check_curve_result(&mut d, result),
        "select_edf" => check_select_edf_result(&mut d, result),
        "select_rms" => check_select_rms_result(&mut d, result),
        "ilp" => check_ilp_result(&mut d, result),
        "reconfig" => check_reconfig_result(&mut d, result),
        _ => unreachable!("kind membership checked above"),
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve_result() -> Value {
        Value::obj(vec![
            ("kernel", "toy".into()),
            ("base_cycles", 100u64.into()),
            (
                "points",
                Value::Arr(vec![
                    Value::obj(vec![
                        ("area", 0u64.into()),
                        ("cycles", 100u64.into()),
                        ("gain", 0u64.into()),
                        ("selection", Value::Arr(vec![])),
                    ]),
                    Value::obj(vec![
                        ("area", 8u64.into()),
                        ("cycles", 70u64.into()),
                        ("gain", 30u64.into()),
                        ("selection", Value::Arr(vec![0u64.into()])),
                    ]),
                ]),
            ),
        ])
    }

    fn response(kind: &str, work: u64, result: Value) -> Value {
        let sum = response_checksum(kind, work, &result);
        Value::obj(vec![
            ("id", 7u64.into()),
            ("ok", Value::Bool(true)),
            ("kind", kind.into()),
            ("work", work.into()),
            ("result", result),
            ("checksum", format!("{sum:016x}").into()),
        ])
    }

    #[test]
    fn clean_curve_response_certifies_clean() {
        let d = check_response(&response("curve", 42, curve_result()));
        assert!(d.is_clean(), "{}", d.render());
    }

    #[test]
    fn clean_error_response_certifies_clean() {
        let doc = Value::obj(vec![
            ("id", 3u64.into()),
            ("ok", Value::Bool(false)),
            ("error", "unknown kernel \"nope\"".into()),
        ]);
        assert!(check_response(&doc).is_clean());
    }

    #[test]
    fn malformed_error_response_is_srv005() {
        let doc = Value::obj(vec![
            ("id", 3u64.into()),
            ("ok", Value::Bool(false)),
            ("error", "".into()),
        ]);
        assert!(check_response(&doc).has(Code::SRV005));
    }

    #[test]
    fn unknown_kind_is_srv002() {
        let d = check_response(&response("teleport", 1, curve_result()));
        assert!(d.has(Code::SRV002));
    }

    #[test]
    fn doctored_result_is_srv003() {
        let mut doc = response("curve", 42, curve_result());
        // Bump the work field without fixing the checksum.
        if let Value::Obj(pairs) = &mut doc {
            for (k, v) in pairs.iter_mut() {
                if k == "work" {
                    *v = 43u64.into();
                }
            }
        }
        assert!(check_response(&doc).has(Code::SRV003));
    }

    #[test]
    fn checksum_consistent_but_broken_staircase_is_srv004() {
        // A non-monotone staircase with a *recomputed* checksum: the
        // envelope is consistent, only the semantics are wrong.
        let mut result = curve_result();
        if let Value::Obj(pairs) = &mut result {
            for (k, v) in pairs.iter_mut() {
                if k == "points" {
                    if let Value::Arr(points) = v {
                        if let Value::Obj(p1) = &mut points[1] {
                            for (pk, pv) in p1.iter_mut() {
                                if pk == "cycles" {
                                    *pv = 101u64.into(); // worse than base at positive area
                                }
                            }
                        }
                    }
                }
            }
        }
        let d = check_response(&response("curve", 42, result));
        assert!(d.has(Code::SRV004), "{}", d.render());
    }

    #[test]
    fn missing_fields_are_srv001() {
        let doc = Value::obj(vec![("id", 1u64.into()), ("ok", Value::Bool(true))]);
        assert!(check_response(&doc).has(Code::SRV001));
        assert!(check_response(&Value::Arr(vec![])).has(Code::SRV001));
    }
}

//! Layer 2: independent solution-certificate checkers.
//!
//! Every function here re-verifies a solver output *without reusing the
//! solver's code paths*: convexity, I/O counts, costs, demands, response
//! times, edge cuts and reconfiguration walks are all recomputed from
//! first principles against the problem data. A solver bug that fabricates
//! an illegal candidate, an over-budget selection, an unschedulable
//! "schedulable" claim or a dominated "Pareto" point is caught here even
//! if the solver's own accessors agree with it (the certifying-algorithms
//! discipline of the paper's §7.3 cross-checks, generalized).

use crate::diag::{Code, Diagnostics, Location};
use rtise_graphpart::{Graph, Partitioning, BALANCE_FACTOR};
use rtise_ilp::{Cmp, Model, Sense, Solution as IlpSolution};
use rtise_ir::cfg::Program;
use rtise_ir::dfg::Dfg;
use rtise_ir::hw::HwModel;
use rtise_ir::nodeset::NodeSet;
use rtise_ir::NodeId;
use rtise_ise::configs::ConfigCurve;
use rtise_ise::{CiCandidate, Selection};
use rtise_reconfig::rt::{RtProblem, RtSolution};
use rtise_reconfig::{CostModel, ReconfigProblem, Solution as ReconfigSolution};
use rtise_select::edf::EdfSelection;
use rtise_select::pareto::ParetoPoint;
use rtise_select::rms::RmsSelection;
use rtise_select::TaskSpec;
use std::collections::{HashMap, HashSet};

/// Relative tolerance for comparing reported floating-point utilizations
/// against their exact recomputation.
const UTIL_EPS: f64 = 1e-9;

// ---------------------------------------------------------------------------
// Independent graph primitives
// ---------------------------------------------------------------------------

/// Finds a witness for a convexity violation: an external node lying on a
/// data path that leaves `set` and re-enters it. Returns `None` when the
/// set is convex.
///
/// Independent recomputation: an external node breaks convexity iff it is
/// both reachable *from* a member (via consumer edges) and able to reach a
/// member (via operand edges).
pub fn convex_violation(dfg: &Dfg, set: &NodeSet) -> Option<NodeId> {
    let n = dfg.len();
    let members: Vec<NodeId> = set.iter().filter(|id| id.0 < n).collect();

    // External nodes reachable from the set, walking consumer edges.
    let mut desc = vec![false; n];
    let mut stack = members.clone();
    while let Some(v) = stack.pop() {
        for &c in dfg.consumers(v) {
            if !set.contains(c) && !desc[c.0] {
                desc[c.0] = true;
                stack.push(c);
            }
        }
    }

    // External nodes that reach the set, walking operand edges backwards.
    let mut anc = vec![false; n];
    let mut stack = members;
    while let Some(v) = stack.pop() {
        for &a in dfg.args(v) {
            if !set.contains(a) && !anc[a.0] {
                anc[a.0] = true;
                stack.push(a);
            }
        }
    }

    (0..n).find(|&i| desc[i] && anc[i]).map(NodeId)
}

/// Recomputes the distinct input/output operand counts of `set`: inputs
/// are distinct external non-constant producers, outputs are members whose
/// value is consumed outside the set.
pub fn io_count(dfg: &Dfg, set: &NodeSet) -> (usize, usize) {
    let mut inputs: HashSet<usize> = HashSet::new();
    let mut outputs = 0usize;
    for id in set.iter() {
        if id.0 >= dfg.len() {
            continue;
        }
        for &a in dfg.args(id) {
            if !set.contains(a) && dfg.kind(a) != rtise_ir::OpKind::Const {
                inputs.insert(a.0);
            }
        }
        if dfg.consumers(id).iter().any(|c| !set.contains(*c)) {
            outputs += 1;
        }
    }
    (inputs.len(), outputs)
}

/// Recomputes a candidate's silicon cost from the hardware model: total
/// area in cells, hardware cycles (critical combinational path normalized
/// to the clock, at least one cycle), and the software cycles of the
/// covered operations.
pub fn ci_cost(dfg: &Dfg, set: &NodeSet, hw: &HwModel) -> (u64, u64, u64) {
    let mut area = 0u64;
    let mut sw = 0u64;
    let mut depth: HashMap<usize, u64> = HashMap::new();
    let mut critical = 0u64;
    for id in set.iter() {
        if id.0 >= dfg.len() {
            continue;
        }
        let kind = dfg.kind(id);
        area += hw.area(kind);
        sw += kind.sw_latency();
        let arrive = dfg
            .args(id)
            .iter()
            .filter(|a| set.contains(**a))
            .map(|a| depth.get(&a.0).copied().unwrap_or(0))
            .max()
            .unwrap_or(0);
        let d = arrive + hw.latency_ps(kind);
        depth.insert(id.0, d);
        critical = critical.max(d);
    }
    let hw_cycles = if set.is_empty() {
        0
    } else {
        critical.div_ceil(hw.cycle_ps).max(1)
    };
    (area, hw_cycles, sw)
}

// ---------------------------------------------------------------------------
// Candidate legality (CANDxxx)
// ---------------------------------------------------------------------------

/// Checks that `set` is a legal custom-instruction candidate in `dfg`:
/// non-empty and in range (`CAND004`), every member CI-valid (`CAND001`),
/// convex (`CAND002`), and within the `(max_in, max_out)` port budget
/// (`CAND003`). `which` labels the reported locations.
pub fn check_candidate_set(
    dfg: &Dfg,
    set: &NodeSet,
    max_in: usize,
    max_out: usize,
    which: usize,
) -> Diagnostics {
    let mut d = Diagnostics::new();
    let loc = Location::Candidate(which);

    if set.is_empty() {
        d.error(Code::CAND004, loc, "candidate covers no nodes");
        return d;
    }
    let mut in_range = true;
    for id in set.iter() {
        if id.0 >= dfg.len() {
            d.error(
                Code::CAND004,
                loc.clone(),
                format!("node {} is outside the DFG ({} nodes)", id.0, dfg.len()),
            );
            in_range = false;
        }
    }
    if !in_range {
        return d;
    }

    for id in set.iter() {
        let kind = dfg.kind(id);
        if !kind.is_ci_valid() {
            d.error(
                Code::CAND001,
                loc.clone(),
                format!(
                    "node {} is a {kind}, which cannot enter a custom instruction",
                    id.0
                ),
            );
        }
    }
    if let Some(w) = convex_violation(dfg, set) {
        d.error(
            Code::CAND002,
            loc.clone(),
            format!(
                "not convex: external node {} lies on a path leaving and re-entering the candidate",
                w.0
            ),
        );
    }
    let (inputs, outputs) = io_count(dfg, set);
    if inputs > max_in || outputs > max_out {
        d.error(
            Code::CAND003,
            loc,
            format!("needs {inputs} input(s) / {outputs} output(s), budget is {max_in}/{max_out}"),
        );
    }
    d
}

/// Checks a costed [`CiCandidate`] against `program`: set legality in its
/// block plus cost agreement with the hardware model (`CAND005`).
pub fn check_ci_candidate(
    program: &Program,
    c: &CiCandidate,
    hw: &HwModel,
    max_in: usize,
    max_out: usize,
    which: usize,
) -> Diagnostics {
    let mut d = Diagnostics::new();
    if c.block.0 >= program.blocks.len() {
        d.error(
            Code::CAND004,
            Location::Candidate(which),
            format!("block {} is outside the program", c.block.0),
        );
        return d;
    }
    let dfg = &program.block(c.block).dfg;
    d.merge(check_candidate_set(dfg, &c.nodes, max_in, max_out, which));
    if !d.is_clean() {
        return d;
    }
    let (area, hw_cycles, sw_cycles) = ci_cost(dfg, &c.nodes, hw);
    if (c.area, c.hw_cycles, c.sw_cycles) != (area, hw_cycles, sw_cycles) {
        d.error(
            Code::CAND005,
            Location::Candidate(which),
            format!(
                "recorded (area, hw, sw) = ({}, {}, {}), hardware model gives ({area}, {hw_cycles}, {sw_cycles})",
                c.area, c.hw_cycles, c.sw_cycles
            ),
        );
    }
    d
}

/// Checks a whole batch of candidate cuts against one `dfg`: every cut
/// passes [`check_candidate_set`], and no cut appears twice in the batch
/// (`CAND006`). The iterative generator promises deduplicated output, so
/// a duplicate here means its `seen` set (or a caller's merge) is broken.
pub fn check_candidate_cuts(
    dfg: &Dfg,
    cuts: &[NodeSet],
    max_in: usize,
    max_out: usize,
) -> Diagnostics {
    let mut d = Diagnostics::new();
    for (which, cut) in cuts.iter().enumerate() {
        d.merge(check_candidate_set(dfg, cut, max_in, max_out, which));
        if let Some(first) = cuts[..which].iter().position(|earlier| earlier == cut) {
            d.error(
                Code::CAND006,
                Location::Candidate(which),
                format!("duplicate of candidate {first} — batches must be deduplicated"),
            );
        }
    }
    d
}

// ---------------------------------------------------------------------------
// Intra-task selection and configuration curves
// ---------------------------------------------------------------------------

/// Checks an intra-task [`Selection`] over `cands`: chosen indices in
/// range and distinct (`CERT003`), pairwise conflict-free (`CERT001`),
/// totals matching recomputation (`CERT003`), and area within `budget`
/// (`CERT002`).
pub fn check_selection(cands: &[CiCandidate], sel: &Selection, budget: u64) -> Diagnostics {
    let mut d = Diagnostics::new();
    let mut seen: HashSet<usize> = HashSet::new();
    for &i in &sel.chosen {
        if i >= cands.len() {
            d.error(
                Code::CERT003,
                Location::Candidate(i),
                format!("chosen index {i} is outside the candidate list"),
            );
            return d;
        }
        if !seen.insert(i) {
            d.error(
                Code::CERT003,
                Location::Candidate(i),
                format!("candidate {i} chosen twice"),
            );
        }
    }
    for (a_pos, &a) in sel.chosen.iter().enumerate() {
        for &b in &sel.chosen[a_pos + 1..] {
            if cands[a].block == cands[b].block && cands[a].nodes.intersects(&cands[b].nodes) {
                d.error(
                    Code::CERT001,
                    Location::Candidate(b),
                    format!(
                        "candidates {a} and {b} overlap in block {}",
                        cands[a].block.0
                    ),
                );
            }
        }
    }
    let area: u64 = sel.chosen.iter().map(|&i| cands[i].area).sum();
    let gain: u64 = sel
        .chosen
        .iter()
        .map(|&i| cands[i].sw_cycles.saturating_sub(cands[i].hw_cycles) * cands[i].exec_count)
        .sum();
    if area != sel.total_area || gain != sel.total_gain {
        d.error(
            Code::CERT003,
            Location::Global,
            format!(
                "reported (gain, area) = ({}, {}), recomputed ({gain}, {area})",
                sel.total_gain, sel.total_area
            ),
        );
    }
    if area > budget {
        d.error(
            Code::CERT002,
            Location::Global,
            format!("selection area {area} exceeds budget {budget}"),
        );
    }
    d
}

/// Checks a configuration curve's staircase invariant (`CERT008`): starts
/// at the software point `(0, base_cycles)`, areas strictly ascending,
/// cycles strictly descending, and every point's gain equal to
/// `base_cycles - cycles`.
pub fn check_curve(curve: &ConfigCurve) -> Diagnostics {
    let mut d = Diagnostics::new();
    let pts = curve.points();
    if pts.is_empty() {
        d.error(Code::CERT008, Location::Global, "curve has no points");
        return d;
    }
    if pts[0].area != 0 || pts[0].cycles != curve.base_cycles {
        d.error(
            Code::CERT008,
            Location::Point(0),
            format!(
                "first point is ({}, {}), expected the software point (0, {})",
                pts[0].area, pts[0].cycles, curve.base_cycles
            ),
        );
    }
    for (i, p) in pts.iter().enumerate() {
        if p.cycles.saturating_add(p.gain) != curve.base_cycles.max(p.cycles) {
            d.error(
                Code::CERT008,
                Location::Point(i),
                format!(
                    "gain {} does not equal base {} minus cycles {}",
                    p.gain, curve.base_cycles, p.cycles
                ),
            );
        }
        if i > 0 {
            let prev = &pts[i - 1];
            if p.area <= prev.area {
                d.error(
                    Code::CERT008,
                    Location::Point(i),
                    format!(
                        "area {} does not increase over point {} ({})",
                        p.area,
                        i - 1,
                        prev.area
                    ),
                );
            }
            if p.cycles >= prev.cycles {
                d.error(
                    Code::CERT008,
                    Location::Point(i),
                    format!(
                        "cycles {} do not decrease over point {} ({}); the point is dominated",
                        p.cycles,
                        i - 1,
                        prev.cycles
                    ),
                );
            }
        }
    }
    d
}

// ---------------------------------------------------------------------------
// Exact schedulability re-tests
// ---------------------------------------------------------------------------

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn hyperperiod(tasks: &[(u64, u64)]) -> Option<u64> {
    if tasks.iter().any(|&(_, p)| p == 0) {
        return None;
    }
    tasks.iter().try_fold(1u64, |acc, &(_, p)| {
        let g = gcd(acc, p);
        (acc / g).checked_mul(p)
    })
}

/// Exact EDF schedulability of independent periodic tasks given as
/// `(wcet, period)` pairs, via the integer demand bound over the
/// hyperperiod: `Σ Cᵢ·(H/Pᵢ) ≤ H`. Returns `None` when the hyperperiod
/// overflows `u64` (caller falls back to a utilization bound) or when a
/// task has a zero period, for which no finite demand bound exists.
pub fn edf_exact_schedulable(tasks: &[(u64, u64)]) -> Option<bool> {
    let h = hyperperiod(tasks)?;
    let demand: u128 = tasks
        .iter()
        .map(|&(c, p)| c as u128 * (h / p) as u128)
        .sum();
    Some(demand <= h as u128)
}

/// Exact RMS schedulability via the scheduling-points test (Lehoczky,
/// Sha & Ding): task `i` (priorities by ascending period) is schedulable
/// iff some time `t = j·Pₖ ≤ Pᵢ` (k ≤ i) satisfies
/// `Σ_{k≤i} Cₖ·⌈t/Pₖ⌉ ≤ t`. This is an independent formulation of the
/// exact test the RMS selector applies (Theorem 1 of the paper).
///
/// A task with a zero period has no scheduling point at which its demand
/// could be met, so any set containing one is reported unschedulable
/// rather than dividing by zero.
pub fn rms_exact_schedulable(tasks: &[(u64, u64)]) -> bool {
    if tasks.iter().any(|&(_, p)| p == 0) {
        return false;
    }
    let mut sorted: Vec<(u64, u64)> = tasks.to_vec();
    sorted.sort_by_key(|&(_, p)| p);
    for i in 0..sorted.len() {
        let pi = sorted[i].1;
        let mut ok = false;
        let mut points: Vec<u64> = Vec::new();
        for &(_, pk) in &sorted[..=i] {
            let mut t = pk;
            while t <= pi {
                points.push(t);
                t += pk;
            }
        }
        points.sort_unstable();
        points.dedup();
        for &t in &points {
            let load: u128 = sorted[..=i]
                .iter()
                .map(|&(c, p)| c as u128 * t.div_ceil(p) as u128)
                .sum();
            if load <= t as u128 {
                ok = true;
                break;
            }
        }
        if !ok {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Inter-task selection certificates (EDF / RMS)
// ---------------------------------------------------------------------------

fn check_assignment(
    specs: &[TaskSpec],
    config: &[usize],
    budget: u64,
    d: &mut Diagnostics,
) -> bool {
    if config.len() != specs.len() {
        d.error(
            Code::CERT012,
            Location::Global,
            format!(
                "assignment covers {} task(s), spec list has {}",
                config.len(),
                specs.len()
            ),
        );
        return false;
    }
    let mut ok = true;
    for (i, (&j, s)) in config.iter().zip(specs).enumerate() {
        if s.period == 0 {
            // `TaskSpec::new` rejects zero periods, but the field is
            // public; report the degenerate task instead of dividing by
            // zero in the utilization and demand re-tests below.
            d.error(
                Code::CERT012,
                Location::Task(i),
                "task has a zero period; utilization and demand are undefined",
            );
            ok = false;
        }
        if j >= s.curve.len() {
            d.error(
                Code::CERT012,
                Location::Task(i),
                format!(
                    "configuration {j} is outside the {}-point curve",
                    s.curve.len()
                ),
            );
            ok = false;
        }
    }
    if !ok {
        return false;
    }
    let area: u64 = config
        .iter()
        .zip(specs)
        .map(|(&j, s)| s.curve.points()[j].area)
        .sum();
    if area > budget {
        d.error(
            Code::CERT002,
            Location::Global,
            format!("assignment area {area} exceeds budget {budget}"),
        );
    }
    true
}

fn recomputed_utilization(specs: &[TaskSpec], config: &[usize]) -> f64 {
    config
        .iter()
        .zip(specs)
        .map(|(&j, s)| s.curve.points()[j].cycles as f64 / s.period as f64)
        .sum()
}

/// Certifies an EDF selection: assignment sanity and budget
/// (`CERT012`/`CERT002`), reported utilization (`CERT012`), and the
/// schedulability claim against the exact demand re-test (`CERT005`).
pub fn check_edf_selection(specs: &[TaskSpec], sel: &EdfSelection, budget: u64) -> Diagnostics {
    let mut d = Diagnostics::new();
    if !check_assignment(specs, &sel.assignment.config, budget, &mut d) {
        return d;
    }
    let util = recomputed_utilization(specs, &sel.assignment.config);
    if (util - sel.utilization).abs() > UTIL_EPS * util.max(1.0) {
        d.error(
            Code::CERT012,
            Location::Global,
            format!(
                "reported utilization {} but recomputed {util}",
                sel.utilization
            ),
        );
    }
    let tasks: Vec<(u64, u64)> = sel
        .assignment
        .config
        .iter()
        .zip(specs)
        .map(|(&j, s)| (s.curve.points()[j].cycles, s.period))
        .collect();
    let exact = edf_exact_schedulable(&tasks).unwrap_or(util <= 1.0 + UTIL_EPS);
    if exact != sel.schedulable {
        d.error(
            Code::CERT005,
            Location::Global,
            format!(
                "claims schedulable = {}, exact demand test says {exact}",
                sel.schedulable
            ),
        );
    }
    d
}

/// Certifies an RMS selection: assignment sanity and budget
/// (`CERT012`/`CERT002`), reported utilization (`CERT012`), and the
/// implicit schedulability claim against the exact scheduling-points
/// re-test (`CERT006` — `select_rms` only returns schedulable sets).
pub fn check_rms_selection(specs: &[TaskSpec], sel: &RmsSelection, budget: u64) -> Diagnostics {
    let mut d = Diagnostics::new();
    if !check_assignment(specs, &sel.assignment.config, budget, &mut d) {
        return d;
    }
    let util = recomputed_utilization(specs, &sel.assignment.config);
    if (util - sel.utilization).abs() > UTIL_EPS * util.max(1.0) {
        d.error(
            Code::CERT012,
            Location::Global,
            format!(
                "reported utilization {} but recomputed {util}",
                sel.utilization
            ),
        );
    }
    let tasks: Vec<(u64, u64)> = sel
        .assignment
        .config
        .iter()
        .zip(specs)
        .map(|(&j, s)| (s.curve.points()[j].cycles, s.period))
        .collect();
    if !rms_exact_schedulable(&tasks) {
        d.error(
            Code::CERT006,
            Location::Global,
            "selection fails the exact RMS scheduling-points re-test",
        );
    }
    d
}

// ---------------------------------------------------------------------------
// ILP certificates
// ---------------------------------------------------------------------------

/// Certifies an ILP solution against its model: dimension, every
/// constraint row re-evaluated, and the reported objective recomputed
/// (`CERT004`). Optimality cannot be certified without a dual — this
/// checks *feasibility and honesty*, which is what certificate checking
/// can guarantee.
pub fn check_ilp_solution(model: &Model, sol: &IlpSolution) -> Diagnostics {
    let mut d = Diagnostics::new();
    if sol.values.len() != model.num_vars() {
        d.error(
            Code::CERT004,
            Location::Global,
            format!(
                "solution has {} value(s), model has {} variable(s)",
                sol.values.len(),
                model.num_vars()
            ),
        );
        return d;
    }
    for i in 0..model.num_rows() {
        let (terms, cmp, rhs) = model.row(i);
        let lhs: i64 = terms
            .iter()
            .map(|&(v, c)| if sol.values[v] { c } else { 0 })
            .sum();
        let ok = match cmp {
            Cmp::Le => lhs <= rhs,
            Cmp::Ge => lhs >= rhs,
            Cmp::Eq => lhs == rhs,
        };
        if !ok {
            let op = match cmp {
                Cmp::Le => "<=",
                Cmp::Ge => ">=",
                Cmp::Eq => "==",
            };
            d.error(
                Code::CERT004,
                Location::Row(i),
                format!("row evaluates to {lhs} {op} {rhs}, which is false"),
            );
        }
    }
    let objective: i64 = model
        .objective()
        .iter()
        .zip(&sol.values)
        .map(|(&c, &x)| if x { c } else { 0 })
        .sum();
    if objective != sol.objective {
        let sense = match model.sense() {
            Sense::Minimize => "minimize",
            Sense::Maximize => "maximize",
        };
        d.error(
            Code::CERT004,
            Location::Global,
            format!(
                "reported objective {} ({sense}), recomputed {objective}",
                sol.objective
            ),
        );
    }
    d
}

// ---------------------------------------------------------------------------
// Pareto-front certificates
// ---------------------------------------------------------------------------

/// Certifies a claimed Pareto front (`CERT007`): points in strictly
/// ascending cost order and no point dominated by any other. Both axes
/// are minimized — `value` is remaining workload, `cost` is area — so a
/// valid front has strictly descending values.
pub fn check_pareto_front(front: &[ParetoPoint]) -> Diagnostics {
    let mut d = Diagnostics::new();
    for (i, p) in front.iter().enumerate() {
        if i > 0 {
            let prev = &front[i - 1];
            if p.cost <= prev.cost {
                d.error(
                    Code::CERT007,
                    Location::Point(i),
                    format!(
                        "cost {} does not increase over point {} ({})",
                        p.cost,
                        i - 1,
                        prev.cost
                    ),
                );
            }
        }
        for (j, q) in front.iter().enumerate() {
            if i != j
                && q.cost <= p.cost
                && q.value <= p.value
                && (q.cost, q.value) != (p.cost, p.value)
            {
                d.error(
                    Code::CERT007,
                    Location::Point(i),
                    format!(
                        "point ({}, {}) is dominated by point {j} ({}, {})",
                        p.cost, p.value, q.cost, q.value
                    ),
                );
                break;
            }
        }
    }
    d
}

/// Certifies an ε-Pareto cover claim (`CERT007`): every exact point must
/// be matched by an approximate point within a `(1+ε)` factor on *both*
/// minimized axes. The approximate front itself is also checked for
/// mutual non-dominance.
pub fn check_eps_cover(exact: &[ParetoPoint], approx: &[ParetoPoint], eps: f64) -> Diagnostics {
    let mut d = check_pareto_front(approx);
    for (i, e) in exact.iter().enumerate() {
        let covered = approx.iter().any(|a| {
            a.cost as f64 <= (1.0 + eps) * e.cost as f64 + 1e-9
                && a.value as f64 <= (1.0 + eps) * e.value as f64 + 1e-9
        });
        if !covered {
            d.error(
                Code::CERT007,
                Location::Point(i),
                format!(
                    "exact point ({}, {}) has no (1+{eps})-cover in the approximate front",
                    e.cost, e.value
                ),
            );
        }
    }
    d
}

// ---------------------------------------------------------------------------
// Graph-partition certificates
// ---------------------------------------------------------------------------

/// Certifies a k-way partitioning (`CERT009`): assignment dimensions and
/// part indices, balance within [`BALANCE_FACTOR`], and — when the caller
/// reports one — the claimed edge cut against an independent recount.
pub fn check_partitioning(g: &Graph, p: &Partitioning, claimed_cut: Option<u64>) -> Diagnostics {
    let mut d = Diagnostics::new();
    if p.assignment.len() != g.len() {
        d.error(
            Code::CERT009,
            Location::Global,
            format!(
                "assignment covers {} vertices, graph has {}",
                p.assignment.len(),
                g.len()
            ),
        );
        return d;
    }
    if p.k == 0 {
        d.error(
            Code::CERT009,
            Location::Global,
            "partitioning declares k = 0",
        );
        return d;
    }
    for (v, &part) in p.assignment.iter().enumerate() {
        if part >= p.k {
            d.error(
                Code::CERT009,
                Location::Vertex(v),
                format!("assigned to part {part}, but k = {}", p.k),
            );
            return d;
        }
    }

    // Balance: recomputed part weights against the partitioner's contract.
    let mut weights = vec![0u64; p.k];
    for v in 0..g.len() {
        weights[p.assignment[v]] += g.vertex_weight(v);
    }
    let total: u64 = weights.iter().sum();
    if total > 0 {
        let ideal = total as f64 / p.k as f64;
        let heaviest = weights.iter().copied().max().unwrap_or(0) as f64;
        // Integer vertex weights cannot always split evenly: one whole
        // vertex of slack on top of the contractual factor keeps the check
        // honest without rejecting optimal-but-chunky splits.
        let slack = (0..g.len()).map(|v| g.vertex_weight(v)).max().unwrap_or(0) as f64;
        if heaviest > ideal * BALANCE_FACTOR + slack {
            d.error(
                Code::CERT009,
                Location::Global,
                format!(
                    "heaviest part weighs {heaviest}, above {BALANCE_FACTOR}x the ideal {ideal:.1}"
                ),
            );
        }
    }

    // Independent edge-cut recount (each undirected edge once).
    if let Some(claimed) = claimed_cut {
        let mut cut = 0u64;
        for u in 0..g.len() {
            for &(v, w) in g.neighbors(u) {
                if u < v && p.assignment[u] != p.assignment[v] {
                    cut += w;
                }
            }
        }
        if cut != claimed {
            d.error(
                Code::CERT009,
                Location::Global,
                format!("claimed edge cut {claimed}, recount gives {cut}"),
            );
        }
    }
    d
}

// ---------------------------------------------------------------------------
// Reconfiguration certificates (Chapters 6 and 7)
// ---------------------------------------------------------------------------

/// Certifies a Chapter 6 reconfiguration solution under the default
/// full-reload cost model; see [`check_reconfig_solution_with_cost`].
pub fn check_reconfig_solution(
    problem: &ReconfigProblem,
    sol: &ReconfigSolution,
    claimed_net_gain: Option<i64>,
) -> Diagnostics {
    check_reconfig_solution_with_cost(problem, sol, CostModel::FullReload, claimed_net_gain)
}

/// Certifies a Chapter 6 reconfiguration solution: index sanity
/// (`CERT011`), per-configuration fabric area from an independent sum
/// (`CERT010`), and — when the caller reports one — the claimed net gain
/// against an independent trace walk (`CERT011`) under the given
/// [`CostModel`]: each switch charged at the flat reload cost, or, for
/// partial reconfiguration, per area cell of the *incoming* configuration.
pub fn check_reconfig_solution_with_cost(
    problem: &ReconfigProblem,
    sol: &ReconfigSolution,
    cost_model: CostModel,
    claimed_net_gain: Option<i64>,
) -> Diagnostics {
    let mut d = Diagnostics::new();
    let n = problem.loops.len();
    if sol.version.len() != n || sol.config.len() != n {
        d.error(
            Code::CERT011,
            Location::Global,
            format!(
                "solution covers {}/{} loop(s), problem has {n}",
                sol.version.len(),
                sol.config.len()
            ),
        );
        return d;
    }
    if let Err(e) = problem.validate() {
        d.error(
            Code::CERT011,
            Location::Global,
            format!("problem is invalid: {e}"),
        );
        return d;
    }
    for (i, (&v, l)) in sol.version.iter().zip(&problem.loops).enumerate() {
        if v >= l.versions().len() {
            d.error(
                Code::CERT011,
                Location::Loop(i),
                format!(
                    "version {v} is outside the {}-version table",
                    l.versions().len()
                ),
            );
            return d;
        }
    }

    // Independent per-configuration area sums.
    let mut per_cfg: HashMap<usize, u64> = HashMap::new();
    for (i, l) in problem.loops.iter().enumerate() {
        if sol.version[i] > 0 {
            *per_cfg.entry(sol.config[i]).or_default() += l.versions()[sol.version[i]].area;
        }
    }
    for (&cfg, &area) in &per_cfg {
        if area > problem.max_area {
            d.error(
                Code::CERT010,
                Location::Config(cfg),
                format!(
                    "configuration area {area} exceeds the fabric's {}",
                    problem.max_area
                ),
            );
        }
    }

    // Independent trace walk: find every configuration switch (initial
    // load free, software loops transparent), charge it under the cost
    // model, and rebuild the net gain.
    if let Some(claimed) = claimed_net_gain {
        let raw: u64 = sol
            .version
            .iter()
            .zip(&problem.loops)
            .map(|(&v, l)| l.versions()[v].gain)
            .sum();
        let mut loaded: Option<usize> = None;
        let mut switches = 0u64;
        let mut reconfig_cycles = 0u64;
        for &l in &problem.trace {
            if sol.version[l] == 0 {
                continue;
            }
            let cfg = sol.config[l];
            if loaded.is_some_and(|cur| cur != cfg) {
                switches += 1;
                reconfig_cycles += match cost_model {
                    CostModel::FullReload => problem.reconfig_cost,
                    CostModel::Partial { per_area_unit } => {
                        per_area_unit * per_cfg.get(&cfg).copied().unwrap_or(0)
                    }
                };
            }
            loaded = Some(cfg);
        }
        let net = raw as i64 - reconfig_cycles as i64;
        if net != claimed {
            d.error(
                Code::CERT011,
                Location::Global,
                format!(
                    "claimed net gain {claimed}, trace walk gives {net} under \
                     {cost_model:?} (raw {raw}, {switches} reconfiguration(s) \
                     costing {reconfig_cycles})"
                ),
            );
        }
    }
    d
}

/// Certifies a Chapter 7 real-time reconfiguration solution: index and
/// configuration-count sanity, per-configuration area (`CERT010`), and the
/// utilization/schedulability claims against an independent EDF job-walk
/// demand recomputation (`CERT011`).
pub fn check_rt_solution(problem: &RtProblem, sol: &RtSolution) -> Diagnostics {
    let mut d = Diagnostics::new();
    let n = problem.tasks.len();
    if sol.version.len() != n || sol.config.len() != n {
        d.error(
            Code::CERT011,
            Location::Global,
            format!(
                "solution covers {}/{} task(s), problem has {n}",
                sol.version.len(),
                sol.config.len()
            ),
        );
        return d;
    }
    for (i, (&v, t)) in sol.version.iter().zip(&problem.tasks).enumerate() {
        if v >= t.versions.len() {
            d.error(
                Code::CERT011,
                Location::Task(i),
                format!(
                    "version {v} is outside the {}-version table",
                    t.versions.len()
                ),
            );
            return d;
        }
    }

    let used: HashSet<usize> = sol
        .version
        .iter()
        .zip(&sol.config)
        .filter(|(&v, _)| v > 0)
        .map(|(_, &c)| c)
        .collect();
    if used.len() > problem.max_configs {
        d.error(
            Code::CERT011,
            Location::Global,
            format!(
                "uses {} configuration(s), problem allows {}",
                used.len(),
                problem.max_configs
            ),
        );
    }

    let mut per_cfg: HashMap<usize, u64> = HashMap::new();
    for (i, t) in problem.tasks.iter().enumerate() {
        if sol.version[i] > 0 {
            *per_cfg.entry(sol.config[i]).or_default() += t.versions[sol.version[i]].area;
        }
    }
    for (&cfg, &area) in &per_cfg {
        if area > problem.max_area {
            d.error(
                Code::CERT010,
                Location::Config(cfg),
                format!(
                    "configuration area {area} exceeds the fabric's {}",
                    problem.max_area
                ),
            );
        }
    }

    // Independent demand recomputation: per-task job cycles over the
    // hyperperiod plus reconfiguration switches along the deadline-ordered
    // job sequence (synchronous release, initial load free).
    let h = problem.hyperperiod();
    let job_cycles: u64 = problem
        .tasks
        .iter()
        .zip(&sol.version)
        .map(|(t, &v)| (t.base_wcet - t.versions[v].gain) * (h / t.period))
        .sum();
    let mut jobs: Vec<(u64, usize)> = Vec::new();
    for (i, t) in problem.tasks.iter().enumerate() {
        let mut deadline = t.period;
        while deadline <= h {
            jobs.push((deadline, i));
            deadline += t.period;
        }
    }
    jobs.sort_unstable();
    let mut loaded: Option<usize> = None;
    let mut switches = 0u64;
    for &(_, t) in &jobs {
        if sol.version[t] == 0 {
            continue;
        }
        let cfg = sol.config[t];
        if loaded.is_some_and(|cur| cur != cfg) {
            switches += 1;
        }
        loaded = Some(cfg);
    }
    let demand = job_cycles + switches * problem.reconfig_cost;
    let schedulable = demand <= h;
    let utilization = demand as f64 / h as f64;

    if schedulable != sol.schedulable {
        d.error(
            Code::CERT011,
            Location::Global,
            format!(
                "claims schedulable = {}, job-walk demand {demand} over hyperperiod {h} says {schedulable}",
                sol.schedulable
            ),
        );
    }
    if (utilization - sol.utilization).abs() > UTIL_EPS * utilization.max(1.0) {
        d.error(
            Code::CERT011,
            Location::Global,
            format!(
                "reported utilization {} but job-walk recomputation gives {utilization}",
                sol.utilization
            ),
        );
    }
    d
}

// ---------------------------------------------------------------------------
// Simulation gain accounting (Chapter 8 cross-check)
// ---------------------------------------------------------------------------

/// Certifies a pair of simulation cycle counts — a software run and a
/// customized run over the same input — against an independent per-block
/// gain-accounting walk (`CERT013`).
///
/// `cis` lists the deployed custom instructions as plain
/// `(block index, covered nodes, hardware cycles)` tuples;
/// `block_counts` is the execution profile (identical for both runs:
/// custom instructions re-time blocks, never re-route control flow). The
/// walk recomputes each block's cost from first principles — terminator
/// cost plus per-operation software latencies, with covered operations
/// replaced by their instruction's hardware cycles — and requires both
/// reported totals to equal `Σ cost(b) · counts(b)` exactly. Overlapping
/// instructions in one block make the accounting ill-defined and are
/// reported as `CERT001`.
pub fn check_sim_accounting(
    program: &Program,
    cis: &[(usize, NodeSet, u64)],
    block_counts: &[u64],
    sw_cycles: u64,
    customized_cycles: u64,
) -> Diagnostics {
    let mut d = Diagnostics::new();
    let nb = program.blocks.len();
    if block_counts.len() != nb {
        d.error(
            Code::CERT013,
            Location::Global,
            format!(
                "profile covers {} block(s), program has {nb}",
                block_counts.len()
            ),
        );
        return d;
    }
    let mut covered: Vec<NodeSet> = (0..nb).map(|b| program.blocks[b].dfg.empty_set()).collect();
    let mut hw_cost = vec![0u64; nb];
    for (which, &(b, ref nodes, cycles)) in cis.iter().enumerate() {
        if b >= nb {
            d.error(
                Code::CERT013,
                Location::Candidate(which),
                format!("custom instruction targets block {b} of {nb}"),
            );
            return d;
        }
        let dfg = &program.blocks[b].dfg;
        if nodes.iter().any(|id| id.0 >= dfg.len()) {
            d.error(
                Code::CERT013,
                Location::Candidate(which),
                format!(
                    "covered nodes fall outside block {b}'s {}-node DFG",
                    dfg.len()
                ),
            );
            return d;
        }
        if covered[b].intersects(nodes) {
            d.error(
                Code::CERT001,
                Location::Block(b),
                format!("custom instruction {which} overlaps an earlier one in block {b}"),
            );
            return d;
        }
        covered[b].union_with(nodes);
        hw_cost[b] += cycles;
    }
    let mut sw_total = 0u64;
    let mut cust_total = 0u64;
    for b in 0..nb {
        let bb = &program.blocks[b];
        let term = bb.terminator.cost();
        let mut sw_cost = term;
        let mut cust_cost = term + hw_cost[b];
        for id in bb.dfg.ids() {
            let lat = bb.dfg.kind(id).sw_latency();
            sw_cost += lat;
            if !covered[b].contains(id) {
                cust_cost += lat;
            }
        }
        sw_total += sw_cost * block_counts[b];
        cust_total += cust_cost * block_counts[b];
    }
    if sw_total != sw_cycles {
        d.error(
            Code::CERT013,
            Location::Global,
            format!(
                "software run reports {sw_cycles} cycle(s), gain-accounting walk \
                 gives {sw_total}"
            ),
        );
    }
    if cust_total != customized_cycles {
        d.error(
            Code::CERT013,
            Location::Global,
            format!(
                "customized run reports {customized_cycles} cycle(s), gain-accounting \
                 walk gives {cust_total}"
            ),
        );
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ir::dfg::Operand;
    use rtise_ir::OpKind;
    use rtise_select::Assignment;

    fn diamond() -> Dfg {
        // a, b inputs; add = a+b; mul = add*a (member); ld = Load(add)
        // external; sub = mul - ld re-enters.
        let mut g = Dfg::new();
        let a = g.input(0);
        let b = g.input(1);
        let add = g.bin(OpKind::Add, a, b);
        let mul = g.bin(OpKind::Mul, add, a);
        let ld = g.un(OpKind::Load, add);
        let sub = g.bin(OpKind::Sub, mul, ld);
        g.output(0, sub);
        g
    }

    #[test]
    fn convexity_witness_matches_reference_check() {
        let g = diamond();
        // {add, sub} is non-convex: mul and ld both sit on re-entrant
        // paths. {add, mul} is convex.
        let bad: NodeSet = [NodeId(2), NodeId(5)].into_iter().collect();
        assert!(!g.is_convex(&bad));
        assert!(convex_violation(&g, &bad).is_some());
        let good: NodeSet = [NodeId(2), NodeId(3)].into_iter().collect();
        assert!(g.is_convex(&good));
        assert!(convex_violation(&g, &good).is_none());
    }

    #[test]
    fn io_counts_match_reference() {
        let g = diamond();
        let set: NodeSet = [NodeId(2), NodeId(3)].into_iter().collect();
        let (i, o) = io_count(&g, &set);
        let reference = g.io_counts(&set);
        assert_eq!((i, o), (reference.inputs, reference.outputs));
    }

    #[test]
    fn ci_cost_matches_hw_model() {
        let g = diamond();
        let hw = HwModel::default();
        let set: NodeSet = [NodeId(2), NodeId(3)].into_iter().collect();
        let (area, cycles, sw) = ci_cost(&g, &set, &hw);
        assert_eq!(area, hw.ci_area(&g, &set));
        assert_eq!(cycles, hw.ci_cycles(&g, &set));
        assert_eq!(sw, g.sw_latency(&set));
    }

    #[test]
    fn candidate_checks_flag_each_defect() {
        let g = diamond();
        // Contains a Load: CAND001.
        let with_load: NodeSet = [NodeId(4)].into_iter().collect();
        assert!(check_candidate_set(&g, &with_load, 4, 2, 0).has(Code::CAND001));
        // Non-convex: CAND002.
        let non_convex: NodeSet = [NodeId(2), NodeId(5)].into_iter().collect();
        assert!(check_candidate_set(&g, &non_convex, 4, 2, 0).has(Code::CAND002));
        // Port budget: CAND003 under a 1-input budget.
        let set: NodeSet = [NodeId(2), NodeId(3)].into_iter().collect();
        assert!(check_candidate_set(&g, &set, 1, 2, 0).has(Code::CAND003));
        // Empty: CAND004.
        assert!(check_candidate_set(&g, &g.empty_set(), 4, 2, 0).has(Code::CAND004));
        // Legal candidate: clean.
        assert!(check_candidate_set(&g, &set, 4, 2, 0).is_clean());
    }

    #[test]
    fn batch_check_flags_duplicates_and_per_cut_defects() {
        let g = diamond();
        let add: NodeSet = [NodeId(2)].into_iter().collect();
        let pair: NodeSet = [NodeId(2), NodeId(3)].into_iter().collect();
        assert!(check_candidate_cuts(&g, &[add.clone(), pair.clone()], 4, 2).is_clean());

        // A repeated cut is CAND006, located at the *second* occurrence.
        let d = check_candidate_cuts(&g, &[add.clone(), pair.clone(), add.clone()], 4, 2);
        assert!(d.has(Code::CAND006));
        assert_eq!(d.count(Code::CAND006), 1);

        // Per-cut defects still surface alongside the duplicate scan.
        let non_convex: NodeSet = [NodeId(2), NodeId(5)].into_iter().collect();
        let d = check_candidate_cuts(&g, &[non_convex, add.clone(), add], 4, 2);
        assert!(d.has(Code::CAND002));
        assert!(d.has(Code::CAND006));

        // The empty batch is vacuously clean.
        assert!(check_candidate_cuts(&g, &[], 4, 2).is_clean());
    }

    #[test]
    fn exact_tests_agree_with_rt_crate() {
        let sets: &[&[(u64, u64)]] = &[
            &[(1, 4), (2, 6), (3, 10)],
            &[(2, 4), (3, 6)],
            &[(1, 2), (1, 3), (1, 7)],
            &[(5, 10), (5, 11)],
        ];
        for tasks in sets {
            let periodic: Vec<rtise_rt::PeriodicTask> = tasks
                .iter()
                .map(|&(c, p)| rtise_rt::PeriodicTask::new("t", c, p))
                .collect();
            assert_eq!(
                edf_exact_schedulable(tasks).unwrap(),
                rtise_rt::edf_schedulable(&periodic),
                "EDF mismatch on {tasks:?}"
            );
            assert_eq!(
                rms_exact_schedulable(tasks),
                rtise_rt::rms_schedulable(&periodic),
                "RMS mismatch on {tasks:?}"
            );
        }
    }

    #[test]
    fn degenerate_task_sets_diagnose_instead_of_panicking() {
        // Zero periods must not divide by zero: the exact tests decline
        // (None / unschedulable) and the selection certifier reports
        // CERT012 on the offending task.
        assert_eq!(edf_exact_schedulable(&[(1, 0), (2, 4)]), None);
        assert!(!rms_exact_schedulable(&[(0, 0)]));
        // Zero WCETs are fine — an idle task set is trivially schedulable.
        assert_eq!(edf_exact_schedulable(&[(0, 3), (0, 7)]), Some(true));
        assert!(rms_exact_schedulable(&[(0, 3), (0, 7)]));

        let mut spec = TaskSpec::new(ConfigCurve::from_points("t", 100, &[(4, 60)]), 20);
        spec.period = 0;
        let sel = EdfSelection {
            assignment: Assignment { config: vec![0] },
            utilization: 0.0,
            schedulable: true,
        };
        let d = check_edf_selection(&[spec.clone()], &sel, 100);
        assert!(d.has(Code::CERT012), "{}", d.render());
        let rsel = RmsSelection {
            assignment: Assignment { config: vec![0] },
            utilization: 0.0,
        };
        let d = check_rms_selection(&[spec], &rsel, 100);
        assert!(d.has(Code::CERT012), "{}", d.render());
    }

    #[test]
    fn pareto_checks_catch_dominance() {
        let good = vec![
            ParetoPoint {
                cost: 0,
                value: 100,
            },
            ParetoPoint { cost: 5, value: 80 },
            ParetoPoint { cost: 9, value: 40 },
        ];
        assert!(check_pareto_front(&good).is_clean());
        let mut bad = good.clone();
        bad[2].value = 90; // dominated by point 1
        assert!(check_pareto_front(&bad).has(Code::CERT007));
    }

    #[test]
    fn fig_6_4_solutions_certify() {
        let problem = rtise_reconfig::model::fig_6_4_problem();
        let sol = rtise_reconfig::iterative_partition(&problem, 7);
        let d = check_reconfig_solution(&problem, &sol, Some(sol.net_gain(&problem)));
        assert!(d.is_clean(), "{d}");
        // Corrupt the claimed gain: CERT011.
        let d = check_reconfig_solution(&problem, &sol, Some(sol.net_gain(&problem) + 1));
        assert!(d.has(Code::CERT011));
    }

    #[test]
    fn curve_staircase_is_enforced() {
        let curve = ConfigCurve::from_points("t", 100, &[(4, 80), (9, 60)]);
        assert!(check_curve(&curve).is_clean());
    }

    #[test]
    fn ilp_solutions_certify() {
        let mut m = Model::new(3);
        m.set_objective(Sense::Maximize, &[60, 100, 120]);
        m.add_le(&[(0, 10), (1, 20), (2, 30)], 50);
        let sol = m.solve().expect("feasible");
        assert!(check_ilp_solution(&m, &sol).is_clean());
        let mut forged = sol.clone();
        forged.values = vec![true, true, true]; // violates the budget row
        let d = check_ilp_solution(&m, &forged);
        assert!(d.has(Code::CERT004));
    }

    #[test]
    fn candidate_cost_forgery_is_caught() {
        let mut p = Program::new("t", 2, 0);
        let g = {
            let mut g = Dfg::new();
            let a = g.input(0);
            let b = g.input(1);
            let s = g.bin(OpKind::Add, a, b);
            let m = g.node(OpKind::Mul, &[Operand::Node(s), Operand::Node(b)]);
            g.output(0, m);
            g
        };
        p.add_block(rtise_ir::cfg::BasicBlock {
            name: "main".into(),
            dfg: g,
            terminator: rtise_ir::cfg::Terminator::Return,
        });
        let hw = HwModel::default();
        let dfg = &p.block(rtise_ir::cfg::BlockId(0)).dfg;
        let nodes: NodeSet = [NodeId(2), NodeId(3)].into_iter().collect();
        let (area, hw_cycles, sw_cycles) = ci_cost(dfg, &nodes, &hw);
        let mut c = CiCandidate {
            block: rtise_ir::cfg::BlockId(0),
            nodes,
            area,
            hw_cycles,
            sw_cycles,
            exec_count: 10,
        };
        assert!(check_ci_candidate(&p, &c, &hw, 4, 2, 0).is_clean());
        c.area += 1;
        assert!(check_ci_candidate(&p, &c, &hw, 4, 2, 0).has(Code::CAND005));
    }
}

//! Chrome Trace Event Format conformance checking.
//!
//! `reproduce --trace-out` (and the `fuzz`/`bench` equivalents) emit
//! the JSON object format consumed by `chrome://tracing` and Perfetto.
//! [`check_chrome_trace`] validates an emitted document against the
//! subset of the format those tools actually require to render it:
//! a `traceEvents` array (TRACE001) of objects carrying `name`/`ph`
//! (TRACE002) with a known phase (TRACE003), numeric non-negative
//! `ts`/`pid`/`tid` (TRACE004), and balanced `B`/`E` duration events
//! per `(pid, tid)` track (TRACE005). CI runs it over every trace
//! smoke artifact.

use crate::diag::{Code, Diagnostics, Location};
use rtise_obs::json::Value;
use std::collections::BTreeMap;

/// Phases this workspace emits plus the common ones other tools write;
/// anything else is flagged as TRACE003.
const KNOWN_PHASES: &[&str] = &["B", "E", "i", "I", "M", "X", "C"];

/// Phases that require a `name` (an `E` event legitimately omits it).
fn needs_name(ph: &str) -> bool {
    ph != "E"
}

/// Validates a parsed Chrome Trace Event document. Returns a clean
/// [`Diagnostics`] when the artifact conforms; every finding points at
/// the offending event index via [`Location::Point`].
pub fn check_chrome_trace(doc: &Value) -> Diagnostics {
    let mut d = Diagnostics::new();
    let Some(events) = doc.get("traceEvents").and_then(Value::as_arr) else {
        d.error(
            Code::TRACE001,
            Location::Global,
            "top-level traceEvents array missing",
        );
        return d;
    };
    // Open B-spans per (pid, tid), by event index.
    let mut open: BTreeMap<(u64, u64), Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if !matches!(e, Value::Obj(_)) {
            d.error(Code::TRACE002, Location::Point(i), "event is not an object");
            continue;
        }
        let Some(ph) = e.get("ph").and_then(Value::as_str) else {
            d.error(Code::TRACE002, Location::Point(i), "event lacks a ph field");
            continue;
        };
        if !KNOWN_PHASES.contains(&ph) {
            d.error(
                Code::TRACE003,
                Location::Point(i),
                format!("unknown phase {ph:?}"),
            );
            continue;
        }
        if needs_name(ph) && e.get("name").and_then(Value::as_str).is_none() {
            d.error(
                Code::TRACE002,
                Location::Point(i),
                format!("{ph} event lacks a name"),
            );
        }
        let mut coord = [0u64; 3];
        let mut coord_ok = true;
        for (slot, field) in coord.iter_mut().zip(["ts", "pid", "tid"]) {
            match e.get(field).and_then(Value::as_f64) {
                Some(v) if v >= 0.0 => *slot = v as u64,
                _ => {
                    d.error(
                        Code::TRACE004,
                        Location::Point(i),
                        format!("{field} missing, non-numeric, or negative"),
                    );
                    coord_ok = false;
                }
            }
        }
        if !coord_ok {
            continue;
        }
        let track = (coord[1], coord[2]);
        match ph {
            "B" => open.entry(track).or_default().push(i),
            "E" if open.entry(track).or_default().pop().is_none() => {
                d.error(
                    Code::TRACE005,
                    Location::Point(i),
                    format!("E without a matching B on pid {} tid {}", track.0, track.1),
                );
            }
            _ => {}
        }
    }
    for ((pid, tid), stack) in open {
        if let Some(&i) = stack.last() {
            d.error(
                Code::TRACE005,
                Location::Point(i),
                format!(
                    "{} B event(s) never closed on pid {pid} tid {tid}",
                    stack.len()
                ),
            );
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_obs::json::parse;

    fn check(src: &str) -> Diagnostics {
        check_chrome_trace(&parse(src).expect("test document parses"))
    }

    #[test]
    fn accepts_a_conforming_trace() {
        let d = check(
            r#"{"traceEvents":[
                {"name":"thread_name","ph":"M","pid":1,"tid":1,"ts":0,"args":{"name":"fig3_1"}},
                {"name":"experiment","ph":"B","pid":1,"tid":1,"ts":0},
                {"name":"ilp.prune.bound","ph":"i","pid":1,"tid":1,"ts":1,"s":"t","args":{"depth":2}},
                {"name":"experiment","ph":"E","pid":1,"tid":1,"ts":2}
            ],"displayTimeUnit":"ms"}"#,
        );
        assert!(d.is_clean(), "{d}");
    }

    #[test]
    fn missing_trace_events_is_trace001() {
        let d = check(r#"{"events":[]}"#);
        assert!(d.has(Code::TRACE001));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn malformed_events_are_trace002() {
        let d = check(
            r#"{"traceEvents":[42,{"pid":1,"tid":1,"ts":0},{"ph":"B","pid":1,"tid":1,"ts":0},{"ph":"B","pid":1,"tid":1,"ts":1,"name":"x"},{"ph":"E","pid":1,"tid":1,"ts":2},{"ph":"E","pid":1,"tid":1,"ts":3}]}"#,
        );
        assert_eq!(d.count(Code::TRACE002), 3); // non-object, no ph, B without name
    }

    #[test]
    fn unknown_phase_is_trace003() {
        let d = check(r#"{"traceEvents":[{"name":"x","ph":"Z","pid":1,"tid":1,"ts":0}]}"#);
        assert!(d.has(Code::TRACE003));
    }

    #[test]
    fn bad_coordinates_are_trace004() {
        let d = check(r#"{"traceEvents":[{"name":"x","ph":"i","pid":1,"tid":"one","ts":-3}]}"#);
        assert_eq!(d.count(Code::TRACE004), 2); // bad tid, negative ts
    }

    #[test]
    fn unbalanced_spans_are_trace005_per_track() {
        // Balanced on tid 1; stray E on tid 2; unclosed B on tid 3.
        let d = check(
            r#"{"traceEvents":[
                {"name":"a","ph":"B","pid":1,"tid":1,"ts":0},
                {"ph":"E","pid":1,"tid":1,"ts":1},
                {"ph":"E","pid":1,"tid":2,"ts":1},
                {"name":"b","ph":"B","pid":1,"tid":3,"ts":0}
            ]}"#,
        );
        assert_eq!(d.count(Code::TRACE005), 2);
    }
}

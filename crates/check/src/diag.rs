//! The diagnostics engine: stable error codes, severities, locations, and
//! human/JSON rendering.
//!
//! Every check in this crate reports through [`Diagnostics`], so callers
//! can assert on exact [`Code`]s (the negative-test suite does), render a
//! human report (`reproduce --check` does), or export machine-readable
//! JSON through [`rtise_obs`].

use rtise_obs::json::Value;
use std::fmt;

/// Stable diagnostic codes.
///
/// Codes are grouped by layer: `IRxxx` for IR well-formedness, `CANDxxx`
/// for custom-instruction candidate legality, `CERTxxx` for solution
/// certificates, `CERTBxxx` for branch-and-bound optimality-certificate
/// replay, `TRACExxx` for trace-artifact conformance, `STORExxx` for
/// artifact-store entry validation, and `SRVxxx` for serve-protocol
/// response certification. Codes are append-only — a published code
/// never changes meaning (tests and CI tooling match on them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(clippy::upper_case_acronyms)]
pub enum Code {
    /// Operand is undefined or used before its definition.
    IR001,
    /// Operand count does not match the opcode's arity.
    IR002,
    /// The data-flow graph contains a cycle.
    IR003,
    /// A variable slot is written more than once in one block
    /// (single-assignment violation).
    IR004,
    /// Invalid program structure: no blocks, entry or terminator target out
    /// of range, or a slot beyond the variable file.
    IR005,
    /// A basic block is unreachable from the entry block.
    IR006,
    /// A natural-loop header has no iteration bound (blocks WCET analysis).
    IR007,
    /// The region decomposition does not partition the CI-valid nodes
    /// (overlap, missed operation, or an invalid member).
    IR008,
    /// A region is not maximal.
    IR009,
    /// Builder misuse: duplicate block label, unclosed loop, or unknown
    /// value reference during IR construction.
    IR010,
    /// A candidate contains a CI-invalid operation (memory or pseudo-op).
    CAND001,
    /// A candidate is not convex: a data path leaves and re-enters it.
    CAND002,
    /// A candidate exceeds the input/output port budget.
    CAND003,
    /// A candidate is empty or references out-of-range nodes.
    CAND004,
    /// A candidate's recorded costs disagree with the hardware model.
    CAND005,
    /// Selected candidates conflict: overlapping nodes in the same block.
    CERT001,
    /// An area budget is exceeded.
    CERT002,
    /// Reported totals (gain or area) disagree with recomputation.
    CERT003,
    /// An ILP solution violates a constraint row or misstates its
    /// objective value.
    CERT004,
    /// An EDF schedulability claim contradicts the exact demand test.
    CERT005,
    /// An RMS selection fails the exact response-time re-test.
    CERT006,
    /// A claimed Pareto front contains a dominated point, violates front
    /// ordering, or misses an ε-cover obligation.
    CERT007,
    /// A configuration curve violates the staircase invariant.
    CERT008,
    /// A graph partition is invalid: assignment out of range, imbalance
    /// beyond the tolerance, or a misreported edge cut.
    CERT009,
    /// A reconfiguration solution overruns the per-configuration fabric
    /// area.
    CERT010,
    /// A reconfiguration solution's gain, reconfiguration count, or
    /// schedulability claim is wrong.
    CERT011,
    /// A task assignment is inconsistent: configuration index out of range
    /// or a misreported utilization.
    CERT012,
    /// A customized simulation's cycle count disagrees with the
    /// independent per-block gain-accounting walk.
    CERT013,
    /// A branch-and-bound certificate is structurally invalid: events
    /// missing, left over, or inconsistent with the declared search order.
    CERTB001,
    /// A bound prune is unjustified: the re-derived relaxation bound
    /// could still beat the replayed incumbent.
    CERTB002,
    /// An infeasibility/legality prune is unjustified: the cited witness
    /// does not actually rule the subtree out.
    CERTB003,
    /// A leaf event is inconsistent: the replayed assignment is infeasible
    /// where the log claims a feasible leaf.
    CERTB004,
    /// The returned solution disagrees with the replayed incumbent.
    CERTB005,
    /// The certificate was truncated at its recording cap — the replay is
    /// sound as far as it goes, but optimality is NOT proven.
    CERTB006,
    /// A trace document has no `traceEvents` array.
    TRACE001,
    /// A trace event is not an object or lacks a required `name`/`ph`
    /// field.
    TRACE002,
    /// A trace event carries an unknown `ph` phase.
    TRACE003,
    /// A trace event's `ts`, `pid`, or `tid` is missing, non-numeric, or
    /// negative.
    TRACE004,
    /// Duration events are unbalanced: an `E` without a matching `B`, or
    /// a `B` never closed, on some `(pid, tid)` track.
    TRACE005,
    /// An artifact-store entry is unreadable or structurally malformed
    /// (bad JSON, missing envelope field, ill-typed value).
    STORE001,
    /// An artifact-store entry's key or family does not match the
    /// requested artifact (hash collision, option drift, or misfiling).
    STORE002,
    /// An artifact-store entry's content checksum disagrees with its
    /// payload (truncation, bit rot, or a torn write).
    STORE003,
    /// An artifact-store payload fails independent re-certification or
    /// re-validation after decoding.
    STORE004,
    /// An artifact-store entry carries a different format version than
    /// this build writes.
    STORE005,
    /// A serve response is missing a required field or carries an
    /// ill-typed value.
    SRV001,
    /// A serve response declares an unknown request kind.
    SRV002,
    /// A serve response's content checksum disagrees with its result
    /// payload.
    SRV003,
    /// A serve response's embedded result fails independent
    /// re-certification by the solver-family checkers.
    SRV004,
    /// A serve error response is malformed (missing or empty error
    /// message, or contradictory success fields).
    SRV005,
    /// A candidate batch contains the same cut twice (appended late;
    /// lives with the other CANDxxx codes in reports).
    CAND006,
}

impl Code {
    /// All codes, for documentation tables and exhaustiveness tests.
    pub const ALL: [Code; 50] = [
        Code::IR001,
        Code::IR002,
        Code::IR003,
        Code::IR004,
        Code::IR005,
        Code::IR006,
        Code::IR007,
        Code::IR008,
        Code::IR009,
        Code::IR010,
        Code::CAND001,
        Code::CAND002,
        Code::CAND003,
        Code::CAND004,
        Code::CAND005,
        Code::CERT001,
        Code::CERT002,
        Code::CERT003,
        Code::CERT004,
        Code::CERT005,
        Code::CERT006,
        Code::CERT007,
        Code::CERT008,
        Code::CERT009,
        Code::CERT010,
        Code::CERT011,
        Code::CERT012,
        Code::CERT013,
        Code::CERTB001,
        Code::CERTB002,
        Code::CERTB003,
        Code::CERTB004,
        Code::CERTB005,
        Code::CERTB006,
        Code::TRACE001,
        Code::TRACE002,
        Code::TRACE003,
        Code::TRACE004,
        Code::TRACE005,
        Code::STORE001,
        Code::STORE002,
        Code::STORE003,
        Code::STORE004,
        Code::STORE005,
        Code::SRV001,
        Code::SRV002,
        Code::SRV003,
        Code::SRV004,
        Code::SRV005,
        Code::CAND006,
    ];

    /// The stable textual form, e.g. `"IR003"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::IR001 => "IR001",
            Code::IR002 => "IR002",
            Code::IR003 => "IR003",
            Code::IR004 => "IR004",
            Code::IR005 => "IR005",
            Code::IR006 => "IR006",
            Code::IR007 => "IR007",
            Code::IR008 => "IR008",
            Code::IR009 => "IR009",
            Code::IR010 => "IR010",
            Code::CAND001 => "CAND001",
            Code::CAND002 => "CAND002",
            Code::CAND003 => "CAND003",
            Code::CAND004 => "CAND004",
            Code::CAND005 => "CAND005",
            Code::CERT001 => "CERT001",
            Code::CERT002 => "CERT002",
            Code::CERT003 => "CERT003",
            Code::CERT004 => "CERT004",
            Code::CERT005 => "CERT005",
            Code::CERT006 => "CERT006",
            Code::CERT007 => "CERT007",
            Code::CERT008 => "CERT008",
            Code::CERT009 => "CERT009",
            Code::CERT010 => "CERT010",
            Code::CERT011 => "CERT011",
            Code::CERT012 => "CERT012",
            Code::CERT013 => "CERT013",
            Code::CERTB001 => "CERTB001",
            Code::CERTB002 => "CERTB002",
            Code::CERTB003 => "CERTB003",
            Code::CERTB004 => "CERTB004",
            Code::CERTB005 => "CERTB005",
            Code::CERTB006 => "CERTB006",
            Code::TRACE001 => "TRACE001",
            Code::TRACE002 => "TRACE002",
            Code::TRACE003 => "TRACE003",
            Code::TRACE004 => "TRACE004",
            Code::TRACE005 => "TRACE005",
            Code::STORE001 => "STORE001",
            Code::STORE002 => "STORE002",
            Code::STORE003 => "STORE003",
            Code::STORE004 => "STORE004",
            Code::STORE005 => "STORE005",
            Code::SRV001 => "SRV001",
            Code::SRV002 => "SRV002",
            Code::SRV003 => "SRV003",
            Code::SRV004 => "SRV004",
            Code::SRV005 => "SRV005",
            Code::CAND006 => "CAND006",
        }
    }

    /// One-line meaning, used in reports and the README table.
    pub fn summary(self) -> &'static str {
        match self {
            Code::IR001 => "operand undefined or used before definition",
            Code::IR002 => "operand count does not match opcode arity",
            Code::IR003 => "data-flow graph contains a cycle",
            Code::IR004 => "variable slot written twice in one block",
            Code::IR005 => "invalid program structure",
            Code::IR006 => "unreachable basic block",
            Code::IR007 => "natural-loop header without iteration bound",
            Code::IR008 => "regions do not partition the valid nodes",
            Code::IR009 => "region decomposition region not maximal",
            Code::IR010 => "builder misuse during IR construction",
            Code::CAND001 => "candidate contains a CI-invalid operation",
            Code::CAND002 => "candidate is not convex",
            Code::CAND003 => "candidate exceeds the I/O port budget",
            Code::CAND004 => "candidate empty or out of range",
            Code::CAND005 => "candidate costs disagree with the hardware model",
            Code::CERT001 => "selected candidates overlap",
            Code::CERT002 => "area budget exceeded",
            Code::CERT003 => "reported totals disagree with recomputation",
            Code::CERT004 => "ILP constraint row or objective violated",
            Code::CERT005 => "EDF claim contradicts the exact demand test",
            Code::CERT006 => "RMS selection fails the exact re-test",
            Code::CERT007 => "Pareto front contains a dominated point",
            Code::CERT008 => "configuration curve breaks the staircase invariant",
            Code::CERT009 => "graph partition invalid",
            Code::CERT010 => "per-configuration fabric area exceeded",
            Code::CERT011 => "reconfiguration gain/count/schedulability wrong",
            Code::CERT012 => "task assignment inconsistent",
            Code::CERT013 => "simulated cycles disagree with gain accounting",
            Code::CERTB001 => "B&B certificate structurally invalid",
            Code::CERTB002 => "B&B bound prune unjustified",
            Code::CERTB003 => "B&B infeasibility prune unjustified",
            Code::CERTB004 => "B&B leaf infeasible or inconsistent",
            Code::CERTB005 => "solution disagrees with replayed incumbent",
            Code::CERTB006 => "B&B certificate truncated; optimality unproven",
            Code::TRACE001 => "trace document lacks a traceEvents array",
            Code::TRACE002 => "trace event malformed or missing name/ph",
            Code::TRACE003 => "trace event phase unknown",
            Code::TRACE004 => "trace event ts/pid/tid missing or invalid",
            Code::TRACE005 => "trace begin/end events unbalanced",
            Code::STORE001 => "store entry unreadable or malformed",
            Code::STORE002 => "store entry key or family mismatch",
            Code::STORE003 => "store entry checksum mismatch",
            Code::STORE004 => "store payload fails re-certification",
            Code::STORE005 => "store entry format version mismatch",
            Code::SRV001 => "response missing or ill-typed field",
            Code::SRV002 => "response declares an unknown request kind",
            Code::SRV003 => "response checksum mismatch",
            Code::SRV004 => "response result fails re-certification",
            Code::SRV005 => "error response malformed",
            Code::CAND006 => "candidate batch contains a duplicate cut",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not certainly wrong.
    Warning,
    /// The artifact is definitely invalid.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where in an artifact a finding points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Location {
    /// The artifact as a whole.
    Global,
    /// A basic block (by index).
    Block(usize),
    /// A DFG node, optionally qualified by its block.
    Node {
        /// Containing block, when known.
        block: Option<usize>,
        /// Node index within the DFG.
        node: usize,
    },
    /// A region of the decomposition.
    Region(usize),
    /// A candidate (index into the candidate list under check).
    Candidate(usize),
    /// A task (index into the spec/task list).
    Task(usize),
    /// An ILP constraint row.
    Row(usize),
    /// A point of a curve or front.
    Point(usize),
    /// A graph vertex.
    Vertex(usize),
    /// A reconfiguration configuration id.
    Config(usize),
    /// A hot loop of a reconfiguration problem.
    Loop(usize),
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Location::Global => write!(f, "-"),
            Location::Block(b) => write!(f, "block {b}"),
            Location::Node {
                block: Some(b),
                node,
            } => write!(f, "block {b} node {node}"),
            Location::Node { block: None, node } => write!(f, "node {node}"),
            Location::Region(r) => write!(f, "region {r}"),
            Location::Candidate(c) => write!(f, "candidate {c}"),
            Location::Task(t) => write!(f, "task {t}"),
            Location::Row(r) => write!(f, "row {r}"),
            Location::Point(p) => write!(f, "point {p}"),
            Location::Vertex(v) => write!(f, "vertex {v}"),
            Location::Config(c) => write!(f, "config {c}"),
            Location::Loop(l) => write!(f, "loop {l}"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// Where the finding points.
    pub location: Location,
    /// Human-readable detail (includes the recomputed evidence).
    pub message: String,
}

impl Diagnostic {
    /// JSON form for `rtise-obs` reports.
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("code", Value::Str(self.code.as_str().into())),
            ("severity", Value::Str(self.severity.to_string())),
            ("location", Value::Str(self.location.to_string())),
            ("message", Value::Str(self.message.clone())),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] at {}: {}",
            self.code, self.severity, self.location, self.message
        )
    }
}

/// An ordered collection of findings with assertion and rendering helpers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Records an error.
    pub fn error(&mut self, code: Code, location: Location, message: impl Into<String>) {
        self.items.push(Diagnostic {
            code,
            severity: Severity::Error,
            location,
            message: message.into(),
        });
    }

    /// Records a warning.
    pub fn warn(&mut self, code: Code, location: Location, message: impl Into<String>) {
        self.items.push(Diagnostic {
            code,
            severity: Severity::Warning,
            location,
            message: message.into(),
        });
    }

    /// Appends all findings of `other`.
    pub fn merge(&mut self, other: Diagnostics) {
        self.items.extend(other.items);
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no findings (alias of [`Diagnostics::is_clean`]
    /// for the conventional pair with [`Diagnostics::len`]).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates the findings in report order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Whether any finding carries `code`.
    pub fn has(&self, code: Code) -> bool {
        self.items.iter().any(|d| d.code == code)
    }

    /// Number of findings carrying `code`.
    pub fn count(&self, code: Code) -> usize {
        self.items.iter().filter(|d| d.code == code).count()
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Multi-line human report (one finding per line); empty string when
    /// clean.
    pub fn render(&self) -> String {
        self.items
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// JSON array of findings for `rtise-obs` reports.
    pub fn to_json(&self) -> Value {
        Value::Arr(self.items.iter().map(Diagnostic::to_json).collect())
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_stably() {
        assert_eq!(Code::IR003.as_str(), "IR003");
        assert_eq!(Code::CAND003.to_string(), "CAND003");
        assert_eq!(Code::ALL.len(), 50);
        assert_eq!(Code::STORE003.as_str(), "STORE003");
        assert_eq!(Code::SRV004.to_string(), "SRV004");
        for c in Code::ALL {
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn diagnostics_collect_and_render() {
        let mut d = Diagnostics::new();
        assert!(d.is_clean());
        d.error(Code::CERT002, Location::Task(1), "area 10 > budget 8");
        d.warn(Code::IR006, Location::Block(3), "unreachable");
        assert_eq!(d.len(), 2);
        assert_eq!(d.error_count(), 1);
        assert!(d.has(Code::CERT002));
        assert!(!d.has(Code::IR001));
        let text = d.render();
        assert!(text.contains("CERT002 [error] at task 1"));
        assert!(text.contains("IR006 [warning] at block 3"));
        let json = d.to_json();
        let arr = json.as_arr().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("code").and_then(|v| v.as_str()), Some("CERT002"));
    }
}

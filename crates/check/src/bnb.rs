//! The `cert_bnb` analyzer: independent replay of branch-and-bound
//! optimality certificates.
//!
//! Each solver's search ([`rtise_ilp::Model::solve_with_cert`],
//! [`rtise_ise::branch_and_bound_with_cert`],
//! [`rtise_select::select_rms_with_cert`]) emits a compact preorder event
//! log. The replayers here walk that log while *re-deriving every
//! justification from the problem data* — relaxation bounds, feasibility
//! witnesses, schedulability tests, and the incumbent discipline — never
//! trusting the solver's arithmetic:
//!
//! * the replayer generates the children of every branch itself, so
//!   branching coverage of the full space is structural, not claimed;
//! * every prune event must be justified against the replayer's *own*
//!   incumbent and its *own* bound computation (exact integer arithmetic
//!   where the solver used floats);
//! * leaves update the replayer's incumbent under the solver's documented
//!   deterministic rule, and the returned solution must equal the final
//!   replayed incumbent.
//!
//! A clean replay therefore proves the returned solution optimal (or the
//! instance infeasible) assuming only that the event log reflects the
//! search that produced the answer — which is exactly what certifying a
//! search can establish. Replay does *not* need to show that explored
//! nodes were "correctly not pruned": exploring more than necessary never
//! loses optimality.
//!
//! Failures are reported as `CERTB001`–`CERTB006` diagnostics; a
//! truncated log (`dropped > 0`) yields `CERTB006` and no optimality
//! claim.

use crate::diag::{Code, Diagnostics, Location};
use rtise_ilp::{Cmp, IlpCertEvent, IlpCertificate, Model, Sense, Solution as IlpSolution};
use rtise_ise::{CiCandidate, IseCertEvent, IseCertificate, Selection};
use rtise_select::rms::{RmsCertEvent, RmsCertificate, RmsSelection};
use rtise_select::TaskSpec;

/// Tolerance for the RMS utilization-bound justification; deliberately
/// looser than the solver's own `1e-15` so every float prune the solver
/// makes on honestly-computed utilizations is accepted, while a bound
/// inflated enough to hide a better solution is still rejected.
const RMS_BOUND_EPS: f64 = 1e-9;

/// Stops a replay at the first broken justification: later events are
/// relative to solver state the replayer can no longer trust.
struct ReplayErr;

type ReplayResult = Result<(), ReplayErr>;

// ---------------------------------------------------------------------------
// ILP replay
// ---------------------------------------------------------------------------

struct IlpReplay<'a> {
    events: &'a [IlpCertEvent],
    idx: usize,
    n: usize,
    /// Dense normalized coefficients per row, variables in `order`.
    coeff: Vec<Vec<i64>>,
    rhs: Vec<i64>,
    /// Suffix-minimum achievable contribution per `(row, depth)`.
    min_rem: Vec<Vec<i64>>,
    obj: Vec<i64>,
    obj_min_rem: Vec<i64>,
    lhs: Vec<i64>,
    assign: Vec<bool>,
    best: Option<(i64, Vec<bool>)>,
    d: Diagnostics,
}

impl IlpReplay<'_> {
    fn next(&mut self, depth: usize) -> Result<IlpCertEvent, ReplayErr> {
        match self.events.get(self.idx) {
            Some(&e) => {
                self.idx += 1;
                Ok(e)
            }
            None => {
                self.d.error(
                    Code::CERTB001,
                    Location::Global,
                    format!(
                        "event log exhausted at depth {depth}: the recorded tree is \
                         smaller than the branching it declares"
                    ),
                );
                Err(ReplayErr)
            }
        }
    }

    fn walk(&mut self, depth: usize, cur_obj: i64) -> ReplayResult {
        let ev = self.next(depth)?;
        match ev {
            IlpCertEvent::PruneInfeasible { row } => {
                let ri = row as usize;
                if ri >= self.rhs.len() {
                    self.d.error(
                        Code::CERTB003,
                        Location::Row(ri),
                        format!(
                            "infeasibility witness row {ri} is outside the {}-row \
                             normalized system",
                            self.rhs.len()
                        ),
                    );
                    return Err(ReplayErr);
                }
                if self.lhs[ri] + self.min_rem[ri][depth] <= self.rhs[ri] {
                    self.d.error(
                        Code::CERTB003,
                        Location::Row(ri),
                        format!(
                            "prune at depth {depth} cites row {ri}, but its best-case \
                             completion {} <= rhs {} is still satisfiable",
                            self.lhs[ri] + self.min_rem[ri][depth],
                            self.rhs[ri]
                        ),
                    );
                    return Err(ReplayErr);
                }
                Ok(())
            }
            IlpCertEvent::PruneBound => {
                let Some((best, _)) = &self.best else {
                    self.d.error(
                        Code::CERTB002,
                        Location::Global,
                        format!("bound prune at depth {depth} with no incumbent to prune against"),
                    );
                    return Err(ReplayErr);
                };
                if cur_obj + self.obj_min_rem[depth] < *best {
                    self.d.error(
                        Code::CERTB002,
                        Location::Global,
                        format!(
                            "bound prune at depth {depth} unjustified: completion bound {} \
                             still beats incumbent {best}",
                            cur_obj + self.obj_min_rem[depth]
                        ),
                    );
                    return Err(ReplayErr);
                }
                Ok(())
            }
            IlpCertEvent::Leaf => {
                if depth != self.n {
                    self.d.error(
                        Code::CERTB001,
                        Location::Global,
                        format!(
                            "leaf event at depth {depth}, but the model has {} variable(s)",
                            self.n
                        ),
                    );
                    return Err(ReplayErr);
                }
                if let Some(ri) = (0..self.rhs.len()).find(|&ri| self.lhs[ri] > self.rhs[ri]) {
                    self.d.error(
                        Code::CERTB004,
                        Location::Row(ri),
                        format!(
                            "leaf assignment violates normalized row {ri}: {} > {}",
                            self.lhs[ri], self.rhs[ri]
                        ),
                    );
                    return Err(ReplayErr);
                }
                if self.best.as_ref().is_none_or(|(b, _)| cur_obj < *b) {
                    self.best = Some((cur_obj, self.assign.clone()));
                }
                Ok(())
            }
            IlpCertEvent::Branch { first } => {
                if depth >= self.n {
                    self.d.error(
                        Code::CERTB001,
                        Location::Global,
                        format!(
                            "branch event at depth {depth}, but the model has only {} \
                             variable(s)",
                            self.n
                        ),
                    );
                    return Err(ReplayErr);
                }
                // Both children are generated by the replayer itself, in
                // the recorded order — coverage of the subspace is
                // structural, whatever value was tried first.
                for val in [first, !first] {
                    self.assign[depth] = val;
                    if val {
                        for ri in 0..self.rhs.len() {
                            self.lhs[ri] += self.coeff[ri][depth];
                        }
                    }
                    let next_obj = cur_obj + if val { self.obj[depth] } else { 0 };
                    let r = self.walk(depth + 1, next_obj);
                    if val {
                        for ri in 0..self.rhs.len() {
                            self.lhs[ri] -= self.coeff[ri][depth];
                        }
                    }
                    r?;
                }
                self.assign[depth] = false;
                Ok(())
            }
        }
    }
}

/// Replays an ILP branch-and-bound certificate against its model and the
/// claimed outcome (`Some(solution)` or `None` for an infeasibility
/// verdict), independently confirming optimality.
///
/// The normalization (minimize sense, `Ge` rows negated, `Eq` rows split
/// in declaration order, variables in stable descending-`|objective|`
/// order) is re-derived from the model per the documented
/// [`IlpCertificate`] convention; every bound and feasibility witness is
/// then recomputed in exact `i64` arithmetic.
pub fn check_ilp_certificate(
    model: &Model,
    solution: Option<&IlpSolution>,
    cert: &IlpCertificate,
) -> Diagnostics {
    let mut d = Diagnostics::new();
    if cert.dropped > 0 {
        d.error(
            Code::CERTB006,
            Location::Global,
            format!(
                "certificate truncated: {} event(s) dropped past the recording cap; \
                 optimality is NOT proven",
                cert.dropped
            ),
        );
        return d;
    }
    let n = model.num_vars();

    // Re-derive the normalization the certificate is expressed in.
    let obj: Vec<i64> = match model.sense() {
        Sense::Minimize => model.objective().to_vec(),
        Sense::Maximize => model.objective().iter().map(|c| -c).collect(),
    };
    let mut le_rows: Vec<(Vec<(usize, i64)>, i64)> = Vec::new();
    for i in 0..model.num_rows() {
        let (terms, cmp, rhs) = model.row(i);
        for &(v, _) in terms {
            if v >= n {
                d.error(
                    Code::CERTB001,
                    Location::Row(i),
                    format!("model row {i} references variable {v} of {n}"),
                );
                return d;
            }
        }
        match cmp {
            Cmp::Le => le_rows.push((terms.to_vec(), rhs)),
            Cmp::Ge => le_rows.push((terms.iter().map(|&(v, c)| (v, -c)).collect(), -rhs)),
            Cmp::Eq => {
                le_rows.push((terms.to_vec(), rhs));
                le_rows.push((terms.iter().map(|&(v, c)| (v, -c)).collect(), -rhs));
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(obj[v].abs()));
    if cert.order != order {
        d.error(
            Code::CERTB001,
            Location::Global,
            "certificate variable order differs from the declared stable \
             descending-|objective| permutation",
        );
        return d;
    }
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v] = i;
    }
    let m = le_rows.len();
    let mut coeff = vec![vec![0i64; n]; m];
    for (ri, (terms, _)) in le_rows.iter().enumerate() {
        for &(v, c) in terms {
            coeff[ri][pos[v]] += c;
        }
    }
    let mut min_rem = vec![vec![0i64; n + 1]; m];
    for (ri, row) in coeff.iter().enumerate() {
        for depth in (0..n).rev() {
            min_rem[ri][depth] = min_rem[ri][depth + 1] + row[depth].min(0);
        }
    }
    let obj_ordered: Vec<i64> = order.iter().map(|&v| obj[v]).collect();
    let mut obj_min_rem = vec![0i64; n + 1];
    for depth in (0..n).rev() {
        obj_min_rem[depth] = obj_min_rem[depth + 1] + obj_ordered[depth].min(0);
    }
    let rhs: Vec<i64> = le_rows.iter().map(|&(_, r)| r).collect();

    let mut replay = IlpReplay {
        events: &cert.events,
        idx: 0,
        n,
        coeff,
        rhs,
        min_rem,
        obj: obj_ordered,
        obj_min_rem,
        lhs: vec![0; m],
        assign: vec![false; n],
        best: None,
        d,
    };
    if replay.walk(0, 0).is_err() {
        return replay.d;
    }
    let mut d = replay.d;
    if replay.idx != cert.events.len() {
        d.error(
            Code::CERTB001,
            Location::Global,
            format!(
                "{} event(s) left over after the root subtree was fully replayed",
                cert.events.len() - replay.idx
            ),
        );
        return d;
    }

    // The replay covered the whole space with every prune justified, so
    // the final replayed incumbent IS the optimum; compare the claim.
    match (solution, replay.best) {
        (Some(sol), Some((best_obj, assign))) => {
            let mut values = vec![false; n];
            for (depth, &v) in order.iter().enumerate() {
                values[v] = assign[depth];
            }
            let objective = match model.sense() {
                Sense::Minimize => best_obj,
                Sense::Maximize => -best_obj,
            };
            if sol.objective != objective || sol.values != values {
                d.error(
                    Code::CERTB005,
                    Location::Global,
                    format!(
                        "returned solution (objective {}) differs from the replayed \
                         optimum (objective {objective})",
                        sol.objective
                    ),
                );
            }
        }
        (Some(_), None) => {
            d.error(
                Code::CERTB005,
                Location::Global,
                "a solution was returned, but the replayed search reached no feasible leaf",
            );
        }
        (None, Some((best_obj, _))) => {
            d.error(
                Code::CERTB005,
                Location::Global,
                format!(
                    "claimed infeasible, but the replayed search found a feasible leaf \
                     with normalized objective {best_obj}"
                ),
            );
        }
        // Every prune justified and no feasible leaf: infeasibility proven.
        (None, None) => {}
    }
    d
}

// ---------------------------------------------------------------------------
// ISE replay
// ---------------------------------------------------------------------------

struct IseReplay<'a> {
    events: &'a [IseCertEvent],
    idx: usize,
    cands: &'a [CiCandidate],
    order: &'a [usize],
    budget: u64,
    stack: Vec<usize>,
    best_gain: u64,
    best_area: u64,
    best_chosen: Vec<usize>,
    d: Diagnostics,
}

impl IseReplay<'_> {
    /// Floor of the exact fractional-knapsack relaxation over the
    /// candidates at order positions `depth..`, in `u128` integer
    /// arithmetic — the independent counterpart of the solver's float
    /// bound. Any integral completion's gain is at most this floor, so a
    /// prune is justified iff the floor cannot beat the incumbent.
    fn bound_floor(&self, depth: usize, area: u64, gain: u64) -> u128 {
        let mut int_total = gain as u128;
        let mut room = self.budget - area;
        let mut frac: Option<(u64, u64, u64)> = None;
        for &i in &self.order[depth..] {
            let c = &self.cands[i];
            if c.area == 0 {
                int_total += c.total_gain() as u128;
            } else if frac.is_none() {
                if c.area <= room {
                    room -= c.area;
                    int_total += c.total_gain() as u128;
                } else {
                    frac = Some((c.total_gain(), room, c.area));
                }
            }
        }
        int_total
            + frac
                .map(|(g, r, a)| g as u128 * r as u128 / a as u128)
                .unwrap_or(0)
    }

    fn walk(&mut self, depth: usize, area: u64, gain: u64) -> ReplayResult {
        // The solver's deterministic incumbent rule, applied at every node
        // entry: better gain, or equal gain at strictly smaller area.
        if gain > self.best_gain || (gain == self.best_gain && area < self.best_area) {
            self.best_gain = gain;
            self.best_area = area;
            self.best_chosen = self.stack.clone();
            self.best_chosen.sort_unstable();
        }
        if depth == self.order.len() {
            return Ok(());
        }
        let ev = match self.events.get(self.idx) {
            Some(&e) => {
                self.idx += 1;
                e
            }
            None => {
                self.d.error(
                    Code::CERTB001,
                    Location::Global,
                    format!(
                        "event log exhausted at depth {depth}: the recorded tree is \
                         smaller than the branching it declares"
                    ),
                );
                return Err(ReplayErr);
            }
        };
        match ev {
            IseCertEvent::PruneBound => {
                let floor = self.bound_floor(depth, area, gain);
                if floor > self.best_gain as u128 {
                    self.d.error(
                        Code::CERTB002,
                        Location::Global,
                        format!(
                            "bound prune at depth {depth} unjustified: exact relaxation \
                             floor {floor} still beats incumbent gain {}",
                            self.best_gain
                        ),
                    );
                    return Err(ReplayErr);
                }
                Ok(())
            }
            IseCertEvent::Expand { include } => {
                let i = self.order[depth];
                let c = &self.cands[i];
                let fits = area + c.area <= self.budget;
                let conflict = self.stack.iter().any(|&j| self.cands[j].conflicts_with(c));
                let should_include = fits && !conflict && c.total_gain() > 0;
                if include != should_include {
                    self.d.error(
                        Code::CERTB003,
                        Location::Candidate(i),
                        format!(
                            "expansion at depth {depth} records include = {include}, but \
                             candidate {i} (fits = {fits}, conflict = {conflict}, gain = {}) \
                             requires include = {should_include}",
                            c.total_gain()
                        ),
                    );
                    return Err(ReplayErr);
                }
                if include {
                    self.stack.push(i);
                    let r = self.walk(depth + 1, area + c.area, gain + c.total_gain());
                    self.stack.pop();
                    r?;
                }
                self.walk(depth + 1, area, gain)
            }
        }
    }
}

/// Replays an intra-task selection branch-and-bound certificate against
/// the candidate library and budget, independently confirming that the
/// returned [`Selection`] is gain-optimal (ties by area).
///
/// The solver bounds with floats; the replay uses the floor of the exact
/// rational fractional-knapsack relaxation in `u128` arithmetic, which
/// accepts every honestly-computed float prune and rejects any prune that
/// would hide an integral improvement.
pub fn check_ise_certificate(
    cands: &[CiCandidate],
    budget: u64,
    sel: &Selection,
    cert: &IseCertificate,
) -> Diagnostics {
    let mut d = Diagnostics::new();
    if cert.dropped > 0 {
        d.error(
            Code::CERTB006,
            Location::Global,
            format!(
                "certificate truncated: {} event(s) dropped past the recording cap; \
                 optimality is NOT proven",
                cert.dropped
            ),
        );
        return d;
    }
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        let ga = cands[a].total_gain() as u128 * cands[b].area.max(1) as u128;
        let gb = cands[b].total_gain() as u128 * cands[a].area.max(1) as u128;
        gb.cmp(&ga)
    });
    if cert.order != order {
        d.error(
            Code::CERTB001,
            Location::Global,
            "certificate candidate order differs from the declared stable \
             descending gain/area permutation",
        );
        return d;
    }
    let mut replay = IseReplay {
        events: &cert.events,
        idx: 0,
        cands,
        order: &order,
        budget,
        stack: Vec::new(),
        best_gain: 0,
        best_area: 0,
        best_chosen: Vec::new(),
        d,
    };
    if replay.walk(0, 0, 0).is_err() {
        return replay.d;
    }
    let mut d = replay.d;
    if replay.idx != cert.events.len() {
        d.error(
            Code::CERTB001,
            Location::Global,
            format!(
                "{} event(s) left over after the root subtree was fully replayed",
                cert.events.len() - replay.idx
            ),
        );
        return d;
    }
    if sel.total_gain != replay.best_gain
        || sel.total_area != replay.best_area
        || sel.chosen != replay.best_chosen
    {
        d.error(
            Code::CERTB005,
            Location::Global,
            format!(
                "returned selection (gain {}, area {}) differs from the replayed \
                 optimum (gain {}, area {})",
                sel.total_gain, sel.total_area, replay.best_gain, replay.best_area
            ),
        );
    }
    d
}

// ---------------------------------------------------------------------------
// RMS replay
// ---------------------------------------------------------------------------

struct RmsReplay<'a> {
    events: &'a [RmsCertEvent],
    idx: usize,
    specs: &'a [TaskSpec],
    order: &'a [usize],
    budget: u64,
    periods: &'a [u64],
    /// Full-multiples scheduling points per depth: every `j·P_k ≤ P_i`
    /// with `k ≤ i` — the checker's own Theorem 1 formulation, a superset
    /// of the solver's reduced recursive set with an equivalent
    /// exists-a-point verdict.
    points: &'a [Vec<u64>],
    suffix_bound: &'a [f64],
    cycles: Vec<u64>,
    config: Vec<usize>,
    best: Option<(f64, Vec<usize>)>,
    d: Diagnostics,
}

impl RmsReplay<'_> {
    fn next(&mut self, depth: usize) -> Result<RmsCertEvent, ReplayErr> {
        match self.events.get(self.idx) {
            Some(&e) => {
                self.idx += 1;
                Ok(e)
            }
            None => {
                self.d.error(
                    Code::CERTB001,
                    Location::Global,
                    format!(
                        "event log exhausted at depth {depth}: the recorded tree is \
                         smaller than the branching it declares"
                    ),
                );
                Err(ReplayErr)
            }
        }
    }

    /// The exact per-task RMS test for the task at `depth` running
    /// `cand_cycles`, with the higher-priority tasks fixed along the
    /// current replay path.
    fn schedulable(&self, depth: usize, cand_cycles: u64) -> bool {
        self.points[depth].iter().any(|&t| {
            let mut load = (t as u128).div_ceil(self.periods[depth] as u128) * cand_cycles as u128;
            for k in 0..depth {
                load += (t as u128).div_ceil(self.periods[k] as u128) * self.cycles[k] as u128;
            }
            load <= t as u128
        })
    }

    fn walk(&mut self, depth: usize, area: u64, util: f64) -> ReplayResult {
        if depth == self.order.len() {
            if self.best.as_ref().is_none_or(|(b, _)| util < *b) {
                self.best = Some((util, self.config.clone()));
            }
            return Ok(());
        }
        let first = self.next(depth)?;
        if first == RmsCertEvent::PruneBound {
            let Some((b, _)) = &self.best else {
                self.d.error(
                    Code::CERTB002,
                    Location::Global,
                    format!("bound prune at depth {depth} with no incumbent to prune against"),
                );
                return Err(ReplayErr);
            };
            if util + self.suffix_bound[depth] < *b - RMS_BOUND_EPS {
                self.d.error(
                    Code::CERTB002,
                    Location::Global,
                    format!(
                        "bound prune at depth {depth} unjustified: utilization bound {} \
                         still beats incumbent {b}",
                        util + self.suffix_bound[depth]
                    ),
                );
                return Err(ReplayErr);
            }
            return Ok(());
        }
        let ti = self.order[depth];
        let spec = &self.specs[ti];
        // One event per configuration, fastest first, the first of which
        // was already consumed above.
        for (cfg_pos, j) in (0..spec.curve.len()).rev().enumerate() {
            let ev = if cfg_pos == 0 {
                first
            } else {
                self.next(depth)?
            };
            let p = &spec.curve.points()[j];
            match ev {
                RmsCertEvent::PruneBound => {
                    self.d.error(
                        Code::CERTB001,
                        Location::Task(ti),
                        format!(
                            "bound-prune event in the middle of depth {depth}'s \
                             configuration sweep"
                        ),
                    );
                    return Err(ReplayErr);
                }
                RmsCertEvent::CfgArea => {
                    if area + p.area <= self.budget {
                        self.d.error(
                            Code::CERTB003,
                            Location::Task(ti),
                            format!(
                                "area prune of configuration {j} unjustified: {} + {} \
                                 fits budget {}",
                                area, p.area, self.budget
                            ),
                        );
                        return Err(ReplayErr);
                    }
                }
                RmsCertEvent::CfgUnsched => {
                    if area + p.area > self.budget {
                        self.d.error(
                            Code::CERTB001,
                            Location::Task(ti),
                            format!(
                                "configuration {j} recorded as unschedulable but it \
                                 exceeds the budget; events are out of order"
                            ),
                        );
                        return Err(ReplayErr);
                    }
                    if self.schedulable(depth, p.cycles) {
                        self.d.error(
                            Code::CERTB003,
                            Location::Task(ti),
                            format!(
                                "schedulability prune of configuration {j} unjustified: \
                                 the exact scheduling-points test passes"
                            ),
                        );
                        return Err(ReplayErr);
                    }
                }
                RmsCertEvent::CfgRecurse => {
                    if area + p.area > self.budget || !self.schedulable(depth, p.cycles) {
                        self.d.error(
                            Code::CERTB004,
                            Location::Task(ti),
                            format!(
                                "configuration {j} was recursed into, but the replay \
                                 finds it over budget or unschedulable"
                            ),
                        );
                        return Err(ReplayErr);
                    }
                    self.config[ti] = j;
                    self.cycles[depth] = p.cycles;
                    self.walk(
                        depth + 1,
                        area + p.area,
                        util + p.cycles as f64 / spec.period as f64,
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Replays an RMS configuration-selection branch-and-bound certificate
/// against the task specs and budget, independently confirming that the
/// claimed outcome — `Some(selection)` or `None` for an unschedulability
/// verdict — is utilization-optimal.
///
/// Schedulability prunes are justified with the checker's own
/// full-multiples scheduling-points test (as in
/// [`crate::cert::rms_exact_schedulable`]); the utilization bound is
/// recomputed from the curves and accepted at a tolerance looser than the
/// solver's, so honest float prunes always pass.
pub fn check_rms_certificate(
    specs: &[TaskSpec],
    budget: u64,
    selection: Option<&RmsSelection>,
    cert: &RmsCertificate,
) -> Diagnostics {
    let mut d = Diagnostics::new();
    if cert.dropped > 0 {
        d.error(
            Code::CERTB006,
            Location::Global,
            format!(
                "certificate truncated: {} event(s) dropped past the recording cap; \
                 optimality is NOT proven",
                cert.dropped
            ),
        );
        return d;
    }
    if specs.is_empty() {
        if !cert.events.is_empty() || selection.is_some() {
            d.error(
                Code::CERTB001,
                Location::Global,
                "empty task set admits no search tree",
            );
        }
        return d;
    }
    if specs.iter().any(|s| s.period == 0) {
        d.error(
            Code::CERTB001,
            Location::Global,
            "a task has a zero period; the search space is undefined",
        );
        return d;
    }
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| specs[i].period);
    if cert.order != order {
        d.error(
            Code::CERTB001,
            Location::Global,
            "certificate task order differs from the declared stable \
             non-decreasing-period permutation",
        );
        return d;
    }
    let periods: Vec<u64> = order.iter().map(|&i| specs[i].period).collect();
    let points: Vec<Vec<u64>> = (0..order.len())
        .map(|depth| {
            let pi = periods[depth];
            let mut pts: Vec<u64> = Vec::new();
            for &pk in &periods[..=depth] {
                let mut t = pk;
                while t <= pi {
                    pts.push(t);
                    t += pk;
                }
            }
            pts.sort_unstable();
            pts.dedup();
            pts
        })
        .collect();
    // The per-depth utilization still achievable, area ignored — the same
    // lower bound the solver prunes with, recomputed from the curves.
    let best_u: Vec<f64> = specs
        .iter()
        .map(|s| {
            s.curve
                .points()
                .iter()
                .map(|p| p.cycles as f64 / s.period as f64)
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mut suffix_bound = vec![0.0; specs.len() + 1];
    for depth in (0..specs.len()).rev() {
        suffix_bound[depth] = suffix_bound[depth + 1] + best_u[order[depth]];
    }

    let mut replay = RmsReplay {
        events: &cert.events,
        idx: 0,
        specs,
        order: &order,
        budget,
        periods: &periods,
        points: &points,
        suffix_bound: &suffix_bound,
        cycles: vec![0; specs.len()],
        config: vec![0; specs.len()],
        best: None,
        d,
    };
    if replay.walk(0, 0, 0.0).is_err() {
        return replay.d;
    }
    let mut d = replay.d;
    if replay.idx != cert.events.len() {
        d.error(
            Code::CERTB001,
            Location::Global,
            format!(
                "{} event(s) left over after the root subtree was fully replayed",
                cert.events.len() - replay.idx
            ),
        );
        return d;
    }
    match (selection, replay.best) {
        (Some(sel), Some((util, config))) => {
            if sel.assignment.config != config
                || (sel.utilization - util).abs() > RMS_BOUND_EPS * util.max(1.0)
            {
                d.error(
                    Code::CERTB005,
                    Location::Global,
                    format!(
                        "returned selection (utilization {}) differs from the replayed \
                         optimum (utilization {util})",
                        sel.utilization
                    ),
                );
            }
        }
        (Some(_), None) => {
            d.error(
                Code::CERTB005,
                Location::Global,
                "a selection was returned, but the replayed search reached no \
                 schedulable leaf",
            );
        }
        (None, Some((util, _))) => {
            d.error(
                Code::CERTB005,
                Location::Global,
                format!(
                    "claimed unschedulable, but the replayed search found a feasible \
                     leaf with utilization {util}"
                ),
            );
        }
        // Full refutation: every configuration everywhere was pruned with
        // justification and no leaf was reached.
        (None, None) => {}
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ilp::SolveError;

    #[test]
    fn ilp_feasible_and_infeasible_certificates_replay_clean() {
        let mut m = Model::new(4);
        m.set_objective(Sense::Maximize, &[10, 40, 30, 50]);
        m.add_le(&[(0, 5), (1, 4), (2, 6), (3, 3)], 10);
        let (res, cert) = m.solve_with_cert();
        let sol = res.expect("feasible");
        assert!(cert.dropped == 0 && !cert.events.is_empty());
        let d = check_ilp_certificate(&m, Some(&sol), &cert);
        assert!(d.is_clean(), "{d}");

        let mut inf = Model::new(2);
        inf.add_ge(&[(0, 1), (1, 1)], 3);
        let (res, cert) = inf.solve_with_cert();
        assert_eq!(res, Err(SolveError::Infeasible));
        let d = check_ilp_certificate(&inf, None, &cert);
        assert!(d.is_clean(), "{d}");
    }

    #[test]
    fn ilp_forged_solution_is_rejected_against_replay() {
        let mut m = Model::new(3);
        m.set_objective(Sense::Maximize, &[60, 100, 120]);
        m.add_le(&[(0, 10), (1, 20), (2, 30)], 50);
        let (res, cert) = m.solve_with_cert();
        let mut sol = res.expect("feasible");
        sol.objective += 1;
        let d = check_ilp_certificate(&m, Some(&sol), &cert);
        assert!(d.has(Code::CERTB005), "{d}");
    }

    #[test]
    fn ilp_truncated_certificate_reports_incomplete() {
        let mut m = Model::new(6);
        m.set_objective(Sense::Maximize, &[3, 1, 4, 1, 5, 9]);
        m.add_le(&[(0, 2), (1, 3), (2, 1), (3, 4), (4, 2), (5, 3)], 7);
        let (res, cert) = m.solve_with_cert_capped(4);
        let sol = res.expect("feasible: the cap only limits recording");
        assert!(cert.dropped > 0);
        let d = check_ilp_certificate(&m, Some(&sol), &cert);
        assert!(d.has(Code::CERTB006), "{d}");
    }
}

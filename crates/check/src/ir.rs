//! Layer 1: the IR well-formedness analyzer.
//!
//! Classic dataflow checks over [`rtise_ir`]: def-before-use and
//! single-assignment on DFGs, acyclicity, operand arity per opcode, CFG
//! entry/reachability and natural-loop-bound presence (the preconditions of
//! WCET analysis), and region-decomposition validity.
//!
//! The analyzer works on a *raw* view of each DFG ([`RawNode`]) rather
//! than on the [`Dfg`] API directly: the append-only builder API cannot
//! even construct most of these defects, but a raw view can hold them —
//! which is exactly what the seeded-mutation negative tests (and any
//! future external front-end) need.

use crate::diag::{Code, Diagnostic, Diagnostics, Location, Severity};
use rtise_ir::cfg::{Cfg, Program};
use rtise_ir::dfg::{Dfg, DfgError};
use rtise_ir::op::OpKind;
use rtise_ir::region::Region;
use rtise_kernels::builder::BuildError;

/// One node of a raw (untrusted) DFG view: an opcode and plain-index
/// operands. Unlike [`Dfg`], nothing about a `RawNode` list is guaranteed
/// — that is the point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawNode {
    /// The operation kind.
    pub kind: OpKind,
    /// Operand node indices.
    pub args: Vec<usize>,
    /// Variable slot for [`OpKind::Input`]/[`OpKind::Output`] nodes.
    pub slot: Option<usize>,
}

/// Extracts the raw node list of a (trusted) [`Dfg`] so it can be analyzed
/// — or corrupted by a mutation test — without the builder invariants.
pub fn raw_view(dfg: &Dfg) -> Vec<RawNode> {
    dfg.ids()
        .map(|id| {
            let n = dfg.node_ref(id);
            RawNode {
                kind: n.kind(),
                args: n.args().iter().map(|a| a.0).collect(),
                slot: matches!(n.kind(), OpKind::Input | OpKind::Output).then(|| n.slot()),
            }
        })
        .collect()
}

/// Checks a raw DFG: def-before-use (`IR001`), operand arity (`IR002`),
/// acyclicity (`IR003`), and single assignment of output slots (`IR004`).
///
/// `block` qualifies the reported locations when the DFG belongs to a
/// known basic block.
pub fn check_raw_dfg(nodes: &[RawNode], block: Option<usize>) -> Diagnostics {
    let mut d = Diagnostics::new();
    let loc = |node: usize| Location::Node { block, node };

    for (i, n) in nodes.iter().enumerate() {
        if n.args.len() != n.kind.arity() {
            d.error(
                Code::IR002,
                loc(i),
                format!(
                    "{} takes {} operand(s), found {}",
                    n.kind,
                    n.kind.arity(),
                    n.args.len()
                ),
            );
        }
        for &a in &n.args {
            if a >= nodes.len() {
                d.error(
                    Code::IR001,
                    loc(i),
                    format!(
                        "operand {a} does not exist (graph has {} nodes)",
                        nodes.len()
                    ),
                );
            } else if a >= i {
                d.error(
                    Code::IR001,
                    loc(i),
                    format!("operand {a} is not defined before node {i} uses it"),
                );
            }
        }
    }

    // Acyclicity via three-color DFS over the in-range operand edges. A
    // cycle is reported once, at the node that closes it.
    let mut color = vec![0u8; nodes.len()]; // 0 white, 1 gray, 2 black
    for start in 0..nodes.len() {
        if color[start] != 0 {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = 1;
        while let Some(&mut (v, ref mut ai)) = stack.last_mut() {
            let args = &nodes[v].args;
            if *ai < args.len() {
                let a = args[*ai];
                *ai += 1;
                if a >= nodes.len() {
                    continue; // already reported as IR001
                }
                match color[a] {
                    0 => {
                        color[a] = 1;
                        stack.push((a, 0));
                    }
                    1 => d.error(
                        Code::IR003,
                        loc(v),
                        format!("operand edge {v} -> {a} closes a data-flow cycle"),
                    ),
                    _ => {}
                }
            } else {
                color[v] = 2;
                stack.pop();
            }
        }
    }

    // Single assignment: each variable slot written at most once per block.
    let mut writes: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.kind != OpKind::Output {
            continue;
        }
        let Some(slot) = n.slot else { continue };
        if let Some(&first) = writes.get(&slot) {
            d.error(
                Code::IR004,
                loc(i),
                format!("slot {slot} already written by node {first}"),
            );
        } else {
            writes.insert(slot, i);
        }
    }

    d
}

/// Checks one (already constructed) [`Dfg`] through its raw view.
pub fn check_dfg(dfg: &Dfg) -> Diagnostics {
    check_raw_dfg(&raw_view(dfg), None)
}

/// Checks a whole [`Program`]: structure (`IR005`), every block's DFG,
/// reachability from the entry block (`IR006`), and iteration-bound
/// presence for every natural-loop header (`IR007`, the precondition of
/// WCET analysis).
pub fn check_program(program: &Program) -> Diagnostics {
    let mut d = Diagnostics::new();

    if program.blocks.is_empty() {
        d.error(Code::IR005, Location::Global, "program has no blocks");
        return d;
    }
    if program.entry.0 >= program.blocks.len() {
        d.error(
            Code::IR005,
            Location::Global,
            format!("entry block {} is out of range", program.entry.0),
        );
        return d;
    }
    let structurally_valid = match program.validate() {
        Ok(()) => true,
        Err(e) => {
            d.error(Code::IR005, Location::Global, e.to_string());
            false
        }
    };

    for (i, block) in program.blocks.iter().enumerate() {
        d.merge(check_raw_dfg(&raw_view(&block.dfg), Some(i)));
    }

    if !structurally_valid {
        // CFG analysis would index out of range on dangling targets.
        return d;
    }

    let cfg = Cfg::analyze(program);
    let mut reachable = vec![false; program.blocks.len()];
    for &b in cfg.rpo() {
        reachable[b.0] = true;
    }
    for (i, r) in reachable.iter().enumerate() {
        if !r {
            d.error(
                Code::IR006,
                Location::Block(i),
                format!(
                    "block {:?} is unreachable from the entry",
                    program.blocks[i].name
                ),
            );
        }
    }
    for l in cfg.loops() {
        if !program.loop_bounds.contains_key(&l.header) {
            d.error(
                Code::IR007,
                Location::Block(l.header.0),
                format!(
                    "natural loop headed at block {} (depth {}) has no iteration bound",
                    l.header.0, l.depth
                ),
            );
        }
    }

    d
}

/// Checks a region decomposition of `dfg`: the regions must partition the
/// CI-valid operations (`IR008`) and each region must be maximal
/// (`IR009`).
pub fn check_regions(dfg: &Dfg, regions: &[Region]) -> Diagnostics {
    let mut d = Diagnostics::new();
    let mut owner: Vec<Option<usize>> = vec![None; dfg.len()];

    for (ri, r) in regions.iter().enumerate() {
        let mut weight = 0usize;
        for id in r.nodes.iter() {
            if id.0 >= dfg.len() {
                d.error(
                    Code::IR008,
                    Location::Region(ri),
                    format!("member node {} is out of range", id.0),
                );
                continue;
            }
            let kind = dfg.kind(id);
            if !kind.is_ci_valid() {
                d.error(
                    Code::IR008,
                    Location::Region(ri),
                    format!("member node {} is CI-invalid ({kind})", id.0),
                );
            }
            if !kind.is_pseudo() {
                weight += 1;
            }
            match owner[id.0] {
                Some(other) => d.error(
                    Code::IR008,
                    Location::Region(ri),
                    format!("node {} already belongs to region {other}", id.0),
                ),
                None => owner[id.0] = Some(ri),
            }
        }
        if weight != r.weight {
            d.error(
                Code::IR008,
                Location::Region(ri),
                format!(
                    "declared weight {} but counts {weight} real operations",
                    r.weight
                ),
            );
        }
        if weight == 0 {
            d.error(
                Code::IR008,
                Location::Region(ri),
                "region holds no real operation",
            );
        }

        // Regions are deliberately *not* convex — a data path through a
        // memory operation may leave and re-enter one (md5 does). Convexity
        // is a property of CI *candidates* and is enforced as CAND002.

        // Maximality: no valid non-constant neighbour may sit outside.
        // (Shared constants are absorbed by one region only, so a constant
        // neighbour outside the region is legal.)
        for id in r.nodes.iter() {
            if id.0 >= dfg.len() || dfg.kind(id) == OpKind::Const {
                continue;
            }
            for n in dfg.args(id).iter().chain(dfg.consumers(id)) {
                if dfg.kind(*n).is_ci_valid()
                    && dfg.kind(*n) != OpKind::Const
                    && !r.nodes.contains(*n)
                {
                    d.error(
                        Code::IR009,
                        Location::Region(ri),
                        format!(
                            "not maximal: valid neighbour {} of node {} is outside the region",
                            n.0, id.0
                        ),
                    );
                }
            }
        }
    }

    // Every real CI-valid operation must be covered by some region.
    for id in dfg.ids() {
        let kind = dfg.kind(id);
        if kind.is_ci_valid() && !kind.is_pseudo() && owner[id.0].is_none() {
            d.error(
                Code::IR008,
                Location::Node {
                    block: None,
                    node: id.0,
                },
                format!("operation {} ({kind}) is not covered by any region", id.0),
            );
        }
    }

    d
}

/// Maps a [`DfgError`] onto its diagnostic (`IR001` for unknown value
/// references, `IR002` for arity/pseudo-op misuse).
pub fn diagnose_dfg_error(err: &DfgError, block: Option<usize>) -> Diagnostic {
    let (code, node) = match err {
        DfgError::UndefinedOperand { operand } => (Code::IR001, Some(operand.0)),
        DfgError::ArityMismatch { .. } | DfgError::PseudoOp { .. } => (Code::IR002, None),
    };
    Diagnostic {
        code,
        severity: Severity::Error,
        location: match node {
            Some(n) => Location::Node { block, node: n },
            None => block.map(Location::Block).unwrap_or(Location::Global),
        },
        message: err.to_string(),
    }
}

/// Maps a builder [`BuildError`] onto its diagnostic, making the
/// structured construction errors of `rtise-kernels` consumable by this
/// checker (`IR010` for builder misuse, `IR005` for validation failures,
/// and the [`DfgError`] codes for data-flow mistakes).
pub fn diagnose_build_error(err: &BuildError) -> Diagnostic {
    match err {
        BuildError::UnclosedLoop { .. } => Diagnostic {
            code: Code::IR010,
            severity: Severity::Error,
            location: Location::Global,
            message: err.to_string(),
        },
        BuildError::DuplicateBlockLabel { second, .. } => Diagnostic {
            code: Code::IR010,
            severity: Severity::Error,
            location: Location::Block(second.0),
            message: err.to_string(),
        },
        BuildError::Dfg(e) => diagnose_dfg_error(e, None),
        BuildError::Invalid(e) => Diagnostic {
            code: Code::IR005,
            severity: Severity::Error,
            location: Location::Global,
            message: e.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ir::dfg::NodeId;
    use rtise_ir::region::regions;

    fn mac_dfg() -> Dfg {
        let mut g = Dfg::new();
        let a = g.input(0);
        let b = g.input(1);
        let m = g.bin(OpKind::Mul, a, b);
        let s = g.bin_imm(OpKind::Add, m, 3);
        g.output(0, s);
        g
    }

    #[test]
    fn well_formed_dfg_is_clean() {
        assert!(check_dfg(&mac_dfg()).is_clean());
    }

    #[test]
    fn raw_defects_get_their_codes() {
        let mut raw = raw_view(&mac_dfg());
        // Arity: steal an operand from the Add node (index 4; index 3 is
        // the interned constant).
        raw[4].args.pop();
        let d = check_raw_dfg(&raw, None);
        assert!(d.has(Code::IR002));

        // Use-before-def (forward reference without a cycle).
        let mut raw = raw_view(&mac_dfg());
        raw[2].args[0] = 3;
        let d = check_raw_dfg(&raw, None);
        assert!(d.has(Code::IR001));

        // Duplicate slot write.
        let mut g = mac_dfg();
        let one = g.imm(1);
        g.output(0, one);
        let d = check_dfg(&g);
        assert!(d.has(Code::IR004), "{d}");
    }

    #[test]
    fn cycles_are_detected() {
        let mut raw = raw_view(&mac_dfg());
        // Mul (2) consumes Add (4) which consumes Mul: a 2-cycle.
        raw[2].args[0] = 4;
        let d = check_raw_dfg(&raw, None);
        assert!(d.has(Code::IR003), "{d}");
    }

    #[test]
    fn kernel_programs_and_regions_are_clean() {
        for kernel in rtise_kernels::suite() {
            let d = check_program(&kernel.program);
            assert!(d.is_clean(), "{}: {d}", kernel.name);
            for block in &kernel.program.blocks {
                let rs = regions(&block.dfg);
                let d = check_regions(&block.dfg, &rs);
                assert!(d.is_clean(), "{}/{}: {d}", kernel.name, block.name);
            }
        }
    }

    #[test]
    fn region_defects_get_their_codes() {
        let g = mac_dfg();
        let mut rs = regions(&g);
        assert_eq!(rs.len(), 1);
        // Drop the Mul node: the region is no longer maximal, and the Mul
        // operation is uncovered.
        rs[0].nodes.remove(NodeId(2));
        rs[0].weight -= 1;
        let d = check_regions(&g, &rs);
        assert!(d.has(Code::IR009), "{d}");
        assert!(d.has(Code::IR008), "{d}");
    }

    #[test]
    fn build_errors_map_to_diagnostics() {
        let e = BuildError::DuplicateBlockLabel {
            label: "stage".into(),
            first: rtise_ir::cfg::BlockId(0),
            second: rtise_ir::cfg::BlockId(4),
        };
        let diag = diagnose_build_error(&e);
        assert_eq!(diag.code, Code::IR010);
        assert_eq!(diag.location, Location::Block(4));

        let e = BuildError::Dfg(DfgError::UndefinedOperand { operand: NodeId(9) });
        assert_eq!(diagnose_build_error(&e).code, Code::IR001);
    }
}

//! rtise-check: static analysis and certification for the rtise toolchain.
//!
//! Three layers, mirroring the trust boundary of the paper's flow
//! (Huynh & Mitra, "Instruction-set customization for real-time embedded
//! systems"):
//!
//! 1. **IR well-formedness** ([`ir`]) — structural analysis over
//!    `rtise-ir` programs: def-before-use, single assignment, DFG
//!    acyclicity, operand arity, CFG entry/reachability, loop-bound
//!    presence for WCET, and region-decomposition validity.
//! 2. **Certificate checking** ([`cert`]) — independent re-verification
//!    of solver outputs (candidate legality, selections, ILP solutions,
//!    EDF/RMS schedulability, Pareto fronts, graph partitions,
//!    reconfiguration schedules) *without reusing solver code*: every
//!    quantity is recomputed from the problem data. Its branch-and-bound
//!    arm ([`bnb`]) replays the optimality certificates the ILP, ISE and
//!    RMS searches emit, upgrading "feasible and honest" to "proven
//!    optimal" (`CERTB001`–`CERTB006`).
//! 3. **Diagnostics** ([`diag`]) — stable machine-readable codes
//!    (`IR001`…, `CAND001`…, `CERT001`…, `TRACE001`…) with severities,
//!    locations, and human plus `rtise-obs` JSON renderings.
//!
//! A fourth, smaller layer ([`trace`]) validates exported Chrome Trace
//! Event artifacts (`reproduce --trace-out` and friends) against the
//! subset of the format `chrome://tracing` requires; CI runs it over
//! every trace smoke artifact.
//!
//! The crate is wired into the Workbench pipeline as debug-build
//! assertions and into `rtise-bench reproduce --check`, which certifies
//! every experiment's artifacts before they are trusted.

pub mod bnb;
pub mod cert;
pub mod diag;
pub mod ir;
pub mod serve;
pub mod trace;

pub use diag::{Code, Diagnostic, Diagnostics, Location, Severity};

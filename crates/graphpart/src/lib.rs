//! # rtise-graphpart
//!
//! Multilevel k-way partitioning of weighted undirected graphs, after the
//! Karypis–Kumar scheme the paper uses for temporal partitioning of custom
//! instructions (§6.3.3): configurations should have roughly equal area
//! (vertex weight) while the reconfiguration cost crossing between them
//! (edge cut) is minimized.
//!
//! The implementation follows the three classic phases:
//!
//! 1. **Coarsening** — heavy-edge matching collapses vertex pairs until the
//!    graph is small;
//! 2. **Initial partitioning** — balanced greedy growing on the coarsest
//!    graph;
//! 3. **Uncoarsening** — the partition is projected back level by level and
//!    improved with Kernighan–Lin-style boundary refinement under a balance
//!    constraint.
//!
//! # Example
//!
//! Two triangles joined by one light edge split along the bridge:
//!
//! ```
//! use rtise_graphpart::{Graph, partition};
//!
//! let mut g = Graph::new(vec![1; 6]);
//! for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
//!     g.add_edge(u, v, 10);
//! }
//! g.add_edge(2, 3, 1);
//! let p = partition(&g, 2, 42);
//! assert_eq!(p.edge_cut(&g), 1);
//! ```

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A weighted undirected graph with integer vertex and edge weights.
///
/// Parallel edges are merged by accumulating their weights; self-loops are
/// ignored (they can never be cut).
#[derive(Debug, Clone)]
pub struct Graph {
    vweights: Vec<u64>,
    adj: Vec<Vec<(usize, u64)>>,
}

impl Graph {
    /// Creates a graph with one vertex per entry of `vertex_weights`.
    pub fn new(vertex_weights: Vec<u64>) -> Self {
        let n = vertex_weights.len();
        Graph {
            vweights: vertex_weights,
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vweights.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vweights.is_empty()
    }

    /// Weight of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn vertex_weight(&self, v: usize) -> u64 {
        self.vweights[v]
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> u64 {
        self.vweights.iter().sum()
    }

    /// Adds (or strengthens) the undirected edge `u — v` by `w`.
    ///
    /// Self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, w: u64) {
        assert!(u < self.len() && v < self.len(), "vertex out of range");
        if u == v || w == 0 {
            return;
        }
        for &mut (ref t, ref mut ew) in &mut self.adj[u] {
            if *t == v {
                *ew += w;
                self.adj[v]
                    .iter_mut()
                    .find(|(t2, _)| *t2 == u)
                    .expect("symmetric adjacency")
                    .1 += w;
                return;
            }
        }
        self.adj[u].push((v, w));
        self.adj[v].push((u, w));
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: usize) -> &[(usize, u64)] {
        &self.adj[v]
    }
}

/// A k-way assignment of vertices to parts `0..k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// `assignment[v]` is the part of vertex `v`.
    pub assignment: Vec<usize>,
    /// Number of parts.
    pub k: usize,
}

impl Partitioning {
    /// Sum of weights of edges whose endpoints lie in different parts.
    pub fn edge_cut(&self, g: &Graph) -> u64 {
        let mut cut = 0;
        for u in 0..g.len() {
            for &(v, w) in g.neighbors(u) {
                if u < v && self.assignment[u] != self.assignment[v] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Total vertex weight per part.
    pub fn part_weights(&self, g: &Graph) -> Vec<u64> {
        let mut w = vec![0u64; self.k];
        for v in 0..g.len() {
            w[self.assignment[v]] += g.vertex_weight(v);
        }
        w
    }

    /// Ratio of the heaviest part to the ideal `total/k` (1.0 = perfectly
    /// balanced).
    pub fn imbalance(&self, g: &Graph) -> f64 {
        let w = self.part_weights(g);
        let total: u64 = w.iter().sum();
        if total == 0 || self.k == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.k as f64;
        w.iter().copied().max().unwrap_or(0) as f64 / ideal
    }
}

/// Maximum allowed part weight as a multiple of the ideal average.
const BALANCE_FACTOR: f64 = 1.25;

/// Partitions `g` into `k` parts of roughly equal vertex weight while
/// minimizing edge cut, using the multilevel scheme.
///
/// `seed` makes the randomized matching and tie-breaking deterministic.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn partition(g: &Graph, k: usize, seed: u64) -> Partitioning {
    assert!(k > 0, "k must be positive");
    let mut rng = SmallRng::seed_from_u64(seed);
    if k == 1 || g.len() <= 1 {
        return Partitioning {
            assignment: vec![0; g.len()],
            k,
        };
    }

    // Coarsening.
    let mut levels: Vec<(Graph, Vec<usize>)> = Vec::new(); // (finer graph, map fine->coarse)
    let mut cur = g.clone();
    let target = (k * 8).max(24);
    while cur.len() > target {
        let (coarse, map) = coarsen(&cur, &mut rng);
        if coarse.len() as f64 > cur.len() as f64 * 0.95 {
            break; // diminishing returns
        }
        levels.push((cur, map));
        cur = coarse;
    }

    // Initial partitioning on the coarsest graph.
    let mut assignment = initial_partition(&cur, k, &mut rng);
    refine(&cur, k, &mut assignment, &mut rng);

    // Uncoarsening with refinement at every level.
    while let Some((finer, map)) = levels.pop() {
        let mut fine_assign = vec![0usize; finer.len()];
        for v in 0..finer.len() {
            fine_assign[v] = assignment[map[v]];
        }
        assignment = fine_assign;
        refine(&finer, k, &mut assignment, &mut rng);
        cur = finer;
    }
    debug_assert_eq!(cur.len(), g.len());
    Partitioning { assignment, k }
}

/// One level of heavy-edge matching. Returns the coarse graph and the
/// fine-to-coarse vertex map.
fn coarsen(g: &Graph, rng: &mut SmallRng) -> (Graph, Vec<usize>) {
    let n = g.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut matched = vec![usize::MAX; n];
    let mut coarse_count = 0usize;
    let mut map = vec![usize::MAX; n];
    for &u in &order {
        if map[u] != usize::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let partner = g
            .neighbors(u)
            .iter()
            .filter(|(v, _)| map[*v] == usize::MAX && *v != u)
            .max_by_key(|(_, w)| *w)
            .map(|&(v, _)| v);
        map[u] = coarse_count;
        if let Some(v) = partner {
            map[v] = coarse_count;
            matched[u] = v;
        }
        coarse_count += 1;
    }
    let mut vweights = vec![0u64; coarse_count];
    for v in 0..n {
        vweights[map[v]] += g.vertex_weight(v);
    }
    let mut coarse = Graph::new(vweights);
    for u in 0..n {
        for &(v, w) in g.neighbors(u) {
            if u < v && map[u] != map[v] {
                coarse.add_edge(map[u], map[v], w);
            }
        }
    }
    (coarse, map)
}

/// Balanced greedy-growing initial partition.
fn initial_partition(g: &Graph, k: usize, rng: &mut SmallRng) -> Vec<usize> {
    let n = g.len();
    let mut assignment = vec![usize::MAX; n];
    let mut part_w = vec![0u64; k];
    let limit = (g.total_weight() as f64 / k as f64 * BALANCE_FACTOR).ceil() as u64;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    // BFS-grow from random seeds, always extending the lightest part with its
    // most-connected frontier vertex.
    for &v in &order {
        if assignment[v] != usize::MAX {
            continue;
        }
        // Prefer the part with most connectivity to v that still has room;
        // fall back to the lightest part.
        let mut conn = vec![0u64; k];
        for &(u, w) in g.neighbors(v) {
            if assignment[u] != usize::MAX {
                conn[assignment[u]] += w;
            }
        }
        let best = (0..k)
            .filter(|&p| part_w[p] + g.vertex_weight(v) <= limit)
            .max_by_key(|&p| (conn[p], std::cmp::Reverse(part_w[p])))
            .unwrap_or_else(|| {
                (0..k)
                    .min_by_key(|&p| part_w[p])
                    .expect("k > 0")
            });
        assignment[v] = best;
        part_w[best] += g.vertex_weight(v);
    }
    assignment
}

/// Greedy boundary refinement: repeatedly move vertices whose cut gain is
/// positive (or balance-improving at zero gain) until a pass makes no move.
fn refine(g: &Graph, k: usize, assignment: &mut [usize], rng: &mut SmallRng) {
    let n = g.len();
    let mut part_w = vec![0u64; k];
    for v in 0..n {
        part_w[assignment[v]] += g.vertex_weight(v);
    }
    let limit = (g.total_weight() as f64 / k as f64 * BALANCE_FACTOR).ceil() as u64;
    let mut order: Vec<usize> = (0..n).collect();
    for _pass in 0..8 {
        order.shuffle(rng);
        let mut moved = false;
        for &v in &order {
            let from = assignment[v];
            let mut conn = vec![0i64; k];
            let mut boundary = false;
            for &(u, w) in g.neighbors(v) {
                conn[assignment[u]] += w as i64;
                if assignment[u] != from {
                    boundary = true;
                }
            }
            if !boundary {
                continue;
            }
            let internal = conn[from];
            let vw = g.vertex_weight(v);
            let mut best: Option<(i64, usize)> = None;
            for to in 0..k {
                if to == from || part_w[to] + vw > limit {
                    continue;
                }
                let gain = conn[to] - internal;
                let better_balance = part_w[to] + vw < part_w[from];
                if (gain > 0 || (gain == 0 && better_balance))
                    && best.is_none_or(|(bg, _)| gain > bg) {
                        best = Some((gain, to));
                    }
            }
            if let Some((_, to)) = best {
                part_w[from] -= vw;
                part_w[to] += vw;
                assignment[v] = to;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;

    fn clique_pair(bridge_w: u64) -> Graph {
        let mut g = Graph::new(vec![1; 8]);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 100);
                g.add_edge(u + 4, v + 4, 100);
            }
        }
        g.add_edge(3, 4, bridge_w);
        g
    }

    #[test]
    fn splits_cliques_along_bridge() {
        let g = clique_pair(1);
        let p = partition(&g, 2, 7);
        assert_eq!(p.edge_cut(&g), 1);
        assert_eq!(p.part_weights(&g), vec![4, 4]);
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = clique_pair(1);
        let p = partition(&g, 1, 0);
        assert_eq!(p.edge_cut(&g), 0);
        assert!(p.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn parallel_edges_merge() {
        let mut g = Graph::new(vec![1, 1]);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 1, 4);
        assert_eq!(g.neighbors(0), &[(1, 7)]);
        assert_eq!(g.neighbors(1), &[(0, 7)]);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = Graph::new(vec![1]);
        g.add_edge(0, 0, 9);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    fn respects_vertex_weights_for_balance() {
        // One huge vertex and six small ones: the huge vertex should sit
        // alone (or nearly) in its part.
        let mut g = Graph::new(vec![60, 10, 10, 10, 10, 10, 10]);
        for v in 1..7 {
            g.add_edge(0, v, 1);
        }
        let p = partition(&g, 2, 3);
        assert!(p.imbalance(&g) <= BALANCE_FACTOR + 1e-9);
    }

    #[test]
    fn larger_random_graph_is_balanced_and_cut_bounded() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
        let n = 200;
        let mut g = Graph::new(vec![1; n]);
        // Ring of cliques: 10 clusters of 20.
        for c in 0..10 {
            let base = c * 20;
            for u in 0..20 {
                for v in (u + 1)..20 {
                    if rng.gen_bool(0.4) {
                        g.add_edge(base + u, base + v, 10);
                    }
                }
            }
            g.add_edge(base + 19, (base + 20) % n, 1);
        }
        let p = partition(&g, 5, 11);
        // Cutting only inter-cluster bridges costs at most 10.
        assert!(p.edge_cut(&g) <= 30, "cut {} too high", p.edge_cut(&g));
        assert!(p.imbalance(&g) <= BALANCE_FACTOR + 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = clique_pair(2);
        let a = partition(&g, 2, 5);
        let b = partition(&g, 2, 5);
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn assignment_always_valid(n in 1usize..40, k in 1usize..6, seed in 0u64..50) {
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut g = Graph::new((0..n).map(|_| rng.gen_range(1..5)).collect());
            for u in 0..n {
                for v in (u+1)..n {
                    if rng.gen_bool(0.2) {
                        g.add_edge(u, v, rng.gen_range(1..10));
                    }
                }
            }
            let p = partition(&g, k, seed);
            prop_assert_eq!(p.assignment.len(), n);
            prop_assert!(p.assignment.iter().all(|&a| a < k));
            // edge_cut is symmetric and bounded by total edge weight.
            let total_w: u64 = (0..n).map(|u| g.neighbors(u).iter().map(|(_, w)| w).sum::<u64>()).sum::<u64>() / 2;
            prop_assert!(p.edge_cut(&g) <= total_w);
        }
    }
}

//! # rtise-graphpart
//!
//! Multilevel k-way partitioning of weighted undirected graphs, after the
//! Karypis–Kumar scheme the paper uses for temporal partitioning of custom
//! instructions (§6.3.3): configurations should have roughly equal area
//! (vertex weight) while the reconfiguration cost crossing between them
//! (edge cut) is minimized.
//!
//! The implementation follows the three classic phases:
//!
//! 1. **Coarsening** — heavy-edge matching collapses vertex pairs until the
//!    graph is small;
//! 2. **Initial partitioning** — balanced greedy growing on the coarsest
//!    graph;
//! 3. **Uncoarsening** — the partition is projected back level by level and
//!    improved with Kernighan–Lin-style boundary refinement under a balance
//!    constraint.
//!
//! # Example
//!
//! Two triangles joined by one light edge split along the bridge:
//!
//! ```
//! use rtise_graphpart::{Graph, partition};
//!
//! let mut g = Graph::new(vec![1; 6]);
//! for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
//!     g.add_edge(u, v, 10);
//! }
//! g.add_edge(2, 3, 1);
//! let p = partition(&g, 2, 42);
//! assert_eq!(p.edge_cut(&g), 1);
//! ```

use rtise_obs::Rng;

/// A weighted undirected graph with integer vertex and edge weights.
///
/// Parallel edges are merged by accumulating their weights; self-loops are
/// ignored (they can never be cut).
#[derive(Debug, Clone)]
pub struct Graph {
    vweights: Vec<u64>,
    adj: Vec<Vec<(usize, u64)>>,
}

impl Graph {
    /// Creates a graph with one vertex per entry of `vertex_weights`.
    pub fn new(vertex_weights: Vec<u64>) -> Self {
        let n = vertex_weights.len();
        Graph {
            vweights: vertex_weights,
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vweights.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vweights.is_empty()
    }

    /// Weight of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn vertex_weight(&self, v: usize) -> u64 {
        self.vweights[v]
    }

    /// Total vertex weight.
    pub fn total_weight(&self) -> u64 {
        self.vweights.iter().sum()
    }

    /// Adds (or strengthens) the undirected edge `u — v` by `w`.
    ///
    /// Self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize, w: u64) {
        assert!(u < self.len() && v < self.len(), "vertex out of range");
        if u == v || w == 0 {
            return;
        }
        for &mut (ref t, ref mut ew) in &mut self.adj[u] {
            if *t == v {
                *ew += w;
                self.adj[v]
                    .iter_mut()
                    .find(|(t2, _)| *t2 == u)
                    .expect("symmetric adjacency")
                    .1 += w;
                return;
            }
        }
        self.adj[u].push((v, w));
        self.adj[v].push((u, w));
    }

    /// Neighbors of `v` with edge weights.
    pub fn neighbors(&self, v: usize) -> &[(usize, u64)] {
        &self.adj[v]
    }
}

/// A k-way assignment of vertices to parts `0..k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    /// `assignment[v]` is the part of vertex `v`.
    pub assignment: Vec<usize>,
    /// Number of parts.
    pub k: usize,
}

impl Partitioning {
    /// Sum of weights of edges whose endpoints lie in different parts.
    pub fn edge_cut(&self, g: &Graph) -> u64 {
        let mut cut = 0;
        for u in 0..g.len() {
            for &(v, w) in g.neighbors(u) {
                if u < v && self.assignment[u] != self.assignment[v] {
                    cut += w;
                }
            }
        }
        cut
    }

    /// Total vertex weight per part.
    pub fn part_weights(&self, g: &Graph) -> Vec<u64> {
        let mut w = vec![0u64; self.k];
        for v in 0..g.len() {
            w[self.assignment[v]] += g.vertex_weight(v);
        }
        w
    }

    /// Ratio of the heaviest part to the ideal `total/k` (1.0 = perfectly
    /// balanced).
    pub fn imbalance(&self, g: &Graph) -> f64 {
        let w = self.part_weights(g);
        let total: u64 = w.iter().sum();
        if total == 0 || self.k == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.k as f64;
        w.iter().copied().max().unwrap_or(0) as f64 / ideal
    }
}

/// Maximum allowed part weight as a multiple of the ideal average. Public
/// because it is part of the partitioner's contract: `rtise-check`
/// certifies produced partitionings against this same tolerance.
pub const BALANCE_FACTOR: f64 = 1.25;

/// Independent initial partitions tried on the coarsest graph (best cut
/// wins).
const INITIAL_RESTARTS: u64 = 4;

/// Solver statistics for one [`partition_with_stats`] call.
///
/// The trajectory makes the multilevel scheme observable: every entry is
/// the edge cut *after* refinement at one level, coarsest first, and the
/// sequence is non-increasing: projection preserves both the cut and the
/// part weights, so after the coarsest level (where balance repair may
/// accept negative-gain moves) refinement only accepts moves with
/// non-negative gain.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Number of coarsening levels actually built.
    pub coarsen_levels: u64,
    /// Vertex count of the coarsest graph the initial partition ran on.
    pub coarsest_vertices: u64,
    /// Independent initial partitions tried on the coarsest graph.
    pub initial_restarts: u64,
    /// Total refinement passes across all levels.
    pub refine_passes: u64,
    /// Total accepted vertex moves across all refinement passes.
    pub refine_moves: u64,
    /// Edge cut after refinement at each level, coarsest graph first; the
    /// last entry is the final cut on the input graph.
    pub cut_trajectory: Vec<u64>,
}

/// Partitions `g` into `k` parts of roughly equal vertex weight while
/// minimizing edge cut, using the multilevel scheme.
///
/// `seed` makes the randomized matching and tie-breaking deterministic.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn partition(g: &Graph, k: usize, seed: u64) -> Partitioning {
    partition_with_stats(g, k, seed).0
}

/// Like [`partition`], additionally returning [`PartitionStats`] and
/// publishing `graphpart.*` counters to the [`rtise_obs`] registry.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn partition_with_stats(g: &Graph, k: usize, seed: u64) -> (Partitioning, PartitionStats) {
    assert!(k > 0, "k must be positive");
    let mut rng = Rng::new(seed);
    let mut stats = PartitionStats::default();
    if k == 1 || g.len() <= 1 {
        let p = Partitioning {
            assignment: vec![0; g.len()],
            k,
        };
        stats.cut_trajectory.push(0);
        return (p, stats);
    }

    // Coarsening.
    let mut levels: Vec<(Graph, Vec<usize>)> = Vec::new(); // (finer graph, map fine->coarse)
    let mut cur = g.clone();
    let target = (k * 8).max(24);
    while cur.len() > target {
        let (coarse, map) = coarsen(&cur, &mut rng);
        if coarse.len() as f64 > cur.len() as f64 * 0.95 {
            break; // diminishing returns
        }
        levels.push((cur, map));
        cur = coarse;
    }
    stats.coarsen_levels = levels.len() as u64;
    stats.coarsest_vertices = cur.len() as u64;

    // Initial partitioning on the coarsest graph. The coarsest graph is
    // small, so multi-start is cheap insurance against an unlucky greedy
    // growth that refinement cannot escape.
    let mut best: Option<(Vec<usize>, u64)> = None;
    for _ in 0..INITIAL_RESTARTS {
        let mut a = initial_partition(&cur, k, &mut rng);
        let (passes, moves) = refine(&cur, k, &mut a, &mut rng);
        stats.refine_passes += passes;
        stats.refine_moves += moves;
        let cut = Partitioning {
            assignment: a.clone(),
            k,
        }
        .edge_cut(&cur);
        if best.as_ref().is_none_or(|&(_, bc)| cut < bc) {
            best = Some((a, cut));
        }
    }
    let (mut assignment, best_cut) = best.expect("INITIAL_RESTARTS > 0");
    stats.initial_restarts = INITIAL_RESTARTS;
    stats.cut_trajectory.push(best_cut);

    // Uncoarsening with refinement at every level.
    while let Some((finer, map)) = levels.pop() {
        let mut fine_assign = vec![0usize; finer.len()];
        for v in 0..finer.len() {
            fine_assign[v] = assignment[map[v]];
        }
        assignment = fine_assign;
        let (passes, moves) = refine(&finer, k, &mut assignment, &mut rng);
        stats.refine_passes += passes;
        stats.refine_moves += moves;
        stats.cut_trajectory.push(
            Partitioning {
                assignment: assignment.clone(),
                k,
            }
            .edge_cut(&finer),
        );
        cur = finer;
    }
    debug_assert_eq!(cur.len(), g.len());
    rtise_obs::record("graphpart.calls", 1);
    rtise_obs::record("graphpart.coarsen_levels", stats.coarsen_levels);
    rtise_obs::record("graphpart.refine_passes", stats.refine_passes);
    rtise_obs::record("graphpart.refine_moves", stats.refine_moves);
    (Partitioning { assignment, k }, stats)
}

/// One level of heavy-edge matching. Returns the coarse graph and the
/// fine-to-coarse vertex map.
fn coarsen(g: &Graph, rng: &mut Rng) -> (Graph, Vec<usize>) {
    let n = g.len();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let mut matched = vec![usize::MAX; n];
    let mut coarse_count = 0usize;
    let mut map = vec![usize::MAX; n];
    for &u in &order {
        if map[u] != usize::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let partner = g
            .neighbors(u)
            .iter()
            .filter(|(v, _)| map[*v] == usize::MAX && *v != u)
            .max_by_key(|(_, w)| *w)
            .map(|&(v, _)| v);
        map[u] = coarse_count;
        if let Some(v) = partner {
            map[v] = coarse_count;
            matched[u] = v;
        }
        coarse_count += 1;
    }
    let mut vweights = vec![0u64; coarse_count];
    for v in 0..n {
        vweights[map[v]] += g.vertex_weight(v);
    }
    let mut coarse = Graph::new(vweights);
    for u in 0..n {
        for &(v, w) in g.neighbors(u) {
            if u < v && map[u] != map[v] {
                coarse.add_edge(map[u], map[v], w);
            }
        }
    }
    (coarse, map)
}

/// Greedy graph growing initial partition (GGGP): grow one part at a time
/// from a random seed vertex, always absorbing the unassigned vertex most
/// connected to the growing part, until the part reaches its share of the
/// remaining weight. Growing parts one at a time (instead of assigning
/// vertices to parts one at a time) keeps natural clusters together.
fn initial_partition(g: &Graph, k: usize, rng: &mut Rng) -> Vec<usize> {
    let n = g.len();
    let mut assignment = vec![usize::MAX; n];
    let mut remaining = g.total_weight();
    let mut unassigned = n;
    for p in 0..k {
        if unassigned == 0 {
            break;
        }
        let parts_left = k - p;
        if parts_left == 1 {
            // Last part absorbs everything still unassigned.
            for a in assignment.iter_mut().filter(|a| **a == usize::MAX) {
                *a = p;
            }
            break;
        }
        let target = (remaining as f64 / parts_left as f64).round() as u64;
        // Connectivity of each unassigned vertex to the growing part.
        let mut conn = vec![0u64; n];
        let pick = rng.gen_range(0..unassigned);
        let mut cur = (0..n)
            .filter(|&v| assignment[v] == usize::MAX)
            .nth(pick)
            .expect("unassigned > 0");
        let mut part_w = 0u64;
        loop {
            assignment[cur] = p;
            unassigned -= 1;
            part_w += g.vertex_weight(cur);
            remaining -= g.vertex_weight(cur);
            if part_w >= target || unassigned == 0 {
                break;
            }
            for &(u, w) in g.neighbors(cur) {
                if assignment[u] == usize::MAX {
                    conn[u] += w;
                }
            }
            let next = (0..n)
                .filter(|&v| assignment[v] == usize::MAX)
                .max_by_key(|&v| conn[v])
                .expect("unassigned > 0");
            cur = if conn[next] > 0 {
                next
            } else {
                // Frontier exhausted (disconnected graph): random restart.
                let pick = rng.gen_range(0..unassigned);
                (0..n)
                    .filter(|&v| assignment[v] == usize::MAX)
                    .nth(pick)
                    .expect("unassigned > 0")
            };
        }
    }
    assignment
}

/// Greedy boundary refinement: repeatedly move vertices whose cut gain is
/// positive (or balance-improving at zero gain) until a pass makes no move.
/// Returns `(passes run, moves accepted)`.
fn refine(g: &Graph, k: usize, assignment: &mut [usize], rng: &mut Rng) -> (u64, u64) {
    let n = g.len();
    let mut part_w = vec![0u64; k];
    for v in 0..n {
        part_w[assignment[v]] += g.vertex_weight(v);
    }
    let limit = (g.total_weight() as f64 / k as f64 * BALANCE_FACTOR).ceil() as u64;
    let mut order: Vec<usize> = (0..n).collect();
    let (mut passes, mut moves) = (0u64, 0u64);
    for _pass in 0..8 {
        passes += 1;
        rng.shuffle(&mut order);
        let mut moved = false;
        for &v in &order {
            let from = assignment[v];
            // Balance repair: when a part overflows the limit (possible
            // only right after a bad initial partition), accept the
            // least-bad move out of it even at negative gain.
            let over_limit = part_w[from] > limit;
            let mut conn = vec![0i64; k];
            let mut boundary = false;
            for &(u, w) in g.neighbors(v) {
                conn[assignment[u]] += w as i64;
                if assignment[u] != from {
                    boundary = true;
                }
            }
            if !boundary && !over_limit {
                continue;
            }
            let internal = conn[from];
            let vw = g.vertex_weight(v);
            let mut best: Option<(i64, usize)> = None;
            for to in 0..k {
                if to == from || part_w[to] + vw > limit {
                    continue;
                }
                let gain = conn[to] - internal;
                let better_balance = part_w[to] + vw < part_w[from];
                if (gain > 0 || (gain == 0 && better_balance) || over_limit)
                    && best.is_none_or(|(bg, _)| gain > bg)
                {
                    best = Some((gain, to));
                }
            }
            if let Some((_, to)) = best {
                part_w[from] -= vw;
                part_w[to] += vw;
                assignment[v] = to;
                moved = true;
                moves += 1;
            }
        }
        if !moved {
            break;
        }
    }
    (passes, moves)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_pair(bridge_w: u64) -> Graph {
        let mut g = Graph::new(vec![1; 8]);
        for u in 0..4 {
            for v in (u + 1)..4 {
                g.add_edge(u, v, 100);
                g.add_edge(u + 4, v + 4, 100);
            }
        }
        g.add_edge(3, 4, bridge_w);
        g
    }

    #[test]
    fn splits_cliques_along_bridge() {
        let g = clique_pair(1);
        let p = partition(&g, 2, 7);
        assert_eq!(p.edge_cut(&g), 1);
        assert_eq!(p.part_weights(&g), vec![4, 4]);
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = clique_pair(1);
        let p = partition(&g, 1, 0);
        assert_eq!(p.edge_cut(&g), 0);
        assert!(p.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn parallel_edges_merge() {
        let mut g = Graph::new(vec![1, 1]);
        g.add_edge(0, 1, 3);
        g.add_edge(0, 1, 4);
        assert_eq!(g.neighbors(0), &[(1, 7)]);
        assert_eq!(g.neighbors(1), &[(0, 7)]);
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = Graph::new(vec![1]);
        g.add_edge(0, 0, 9);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    fn respects_vertex_weights_for_balance() {
        // One huge vertex and six small ones: the huge vertex should sit
        // alone (or nearly) in its part.
        let mut g = Graph::new(vec![60, 10, 10, 10, 10, 10, 10]);
        for v in 1..7 {
            g.add_edge(0, v, 1);
        }
        let p = partition(&g, 2, 3);
        assert!(p.imbalance(&g) <= BALANCE_FACTOR + 1e-9);
    }

    #[test]
    fn larger_random_graph_is_balanced_and_cut_bounded() {
        let mut rng = Rng::new(99);
        let n = 200;
        let mut g = Graph::new(vec![1; n]);
        // Ring of cliques: 10 clusters of 20.
        for c in 0..10 {
            let base = c * 20;
            for u in 0..20 {
                for v in (u + 1)..20 {
                    if rng.gen_bool(0.4) {
                        g.add_edge(base + u, base + v, 10);
                    }
                }
            }
            g.add_edge(base + 19, (base + 20) % n, 1);
        }
        let p = partition(&g, 5, 11);
        // Cutting only inter-cluster bridges costs at most 10.
        assert!(p.edge_cut(&g) <= 30, "cut {} too high", p.edge_cut(&g));
        assert!(p.imbalance(&g) <= BALANCE_FACTOR + 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = clique_pair(2);
        let a = partition(&g, 2, 5);
        let b = partition(&g, 2, 5);
        assert_eq!(a, b);
    }

    /// Seeded random instance used by the invariant tests below.
    fn random_graph(seed: u64) -> (Graph, usize) {
        let mut rng = Rng::new(seed);
        let n = rng.gen_range(1usize..40);
        let k = rng.gen_range(1usize..6);
        let mut g = Graph::new((0..n).map(|_| rng.gen_range(1u64..5)).collect());
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.2) {
                    g.add_edge(u, v, rng.gen_range(1u64..10));
                }
            }
        }
        (g, k)
    }

    #[test]
    fn assignment_always_valid() {
        for seed in 0u64..50 {
            let (g, k) = random_graph(seed);
            let n = g.len();
            let p = partition(&g, k, seed);
            assert_eq!(p.assignment.len(), n);
            assert!(p.assignment.iter().all(|&a| a < k));
            // edge_cut is symmetric and bounded by total edge weight.
            let total_w: u64 = (0..n)
                .map(|u| g.neighbors(u).iter().map(|(_, w)| w).sum::<u64>())
                .sum::<u64>()
                / 2;
            assert!(p.edge_cut(&g) <= total_w);
        }
    }

    #[test]
    fn stats_do_not_change_the_result() {
        for seed in 0u64..20 {
            let (g, k) = random_graph(seed);
            let plain = partition(&g, k, seed);
            let (with_stats, _) = partition_with_stats(&g, k, seed);
            assert_eq!(plain, with_stats);
        }
    }

    #[test]
    fn cut_trajectory_is_non_increasing_and_ends_at_final_cut() {
        for seed in 0u64..30 {
            let (g, k) = random_graph(seed + 100);
            let (p, stats) = partition_with_stats(&g, k, seed);
            assert!(!stats.cut_trajectory.is_empty());
            assert!(
                stats.cut_trajectory.windows(2).all(|w| w[0] >= w[1]),
                "trajectory {:?} increased (seed {seed})",
                stats.cut_trajectory
            );
            assert_eq!(
                *stats.cut_trajectory.last().expect("non-empty"),
                p.edge_cut(&g)
            );
        }
    }

    #[test]
    fn stats_trajectory_matches_level_count() {
        // Large enough to force real coarsening: levels + 1 cut samples.
        let mut rng = Rng::new(4);
        let n = 120;
        let mut g = Graph::new(vec![1; n]);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(0.05) {
                    g.add_edge(u, v, rng.gen_range(1u64..6));
                }
            }
        }
        let (_, stats) = partition_with_stats(&g, 3, 8);
        assert!(stats.coarsen_levels >= 1, "{stats:?}");
        assert_eq!(
            stats.cut_trajectory.len() as u64,
            stats.coarsen_levels + 1,
            "{stats:?}"
        );
        assert!(stats.refine_passes >= 1);
        assert!(stats.coarsest_vertices >= 1);
    }
}

//! Chapter 4: exact and ε-approximate Pareto fronts for custom-instruction
//! selection.
//!
//! Two stages (Fig. 4.3):
//!
//! 1. **Intra-task** — given a library of independent custom instructions,
//!    each with a workload reduction `δ` and an area cost `a`, compute the
//!    workload–area Pareto curve ([`exact_pareto`]) or its ε-approximation
//!    ([`eps_pareto`]).
//! 2. **Inter-task** — given each task's curve, compute the
//!    utilization–area Pareto curve for the whole set
//!    ([`exact_pareto_groups`], [`eps_pareto_groups`]), where one point per
//!    task is chosen and values/costs add.
//!
//! The approximation scheme follows Papadimitriou–Yannakakis via the GAP
//! subroutine (§4.2.1.1): the cost axis is partitioned geometrically with
//! ratio `1 + ε′` where `ε′ = √(1+ε) − 1`; each grid coordinate `b` is
//! solved by a knapsack DP over costs *scaled* to `a′ = ⌈a·r/b⌉` with
//! `r = ⌈n(1+ε′)/ε′⌉`, which is what makes the whole scheme polynomial in
//! `n` and `1/ε`. Every exact point is matched by an approximate point within a
//! `(1+ε)` factor on both axes ([`is_eps_cover`]).

/// One selectable custom instruction in the intra-task stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Item {
    /// Workload reduction `δ` (cycles saved) if selected.
    pub delta: u64,
    /// Silicon area cost `a`.
    pub area: u64,
}

/// A point on a (value, cost) trade-off curve. Both coordinates are
/// minimized: `value` is remaining workload or utilization demand, `cost`
/// is silicon area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ParetoPoint {
    /// Cost (area).
    pub cost: u64,
    /// Value (workload / scaled utilization demand).
    pub value: u64,
}

/// Removes dominated points; result is ascending in cost with strictly
/// decreasing value.
pub fn pareto_filter(mut points: Vec<ParetoPoint>) -> Vec<ParetoPoint> {
    points.sort();
    let mut out: Vec<ParetoPoint> = Vec::new();
    for p in points {
        match out.last() {
            Some(last) if p.value >= last.value => {}
            _ => out.push(p),
        }
    }
    out
}

/// Exact workload–area Pareto curve: all undominated `(Σa, E − Σδ)` points
/// over subsets of `items` (the DP of §4.2.1, realized as undominated-state
/// merging).
pub fn exact_pareto(base_value: u64, items: &[Item]) -> Vec<ParetoPoint> {
    let mut states = vec![ParetoPoint {
        cost: 0,
        value: base_value,
    }];
    for it in items {
        let mut next = states.clone();
        next.extend(states.iter().map(|p| ParetoPoint {
            cost: p.cost + it.area,
            value: p.value.saturating_sub(it.delta),
        }));
        states = pareto_filter(next);
    }
    states
}

/// Solves one GAP coordinate: minimize remaining workload over selections
/// whose *scaled* cost `Σ ⌈aⱼ·r/b⌉ ≤ r`; returns the solution's real cost
/// and value.
fn gap_knapsack(base_value: u64, items: &[Item], b: u64, r: u64) -> ParetoPoint {
    let r = r as usize;
    // dp[s] = max achievable delta with scaled cost exactly ≤ s.
    let mut dp = vec![0u64; r + 1];
    let mut keep = vec![vec![false; r + 1]; items.len()];
    for (i, it) in items.iter().enumerate() {
        let scaled = if it.area == 0 {
            0
        } else {
            it.area.saturating_mul(r as u64).div_ceil(b)
        } as usize;
        if scaled > r {
            continue;
        }
        for s in (scaled..=r).rev() {
            let cand = dp[s - scaled] + it.delta;
            if cand > dp[s] {
                dp[s] = cand;
                keep[i][s] = true;
            }
        }
    }
    // Reconstruct the selection at the full scaled budget.
    let mut s = r;
    let mut real_cost = 0u64;
    let mut delta = 0u64;
    for (i, it) in items.iter().enumerate().rev() {
        if keep[i][s] {
            let scaled = if it.area == 0 {
                0
            } else {
                it.area.saturating_mul(r as u64).div_ceil(b)
            } as usize;
            real_cost += it.area;
            delta += it.delta;
            s -= scaled;
        }
    }
    debug_assert_eq!(delta, dp[r]);
    ParetoPoint {
        cost: real_cost,
        value: base_value.saturating_sub(dp[r]),
    }
}

/// The grid of cost coordinates: geometric with ratio `1 + ε′` from 1 past
/// `total·(1+ε′)²`. The overshoot matters: a solution of cost `c` is only
/// guaranteed to survive cost scaling at coordinates `b ≥ c·(1+ε′)`
/// (property (b) of the GAP reduction), so the most expensive exact point
/// needs a coordinate beyond the raw total.
fn cost_grid(total: u64, eps_prime: f64) -> Vec<u64> {
    let limit = (total.max(1) as f64) * (1.0 + eps_prime) * (1.0 + eps_prime);
    let mut grid = vec![];
    let mut b = 1f64;
    while b < limit {
        grid.push(b.ceil() as u64);
        b *= 1.0 + eps_prime;
    }
    grid.push(limit.ceil() as u64);
    grid.dedup();
    grid
}

/// ε-approximate workload–area Pareto curve (§4.2.1.1, Algorithm 3).
///
/// Every point of [`exact_pareto`] is within a `(1+ε)` factor on both axes
/// of some returned point. Runs in time polynomial in `items.len()` and
/// `1/ε`.
///
/// # Panics
///
/// Panics if `eps <= 0`.
pub fn eps_pareto(base_value: u64, items: &[Item], eps: f64) -> Vec<ParetoPoint> {
    assert!(eps > 0.0, "epsilon must be positive");
    let eps_prime = (1.0 + eps).sqrt() - 1.0;
    // r must absorb one unit of ceiling round-up per selected item:
    // property (b) needs Σ⌈aⱼ·r/b⌉ ≤ r/(1+ε′) + n ≤ r, i.e.
    // r ≥ n(1+ε′)/ε′ — the bare n/ε′ of the proof sketch is not enough.
    let r = ((items.len() as f64) * (1.0 + eps_prime) / eps_prime)
        .ceil()
        .max(1.0) as u64;
    let total: u64 = items.iter().map(|i| i.area).sum::<u64>().max(1);
    // Seed with the cost-0 optimum: every zero-area item taken. The cost
    // grid starts at budget 1 and each GAP solve maximizes delta at its
    // budget, so the pure zero-area selection never falls out of the
    // sweep — yet a cost-0 exact point can only be (1+ε)-covered by a
    // cost-0 approximate point. (Found by rtise-fuzz, pareto family.)
    let free: u64 = items.iter().filter(|i| i.area == 0).map(|i| i.delta).sum();
    let mut points = vec![ParetoPoint {
        cost: 0,
        value: base_value.saturating_sub(free),
    }];
    for b in cost_grid(total, eps_prime) {
        points.push(gap_knapsack(base_value, items, b, r));
    }
    pareto_filter(points)
}

/// Exact Pareto curve over *groups*: choose exactly one option per group;
/// values and costs add. Groups model tasks, options model their
/// workload–area configurations (always include a zero-cost software
/// option).
pub fn exact_pareto_groups(groups: &[Vec<ParetoPoint>]) -> Vec<ParetoPoint> {
    let mut states = vec![ParetoPoint { cost: 0, value: 0 }];
    for g in groups {
        let mut next = Vec::with_capacity(states.len() * g.len());
        for s in &states {
            for o in g {
                next.push(ParetoPoint {
                    cost: s.cost + o.cost,
                    value: s.value.saturating_add(o.value),
                });
            }
        }
        states = pareto_filter(next);
    }
    states
}

/// Solves one GAP coordinate for the group (choose-one-per-group) problem.
fn gap_groups(groups: &[Vec<ParetoPoint>], b: u64, r: u64) -> Option<ParetoPoint> {
    let r = r as usize;
    let scaled = |cost: u64| -> usize {
        if cost == 0 {
            0
        } else {
            cost.saturating_mul(r as u64).div_ceil(b) as usize
        }
    };
    const INF: u64 = u64::MAX / 2;
    let mut dp = vec![INF; r + 1];
    dp[0] = 0;
    let mut choice: Vec<Vec<usize>> = Vec::with_capacity(groups.len());
    for g in groups {
        let mut next = vec![INF; r + 1];
        let mut ch = vec![usize::MAX; r + 1];
        for s in 0..=r {
            for (oi, o) in g.iter().enumerate() {
                let sc = scaled(o.cost);
                if sc > s || dp[s - sc] == INF {
                    continue;
                }
                let v = dp[s - sc].saturating_add(o.value);
                if v < next[s] {
                    next[s] = v;
                    ch[s] = oi;
                }
            }
        }
        dp = next;
        choice.push(ch);
    }
    // Best value at any scaled cost ≤ r.
    let (mut s, _) = dp
        .iter()
        .enumerate()
        .filter(|(_, &v)| v != INF)
        .min_by_key(|(s, &v)| (v, *s))?;
    let mut real_cost = 0u64;
    let mut value = 0u64;
    for (gi, g) in groups.iter().enumerate().rev() {
        let oi = choice[gi][s];
        if oi == usize::MAX {
            return None;
        }
        let o = &g[oi];
        real_cost += o.cost;
        value += o.value;
        s -= scaled(o.cost);
    }
    Some(ParetoPoint {
        cost: real_cost,
        value,
    })
}

/// ε-approximate utilization–area Pareto curve for the inter-task stage.
///
/// # Panics
///
/// Panics if `eps <= 0` or any group is empty.
pub fn eps_pareto_groups(groups: &[Vec<ParetoPoint>], eps: f64) -> Vec<ParetoPoint> {
    assert!(eps > 0.0, "epsilon must be positive");
    assert!(groups.iter().all(|g| !g.is_empty()), "empty group");
    let eps_prime = (1.0 + eps).sqrt() - 1.0;
    let n: usize = groups.len();
    // See eps_pareto: r ≥ n(1+ε′)/ε′ so per-group ceiling round-up cannot
    // break the scaled-feasibility guarantee.
    let r = ((n as f64) * (1.0 + eps_prime) / eps_prime).ceil().max(1.0) as u64;
    let total: u64 = groups
        .iter()
        .map(|g| g.iter().map(|o| o.cost).max().unwrap_or(0))
        .sum::<u64>()
        .max(1);
    let mut points = Vec::new();
    // The zero-cost point: cheapest option per group.
    points.push(ParetoPoint {
        cost: groups
            .iter()
            .map(|g| g.iter().map(|o| o.cost).min().unwrap_or(0))
            .sum(),
        value: groups
            .iter()
            .map(|g| {
                g.iter()
                    .filter(|o| o.cost == g.iter().map(|x| x.cost).min().unwrap_or(0))
                    .map(|o| o.value)
                    .min()
                    .unwrap_or(0)
            })
            .sum(),
    });
    for b in cost_grid(total, eps_prime) {
        if let Some(p) = gap_groups(groups, b, r) {
            points.push(p);
        }
    }
    pareto_filter(points)
}

/// Whether `approx` ε-covers `exact`: for every exact point there is an
/// approximate point within `(1+ε)` on both axes (the defining property of
/// an ε-Pareto curve).
pub fn is_eps_cover(exact: &[ParetoPoint], approx: &[ParetoPoint], eps: f64) -> bool {
    exact.iter().all(|e| {
        approx.iter().any(|a| {
            a.cost as f64 <= (1.0 + eps) * e.cost as f64 + 1e-9
                && a.value as f64 <= (1.0 + eps) * e.value as f64 + 1e-9
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_obs::Rng;

    #[test]
    fn fig_4_1_intra_task_curve() {
        // T1: E = 10, CIs (δ=2, a=30) and (δ=3, a=60).
        let items = [Item { delta: 2, area: 30 }, Item { delta: 3, area: 60 }];
        let curve = exact_pareto(10, &items);
        assert_eq!(
            curve,
            vec![
                ParetoPoint { cost: 0, value: 10 },
                ParetoPoint { cost: 30, value: 8 },
                ParetoPoint { cost: 60, value: 7 },
                ParetoPoint { cost: 90, value: 5 },
            ]
        );
    }

    #[test]
    fn fig_4_1_inter_task_curve() {
        // Workload-area options for T1 (P=20) and T2 (P=20), values scaled
        // to demand over hyperperiod 20: value = cycles.
        let t1 = vec![
            ParetoPoint { cost: 0, value: 10 },
            ParetoPoint { cost: 30, value: 8 },
            ParetoPoint { cost: 60, value: 7 },
            ParetoPoint { cost: 90, value: 5 },
        ];
        // T2: E = 15, CIs (δ=2,a=10)... constructed to yield the paper's
        // curve: options at (0,15),(10,14),(30,13),(50,12),(80,10).
        let t2 = vec![
            ParetoPoint { cost: 0, value: 15 },
            ParetoPoint {
                cost: 10,
                value: 14,
            },
            ParetoPoint {
                cost: 30,
                value: 13,
            },
            ParetoPoint {
                cost: 50,
                value: 12,
            },
            ParetoPoint {
                cost: 80,
                value: 10,
            },
        ];
        let curve = exact_pareto_groups(&[t1, t2]);
        // Without customization U = (10+15)/20 = 5/4 > 1; the curve exposes
        // schedulable points (value ≤ 20 means U ≤ 1).
        assert_eq!(curve.first().map(|p| p.value), Some(25));
        assert!(curve.iter().any(|p| p.value <= 20));
        // Strictly descending values, ascending costs.
        for w in curve.windows(2) {
            assert!(w[1].cost > w[0].cost && w[1].value < w[0].value);
        }
    }

    #[test]
    fn eps_curve_covers_exact_curve() {
        let mut rng = Rng::new(0x9a9);
        for case in 0..30 {
            let n = rng.gen_range(1..=20usize);
            let items: Vec<Item> = (0..n)
                .map(|_| Item {
                    delta: rng.gen_range(1..50u64),
                    area: rng.gen_range(1..2_000u64),
                })
                .collect();
            let base = rng.gen_range(200..900u64);
            let exact = exact_pareto(base, &items);
            for eps in [0.21, 0.44, 0.69, 3.0] {
                let approx = eps_pareto(base, &items, eps);
                assert!(
                    is_eps_cover(&exact, &approx, eps),
                    "case {case} eps {eps}: {exact:?} vs {approx:?}"
                );
                assert!(approx.len() <= exact.len());
            }
        }
    }

    #[test]
    fn eps_curve_covers_exact_curve_with_zero_area_items() {
        // Regression: rtise-fuzz (pareto family) minimized two campaigns
        // to fronts whose cost-0 optimum takes zero-area items — a point
        // the GAP sweep never produces, so the seed point must. A cost-0
        // exact point is only coverable by a cost-0 approximate point.
        let cases: &[(u64, &[Item], f64)] = &[
            (
                107,
                &[Item { delta: 20, area: 1 }, Item { delta: 22, area: 0 }],
                0.25,
            ),
            (
                68,
                &[
                    Item { delta: 4, area: 1 },
                    Item { delta: 21, area: 0 },
                    Item { delta: 26, area: 0 },
                ],
                2.0,
            ),
        ];
        for &(base, items, eps) in cases {
            let exact = exact_pareto(base, items);
            let approx = eps_pareto(base, items, eps);
            assert!(
                is_eps_cover(&exact, &approx, eps),
                "base {base} eps {eps}: {exact:?} vs {approx:?}"
            );
        }
        // And a randomized sweep where every item may be free.
        let mut rng = Rng::new(0xF2EE);
        for case in 0..30 {
            let n = rng.gen_range(1..=12usize);
            let items: Vec<Item> = (0..n)
                .map(|_| Item {
                    delta: rng.gen_range(0..40u64),
                    area: rng.gen_range(0..25u64),
                })
                .collect();
            let base = rng.gen_range(50..400u64);
            let exact = exact_pareto(base, &items);
            for eps in [0.25, 0.5, 2.0] {
                let approx = eps_pareto(base, &items, eps);
                assert!(
                    is_eps_cover(&exact, &approx, eps),
                    "case {case} eps {eps}: {exact:?} vs {approx:?}"
                );
            }
        }
    }

    #[test]
    fn eps_groups_cover_exact_groups() {
        let mut rng = Rng::new(0x61);
        for case in 0..15 {
            let g = rng.gen_range(1..=9usize);
            let groups: Vec<Vec<ParetoPoint>> = (0..g)
                .map(|_| {
                    let mut opts = vec![ParetoPoint {
                        cost: 0,
                        value: rng.gen_range(50..100u64),
                    }];
                    let mut v = opts[0].value;
                    let mut c = 0;
                    for _ in 0..rng.gen_range(0..4u32) {
                        c += rng.gen_range(1..40u64);
                        v = v.saturating_sub(rng.gen_range(1..20u64)).max(1);
                        opts.push(ParetoPoint { cost: c, value: v });
                    }
                    opts
                })
                .collect();
            let exact = exact_pareto_groups(&groups);
            for eps in [0.44, 3.0] {
                let approx = eps_pareto_groups(&groups, eps);
                assert!(is_eps_cover(&exact, &approx, eps), "case {case} eps {eps}");
            }
        }
    }

    #[test]
    fn approx_is_never_better_than_exact_at_same_cost() {
        let items: Vec<Item> = (0..10)
            .map(|i| Item {
                delta: (i + 1) * 3,
                area: (i + 2) * 5,
            })
            .collect();
        let exact = exact_pareto(500, &items);
        let approx = eps_pareto(500, &items, 0.69);
        for a in &approx {
            // There must be an exact point at least as good.
            assert!(
                exact.iter().any(|e| e.cost <= a.cost && e.value <= a.value),
                "{a:?} beats the exact front"
            );
        }
    }

    #[test]
    fn pareto_filter_removes_dominated() {
        let pts = vec![
            ParetoPoint { cost: 5, value: 5 },
            ParetoPoint { cost: 5, value: 4 },
            ParetoPoint { cost: 0, value: 10 },
            ParetoPoint { cost: 7, value: 4 }, // dominated by (5,4)
            ParetoPoint { cost: 9, value: 1 },
        ];
        assert_eq!(
            pareto_filter(pts),
            vec![
                ParetoPoint { cost: 0, value: 10 },
                ParetoPoint { cost: 5, value: 4 },
                ParetoPoint { cost: 9, value: 1 },
            ]
        );
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn zero_eps_rejected() {
        let _ = eps_pareto(10, &[], 0.0);
    }
}

//! The four naïve per-task customization strategies of the motivating
//! example (Fig. 3.2), kept as baselines to demonstrate why inter-task
//! optimization is necessary.

use crate::task::{Assignment, TaskSpec};

/// (a) Divide the area budget equally among tasks; each task independently
/// picks its best configuration within its share.
pub fn equal_area_split(specs: &[TaskSpec], area_budget: u64) -> Assignment {
    let share = if specs.is_empty() {
        0
    } else {
        area_budget / specs.len() as u64
    };
    let config = specs
        .iter()
        .map(|s| {
            let p = s.curve.best_within(share);
            s.curve.points().iter().position(|q| q == p).unwrap_or(0)
        })
        .collect();
    Assignment { config }
}

/// (b) Smallest deadline first: tasks in increasing period order greedily
/// take their best configuration that still fits the remaining budget.
pub fn smallest_deadline_first(specs: &[TaskSpec], area_budget: u64) -> Assignment {
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| specs[i].period);
    greedy_in_order(specs, area_budget, &order)
}

/// (c) Highest utilization reduction first: tasks ranked by the utilization
/// drop of their best configuration.
pub fn highest_reduction_first(specs: &[TaskSpec], area_budget: u64) -> Assignment {
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by(|&a, &b| {
        reduction(&specs[b])
            .partial_cmp(&reduction(&specs[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    greedy_in_order(specs, area_budget, &order)
}

/// (d) Highest ratio of utilization reduction to hardware area.
pub fn highest_ratio_first(specs: &[TaskSpec], area_budget: u64) -> Assignment {
    let ratio = |s: &TaskSpec| {
        let p = s.curve.points().last().expect("non-empty curve");
        if p.area == 0 {
            0.0
        } else {
            reduction(s) / p.area as f64
        }
    };
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by(|&a, &b| {
        ratio(&specs[b])
            .partial_cmp(&ratio(&specs[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    greedy_in_order(specs, area_budget, &order)
}

/// Utilization reduction of a task's best configuration versus software.
fn reduction(s: &TaskSpec) -> f64 {
    let best = s.curve.points().last().expect("non-empty curve");
    (s.curve.base_cycles - best.cycles) as f64 / s.period as f64
}

/// Visit tasks in `order`; each takes its best configuration fitting the
/// remaining budget.
fn greedy_in_order(specs: &[TaskSpec], area_budget: u64, order: &[usize]) -> Assignment {
    let mut remaining = area_budget;
    let mut config = vec![0usize; specs.len()];
    for &i in order {
        let p = specs[i].curve.best_within(remaining);
        let j = specs[i]
            .curve
            .points()
            .iter()
            .position(|q| q == p)
            .unwrap_or(0);
        config[i] = j;
        remaining -= specs[i].curve.points()[j].area;
    }
    Assignment { config }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::select_edf;
    use rtise_ise::configs::ConfigCurve;

    fn spec(name: &str, base: u64, period: u64, pts: &[(u64, u64)]) -> TaskSpec {
        TaskSpec::new(ConfigCurve::from_points(name, base, pts), period)
    }

    /// Fig. 3.2 exactly: all four heuristics fail to reach U ≤ 1 at budget
    /// 10, while the optimal EDF selection succeeds.
    #[test]
    fn all_four_heuristics_fail_the_motivating_example() {
        let specs = vec![
            spec("T1", 2, 6, &[(7, 1)]),
            spec("T2", 3, 8, &[(6, 2)]),
            spec("T3", 6, 12, &[(4, 5)]),
        ];
        let budget = 10;

        // (a) Equal split: 10/3 = 3 per task; no configuration fits.
        let a = equal_area_split(&specs, budget);
        assert_eq!(a.config, vec![0, 0, 0]);
        assert!(a.utilization(&specs) > 1.0);

        // (b) Smallest deadline first: T1 takes its CI (area 7), nothing
        // else fits. U' = 1/6 + 3/8 + 6/12 = 25/24 > 1.
        let b = smallest_deadline_first(&specs, budget);
        assert_eq!(b.config, vec![1, 0, 0]);
        assert!((b.utilization(&specs) - 25.0 / 24.0).abs() < 1e-12);

        // (c) Highest ΔU first: T1 drops 1/6 (max), takes area 7; rest
        // cannot fit.
        let c = highest_reduction_first(&specs, budget);
        assert_eq!(c.config, vec![1, 0, 0]);
        assert!(c.utilization(&specs) > 1.0);

        // (d) Highest ΔU/area: T1 again ranks first (1/42 vs 1/48, 1/48).
        let d = highest_ratio_first(&specs, budget);
        assert_eq!(d.config, vec![1, 0, 0]);
        assert!(d.utilization(&specs) > 1.0);

        // (e) The optimal solution reaches exactly U = 1.
        let e = select_edf(&specs, budget).expect("optimal");
        assert!(e.schedulable);
        assert!((e.utilization - 1.0).abs() < 1e-12);
    }

    #[test]
    fn heuristics_respect_the_budget() {
        let specs = vec![
            spec("a", 10, 20, &[(4, 8), (9, 6)]),
            spec("b", 10, 25, &[(5, 7), (12, 5)]),
        ];
        for budget in [0u64, 4, 9, 30] {
            for assign in [
                equal_area_split(&specs, budget),
                smallest_deadline_first(&specs, budget),
                highest_reduction_first(&specs, budget),
                highest_ratio_first(&specs, budget),
            ] {
                assert!(assign.total_area(&specs) <= budget, "budget {budget}");
            }
        }
    }

    #[test]
    fn heuristics_never_beat_the_optimum() {
        let specs = vec![
            spec("a", 12, 24, &[(3, 10), (8, 7)]),
            spec("b", 9, 18, &[(5, 6), (7, 5)]),
            spec("c", 6, 30, &[(2, 5)]),
        ];
        for budget in [0u64, 5, 8, 12, 20] {
            let opt = select_edf(&specs, budget).expect("optimal").utilization;
            for assign in [
                equal_area_split(&specs, budget),
                smallest_deadline_first(&specs, budget),
                highest_reduction_first(&specs, budget),
                highest_ratio_first(&specs, budget),
            ] {
                assert!(assign.utilization(&specs) >= opt - 1e-12, "budget {budget}");
            }
        }
    }
}

//! Algorithm 1: optimal configuration selection under EDF.
//!
//! A bottom-up dynamic program: `Uᵢ(A)` is the minimum total utilization
//! of tasks `T₁..Tᵢ` within area `A`, recursively choosing the best
//! configuration of `Tᵢ` (Eq. 3.2/3.3 of the paper). Utilization is
//! minimized as the exact integer *demand* over the hyperperiod
//! (`Σ cyclesᵢ·(H/Pᵢ)`), avoiding floating-point ties.
//!
//! Two exact solvers share the recurrence. The classic dense grid walks
//! `budget/Δ + 1` slots per task, `Δ` the gcd of all configuration areas
//! and the budget — exact, but `Δ → 1` (coprime areas) degenerates to
//! `budget + 1` slots per task. The default sparse solver instead keeps,
//! per task prefix, only the dominance-pruned staircase of *reachable*
//! `(area, demand)` states; the dense row is the staircase sampled on the
//! grid, so both solvers pick bit-identical assignments (the sparse
//! backtrack replays the dense smallest-index tie-break). When a task's
//! sparse merge would touch more states than the dense row holds, the
//! solve falls back to the dense grid, which is cheaper there.

use crate::task::{demand, spec_hyperperiod, Assignment, TaskSpec};
use std::fmt;

/// Errors from [`select_edf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectEdfError {
    /// The spec list is empty.
    NoTasks,
}

impl fmt::Display for SelectEdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectEdfError::NoTasks => write!(f, "task set is empty"),
        }
    }
}

impl std::error::Error for SelectEdfError {}

/// Result of the EDF selection.
#[derive(Debug, Clone, PartialEq)]
pub struct EdfSelection {
    /// Chosen configuration per task.
    pub assignment: Assignment,
    /// Minimum achievable utilization within the budget.
    pub utilization: f64,
    /// Whether the selected configuration set meets all deadlines
    /// (`U ≤ 1`).
    pub schedulable: bool,
}

/// Dynamic-program statistics for one [`select_edf_with_stats`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdfDpStats {
    /// Area-grid step `Δ` (gcd of all configuration areas and the budget).
    /// Describes the dense grid even when the sparse solver ran.
    pub grid_step: u64,
    /// Dense grid slots per task row (`budget/Δ + 1`).
    pub grid_slots: u64,
    /// DP states materialized: staircase entries kept across all task rows
    /// on the sparse path, `slots × tasks` on the dense path (a fallback
    /// mid-solve adds both parts).
    pub dp_cells: u64,
    /// Candidate transitions evaluated while building the DP rows.
    pub transitions: u64,
}

/// Selects one configuration per task minimizing total utilization under
/// `area_budget`, optimal for EDF scheduling (Algorithm 1).
///
/// # Errors
///
/// See [`SelectEdfError`].
pub fn select_edf(specs: &[TaskSpec], area_budget: u64) -> Result<EdfSelection, SelectEdfError> {
    select_edf_with_stats(specs, area_budget).map(|(s, _)| s)
}

/// Like [`select_edf`], additionally returning [`EdfDpStats`] and
/// publishing `select.edf.*` counters to the [`rtise_obs`] registry.
///
/// # Errors
///
/// See [`SelectEdfError`].
pub fn select_edf_with_stats(
    specs: &[TaskSpec],
    area_budget: u64,
) -> Result<(EdfSelection, EdfDpStats), SelectEdfError> {
    select_edf_observed(specs, area_budget, rtise_obs::par::threads())
}

/// Like [`select_edf_with_stats`] with an explicit worker-thread count,
/// ignoring the global [`rtise_obs::par`] knob. Only the sparse row merge
/// is parallelized — fixed 64-state chunks of the previous staircase,
/// concatenated in chunk order before the normalizing sort — so the
/// selection and stats are byte-identical at any `threads` value.
///
/// # Errors
///
/// See [`SelectEdfError`].
pub fn select_edf_par_with_stats(
    specs: &[TaskSpec],
    area_budget: u64,
    threads: usize,
) -> Result<(EdfSelection, EdfDpStats), SelectEdfError> {
    select_edf_observed(specs, area_budget, threads.max(1))
}

fn select_edf_observed(
    specs: &[TaskSpec],
    area_budget: u64,
    threads: usize,
) -> Result<(EdfSelection, EdfDpStats), SelectEdfError> {
    if specs.is_empty() {
        return Err(SelectEdfError::NoTasks);
    }
    let span = rtise_trace::span(rtise_trace::codes::SELECT_EDF_SOLVE);
    let prep = Prep::new(specs, area_budget);
    let mut stats = prep.blank_stats();
    let (config, min_demand) = match solve_sparse(specs, area_budget, threads, &prep, &mut stats) {
        Some(solved) => solved,
        None => {
            rtise_obs::record("select.edf.dense_fallbacks", 1);
            rtise_trace::instant(rtise_trace::codes::SELECT_EDF_DENSE_FALLBACK);
            solve_dense(specs, &prep, &mut stats)
        }
    };
    let selection = finalize(specs, &prep, config, min_demand);
    rtise_obs::record("select.edf.solves", 1);
    rtise_obs::record("select.edf.dp_cells", stats.dp_cells);
    rtise_obs::record("select.edf.transitions", stats.transitions);
    rtise_obs::observe("select.edf.dp_cells_per_solve", stats.dp_cells);
    rtise_trace::summary(
        rtise_trace::codes::SELECT_EDF_SUMMARY,
        &[
            ("grid_step", stats.grid_step),
            ("grid_slots", stats.grid_slots),
            ("dp_cells", stats.dp_cells),
            ("transitions", stats.transitions),
        ],
    );
    drop(span);
    Ok((selection, stats))
}

/// The dense gcd-grid reference solver. Kept callable so differential
/// tests and benchmarks can compare the sparse path against it; does not
/// publish counters.
///
/// # Errors
///
/// See [`SelectEdfError`].
#[doc(hidden)]
pub fn select_edf_dense_with_stats(
    specs: &[TaskSpec],
    area_budget: u64,
) -> Result<(EdfSelection, EdfDpStats), SelectEdfError> {
    if specs.is_empty() {
        return Err(SelectEdfError::NoTasks);
    }
    let prep = Prep::new(specs, area_budget);
    let mut stats = prep.blank_stats();
    let (config, min_demand) = solve_dense(specs, &prep, &mut stats);
    Ok((finalize(specs, &prep, config, min_demand), stats))
}

/// Staircase chunk size of the parallel sparse row merge. Fixed (never
/// thread-dependent), so the concatenated candidate list — and after the
/// normalizing sort, the whole solve — is identical at any thread count.
const PAR_CHUNK: usize = 64;

/// Minimum previous-row size before the merge fans out; smaller rows are
/// cheaper to merge than to schedule.
const PAR_MIN_ROW: usize = 4096;

/// Shared solve context: demand weights and the dense-grid geometry.
struct Prep {
    weights: Vec<u128>,
    threshold: u128,
    hyperperiod: Option<u64>,
    step: u64,
    slots: usize,
}

impl Prep {
    fn new(specs: &[TaskSpec], area_budget: u64) -> Self {
        // Per-task demand weights: exact `H/Pᵢ` when the hyperperiod fits
        // in u64, else a 2⁴⁰ fixed-point fallback (relative rounding error
        // below 2⁻⁴⁰ per task — far under any configuration's utilization
        // step).
        let hyperperiod = spec_hyperperiod(specs);
        let (weights, threshold): (Vec<u128>, u128) = match hyperperiod {
            Some(h) => (
                specs.iter().map(|s| (h / s.period) as u128).collect(),
                h as u128,
            ),
            None => {
                const SCALE: u128 = 1 << 40;
                (
                    specs.iter().map(|s| SCALE / s.period as u128).collect(),
                    SCALE,
                )
            }
        };
        // Grid step: gcd of every configuration area and the budget.
        let mut step = area_budget;
        for s in specs {
            for p in s.curve.points() {
                step = gcd(step, p.area);
            }
        }
        let step = step.max(1);
        let slots = (area_budget / step) as usize + 1;
        Prep {
            weights,
            threshold,
            hyperperiod,
            step,
            slots,
        }
    }

    fn blank_stats(&self) -> EdfDpStats {
        EdfDpStats {
            grid_step: self.step,
            grid_slots: self.slots as u64,
            dp_cells: 0,
            transitions: 0,
        }
    }
}

/// Sparse reachable-area DP. Each row is the dominance-pruned staircase of
/// `(total area, minimal demand)` states — area ascending, demand strictly
/// descending — so `lookup(row, x)` equals the dense row sampled at grid
/// slot `x/Δ` (all reachable areas are multiples of `Δ`). Returns `None`
/// to request the dense fallback when a task's merge would materialize at
/// least as many candidate states as the dense row holds; transitions
/// already counted stay in `stats` and the dense pass adds its own.
fn solve_sparse(
    specs: &[TaskSpec],
    area_budget: u64,
    threads: usize,
    prep: &Prep,
    stats: &mut EdfDpStats,
) -> Option<(Vec<usize>, u128)> {
    // rows[i] = staircase after tasks `0..i`; rows[0] is the empty prefix.
    let mut rows: Vec<Vec<(u64, u128)>> = Vec::with_capacity(specs.len() + 1);
    rows.push(vec![(0, 0)]);
    for (s, &w) in specs.iter().zip(&prep.weights) {
        let prev = rows.last().expect("rows start non-empty");
        let pts = s.curve.points();
        if prev.len().saturating_mul(pts.len()) >= prep.slots {
            return None;
        }
        let expand = |states: &[(u64, u128)], cand: &mut Vec<(u64, u128)>| -> u64 {
            let mut transitions = 0;
            for &(a0, d0) in states {
                for p in pts {
                    if p.area > area_budget - a0 {
                        break; // points are ascending in area
                    }
                    transitions += 1;
                    cand.push((a0 + p.area, d0.saturating_add(p.cycles as u128 * w)));
                }
            }
            transitions
        };
        let mut cand: Vec<(u64, u128)> = Vec::with_capacity(prev.len() * pts.len());
        if threads > 1 && prev.len() >= PAR_MIN_ROW {
            // Fan the merge out over fixed chunks of the previous
            // staircase; concatenating in chunk order rebuilds the exact
            // serial candidate list, so the sort below — and everything
            // after it — is untouched by the thread count.
            let chunks: Vec<&[(u64, u128)]> = prev.chunks(PAR_CHUNK).collect();
            let parts = rtise_obs::par::run_ordered(
                &chunks,
                threads,
                |_, chunk, _: rtise_obs::par::Completed<'_, (Vec<(u64, u128)>, u64)>| {
                    let mut part = Vec::with_capacity(chunk.len() * pts.len());
                    let transitions = expand(chunk, &mut part);
                    (part, transitions)
                },
            );
            for (part, transitions) in parts {
                cand.extend(part);
                stats.transitions += transitions;
            }
        } else {
            stats.transitions += expand(prev, &mut cand);
        }
        // Dominance prune: sort by (area, demand) and keep only entries
        // that strictly improve on the best demand seen so far.
        cand.sort_unstable();
        let mut stair: Vec<(u64, u128)> = Vec::with_capacity(cand.len());
        for (a, d) in cand {
            if stair.last().is_none_or(|&(_, ld)| d < ld) {
                stair.push((a, d));
            }
        }
        stats.dp_cells += stair.len() as u64;
        rows.push(stair);
    }

    // Backtrack from the full budget, replaying the dense smallest-index
    // tie-break: scan configurations in curve order and keep the first
    // strict improvement, exactly as the dense forward pass fills
    // `choice[i][a]`.
    let mut config = vec![0usize; specs.len()];
    let mut avail = area_budget;
    for (i, s) in specs.iter().enumerate().rev() {
        let prev = &rows[i];
        let w = prep.weights[i];
        let mut best = u128::MAX;
        let mut best_j = 0usize;
        for (j, p) in s.curve.points().iter().enumerate() {
            if p.area > avail {
                break;
            }
            let d = lookup(prev, avail - p.area).saturating_add(p.cycles as u128 * w);
            if d < best {
                best = d;
                best_j = j;
            }
        }
        config[i] = best_j;
        avail -= s.curve.points()[best_j].area;
    }
    let min_demand = lookup(rows.last().expect("rows non-empty"), area_budget);
    Some((config, min_demand))
}

/// Minimal demand reachable with total area ≤ `x`: the last staircase
/// entry at or below `x`. Every staircase holds `(0, ·)`, so the lookup
/// is total for `x ≥ 0`.
fn lookup(stair: &[(u64, u128)], x: u64) -> u128 {
    let idx = stair.partition_point(|&(a, _)| a <= x);
    stair[idx - 1].1
}

/// The dense gcd-grid DP (the original Algorithm 1 implementation).
fn solve_dense(specs: &[TaskSpec], prep: &Prep, stats: &mut EdfDpStats) -> (Vec<usize>, u128) {
    let (step, slots) = (prep.step, prep.slots);
    // dp[a] = minimal demand using tasks processed so far and area ≤ a·step;
    // choice[i][a] = configuration index chosen for task i at grid slot a.
    let mut dp: Vec<u128> = vec![0; slots];
    let mut choice: Vec<Vec<usize>> = Vec::with_capacity(specs.len());
    for (s, &w) in specs.iter().zip(&prep.weights) {
        let mut next = vec![u128::MAX; slots];
        let mut ch = vec![0usize; slots];
        for a in 0..slots {
            stats.dp_cells += 1;
            let avail = a as u64 * step;
            for (j, p) in s.curve.points().iter().enumerate() {
                if p.area > avail {
                    break; // points are ascending in area
                }
                stats.transitions += 1;
                let rest = ((avail - p.area) / step) as usize;
                let d = dp[rest].saturating_add(p.cycles as u128 * w);
                if d < next[a] {
                    next[a] = d;
                    ch[a] = j;
                }
            }
        }
        dp = next;
        choice.push(ch);
    }

    // Backtrack from the full budget.
    let mut config = vec![0usize; specs.len()];
    let mut slot = slots - 1;
    for (i, s) in specs.iter().enumerate().rev() {
        let j = choice[i][slot];
        config[i] = j;
        let used = s.curve.points()[j].area / step;
        slot -= used as usize;
    }
    (config, dp[slots - 1])
}

/// Builds the [`EdfSelection`] and decides schedulability from a solved
/// configuration vector.
fn finalize(specs: &[TaskSpec], prep: &Prep, config: Vec<usize>, min_demand: u128) -> EdfSelection {
    let assignment = Assignment { config };
    let total_demand: u128 = assignment
        .config
        .iter()
        .zip(specs)
        .zip(&prep.weights)
        .map(|((&j, s), &w)| s.curve.points()[j].cycles as u128 * w)
        .sum();
    debug_assert_eq!(total_demand, min_demand);
    let utilization = assignment.utilization(specs);
    // Exact integer test when the hyperperiod fits; the fixed-point
    // fallback truncates weights (underestimating demand), so decide
    // schedulability in floating point there.
    let schedulable = if let Some(h) = prep.hyperperiod {
        debug_assert_eq!(total_demand, demand(specs, &assignment.config, h));
        total_demand <= prep.threshold
    } else {
        utilization <= 1.0 + 1e-9
    };
    EdfSelection {
        utilization,
        schedulable,
        assignment,
    }
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ise::configs::ConfigCurve;

    fn spec(name: &str, base: u64, period: u64, pts: &[(u64, u64)]) -> TaskSpec {
        TaskSpec::new(ConfigCurve::from_points(name, base, pts), period)
    }

    /// The motivating example of Fig. 3.2: T1(2,6)+cfg(7,1), T2(3,8)+cfg(6,2),
    /// T3(6,12)+cfg(4,5); budget 10.
    fn fig_3_2_specs() -> Vec<TaskSpec> {
        vec![
            spec("T1", 2, 6, &[(7, 1)]),
            spec("T2", 3, 8, &[(6, 2)]),
            spec("T3", 6, 12, &[(4, 5)]),
        ]
    }

    #[test]
    fn motivating_example_reaches_exactly_u_one() {
        let specs = fig_3_2_specs();
        let sw = Assignment::software(3).utilization(&specs);
        assert!(sw > 1.0, "task set starts unschedulable (U = {sw})");
        let sel = select_edf(&specs, 10).expect("select");
        // Optimal: customize T2 and T3 (areas 6 + 4 = 10), leave T1 in
        // software: U' = 2/6 + 2/8 + 5/12 = 1.
        assert_eq!(sel.assignment.config, vec![0, 1, 1]);
        assert!((sel.utilization - 1.0).abs() < 1e-12);
        assert!(sel.schedulable);
        assert_eq!(sel.assignment.total_area(&specs), 10);
    }

    #[test]
    fn zero_budget_keeps_software() {
        let specs = fig_3_2_specs();
        let sel = select_edf(&specs, 0).expect("select");
        assert_eq!(sel.assignment, Assignment::software(3));
        assert!(!sel.schedulable);
    }

    #[test]
    fn large_budget_takes_best_configs() {
        let specs = fig_3_2_specs();
        let sel = select_edf(&specs, 1000).expect("select");
        assert_eq!(sel.assignment.config, vec![1, 1, 1]);
        let u = 1.0 / 6.0 + 2.0 / 8.0 + 5.0 / 12.0;
        assert!((sel.utilization - u).abs() < 1e-12);
    }

    #[test]
    fn utilization_is_monotone_in_budget() {
        let specs = fig_3_2_specs();
        let mut prev = f64::INFINITY;
        for budget in 0..=20 {
            let sel = select_edf(&specs, budget).expect("select");
            assert!(sel.utilization <= prev + 1e-12, "budget {budget}");
            prev = sel.utilization;
        }
    }

    #[test]
    fn empty_task_set_is_an_error() {
        assert_eq!(select_edf(&[], 10), Err(SelectEdfError::NoTasks));
    }

    #[test]
    fn matches_exhaustive_on_random_instances() {
        use rtise_obs::Rng;
        let mut rng = Rng::new(31);
        for case in 0..50 {
            let n = rng.gen_range(1..=4usize);
            let specs: Vec<TaskSpec> = (0..n)
                .map(|i| {
                    let base = rng.gen_range(5..40u64);
                    let n_cfg = rng.gen_range(0..4usize);
                    let pts: Vec<(u64, u64)> = (0..n_cfg)
                        .map(|k| {
                            (
                                rng.gen_range(1..12u64) * (k as u64 + 1),
                                base.saturating_sub(rng.gen_range(1..=base)),
                            )
                        })
                        .collect();
                    spec(&format!("t{i}"), base, rng.gen_range(8..32u64), &pts)
                })
                .collect();
            let budget = rng.gen_range(0..30u64);
            let got = select_edf(&specs, budget).expect("select");
            // Exhaustive reference over all configuration tuples.
            let mut best = f64::INFINITY;
            let mut idx = vec![0usize; n];
            loop {
                let a = Assignment {
                    config: idx.clone(),
                };
                if a.total_area(&specs) <= budget {
                    best = best.min(a.utilization(&specs));
                }
                // Odometer increment.
                let mut k = 0;
                loop {
                    if k == n {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < specs[k].curve.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
            }
            assert!(
                (got.utilization - best).abs() < 1e-9,
                "case {case}: got {} want {best}",
                got.utilization
            );
        }
    }

    #[test]
    fn stats_describe_the_grid_and_do_not_change_the_result() {
        let specs = fig_3_2_specs();
        let plain = select_edf(&specs, 10).expect("select");
        let (sel, stats) = select_edf_with_stats(&specs, 10).expect("select");
        assert_eq!(plain, sel);
        // Areas 7, 6, 4 and budget 10 have gcd 1 → an 11-slot dense grid,
        // but the sparse path materializes only the reachable staircases:
        // {0,7} → {0,6,7} → {0,4,6,7,10}, i.e. 2 + 3 + 5 states.
        assert_eq!(stats.grid_step, 1);
        assert_eq!(stats.grid_slots, 11);
        assert_eq!(stats.dp_cells, 2 + 3 + 5);
        // Each staircase entry came from at least one evaluated transition.
        assert!(stats.transitions >= stats.dp_cells);
        // The dense reference solves the same instance with a full grid.
        let (dense, dstats) = select_edf_dense_with_stats(&specs, 10).expect("dense");
        assert_eq!(dense, sel);
        assert_eq!(dstats.dp_cells, 11 * 3);
    }

    #[test]
    fn coarse_grids_fall_back_to_the_dense_dp() {
        // Areas 4/8 and budget 8 share gcd 4 → only 3 dense slots; the
        // first task's 3-point merge already reaches that, so the sparse
        // path bails out and the dense DP runs.
        let specs = vec![
            spec("a", 9, 6, &[(4, 5), (8, 2)]),
            spec("b", 7, 8, &[(4, 3), (8, 1)]),
        ];
        let (sel, stats) = select_edf_with_stats(&specs, 8).expect("select");
        assert_eq!(stats.grid_step, 4);
        assert_eq!(stats.grid_slots, 3);
        assert_eq!(stats.dp_cells, 3 * 2, "dense accounting after fallback");
        let (dense, dstats) = select_edf_dense_with_stats(&specs, 8).expect("dense");
        assert_eq!(sel, dense);
        assert_eq!(stats, dstats);
    }

    #[test]
    fn parallel_row_merge_is_identical_at_any_thread_count() {
        // Base-4 digit areas with cycles = C - area make every distinct
        // total area survive dominance pruning, so the staircase after
        // task k holds exactly 4^k states: the 7-task instance crosses
        // the PAR_MIN_ROW = 4096 gate on its last row without tripping
        // the dense fallback (4096·4 < 20001 slots).
        let specs: Vec<TaskSpec> = (0..7)
            .map(|i| {
                let step = 4u64.pow(i);
                let base = 20_000u64;
                let pts: Vec<(u64, u64)> = (1..=3).map(|j| (j * step, base - j * step)).collect();
                spec(&format!("t{i}"), base, 10, &pts)
            })
            .collect();
        let budget = 20_000u64;
        let serial = select_edf_with_stats(&specs, budget).expect("serial");
        assert_eq!(
            serial.1.dp_cells,
            (1..=7).map(|k| 4u64.pow(k)).sum::<u64>(),
            "construction must keep every state (else the gate is untested)"
        );
        for threads in [2, 4, 7] {
            let par = select_edf_par_with_stats(&specs, budget, threads).expect("par");
            assert_eq!(serial, par, "threads {threads}");
        }
    }

    #[test]
    fn sparse_and_dense_paths_agree_on_random_instances() {
        use rtise_obs::Rng;
        let mut rng = Rng::new(0x5EDF);
        for case in 0..120 {
            let n = rng.gen_range(1..=6usize);
            let specs: Vec<TaskSpec> = (0..n)
                .map(|i| {
                    let base = rng.gen_range(5..60u64);
                    let n_cfg = rng.gen_range(0..5usize);
                    let pts: Vec<(u64, u64)> = (0..n_cfg)
                        .map(|k| {
                            (
                                rng.gen_range(1..30u64) + 13 * k as u64,
                                base.saturating_sub(rng.gen_range(1..=base)),
                            )
                        })
                        .collect();
                    spec(&format!("t{i}"), base, rng.gen_range(4..40u64), &pts)
                })
                .collect();
            let budget = rng.gen_range(0..120u64);
            let (sparse, _) = select_edf_with_stats(&specs, budget).expect("sparse");
            let (dense, _) = select_edf_dense_with_stats(&specs, budget).expect("dense");
            // Bit-identical, including the chosen configuration indices
            // (tie-breaks must match, not just the utilization).
            assert_eq!(sparse, dense, "case {case}");
        }
    }
}

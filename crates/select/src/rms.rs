//! Algorithm 2: branch-and-bound configuration selection under RMS.
//!
//! RMS needs more than utilization minimization: a lower-utilization choice
//! can be unschedulable while a higher one passes (§3.1.4). The search
//! assigns configurations in decreasing priority (increasing period) order,
//! checking only the newly added task with the exact test of Theorem 1 —
//! higher-priority tasks cannot be disturbed by adding a lower-priority
//! one. Pruning: (1) area budget, (2) per-task schedulability, (3) a lower
//! bound on achievable utilization versus the incumbent; configurations are
//! tried fastest-first to find good incumbents early.

use crate::task::{Assignment, TaskSpec};
use rtise_rt::{rms_task_schedulable, PeriodicTask};
use std::fmt;

/// Errors from [`select_rms`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectRmsError {
    /// The spec list is empty.
    NoTasks,
    /// No configuration choice meets all deadlines within the budget.
    Unschedulable,
}

impl fmt::Display for SelectRmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectRmsError::NoTasks => write!(f, "task set is empty"),
            SelectRmsError::Unschedulable => {
                write!(f, "no schedulable configuration within the area budget")
            }
        }
    }
}

impl std::error::Error for SelectRmsError {}

/// Default cap on certificate events per [`select_rms_with_cert`] call;
/// overflow is counted in [`RmsCertificate::dropped`].
pub const DEFAULT_CERT_CAP: usize = 1 << 22;

/// Maximum frontier depth of the decomposed parallel search. Shallower
/// than the binary solvers' frontiers because this search branches
/// multi-way (one child per feasible configuration). The actual depth is
/// sized from the engaged thread count
/// ([`rtise_obs::par::sized_frontier_depth`]); output is byte-identical
/// at any thread count *for a fixed depth* (pin one with
/// [`rtise_obs::par::set_frontier_for`] to compare across counts).
pub const PAR_FRONTIER_DEPTH: usize = 4;

/// One branch-and-bound event, in preorder.
///
/// A non-leaf node that is not bound-pruned records exactly one `Cfg*`
/// event per configuration of the task at its depth, fastest (highest
/// curve index) first — together the events enumerate every child, so a
/// replayer can confirm the branching covered the whole space. Leaves
/// (depth = task count) record nothing: the incumbent rule (strictly
/// smaller utilization) is deterministic and replayed independently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmsCertEvent {
    /// The node was abandoned: even the best remaining configurations
    /// cannot beat the incumbent utilization.
    PruneBound,
    /// The configuration exceeded the remaining area budget.
    CfgArea,
    /// The configuration failed the exact per-task RMS test (Theorem 1).
    CfgUnsched,
    /// The configuration was feasible so far; the search recursed into it.
    CfgRecurse,
}

/// A replayable optimality certificate of one [`select_rms_with_cert`]
/// call.
///
/// `rtise-check`'s `bnb` analyzer replays it, re-deriving the utilization
/// bound and the scheduling-point test from the task specs, and confirms
/// the returned [`RmsSelection`] is utilization-optimal within the budget
/// (or, when the search failed, that the whole space was refuted). A
/// truncated log (`dropped > 0`) proves nothing beyond its prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RmsCertificate {
    /// `order[d]` is the spec index assigned at depth `d` — a permutation
    /// of `0..specs.len()` in non-decreasing period (priority) order.
    pub order: Vec<usize>,
    /// Events in preorder (see [`RmsCertEvent`]).
    pub events: Vec<RmsCertEvent>,
    /// Events dropped past the recording cap (0 = complete log).
    pub dropped: u64,
}

/// Result of the RMS selection.
#[derive(Debug, Clone, PartialEq)]
pub struct RmsSelection {
    /// Chosen configuration per task (original task order).
    pub assignment: Assignment,
    /// Utilization of the chosen configurations.
    pub utilization: f64,
}

/// Branch-and-bound statistics for one [`select_rms_with_stats`] call.
///
/// Invariant: `nodes >= pruned_bound` and every configuration either
/// recursed, was pruned by area, or failed the schedulability test, so
/// `configs_tried = recursions + pruned_area + pruned_unschedulable`
/// (recursions are not counted separately here; the counters below are the
/// observable pruning events).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RmsBnbStats {
    /// Search-tree nodes entered.
    pub nodes: u64,
    /// Nodes cut by the utilization lower bound against the incumbent.
    pub pruned_bound: u64,
    /// Configurations skipped because they exceeded the area budget.
    pub pruned_area: u64,
    /// Configurations rejected by the exact per-task RMS test.
    pub pruned_unschedulable: u64,
    /// Exact schedulability tests run (Theorem 1).
    pub sched_tests: u64,
    /// Times a new best (incumbent) assignment was recorded.
    pub incumbent_updates: u64,
}

/// Selects one configuration per task minimizing total utilization such
/// that the whole set is RMS-schedulable within `area_budget`
/// (Algorithm 2).
///
/// # Errors
///
/// [`SelectRmsError::Unschedulable`] when even the fastest configurations
/// cannot meet all deadlines within the budget.
pub fn select_rms(specs: &[TaskSpec], area_budget: u64) -> Result<RmsSelection, SelectRmsError> {
    select_rms_with_stats(specs, area_budget).map(|(s, _)| s)
}

/// Like [`select_rms`], additionally returning [`RmsBnbStats`] and
/// publishing `select.rms.*` counters to the [`rtise_obs`] registry (also
/// when the instance is unschedulable — failed searches are the expensive
/// ones).
///
/// # Errors
///
/// Same as [`select_rms`].
pub fn select_rms_with_stats(
    specs: &[TaskSpec],
    area_budget: u64,
) -> Result<(RmsSelection, RmsBnbStats), SelectRmsError> {
    select_rms_observed(specs, area_budget, rtise_obs::par::threads(), None)
}

/// Like [`select_rms_with_stats`] with an explicit worker-thread count,
/// ignoring the global [`rtise_obs::par`] knob. The search decomposes at
/// a frontier depth sized from `threads` and stitches per-subtree
/// results in preorder; stats and selection are byte-identical at any
/// worker count *for a fixed depth* (pin one with
/// [`rtise_obs::par::set_frontier_for`] to compare runs at different
/// thread counts). Small instances fall back to the serial search.
///
/// # Errors
///
/// Same as [`select_rms`].
pub fn select_rms_par_with_stats(
    specs: &[TaskSpec],
    area_budget: u64,
    threads: usize,
) -> Result<(RmsSelection, RmsBnbStats), SelectRmsError> {
    select_rms_observed(specs, area_budget, threads.max(1), None)
}

/// Like [`select_rms_with_stats`], additionally recording a replayable
/// [`RmsCertificate`] of the search (capped at [`DEFAULT_CERT_CAP`]
/// events). The certificate is returned even when the search fails — a
/// complete log with no surviving leaf is an unschedulability proof.
pub fn select_rms_with_cert(
    specs: &[TaskSpec],
    area_budget: u64,
) -> (
    Result<(RmsSelection, RmsBnbStats), SelectRmsError>,
    RmsCertificate,
) {
    select_rms_with_cert_capped(specs, area_budget, DEFAULT_CERT_CAP)
}

/// [`select_rms_with_cert`] with an explicit event cap.
pub fn select_rms_with_cert_capped(
    specs: &[TaskSpec],
    area_budget: u64,
    cap: usize,
) -> (
    Result<(RmsSelection, RmsBnbStats), SelectRmsError>,
    RmsCertificate,
) {
    rms_cert_at(specs, area_budget, rtise_obs::par::threads(), cap)
}

/// Like [`select_rms_with_cert`] with an explicit worker-thread count (see
/// [`select_rms_par_with_stats`]); the stitched certificate is
/// byte-identical at any `threads` value and replays through the same
/// checker as the serial log.
pub fn select_rms_par_with_cert(
    specs: &[TaskSpec],
    area_budget: u64,
    threads: usize,
) -> (
    Result<(RmsSelection, RmsBnbStats), SelectRmsError>,
    RmsCertificate,
) {
    rms_cert_at(specs, area_budget, threads.max(1), DEFAULT_CERT_CAP)
}

/// [`select_rms_par_with_cert`] with an explicit event cap.
pub fn select_rms_par_with_cert_capped(
    specs: &[TaskSpec],
    area_budget: u64,
    threads: usize,
    cap: usize,
) -> (
    Result<(RmsSelection, RmsBnbStats), SelectRmsError>,
    RmsCertificate,
) {
    rms_cert_at(specs, area_budget, threads.max(1), cap)
}

/// [`select_rms_par_with_cert`] at an explicit frontier depth, bypassing
/// the thread-count sizing — the determinism-contract test hook
/// (identity across thread counts holds per depth).
#[doc(hidden)]
pub fn select_rms_par_with_cert_at_depth(
    specs: &[TaskSpec],
    area_budget: u64,
    threads: usize,
    depth: usize,
) -> (
    Result<(RmsSelection, RmsBnbStats), SelectRmsError>,
    RmsCertificate,
) {
    let mut log = rtise_obs::BoundedLog::new(DEFAULT_CERT_CAP);
    let result =
        select_rms_observed_at_depth(specs, area_budget, threads.max(1), depth, Some(&mut log));
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| specs[i].period);
    let (events, dropped) = log.into_parts();
    (
        result,
        RmsCertificate {
            order,
            events,
            dropped,
        },
    )
}

fn rms_cert_at(
    specs: &[TaskSpec],
    area_budget: u64,
    threads: usize,
    cap: usize,
) -> (
    Result<(RmsSelection, RmsBnbStats), SelectRmsError>,
    RmsCertificate,
) {
    let mut log = rtise_obs::BoundedLog::new(cap);
    let result = select_rms_observed(specs, area_budget, threads, Some(&mut log));
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| specs[i].period);
    let (events, dropped) = log.into_parts();
    (
        result,
        RmsCertificate {
            order,
            events,
            dropped,
        },
    )
}

/// Per-instance tables shared by every search over the same spec list:
/// the priority order, the utilization suffix bounds, and the Theorem 1
/// scheduling-point sets `Sᵢ₋₁(Pᵢ)` with the tested task's own `⌈t/Pᵢ⌉`
/// factors. Periods are fixed by the priority order — only the chosen
/// cycles vary across the search — so all of it is computed once per
/// solve instead of once per schedulability test.
struct RmsTables {
    order: Vec<usize>,
    suffix_bound: Vec<f64>,
    periods: Vec<u64>,
    points: Vec<Vec<u64>>,
    self_fac: Vec<Vec<u128>>,
}

fn rms_tables(specs: &[TaskSpec]) -> RmsTables {
    // Priority order: increasing period.
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| specs[i].period);
    let suffix_bound = suffix_bounds(specs, &order);
    let periods: Vec<u64> = order.iter().map(|&i| specs[i].period).collect();
    let points: Vec<Vec<u64>> = (0..order.len())
        .map(|d| scheduling_points(&periods, d))
        .collect();
    let self_fac: Vec<Vec<u128>> = points
        .iter()
        .enumerate()
        .map(|(d, pts)| {
            pts.iter()
                .map(|&t| (t as u128).div_ceil(periods[d] as u128))
                .collect()
        })
        .collect();
    RmsTables {
        order,
        suffix_bound,
        periods,
        points,
        self_fac,
    }
}

/// A node captured at the parallel frontier: the full path state needed
/// to resume the search from depth [`PAR_FRONTIER_DEPTH`], plus where in
/// the phase-1 preorder log its subtree's events belong.
struct RmsFrontierNode {
    area: u64,
    util: f64,
    cycles: Vec<u64>,
    config: Vec<usize>,
    cert_pos: usize,
}

/// Everything a subtree search produces, merged by the caller in subtree
/// index order.
struct RmsSubResult {
    best: Option<(f64, Vec<usize>)>,
    stats: RmsBnbStats,
    depth_hist: rtise_obs::Hist,
    events: Vec<RmsCertEvent>,
    cert_dropped: u64,
    trace: Vec<rtise_trace::Event>,
    trace_dropped: u64,
}

struct Ctx<'a> {
    specs: &'a [TaskSpec],
    t: &'a RmsTables,
    budget: u64,
    // Chosen cycles per depth (priority order) along the current path.
    cycles: Vec<u64>,
    // Per-depth scratch: higher-priority demand at each scheduling
    // point, filled once per node and shared by all sibling configs.
    prefix: Vec<Vec<u128>>,
    config: Vec<usize>,
    best: Option<(f64, Vec<usize>)>,
    stats: RmsBnbStats,
    // Depth histogram outside `RmsBnbStats`, which the differential
    // test against the reference search compares by tuple equality.
    depth_hist: rtise_obs::Hist,
    cert: Option<&'a mut rtise_obs::BoundedLog<RmsCertEvent>>,
    // `Some((depth, out))` truncates the walk at `depth`, capturing each
    // reached node into `out` instead of searching it (phase 1 of the
    // parallel decomposition). Captured nodes record nothing — the
    // subtree search replays the node entry itself.
    frontier: Option<(usize, &'a mut Vec<RmsFrontierNode>)>,
}

fn search(ctx: &mut Ctx<'_>, depth: usize, area: u64, util: f64) {
    if let Some((fd, nodes)) = &mut ctx.frontier {
        if depth == *fd {
            let cert_pos = ctx.cert.as_ref().map_or(0, |c| c.len());
            nodes.push(RmsFrontierNode {
                area,
                util,
                cycles: ctx.cycles.clone(),
                config: ctx.config.clone(),
                cert_pos,
            });
            return;
        }
    }
    ctx.stats.nodes += 1;
    ctx.depth_hist.observe(depth as u64);
    if depth == ctx.t.order.len() {
        if ctx.best.as_ref().is_none_or(|(b, _)| util < *b) {
            ctx.best = Some((util, ctx.config.clone()));
            ctx.stats.incumbent_updates += 1;
            if rtise_trace::enabled() {
                rtise_trace::instant_with(
                    rtise_trace::codes::SELECT_RMS_INCUMBENT,
                    &[("depth", depth as u64)],
                );
            }
        }
        return;
    }
    // Bounding: even with the best remaining configurations we cannot
    // beat the incumbent.
    if let Some((b, _)) = &ctx.best {
        if util + ctx.t.suffix_bound[depth] >= *b - 1e-15 {
            ctx.stats.pruned_bound += 1;
            if let Some(log) = ctx.cert.as_deref_mut() {
                log.push(RmsCertEvent::PruneBound);
            }
            if rtise_trace::enabled() {
                rtise_trace::instant_with(
                    rtise_trace::codes::SELECT_RMS_PRUNE_BOUND,
                    &[("depth", depth as u64)],
                );
            }
            return;
        }
    }
    let ti = ctx.t.order[depth];
    let spec = &ctx.specs[ti];
    // Memoize the response-time sum of the already-fixed
    // higher-priority tasks at every scheduling point: each sibling
    // configuration below only adds its own `⌈t/Pᵢ⌉·C` term.
    for k in 0..ctx.t.points[depth].len() {
        let t = ctx.t.points[depth][k] as u128;
        let mut s = 0u128;
        for j in 0..depth {
            s += t.div_ceil(ctx.t.periods[j] as u128) * ctx.cycles[j] as u128;
        }
        ctx.prefix[depth][k] = s;
    }
    // Fastest (minimum cycles) configuration first: better incumbents
    // earlier (§3.1.4). Points are area-ascending = cycles-descending,
    // so iterate in reverse.
    for j in (0..spec.curve.len()).rev() {
        let p = &spec.curve.points()[j];
        if area + p.area > ctx.budget {
            ctx.stats.pruned_area += 1;
            if let Some(log) = ctx.cert.as_deref_mut() {
                log.push(RmsCertEvent::CfgArea);
            }
            if rtise_trace::enabled() {
                rtise_trace::instant_with(
                    rtise_trace::codes::SELECT_RMS_PRUNE_AREA,
                    &[("depth", depth as u64)],
                );
            }
            continue;
        }
        ctx.stats.sched_tests += 1;
        let c = p.cycles as u128;
        let ok = ctx.t.points[depth]
            .iter()
            .enumerate()
            .any(|(k, &t)| ctx.prefix[depth][k] + ctx.t.self_fac[depth][k] * c <= t as u128);
        #[cfg(debug_assertions)]
        {
            let tasks: Vec<PeriodicTask> = (0..=depth)
                .map(|d| {
                    let s = &ctx.specs[ctx.t.order[d]];
                    let wcet = if d == depth { p.cycles } else { ctx.cycles[d] };
                    PeriodicTask::new(s.curve.name.clone(), wcet, s.period)
                })
                .collect();
            let sorted: Vec<&PeriodicTask> = tasks.iter().collect();
            debug_assert_eq!(
                ok,
                rms_task_schedulable(&sorted, depth),
                "memoized Theorem 1 test diverged at depth {depth}"
            );
        }
        if ok {
            if let Some(log) = ctx.cert.as_deref_mut() {
                log.push(RmsCertEvent::CfgRecurse);
            }
            ctx.config[ti] = j;
            ctx.cycles[depth] = p.cycles;
            search(
                ctx,
                depth + 1,
                area + p.area,
                util + p.cycles as f64 / spec.period as f64,
            );
        } else {
            ctx.stats.pruned_unschedulable += 1;
            if let Some(log) = ctx.cert.as_deref_mut() {
                log.push(RmsCertEvent::CfgUnsched);
            }
            if rtise_trace::enabled() {
                rtise_trace::instant_with(
                    rtise_trace::codes::SELECT_RMS_PRUNE_UNSCHED,
                    &[("depth", depth as u64)],
                );
            }
        }
    }
}

/// Span, routing (serial vs decomposed-parallel), and registry recording
/// shared by every public entry point. `threads == 0` (the knob's
/// default) keeps the legacy serial path untouched; any positive count
/// routes deep-enough instances through [`rms_par`].
fn select_rms_observed(
    specs: &[TaskSpec],
    area_budget: u64,
    threads: usize,
    cert: Option<&mut rtise_obs::BoundedLog<RmsCertEvent>>,
) -> Result<(RmsSelection, RmsBnbStats), SelectRmsError> {
    let depth = rtise_obs::par::sized_frontier_depth(PAR_FRONTIER_DEPTH, threads);
    select_rms_observed_at_depth(specs, area_budget, threads, depth, cert)
}

fn select_rms_observed_at_depth(
    specs: &[TaskSpec],
    area_budget: u64,
    threads: usize,
    depth: usize,
    cert: Option<&mut rtise_obs::BoundedLog<RmsCertEvent>>,
) -> Result<(RmsSelection, RmsBnbStats), SelectRmsError> {
    if specs.is_empty() {
        return Err(SelectRmsError::NoTasks);
    }
    let t = rms_tables(specs);
    let span = rtise_trace::span(rtise_trace::codes::SELECT_RMS_SOLVE);
    let (best, stats, depth_hist) = if threads > 0 && specs.len() > depth {
        rms_par(specs, area_budget, &t, threads, depth, cert)
    } else {
        rms_serial(specs, area_budget, &t, cert)
    };
    rtise_obs::observe_hist("select.rms.depth", &depth_hist);
    rtise_trace::summary(
        rtise_trace::codes::SELECT_RMS_SUMMARY,
        &[
            ("nodes", stats.nodes),
            ("pruned_bound", stats.pruned_bound),
            ("pruned_area", stats.pruned_area),
            ("pruned_unschedulable", stats.pruned_unschedulable),
            ("sched_tests", stats.sched_tests),
            ("incumbents", stats.incumbent_updates),
        ],
    );
    drop(span);
    rtise_obs::record("select.rms.solves", 1);
    rtise_obs::record("select.rms.nodes", stats.nodes);
    rtise_obs::record("select.rms.pruned_bound", stats.pruned_bound);
    rtise_obs::record("select.rms.pruned_area", stats.pruned_area);
    rtise_obs::record(
        "select.rms.pruned_unschedulable",
        stats.pruned_unschedulable,
    );
    rtise_obs::record("select.rms.sched_tests", stats.sched_tests);
    let (utilization, config) = best.ok_or(SelectRmsError::Unschedulable)?;
    Ok((
        RmsSelection {
            assignment: Assignment { config },
            utilization,
        },
        stats,
    ))
}

type RmsBest = Option<(f64, Vec<usize>)>;

fn rms_serial(
    specs: &[TaskSpec],
    area_budget: u64,
    t: &RmsTables,
    cert: Option<&mut rtise_obs::BoundedLog<RmsCertEvent>>,
) -> (RmsBest, RmsBnbStats, rtise_obs::Hist) {
    let mut ctx = Ctx {
        specs,
        t,
        budget: area_budget,
        cycles: vec![0; specs.len()],
        prefix: t.points.iter().map(|pts| vec![0; pts.len()]).collect(),
        config: vec![0; specs.len()],
        best: None,
        stats: RmsBnbStats::default(),
        depth_hist: rtise_obs::Hist::new(),
        cert,
        frontier: None,
    };
    search(&mut ctx, 0, 0, 0.0);
    (ctx.best, ctx.stats, ctx.depth_hist)
}

/// The decomposed parallel search: a serial phase-1 walk truncated at
/// the sized frontier depth captures the frontier, then independent subtree
/// searches run on [`rtise_obs::par::run_ordered`] and are merged in
/// subtree index order. Incumbents only exist at leaves — which phase 1
/// never reaches — so the merge folds subtree results with the same
/// strict `util <` rule the serial search applies, and the f64 path sums
/// are bitwise identical at any thread count.
fn rms_par(
    specs: &[TaskSpec],
    area_budget: u64,
    t: &RmsTables,
    threads: usize,
    depth: usize,
    cert: Option<&mut rtise_obs::BoundedLog<RmsCertEvent>>,
) -> (RmsBest, RmsBnbStats, rtise_obs::Hist) {
    let want_cert = cert.is_some();
    let cap = cert.as_ref().map_or(0, |c| c.cap());

    // Phase 1: serial walk truncated at the frontier. The log is
    // physically bounded by the frontier size, so no cap is needed.
    let mut frontier: Vec<RmsFrontierNode> = Vec::new();
    let mut ph_log = want_cert.then(|| rtise_obs::BoundedLog::new(usize::MAX));
    let mut ph = Ctx {
        specs,
        t,
        budget: area_budget,
        cycles: vec![0; specs.len()],
        prefix: t.points.iter().map(|pts| vec![0; pts.len()]).collect(),
        config: vec![0; specs.len()],
        best: None,
        stats: RmsBnbStats::default(),
        depth_hist: rtise_obs::Hist::new(),
        cert: ph_log.as_mut(),
        frontier: Some((depth, &mut frontier)),
    };
    search(&mut ph, 0, 0, 0.0);
    let Ctx {
        stats: ph_stats,
        depth_hist: ph_hist,
        ..
    } = ph;
    let ph_events = ph_log.map_or(Vec::new(), |log| log.into_parts().0);

    // Phase 2: independent subtree searches on the deterministic
    // scheduler. Nothing in here touches the counter registry or the
    // ambient trace scopes — everything is merged by the caller.
    //
    // Subtree 0 runs serially first (warm start): it is the preorder-
    // earliest region of the tree, so its best leaf both seeds every
    // later subtree — without it, the first `WINDOW` subtrees would
    // search incumbent-less and can explosively overexpand — and is a
    // valid justification for any later prune under the replayer's
    // preorder incumbent.
    let trace_on = rtise_trace::enabled();
    let run_subtree = |node: &RmsFrontierNode, seed: RmsBest| {
        let scope = trace_on.then(|| rtise_trace::TraceScope::new(rtise_trace::Clock::Virtual));
        let mut log = want_cert.then(|| rtise_obs::BoundedLog::new(cap));
        let mut ctx = Ctx {
            specs,
            t,
            budget: area_budget,
            cycles: node.cycles.clone(),
            prefix: t.points.iter().map(|pts| vec![0; pts.len()]).collect(),
            config: node.config.clone(),
            best: seed,
            stats: RmsBnbStats::default(),
            depth_hist: rtise_obs::Hist::new(),
            cert: log.as_mut(),
            frontier: None,
        };
        {
            // Detach from any ambient scope first (with one worker
            // the closure runs on the caller's thread, which has the
            // caller's scopes entered) so subtree events reach the
            // ambient trace exactly once, via the deterministic
            // replay below.
            let _isolated = trace_on.then(rtise_trace::isolate);
            let _active = scope.as_ref().map(rtise_trace::TraceScope::enter);
            search(&mut ctx, depth, node.area, node.util);
        }
        let Ctx {
            best,
            stats,
            depth_hist,
            ..
        } = ctx;
        let (events, cert_dropped) = log.map_or((Vec::new(), 0), rtise_obs::BoundedLog::into_parts);
        RmsSubResult {
            best,
            stats,
            depth_hist,
            events,
            cert_dropped,
            trace: scope
                .as_ref()
                .map_or_else(Vec::new, rtise_trace::TraceScope::events),
            trace_dropped: scope.as_ref().map_or(0, rtise_trace::TraceScope::dropped),
        }
    };
    let first = frontier.first().map(|node| run_subtree(node, None));
    let rest: Vec<RmsSubResult> = rtise_obs::par::run_ordered(
        frontier.get(1..).unwrap_or(&[]),
        threads,
        |_, node, prefix: rtise_obs::par::Completed<'_, RmsSubResult>| {
            let mut seed: RmsBest = None;
            for r in
                std::iter::once(first.as_ref().expect("frontier is non-empty")).chain(prefix.iter())
            {
                if let Some((u, cfg)) = &r.best {
                    if seed.as_ref().is_none_or(|(s, _)| *u < *s) {
                        seed = Some((*u, cfg.clone()));
                    }
                }
            }
            run_subtree(node, seed)
        },
    );
    let results: Vec<RmsSubResult> = first.into_iter().chain(rest).collect();

    // Merge, all in subtree index order.
    let mut stats = ph_stats;
    let mut hist = ph_hist;
    let mut best: RmsBest = None;
    for r in &results {
        stats.nodes += r.stats.nodes;
        stats.pruned_bound += r.stats.pruned_bound;
        stats.pruned_area += r.stats.pruned_area;
        stats.pruned_unschedulable += r.stats.pruned_unschedulable;
        stats.sched_tests += r.stats.sched_tests;
        stats.incumbent_updates += r.stats.incumbent_updates;
        hist.merge(&r.depth_hist);
        if let Some((u, cfg)) = &r.best {
            if best.as_ref().is_none_or(|(b, _)| *u < *b) {
                best = Some((*u, cfg.clone()));
            }
        }
    }
    if trace_on {
        for r in &results {
            rtise_trace::replay(&r.trace, r.trace_dropped);
        }
    }
    if let Some(out) = cert {
        let mut prev = 0;
        for (node, r) in frontier.iter().zip(&results) {
            for &e in &ph_events[prev..node.cert_pos] {
                out.push(e);
            }
            prev = node.cert_pos;
            for &e in &r.events {
                out.push(e);
            }
            out.add_dropped(r.cert_dropped);
        }
        for &e in &ph_events[prev..] {
            out.push(e);
        }
    }
    (best, stats, hist)
}

/// The original branch-and-bound that re-runs the full Theorem 1 test
/// (scheduling-point recursion included) for every candidate. Kept
/// callable so differential tests and benchmarks can compare the memoized
/// search against it; does not publish counters.
///
/// # Errors
///
/// Same as [`select_rms`].
#[doc(hidden)]
pub fn select_rms_reference_with_stats(
    specs: &[TaskSpec],
    area_budget: u64,
) -> Result<(RmsSelection, RmsBnbStats), SelectRmsError> {
    if specs.is_empty() {
        return Err(SelectRmsError::NoTasks);
    }
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| specs[i].period);
    let suffix_bound = suffix_bounds(specs, &order);

    struct Ctx<'a> {
        specs: &'a [TaskSpec],
        order: &'a [usize],
        suffix_bound: &'a [f64],
        budget: u64,
        partial: Vec<PeriodicTask>,
        config: Vec<usize>,
        best: Option<(f64, Vec<usize>)>,
        stats: RmsBnbStats,
    }

    fn search(ctx: &mut Ctx<'_>, depth: usize, area: u64, util: f64) {
        ctx.stats.nodes += 1;
        if depth == ctx.order.len() {
            if ctx.best.as_ref().is_none_or(|(b, _)| util < *b) {
                ctx.best = Some((util, ctx.config.clone()));
                ctx.stats.incumbent_updates += 1;
            }
            return;
        }
        if let Some((b, _)) = &ctx.best {
            if util + ctx.suffix_bound[depth] >= *b - 1e-15 {
                ctx.stats.pruned_bound += 1;
                return;
            }
        }
        let ti = ctx.order[depth];
        let spec = &ctx.specs[ti];
        for j in (0..spec.curve.len()).rev() {
            let p = &spec.curve.points()[j];
            if area + p.area > ctx.budget {
                ctx.stats.pruned_area += 1;
                continue;
            }
            ctx.partial.push(PeriodicTask::new(
                spec.curve.name.clone(),
                p.cycles,
                spec.period,
            ));
            let sorted: Vec<&PeriodicTask> = ctx.partial.iter().collect();
            ctx.stats.sched_tests += 1;
            let ok = rms_task_schedulable(&sorted, depth);
            if ok {
                ctx.config[ti] = j;
                search(
                    ctx,
                    depth + 1,
                    area + p.area,
                    util + p.cycles as f64 / spec.period as f64,
                );
            } else {
                ctx.stats.pruned_unschedulable += 1;
            }
            ctx.partial.pop();
        }
    }

    let mut ctx = Ctx {
        specs,
        order: &order,
        suffix_bound: &suffix_bound,
        budget: area_budget,
        partial: Vec::new(),
        config: vec![0; specs.len()],
        best: None,
        stats: RmsBnbStats::default(),
    };
    search(&mut ctx, 0, 0, 0.0);
    let stats = ctx.stats;
    let (utilization, config) = ctx.best.ok_or(SelectRmsError::Unschedulable)?;
    Ok((
        RmsSelection {
            assignment: Assignment { config },
            utilization,
        },
        stats,
    ))
}

/// Per-depth lower bound on the utilization still to come: the sum over
/// remaining tasks of their best configuration, area ignored.
fn suffix_bounds(specs: &[TaskSpec], order: &[usize]) -> Vec<f64> {
    let best_u: Vec<f64> = specs
        .iter()
        .map(|s| {
            s.curve
                .points()
                .iter()
                .map(|p| p.cycles as f64 / s.period as f64)
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mut suffix_bound = vec![0.0; specs.len() + 1];
    for d in (0..specs.len()).rev() {
        suffix_bound[d] = suffix_bound[d + 1] + best_u[order[d]];
    }
    suffix_bound
}

/// The `Sᵢ₋₁(Pᵢ)` scheduling points of Theorem 1 for depth `i` of the
/// priority order, ascending, zero removed — exactly the points
/// `rtise_rt::rms_task_schedulable` evaluates. Depends only on periods,
/// never on the chosen configurations.
fn scheduling_points(periods: &[u64], i: usize) -> Vec<u64> {
    use std::collections::BTreeSet;
    fn rec(periods: &[u64], level: usize, t: u64, out: &mut BTreeSet<u64>) {
        if level == 0 {
            out.insert(t);
            return;
        }
        let p = periods[level - 1];
        rec(periods, level - 1, t / p * p, out);
        rec(periods, level - 1, t, out);
    }
    let mut out = BTreeSet::new();
    rec(periods, i, periods[i], &mut out);
    out.into_iter().filter(|&t| t > 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ise::configs::ConfigCurve;
    use rtise_rt::{rms_schedulable, simulate_rms, SimOutcome};

    fn spec(name: &str, base: u64, period: u64, pts: &[(u64, u64)]) -> TaskSpec {
        TaskSpec::new(ConfigCurve::from_points(name, base, pts), period)
    }

    fn fig_3_2_specs() -> Vec<TaskSpec> {
        vec![
            spec("T1", 2, 6, &[(7, 1)]),
            spec("T2", 3, 8, &[(6, 2)]),
            spec("T3", 6, 12, &[(4, 5)]),
        ]
    }

    #[test]
    fn motivating_example_schedulable_under_rms_too() {
        // U = 1 with harmonic-ish periods 6/8/12 is not RMS-schedulable in
        // general; verify whatever the selector returns is truly
        // schedulable.
        match select_rms(&fig_3_2_specs(), 17) {
            Ok(sel) => {
                let tasks = sel.assignment.to_tasks(&fig_3_2_specs());
                assert!(rms_schedulable(&tasks));
                assert_eq!(simulate_rms(&tasks), SimOutcome::AllDeadlinesMet);
            }
            Err(SelectRmsError::Unschedulable) => {
                // Acceptable outcome for a strict budget; widen and retry.
                let sel = select_rms(&fig_3_2_specs(), 1000).expect("wide budget");
                let tasks = sel.assignment.to_tasks(&fig_3_2_specs());
                assert!(rms_schedulable(&tasks));
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn rms_may_need_more_area_than_edf() {
        // Construct a set where utilization ≤ 1 configs exist but only the
        // larger-area ones are RMS-schedulable.
        let specs = vec![
            spec("a", 3, 6, &[(5, 2)]),
            spec("b", 4, 10, &[(5, 3)]),
            spec("c", 1, 15, &[]),
        ];
        // All-software: U = 0.5+0.4+1/15 < 1, EDF fine, RMS fails (classic).
        let sw: Vec<_> = Assignment::software(3).to_tasks(&specs);
        assert!(!rms_schedulable(&sw));
        let sel = select_rms(&specs, 100).expect("feasible with CIs");
        let tasks = sel.assignment.to_tasks(&specs);
        assert!(rms_schedulable(&tasks));
        assert!(sel.assignment.total_area(&specs) > 0, "needs hardware");
    }

    #[test]
    fn unschedulable_within_budget_is_reported() {
        let specs = vec![spec("a", 10, 8, &[(50, 7)])];
        // Even the custom config does not fit the period without area.
        assert_eq!(select_rms(&specs, 0), Err(SelectRmsError::Unschedulable));
        // With area, config 1 fits (7 < 8).
        let sel = select_rms(&specs, 50).expect("feasible");
        assert_eq!(sel.assignment.config, vec![1]);
    }

    #[test]
    fn empty_task_set_is_an_error() {
        assert_eq!(select_rms(&[], 5), Err(SelectRmsError::NoTasks));
    }

    #[test]
    fn matches_exhaustive_on_random_instances() {
        use rtise_obs::Rng;
        let mut rng = Rng::new(77);
        for case in 0..40 {
            let n = rng.gen_range(1..=3usize);
            let specs: Vec<TaskSpec> = (0..n)
                .map(|i| {
                    let base = rng.gen_range(2..20u64);
                    let pts: Vec<(u64, u64)> = (0..rng.gen_range(0..3usize))
                        .map(|k| {
                            (
                                rng.gen_range(1..10u64) * (k as u64 + 1),
                                rng.gen_range(1..=base),
                            )
                        })
                        .collect();
                    spec(&format!("t{i}"), base, rng.gen_range(6..24u64), &pts)
                })
                .collect();
            let budget = rng.gen_range(0..20u64);
            // Exhaustive reference.
            let mut best: Option<f64> = None;
            let mut idx = vec![0usize; n];
            loop {
                let a = Assignment {
                    config: idx.clone(),
                };
                if a.total_area(&specs) <= budget {
                    let tasks = a.to_tasks(&specs);
                    if rms_schedulable(&tasks) {
                        let u = a.utilization(&specs);
                        if best.is_none_or(|b| u < b) {
                            best = Some(u);
                        }
                    }
                }
                let mut k = 0;
                loop {
                    if k == n {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < specs[k].curve.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
            }
            match (select_rms(&specs, budget), best) {
                (Ok(sel), Some(b)) => assert!(
                    (sel.utilization - b).abs() < 1e-9,
                    "case {case}: got {} want {b}",
                    sel.utilization
                ),
                (Err(SelectRmsError::Unschedulable), None) => {}
                (got, want) => panic!("case {case}: got {got:?}, brute {want:?}"),
            }
        }
    }

    #[test]
    fn memoized_search_matches_the_reference_search_exactly() {
        use rtise_obs::Rng;
        let mut rng = Rng::new(0x2A5);
        for case in 0..100 {
            let n = rng.gen_range(1..=5usize);
            let specs: Vec<TaskSpec> = (0..n)
                .map(|i| {
                    let base = rng.gen_range(2..25u64);
                    let pts: Vec<(u64, u64)> = (0..rng.gen_range(0..4usize))
                        .map(|k| {
                            (
                                rng.gen_range(1..12u64) * (k as u64 + 1),
                                rng.gen_range(1..=base),
                            )
                        })
                        .collect();
                    spec(&format!("t{i}"), base, rng.gen_range(5..30u64), &pts)
                })
                .collect();
            let budget = rng.gen_range(0..25u64);
            // Same incumbents, same prune decisions: stats must be equal
            // too, not just the optimum.
            assert_eq!(
                select_rms_with_stats(&specs, budget),
                select_rms_reference_with_stats(&specs, budget),
                "case {case}"
            );
        }
    }

    /// Random task sets deep enough (> [`PAR_FRONTIER_DEPTH`] tasks) that
    /// the parallel decomposition engages.
    fn random_deep_specs(rng: &mut rtise_obs::Rng) -> (Vec<TaskSpec>, u64) {
        let n = rng.gen_range(5..=8usize);
        let specs: Vec<TaskSpec> = (0..n)
            .map(|i| {
                let base = rng.gen_range(2..8u64);
                let pts: Vec<(u64, u64)> = (0..rng.gen_range(0..4usize))
                    .map(|k| {
                        (
                            rng.gen_range(1..10u64) * (k as u64 + 1),
                            rng.gen_range(1..=base),
                        )
                    })
                    .collect();
                spec(&format!("t{i}"), base, rng.gen_range(16..60u64), &pts)
            })
            .collect();
        let budget = rng.gen_range(0..30u64);
        (specs, budget)
    }

    #[test]
    fn parallel_selection_matches_serial_optimum() {
        use rtise_obs::Rng;
        let mut rng = Rng::new(0x4315);
        let mut solved = 0;
        for case in 0..60 {
            let (specs, budget) = random_deep_specs(&mut rng);
            let serial = select_rms_with_stats(&specs, budget);
            let par = select_rms_par_with_stats(&specs, budget, 4);
            match (&serial, &par) {
                // Leaves are visited in the same preorder and the
                // incumbent rule is strict, so the parallel search lands
                // on the exact same leaf — utilization (bitwise: the f64
                // path sums are order-identical) and assignment both.
                (Ok((s, _)), Ok((p, _))) => {
                    assert_eq!(s, p, "case {case}");
                    solved += 1;
                }
                (Err(es), Err(ep)) => assert_eq!(es, ep, "case {case}"),
                _ => panic!("case {case}: serial {serial:?} vs par {par:?}"),
            }
        }
        assert!(solved >= 10, "want a healthy mix of schedulable cases");
    }

    /// Result and certificate are identical at every thread count for a
    /// fixed frontier depth — checked at each depth the adaptive sizing
    /// picks for 1, 2, and 4 workers.
    #[test]
    fn parallel_output_is_identical_at_any_thread_count() {
        use rtise_obs::Rng;
        let mut rng = Rng::new(0x4316);
        for case in 0..30 {
            let (specs, budget) = random_deep_specs(&mut rng);
            for sized_for in [1usize, 2, 4] {
                let depth = rtise_obs::par::frontier_depth(PAR_FRONTIER_DEPTH, sized_for);
                let (res1, cert1) = select_rms_par_with_cert_at_depth(&specs, budget, 1, depth);
                for threads in [2, 4, 7] {
                    let (rt, ct) =
                        select_rms_par_with_cert_at_depth(&specs, budget, threads, depth);
                    assert_eq!(res1, rt, "case {case} depth {depth} threads {threads}");
                    assert_eq!(cert1, ct, "case {case} depth {depth} threads {threads}");
                }
            }
        }
    }

    #[test]
    fn parallel_falls_back_on_small_task_sets() {
        // At most PAR_FRONTIER_DEPTH tasks: the parallel entry points run
        // the plain serial search, stats included.
        let specs = fig_3_2_specs();
        assert!(specs.len() <= PAR_FRONTIER_DEPTH);
        for budget in [0u64, 17, 1000] {
            assert_eq!(
                select_rms_par_with_stats(&specs, budget, 4),
                select_rms_with_stats(&specs, budget),
                "budget {budget}"
            );
        }
    }

    #[test]
    fn stats_invariants_and_identical_optimum() {
        let specs = fig_3_2_specs();
        for budget in [0u64, 10, 17, 1000] {
            let plain = select_rms(&specs, budget);
            match select_rms_with_stats(&specs, budget) {
                Ok((sel, stats)) => {
                    assert_eq!(plain.expect("plain agrees"), sel, "budget {budget}");
                    assert!(stats.nodes >= 1);
                    assert!(stats.incumbent_updates >= 1);
                    assert!(stats.sched_tests >= stats.pruned_unschedulable);
                }
                Err(e) => assert_eq!(plain, Err(e), "budget {budget}"),
            }
        }
    }
}

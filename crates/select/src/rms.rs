//! Algorithm 2: branch-and-bound configuration selection under RMS.
//!
//! RMS needs more than utilization minimization: a lower-utilization choice
//! can be unschedulable while a higher one passes (§3.1.4). The search
//! assigns configurations in decreasing priority (increasing period) order,
//! checking only the newly added task with the exact test of Theorem 1 —
//! higher-priority tasks cannot be disturbed by adding a lower-priority
//! one. Pruning: (1) area budget, (2) per-task schedulability, (3) a lower
//! bound on achievable utilization versus the incumbent; configurations are
//! tried fastest-first to find good incumbents early.

use crate::task::{Assignment, TaskSpec};
use rtise_rt::{rms_task_schedulable, PeriodicTask};
use std::fmt;

/// Errors from [`select_rms`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectRmsError {
    /// The spec list is empty.
    NoTasks,
    /// No configuration choice meets all deadlines within the budget.
    Unschedulable,
}

impl fmt::Display for SelectRmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectRmsError::NoTasks => write!(f, "task set is empty"),
            SelectRmsError::Unschedulable => {
                write!(f, "no schedulable configuration within the area budget")
            }
        }
    }
}

impl std::error::Error for SelectRmsError {}

/// Result of the RMS selection.
#[derive(Debug, Clone, PartialEq)]
pub struct RmsSelection {
    /// Chosen configuration per task (original task order).
    pub assignment: Assignment,
    /// Utilization of the chosen configurations.
    pub utilization: f64,
}

/// Branch-and-bound statistics for one [`select_rms_with_stats`] call.
///
/// Invariant: `nodes >= pruned_bound` and every configuration either
/// recursed, was pruned by area, or failed the schedulability test, so
/// `configs_tried = recursions + pruned_area + pruned_unschedulable`
/// (recursions are not counted separately here; the counters below are the
/// observable pruning events).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RmsBnbStats {
    /// Search-tree nodes entered.
    pub nodes: u64,
    /// Nodes cut by the utilization lower bound against the incumbent.
    pub pruned_bound: u64,
    /// Configurations skipped because they exceeded the area budget.
    pub pruned_area: u64,
    /// Configurations rejected by the exact per-task RMS test.
    pub pruned_unschedulable: u64,
    /// Exact schedulability tests run (Theorem 1).
    pub sched_tests: u64,
    /// Times a new best (incumbent) assignment was recorded.
    pub incumbent_updates: u64,
}

/// Selects one configuration per task minimizing total utilization such
/// that the whole set is RMS-schedulable within `area_budget`
/// (Algorithm 2).
///
/// # Errors
///
/// [`SelectRmsError::Unschedulable`] when even the fastest configurations
/// cannot meet all deadlines within the budget.
pub fn select_rms(specs: &[TaskSpec], area_budget: u64) -> Result<RmsSelection, SelectRmsError> {
    select_rms_with_stats(specs, area_budget).map(|(s, _)| s)
}

/// Like [`select_rms`], additionally returning [`RmsBnbStats`] and
/// publishing `select.rms.*` counters to the [`rtise_obs`] registry (also
/// when the instance is unschedulable — failed searches are the expensive
/// ones).
///
/// # Errors
///
/// Same as [`select_rms`].
pub fn select_rms_with_stats(
    specs: &[TaskSpec],
    area_budget: u64,
) -> Result<(RmsSelection, RmsBnbStats), SelectRmsError> {
    if specs.is_empty() {
        return Err(SelectRmsError::NoTasks);
    }
    // Priority order: increasing period.
    let mut order: Vec<usize> = (0..specs.len()).collect();
    order.sort_by_key(|&i| specs[i].period);

    // Per-task lower bound on utilization (best configuration, area
    // ignored) for the bounding function.
    let best_u: Vec<f64> = specs
        .iter()
        .map(|s| {
            s.curve
                .points()
                .iter()
                .map(|p| p.cycles as f64 / s.period as f64)
                .fold(f64::INFINITY, f64::min)
        })
        .collect();
    let mut suffix_bound = vec![0.0; specs.len() + 1];
    for d in (0..specs.len()).rev() {
        suffix_bound[d] = suffix_bound[d + 1] + best_u[order[d]];
    }

    struct Ctx<'a> {
        specs: &'a [TaskSpec],
        order: &'a [usize],
        suffix_bound: &'a [f64],
        budget: u64,
        // Tasks chosen so far, in priority order, as periodic tasks for the
        // incremental exact test.
        partial: Vec<PeriodicTask>,
        config: Vec<usize>,
        best: Option<(f64, Vec<usize>)>,
        stats: RmsBnbStats,
    }

    fn search(ctx: &mut Ctx<'_>, depth: usize, area: u64, util: f64) {
        ctx.stats.nodes += 1;
        if depth == ctx.order.len() {
            if ctx.best.as_ref().is_none_or(|(b, _)| util < *b) {
                ctx.best = Some((util, ctx.config.clone()));
                ctx.stats.incumbent_updates += 1;
            }
            return;
        }
        // Bounding: even with the best remaining configurations we cannot
        // beat the incumbent.
        if let Some((b, _)) = &ctx.best {
            if util + ctx.suffix_bound[depth] >= *b - 1e-15 {
                ctx.stats.pruned_bound += 1;
                return;
            }
        }
        let ti = ctx.order[depth];
        let spec = &ctx.specs[ti];
        // Fastest (minimum cycles) configuration first: better incumbents
        // earlier (§3.1.4). Points are area-ascending = cycles-descending,
        // so iterate in reverse.
        for j in (0..spec.curve.len()).rev() {
            let p = &spec.curve.points()[j];
            if area + p.area > ctx.budget {
                ctx.stats.pruned_area += 1;
                continue;
            }
            ctx.partial.push(PeriodicTask::new(
                spec.curve.name.clone(),
                p.cycles,
                spec.period,
            ));
            let sorted: Vec<&PeriodicTask> = ctx.partial.iter().collect();
            ctx.stats.sched_tests += 1;
            let ok = rms_task_schedulable(&sorted, depth);
            if ok {
                ctx.config[ti] = j;
                search(
                    ctx,
                    depth + 1,
                    area + p.area,
                    util + p.cycles as f64 / spec.period as f64,
                );
            } else {
                ctx.stats.pruned_unschedulable += 1;
            }
            ctx.partial.pop();
        }
    }

    let mut ctx = Ctx {
        specs,
        order: &order,
        suffix_bound: &suffix_bound,
        budget: area_budget,
        partial: Vec::new(),
        config: vec![0; specs.len()],
        best: None,
        stats: RmsBnbStats::default(),
    };
    search(&mut ctx, 0, 0, 0.0);
    let stats = ctx.stats;
    rtise_obs::record("select.rms.solves", 1);
    rtise_obs::record("select.rms.nodes", stats.nodes);
    rtise_obs::record("select.rms.pruned_bound", stats.pruned_bound);
    rtise_obs::record("select.rms.pruned_area", stats.pruned_area);
    rtise_obs::record(
        "select.rms.pruned_unschedulable",
        stats.pruned_unschedulable,
    );
    rtise_obs::record("select.rms.sched_tests", stats.sched_tests);
    let (utilization, config) = ctx.best.ok_or(SelectRmsError::Unschedulable)?;
    Ok((
        RmsSelection {
            assignment: Assignment { config },
            utilization,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ise::configs::ConfigCurve;
    use rtise_rt::{rms_schedulable, simulate_rms, SimOutcome};

    fn spec(name: &str, base: u64, period: u64, pts: &[(u64, u64)]) -> TaskSpec {
        TaskSpec::new(ConfigCurve::from_points(name, base, pts), period)
    }

    fn fig_3_2_specs() -> Vec<TaskSpec> {
        vec![
            spec("T1", 2, 6, &[(7, 1)]),
            spec("T2", 3, 8, &[(6, 2)]),
            spec("T3", 6, 12, &[(4, 5)]),
        ]
    }

    #[test]
    fn motivating_example_schedulable_under_rms_too() {
        // U = 1 with harmonic-ish periods 6/8/12 is not RMS-schedulable in
        // general; verify whatever the selector returns is truly
        // schedulable.
        match select_rms(&fig_3_2_specs(), 17) {
            Ok(sel) => {
                let tasks = sel.assignment.to_tasks(&fig_3_2_specs());
                assert!(rms_schedulable(&tasks));
                assert_eq!(simulate_rms(&tasks), SimOutcome::AllDeadlinesMet);
            }
            Err(SelectRmsError::Unschedulable) => {
                // Acceptable outcome for a strict budget; widen and retry.
                let sel = select_rms(&fig_3_2_specs(), 1000).expect("wide budget");
                let tasks = sel.assignment.to_tasks(&fig_3_2_specs());
                assert!(rms_schedulable(&tasks));
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn rms_may_need_more_area_than_edf() {
        // Construct a set where utilization ≤ 1 configs exist but only the
        // larger-area ones are RMS-schedulable.
        let specs = vec![
            spec("a", 3, 6, &[(5, 2)]),
            spec("b", 4, 10, &[(5, 3)]),
            spec("c", 1, 15, &[]),
        ];
        // All-software: U = 0.5+0.4+1/15 < 1, EDF fine, RMS fails (classic).
        let sw: Vec<_> = Assignment::software(3).to_tasks(&specs);
        assert!(!rms_schedulable(&sw));
        let sel = select_rms(&specs, 100).expect("feasible with CIs");
        let tasks = sel.assignment.to_tasks(&specs);
        assert!(rms_schedulable(&tasks));
        assert!(sel.assignment.total_area(&specs) > 0, "needs hardware");
    }

    #[test]
    fn unschedulable_within_budget_is_reported() {
        let specs = vec![spec("a", 10, 8, &[(50, 7)])];
        // Even the custom config does not fit the period without area.
        assert_eq!(select_rms(&specs, 0), Err(SelectRmsError::Unschedulable));
        // With area, config 1 fits (7 < 8).
        let sel = select_rms(&specs, 50).expect("feasible");
        assert_eq!(sel.assignment.config, vec![1]);
    }

    #[test]
    fn empty_task_set_is_an_error() {
        assert_eq!(select_rms(&[], 5), Err(SelectRmsError::NoTasks));
    }

    #[test]
    fn matches_exhaustive_on_random_instances() {
        use rtise_obs::Rng;
        let mut rng = Rng::new(77);
        for case in 0..40 {
            let n = rng.gen_range(1..=3usize);
            let specs: Vec<TaskSpec> = (0..n)
                .map(|i| {
                    let base = rng.gen_range(2..20u64);
                    let pts: Vec<(u64, u64)> = (0..rng.gen_range(0..3usize))
                        .map(|k| {
                            (
                                rng.gen_range(1..10u64) * (k as u64 + 1),
                                rng.gen_range(1..=base),
                            )
                        })
                        .collect();
                    spec(&format!("t{i}"), base, rng.gen_range(6..24u64), &pts)
                })
                .collect();
            let budget = rng.gen_range(0..20u64);
            // Exhaustive reference.
            let mut best: Option<f64> = None;
            let mut idx = vec![0usize; n];
            loop {
                let a = Assignment {
                    config: idx.clone(),
                };
                if a.total_area(&specs) <= budget {
                    let tasks = a.to_tasks(&specs);
                    if rms_schedulable(&tasks) {
                        let u = a.utilization(&specs);
                        if best.is_none_or(|b| u < b) {
                            best = Some(u);
                        }
                    }
                }
                let mut k = 0;
                loop {
                    if k == n {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < specs[k].curve.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == n {
                    break;
                }
            }
            match (select_rms(&specs, budget), best) {
                (Ok(sel), Some(b)) => assert!(
                    (sel.utilization - b).abs() < 1e-9,
                    "case {case}: got {} want {b}",
                    sel.utilization
                ),
                (Err(SelectRmsError::Unschedulable), None) => {}
                (got, want) => panic!("case {case}: got {got:?}, brute {want:?}"),
            }
        }
    }

    #[test]
    fn stats_invariants_and_identical_optimum() {
        let specs = fig_3_2_specs();
        for budget in [0u64, 10, 17, 1000] {
            let plain = select_rms(&specs, budget);
            match select_rms_with_stats(&specs, budget) {
                Ok((sel, stats)) => {
                    assert_eq!(plain.expect("plain agrees"), sel, "budget {budget}");
                    assert!(stats.nodes >= 1);
                    assert!(stats.incumbent_updates >= 1);
                    assert!(stats.sched_tests >= stats.pruned_unschedulable);
                }
                Err(e) => assert_eq!(plain, Err(e), "budget {budget}"),
            }
        }
    }
}

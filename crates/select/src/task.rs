//! The multi-task selection model: periodic tasks with configuration
//! curves.

use rtise_ise::configs::ConfigCurve;
use rtise_rt::PeriodicTask;

/// One periodic task offered to the inter-task selectors: its configuration
/// curve (including the software-only point) and its period.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Configuration curve; `curve.base_cycles` is the software WCET `Cᵢ`.
    pub curve: ConfigCurve,
    /// Period (= deadline) `Pᵢ`.
    pub period: u64,
}

impl TaskSpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn new(curve: ConfigCurve, period: u64) -> Self {
        assert!(period > 0, "period must be positive");
        TaskSpec { curve, period }
    }

    /// Utilization of configuration `j` of this task.
    pub fn config_utilization(&self, j: usize) -> f64 {
        self.curve.points()[j].cycles as f64 / self.period as f64
    }

    /// Software-only utilization `Cᵢ/Pᵢ`.
    pub fn base_utilization(&self) -> f64 {
        self.curve.base_cycles as f64 / self.period as f64
    }
}

/// Derives a task-set period assignment for a target initial utilization:
/// `Pᵢ = αᵢ·Cᵢ` scaled so that `Σ Cᵢ/Pᵢ = u_target` with equal per-task
/// shares, exactly the workload construction of §3.2 / §5.3.2.
pub fn periods_for_utilization(base_cycles: &[u64], u_target: f64) -> Vec<u64> {
    assert!(u_target > 0.0, "target utilization must be positive");
    let n = base_cycles.len() as f64;
    base_cycles
        .iter()
        .map(|&c| {
            // Each task contributes u_target / n: P = C * n / u_target,
            // rounded up to an 8-bit mantissa × power of two. The snap
            // keeps the task set's hyperperiod bounded (schedule
            // simulation and exact demand arithmetic stay tractable) at a
            // worst-case utilization error below 0.8 % per task.
            let raw = ((c as f64) * n / u_target).ceil().max(1.0) as u64;
            snap_period(raw)
        })
        .collect()
}

/// Rounds `p` up to the nearest `m · 2^k` with `m < 256`.
fn snap_period(p: u64) -> u64 {
    if p < 256 {
        return p;
    }
    let k = (64 - p.leading_zeros() - 8) as u64;
    p.div_ceil(1 << k) << k
}

/// A complete selection: one configuration index per task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// `config[i]` indexes into `specs[i].curve.points()`.
    pub config: Vec<usize>,
}

impl Assignment {
    /// The all-software assignment.
    pub fn software(n_tasks: usize) -> Self {
        Assignment {
            config: vec![0; n_tasks],
        }
    }

    /// Total custom-instruction area of the assignment.
    ///
    /// # Panics
    ///
    /// Panics if dimensions mismatch.
    pub fn total_area(&self, specs: &[TaskSpec]) -> u64 {
        assert_eq!(self.config.len(), specs.len(), "dimension mismatch");
        self.config
            .iter()
            .zip(specs)
            .map(|(&j, s)| s.curve.points()[j].area)
            .sum()
    }

    /// Total processor utilization of the assignment.
    pub fn utilization(&self, specs: &[TaskSpec]) -> f64 {
        self.config
            .iter()
            .zip(specs)
            .map(|(&j, s)| s.config_utilization(j))
            .sum()
    }

    /// Materializes the assignment as periodic tasks for the schedulability
    /// tests and simulators of [`rtise_rt`].
    pub fn to_tasks(&self, specs: &[TaskSpec]) -> Vec<PeriodicTask> {
        self.config
            .iter()
            .zip(specs)
            .map(|(&j, s)| {
                PeriodicTask::new(s.curve.name.clone(), s.curve.points()[j].cycles, s.period)
            })
            .collect()
    }
}

/// Exact integer demand of an assignment over the hyperperiod `h`:
/// `Σ cyclesᵢ · (h / Pᵢ)`. Comparing demand against `h` is the
/// division-free form of the EDF bound used by the optimal selectors.
pub fn demand(specs: &[TaskSpec], config: &[usize], h: u64) -> u128 {
    specs
        .iter()
        .zip(config)
        .map(|(s, &j)| s.curve.points()[j].cycles as u128 * (h / s.period) as u128)
        .sum()
}

/// Hyperperiod of the specs' periods.
pub fn spec_hyperperiod(specs: &[TaskSpec]) -> Option<u64> {
    fn gcd(a: u64, b: u64) -> u64 {
        if b == 0 {
            a
        } else {
            gcd(b, a % b)
        }
    }
    specs.iter().try_fold(1u64, |acc, s| {
        let g = gcd(acc, s.period);
        (acc / g).checked_mul(s.period)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtise_ise::configs::ConfigCurve;

    pub(crate) fn spec(name: &str, base: u64, period: u64, pts: &[(u64, u64)]) -> TaskSpec {
        TaskSpec::new(ConfigCurve::from_points(name, base, pts), period)
    }

    #[test]
    fn utilization_and_area_accumulate() {
        let specs = vec![spec("a", 2, 6, &[(7, 1)]), spec("b", 3, 8, &[(6, 2)])];
        let sw = Assignment::software(2);
        assert!((sw.utilization(&specs) - (2.0 / 6.0 + 3.0 / 8.0)).abs() < 1e-12);
        assert_eq!(sw.total_area(&specs), 0);
        let hw = Assignment { config: vec![1, 1] };
        assert_eq!(hw.total_area(&specs), 13);
        assert!((hw.utilization(&specs) - (1.0 / 6.0 + 2.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn demand_matches_utilization_over_hyperperiod() {
        let specs = vec![spec("a", 2, 6, &[]), spec("b", 3, 8, &[])];
        let h = spec_hyperperiod(&specs).expect("no overflow");
        assert_eq!(h, 24);
        let d = demand(&specs, &[0, 0], h);
        assert_eq!(d, 2 * 4 + 3 * 3);
    }

    #[test]
    fn periods_hit_target_utilization() {
        let periods = periods_for_utilization(&[100, 200, 400], 1.2);
        let u: f64 = [100.0, 200.0, 400.0]
            .iter()
            .zip(&periods)
            .map(|(c, &p)| c / p as f64)
            .sum();
        assert!((u - 1.2).abs() < 0.01, "u = {u}");
    }

    #[test]
    fn to_tasks_carries_configured_wcets() {
        let specs = vec![spec("a", 10, 20, &[(5, 7)])];
        let tasks = Assignment { config: vec![1] }.to_tasks(&specs);
        assert_eq!(tasks[0].wcet, 7);
        assert_eq!(tasks[0].period, 20);
    }
}

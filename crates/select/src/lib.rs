//! # rtise-select
//!
//! Inter-task custom-instruction selection for multi-tasking real-time
//! systems — the core contribution of the DATE 2007 paper plus its Pareto
//! extension:
//!
//! * [`task`] — the task model consumed by all selectors: one configuration
//!   curve ([`rtise_ise::ConfigCurve`]) per periodic task.
//! * [`edf`] — Algorithm 1: a pseudo-polynomial dynamic program that picks
//!   one configuration per task minimizing total utilization under an area
//!   budget (optimal for EDF, whose exact schedulability is `U ≤ 1`).
//! * [`rms`] — Algorithm 2: branch-and-bound over configuration choices
//!   with the exact RMS schedulability test at every level, utilization
//!   lower-bound pruning, and best-performance-first ordering.
//! * [`heuristics`] — the four naïve per-task strategies of the motivating
//!   example (Fig. 3.2): equal area split, smallest deadline first, highest
//!   utilization reduction first, highest reduction/area ratio first.
//! * [`pareto`] — Chapter 4: exact workload–area / utilization–area Pareto
//!   fronts and the polynomial-time ε-approximation scheme built on the GAP
//!   subroutine with cost scaling.

pub mod edf;
pub mod heuristics;
pub mod pareto;
pub mod rms;
pub mod task;

pub use edf::select_edf;
pub use rms::{select_rms, select_rms_with_cert, RmsCertEvent, RmsCertificate};
pub use task::{Assignment, TaskSpec};

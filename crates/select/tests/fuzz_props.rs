//! Property tests over `rtise-fuzz` generated instances: every seeded EDF
//! selection must stay within its area budget and pass independent
//! certification by `rtise-check`.

use rtise_check::cert::check_edf_selection;
use rtise_check::diag::Severity;
use rtise_fuzz::gen::{self, TaskSetOptions};
use rtise_obs::Rng;
use rtise_select::select_edf;

#[test]
fn seeded_edf_selections_fit_the_budget_and_certify_clean() {
    let opts = TaskSetOptions::default();
    for seed in 0..100u64 {
        let mut rng = Rng::new(0x5E1E_C7D0 ^ seed);
        let specs = gen::task_set(&mut rng, &opts);
        let budget = gen::area_budget(&mut rng, &specs);
        let sel = select_edf(&specs, budget).expect("generated task sets are non-empty");
        assert!(
            sel.assignment.total_area(&specs) <= budget,
            "seed {seed}: selection area {} exceeds budget {budget}",
            sel.assignment.total_area(&specs)
        );
        // The DP minimizes utilization, so whenever the all-software
        // configuration already fits the budget the result must be
        // schedulable or no configuration is (U > 1 everywhere); either
        // way the certificate checker must accept the claim verbatim.
        let d = check_edf_selection(&specs, &sel, budget);
        let errors: Vec<_> = d.iter().filter(|x| x.severity == Severity::Error).collect();
        assert!(errors.is_empty(), "seed {seed}: {errors:?}");
    }
}
